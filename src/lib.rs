//! # camus — in-network publish/subscribe with packet subscriptions
//!
//! Facade crate re-exporting the whole Camus workspace. See the README
//! for an architecture overview and `DESIGN.md` for the system
//! inventory.

pub use camus_apps as apps;
pub use camus_baselines as baselines;
pub use camus_bdd as bdd;
pub use camus_core as core;
pub use camus_dataplane as dataplane;
pub use camus_faults as faults;
pub use camus_lang as lang;
pub use camus_net as net;
pub use camus_routing as routing;
pub use camus_workloads as workloads;
