//! The modelled control-plane clock.
//!
//! Every control-plane cost in the simulator — channel ops, timeouts,
//! retry backoff, and the service scheduler's compile/install overlap
//! — is *modelled* time: deterministic nanoseconds summed from the
//! retry policy and measured stage durations, never read from a wall
//! clock. [`Clock`] makes that timeline an explicit value that can be
//! advanced, handed between components, and compared across runs: two
//! runs with the same seed advance their clocks identically, which is
//! what makes `DeployReport` timings and the service experiment's
//! overlapped schedules reproducible.
//!
//! A `Clock` is deliberately not `Copy`: each modelled resource (the
//! control channel, the compile executor) owns exactly one timeline,
//! and accidental clock duplication is the classic way overlap
//! accounting goes wrong.

/// A monotonically advancing modelled-time cursor (nanoseconds).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Clock {
    now_ns: u64,
}

impl Clock {
    /// A clock at t = 0.
    pub fn new() -> Self {
        Clock { now_ns: 0 }
    }

    /// A clock starting at an arbitrary origin.
    pub fn at(now_ns: u64) -> Self {
        Clock { now_ns }
    }

    /// Current modelled time.
    pub fn now_ns(&self) -> u64 {
        self.now_ns
    }

    /// Spend `ns` of modelled time; returns the new now.
    pub fn advance(&mut self, ns: u64) -> u64 {
        self.now_ns = self.now_ns.saturating_add(ns);
        self.now_ns
    }

    /// Move forward to `ns` if it is in the future; a modelled clock
    /// never runs backwards, so an earlier target is a no-op (the
    /// resource was simply idle until `now`).
    pub fn advance_to(&mut self, ns: u64) -> u64 {
        self.now_ns = self.now_ns.max(ns);
        self.now_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advances_and_never_rewinds() {
        let mut c = Clock::new();
        assert_eq!(c.now_ns(), 0);
        assert_eq!(c.advance(100), 100);
        assert_eq!(c.advance_to(50), 100, "advance_to must not rewind");
        assert_eq!(c.advance_to(250), 250);
        assert_eq!(c.advance(u64::MAX), u64::MAX, "saturates instead of wrapping");
    }

    #[test]
    fn origin_constructor() {
        let mut c = Clock::at(1_000);
        assert_eq!(c.now_ns(), 1_000);
        c.advance(1);
        assert_eq!(c.now_ns(), 1_001);
    }
}
