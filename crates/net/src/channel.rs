//! The controller → switch control channel.
//!
//! On real hardware the controller programs switches over a network
//! (gRPC to the switch agent): messages are dropped, time out, or are
//! rejected by a busy agent. The simulator models this with a
//! [`ControlChannel`] trait the deployment transaction drives every
//! stage/commit operation through, plus a deterministic seeded
//! [`RetryPolicy`] (capped exponential backoff with hash jitter — no
//! wall-clock, so every run is reproducible).
//!
//! The faults crate provides the lossy implementation; here lives the
//! abstraction and the always-delivering [`PerfectChannel`] default.
//!
//! Time accounting is factored out of the controller: [`timed_op`]
//! drives one operation through a channel with retries and charges
//! every modelled cost (op, timeout, backoff) to an explicit
//! [`Clock`], so the deployment transaction and the service
//! scheduler's overlapped timelines share one reproducible notion of
//! control-plane time.

use crate::clock::Clock;

/// A control-plane operation sent to one switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlOp {
    /// Validate + shadow-install a pipeline (phase one).
    Stage,
    /// Atomically activate the staged pipeline (phase two).
    Commit,
}

/// What happened to one attempt on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelOutcome {
    /// The operation reached the switch and was executed.
    Delivered,
    /// The message (or its ack) was lost: the controller burns the
    /// full per-op timeout before retrying.
    Dropped,
    /// The switch agent answered with a transient failure.
    Nacked,
    /// The *controller* died before the operation left the process.
    /// Nothing reached the switch, no retry is possible — the caller
    /// must unwind as a dead coordinator (no rollback, no cleanup).
    /// Only fault-injection channels ever return this.
    ControllerCrashed,
}

/// The transport the deployment transaction sends every per-switch
/// operation through. `attempt` is 1-based, letting implementations
/// model first-try-only loss or flaky-until-retried behaviour.
pub trait ControlChannel {
    fn attempt(&mut self, switch: usize, op: ControlOp, attempt: u32) -> ChannelOutcome;

    /// Commit-point hook: called by the deployment transaction after
    /// every switch admitted its staged program and *before* the first
    /// commit op is sent. Durable channels append the commit decision
    /// for `epoch` to a write-ahead log here, turning recovery into
    /// presumed-abort two-phase commit: a staged epoch with a logged
    /// decision rolls forward, one without rolls back. The default is
    /// a no-op (volatile controllers log nothing).
    fn commit_point(&mut self, epoch: u64) {
        let _ = epoch;
    }
}

/// The lossless default: every operation is delivered first try.
#[derive(Debug, Clone, Copy, Default)]
pub struct PerfectChannel;

impl ControlChannel for PerfectChannel {
    fn attempt(&mut self, _switch: usize, _op: ControlOp, _attempt: u32) -> ChannelOutcome {
        ChannelOutcome::Delivered
    }
}

/// Deterministic retry/backoff parameters for control-channel
/// operations. All time is modelled (summed into the deploy report),
/// never slept.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Attempts per operation before the transaction gives up.
    pub max_attempts: u32,
    /// Backoff after the first failed attempt.
    pub base_backoff_ns: u64,
    /// Backoff growth cap.
    pub max_backoff_ns: u64,
    /// Modelled cost of one delivered (or nacked) operation.
    pub op_ns: u64,
    /// Modelled cost of waiting out a dropped operation.
    pub timeout_ns: u64,
    /// Seed for the deterministic backoff jitter.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 6,
            base_backoff_ns: 50_000,
            max_backoff_ns: 800_000,
            op_ns: 20_000,
            timeout_ns: 100_000,
            seed: 0xC0DE,
        }
    }
}

impl RetryPolicy {
    /// Backoff before retry number `retry` (0 = after the first
    /// failure) of an operation to `switch`: capped exponential with
    /// deterministic jitter in `[cap/2, cap]`, decorrelated across
    /// switches and retries so a fleet-wide partition does not retry
    /// in lockstep.
    pub fn backoff_ns(&self, switch: usize, retry: u32) -> u64 {
        let exp = self.base_backoff_ns.saturating_mul(1u64 << retry.min(20));
        let cap = exp.min(self.max_backoff_ns).max(1);
        let h = fnv64(self.seed ^ (switch as u64).rotate_left(17) ^ u64::from(retry) << 40);
        cap / 2 + h % (cap - cap / 2 + 1)
    }
}

/// What one [`timed_op`] call did: whether the op ever landed, and the
/// attempt/retry counts the transaction ledger wants. All modelled
/// time was charged to the caller's [`Clock`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpOutcome {
    pub landed: bool,
    pub attempts: u32,
    pub retries: u32,
    /// The controller died mid-operation: the op never landed and no
    /// further modelled time was charged (a dead process burns no
    /// timeouts). Callers must abandon the transaction in place.
    pub crashed: bool,
}

/// Drive one per-switch control operation through `channel` with the
/// policy's retry + capped exponential backoff, advancing `clock` by
/// the modelled cost of every attempt: `op_ns` for a delivered or
/// nacked op, `timeout_ns` for a dropped one, and the deterministic
/// jittered backoff before each retry. The clock is the *only* time
/// sink, so any two runs that feed the same attempt outcomes advance
/// identically.
pub fn timed_op(
    channel: &mut dyn ControlChannel,
    retry: &RetryPolicy,
    clock: &mut Clock,
    switch: usize,
    op: ControlOp,
) -> OpOutcome {
    let mut out = OpOutcome { landed: false, attempts: 0, retries: 0, crashed: false };
    for attempt in 1..=retry.max_attempts {
        out.attempts += 1;
        if attempt > 1 {
            out.retries += 1;
            clock.advance(retry.backoff_ns(switch, attempt - 2));
        }
        match channel.attempt(switch, op, attempt) {
            ChannelOutcome::Delivered => {
                clock.advance(retry.op_ns);
                out.landed = true;
                break;
            }
            ChannelOutcome::Dropped => {
                clock.advance(retry.timeout_ns);
            }
            ChannelOutcome::Nacked => {
                clock.advance(retry.op_ns);
            }
            ChannelOutcome::ControllerCrashed => {
                out.crashed = true;
                break;
            }
        }
    }
    out
}

/// FNV-1a over the 8 bytes of `x` — the same cheap deterministic hash
/// the fingerprint machinery uses.
fn fnv64(x: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in x.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_channel_always_delivers() {
        let mut ch = PerfectChannel;
        for a in 1..5 {
            assert_eq!(ch.attempt(3, ControlOp::Stage, a), ChannelOutcome::Delivered);
            assert_eq!(ch.attempt(3, ControlOp::Commit, a), ChannelOutcome::Delivered);
        }
    }

    #[test]
    fn backoff_grows_and_caps() {
        let p = RetryPolicy::default();
        for retry in 0..12 {
            let b = p.backoff_ns(0, retry);
            let exp = p.base_backoff_ns.saturating_mul(1 << retry.min(20));
            let cap = exp.min(p.max_backoff_ns);
            assert!(b >= cap / 2 && b <= cap, "retry {retry}: {b} not in [{}, {cap}]", cap / 2);
        }
        // Late retries saturate at the cap window.
        assert!(p.backoff_ns(0, 30) <= p.max_backoff_ns);
    }

    /// Fails `fail` times, then delivers.
    struct FlakyN {
        fail: u32,
        with: ChannelOutcome,
    }

    impl ControlChannel for FlakyN {
        fn attempt(&mut self, _s: usize, _op: ControlOp, attempt: u32) -> ChannelOutcome {
            if attempt <= self.fail {
                self.with
            } else {
                ChannelOutcome::Delivered
            }
        }
    }

    #[test]
    fn timed_op_charges_every_attempt_to_the_clock() {
        let p = RetryPolicy::default();
        let mut clock = Clock::new();
        let mut ch = FlakyN { fail: 2, with: ChannelOutcome::Dropped };
        let out = timed_op(&mut ch, &p, &mut clock, 7, ControlOp::Stage);
        assert!(out.landed);
        assert_eq!(out.attempts, 3);
        assert_eq!(out.retries, 2);
        // Two timeouts, two backoffs, one delivered op — exactly.
        let want = 2 * p.timeout_ns + p.backoff_ns(7, 0) + p.backoff_ns(7, 1) + p.op_ns;
        assert_eq!(clock.now_ns(), want);

        // A nack costs an op, not a timeout.
        let mut clock2 = Clock::new();
        let mut ch2 = FlakyN { fail: 1, with: ChannelOutcome::Nacked };
        timed_op(&mut ch2, &p, &mut clock2, 7, ControlOp::Commit);
        assert_eq!(clock2.now_ns(), 2 * p.op_ns + p.backoff_ns(7, 0));
    }

    #[test]
    fn timed_op_exhaustion_burns_all_attempts() {
        let p = RetryPolicy::default();
        let mut clock = Clock::new();
        let mut ch = FlakyN { fail: u32::MAX, with: ChannelOutcome::Dropped };
        let out = timed_op(&mut ch, &p, &mut clock, 0, ControlOp::Stage);
        assert!(!out.landed);
        assert_eq!(out.attempts, p.max_attempts);
        assert_eq!(out.retries, p.max_attempts - 1);
        let want: u64 = u64::from(p.max_attempts) * p.timeout_ns
            + (0..p.max_attempts - 1).map(|r| p.backoff_ns(0, r)).sum::<u64>();
        assert_eq!(clock.now_ns(), want);
    }

    #[test]
    fn backoff_is_deterministic_and_decorrelated() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff_ns(5, 2), p.backoff_ns(5, 2));
        // Different switches (almost surely) jitter differently.
        let distinct: std::collections::HashSet<u64> =
            (0..16).map(|s| p.backoff_ns(s, 3)).collect();
        assert!(distinct.len() > 1, "jitter must decorrelate switches");
        // A different seed reshuffles the jitter.
        let q = RetryPolicy { seed: 99, ..p };
        assert!((0..16).any(|s| p.backoff_ns(s, 3) != q.backoff_ns(s, 3)));
    }
}
