//! The logically centralised controller (Fig. 2, §III).
//!
//! Input: the topology, the application's static pipeline, and the
//! per-host subscription filters. The controller runs Algorithm 1 to
//! obtain per-switch rule lists, compiles each with the Camus compiler
//! (in parallel), and instantiates the dataplane switches. It also
//! supports *dynamic reconfiguration* (§VIII-G.3): on a subscription
//! change it recomputes and reinstalls only the pipelines, preserving
//! switch state.

use crate::channel::{timed_op, ControlChannel, ControlOp, PerfectChannel, RetryPolicy};
use crate::clock::Clock;
use crate::sim::Network;
use camus_core::compiler::{CompileError, Compiler};
use camus_core::pipeline::{LeafTable, Pipeline, STATE_INIT};
use camus_core::resources::ResourceBudget;
use camus_core::statics::StaticPipeline;
use camus_dataplane::{InstallError, Switch, SwitchConfig};
use camus_lang::ast::{Action, Expr, Port};
use camus_routing::algorithm1::{route_hierarchical_degraded, RoutingConfig, RoutingResult};
use camus_routing::compile::{
    compile_network, compile_network_incremental, compile_network_incremental_delta, DeltaCache,
    NetworkCompile,
};
use camus_routing::topology::{FaultMask, HierNet};
use camus_telemetry::{DeployTrace, SwitchSpan};
use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::time::{Duration, Instant};

/// Controller configuration and handles.
#[derive(Debug, Clone)]
pub struct Controller {
    pub statics: StaticPipeline,
    pub routing: RoutingConfig,
    pub switch_config: SwitchConfig,
    pub link_latency_ns: u64,
    /// Retry/backoff for control-channel operations.
    pub retry: RetryPolicy,
    /// When a switch's precise pipeline is over budget, fall back to a
    /// conservative coarse pipeline (over-deliver, never under-deliver)
    /// instead of failing the whole deploy.
    pub degrade_over_budget: bool,
    /// Per-switch resource budgets; switches not listed use
    /// `switch_config.budget`.
    pub budget_overrides: HashMap<usize, ResourceBudget>,
}

/// A deployed network plus the artefacts the evaluation wants to see.
pub struct Deployment {
    pub network: Network,
    pub routing: RoutingResult,
    /// Per-switch compile results (entry counts, times).
    pub compile: NetworkCompile,
    /// What the last successful deploy/repair transaction did on the
    /// control channel, per touched switch.
    pub report: DeployReport,
    /// Switches currently running the coarse degraded pipeline because
    /// their precise one was over budget.
    pub degraded: BTreeSet<usize>,
    /// Per-phase span trace of the last successful deploy/repair
    /// transaction (route/compile wall-clock, stage/commit modelled).
    pub trace: DeployTrace,
    /// Epoch the *next* install transaction will stage under. Epochs
    /// tag shadow programs on switches (see [`Switch::stage_epoch`])
    /// so a recovering controller can tell which transaction left
    /// staged state behind and look its commit decision up in the log.
    pub next_epoch: u64,
}

/// Why a deployment transaction failed. Any error leaves the previous
/// deployment forwarding byte-identically: staged state is rolled
/// back, nothing is half-committed.
#[derive(Debug)]
pub enum DeployError {
    /// A switch pipeline failed to compile.
    Compile(CompileError),
    /// One or more switches rejected their pipeline at admission; the
    /// offenders (every one found, not just the first) are named with
    /// their budget violations.
    Admission { rejected: Vec<(usize, InstallError)>, report: DeployReport },
    /// A control-channel operation to the named switches exhausted its
    /// retries.
    Channel { failed: Vec<usize>, report: DeployReport },
    /// The controller process died mid-transaction. Unlike every other
    /// arm, **nothing was rolled back**: a dead coordinator cannot
    /// clean up, so staged and committed-but-unfinalised programs are
    /// left on the switches for recovery to reconcile (the ledger
    /// records how far the transaction got).
    Crashed { epoch: u64, report: DeployReport },
}

impl From<CompileError> for DeployError {
    fn from(e: CompileError) -> Self {
        DeployError::Compile(e)
    }
}

impl fmt::Display for DeployError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeployError::Compile(e) => write!(f, "compile failed: {e}"),
            DeployError::Admission { rejected, .. } => {
                write!(f, "deploy rejected at admission:")?;
                for (s, e) in rejected {
                    write!(f, " switch {s}: {e};")?;
                }
                Ok(())
            }
            DeployError::Channel { failed, .. } => {
                write!(f, "control channel exhausted retries to switches {failed:?}")
            }
            DeployError::Crashed { epoch, .. } => {
                write!(f, "controller crashed mid-transaction (epoch {epoch}); switches hold unreconciled state")
            }
        }
    }
}

impl std::error::Error for DeployError {}

/// Admission failure of an install transaction: one or more switches
/// rejected their pipeline. Typed form of
/// [`DeployError::Admission`], which remains the public façade.
#[derive(Debug)]
pub struct AdmissionError {
    /// Every offender found (not just the first), with its violation.
    pub rejected: Vec<(usize, InstallError)>,
    /// The full transaction ledger at the point of rejection.
    pub report: DeployReport,
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rejected at admission:")?;
        for (s, e) in &self.rejected {
            write!(f, " switch {s}: {e};")?;
        }
        Ok(())
    }
}

impl std::error::Error for AdmissionError {}

/// Control-channel failure of an install transaction: an operation to
/// the named switches exhausted its retries. Typed form of
/// [`DeployError::Channel`].
#[derive(Debug)]
pub struct ChannelError {
    pub failed: Vec<usize>,
    pub report: DeployReport,
}

impl fmt::Display for ChannelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "control channel exhausted retries to switches {:?}", self.failed)
    }
}

impl std::error::Error for ChannelError {}

/// The controller died mid-transaction (fault injection). Nothing was
/// rolled back; the ledger records exactly how far the two phases got
/// so tests and the recovery arm can reason about the wreckage.
#[derive(Debug)]
pub struct CrashedError {
    /// The epoch the transaction staged under.
    pub epoch: u64,
    pub report: DeployReport,
}

impl fmt::Display for CrashedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "controller crashed mid-transaction (epoch {})", self.epoch)
    }
}

impl std::error::Error for CrashedError {}

/// Why a two-phase install transaction rolled back (or, for
/// [`Crashed`](Self::Crashed), could not). The per-phase taxonomy the
/// service's deploy stage consumes; callers of the batch API keep
/// seeing it as [`DeployError`] through `From`.
#[derive(Debug)]
pub enum TransactionError {
    Admission(AdmissionError),
    Channel(ChannelError),
    Crashed(CrashedError),
}

impl TransactionError {
    /// The transaction ledger, whichever phase failed.
    pub fn report(&self) -> &DeployReport {
        match self {
            TransactionError::Admission(e) => &e.report,
            TransactionError::Channel(e) => &e.report,
            TransactionError::Crashed(e) => &e.report,
        }
    }
}

impl fmt::Display for TransactionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransactionError::Admission(e) => write!(f, "install transaction {e}"),
            TransactionError::Channel(e) => write!(f, "install transaction failed: {e}"),
            TransactionError::Crashed(e) => write!(f, "install transaction abandoned: {e}"),
        }
    }
}

impl std::error::Error for TransactionError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TransactionError::Admission(e) => Some(e),
            TransactionError::Channel(e) => Some(e),
            TransactionError::Crashed(e) => Some(e),
        }
    }
}

impl From<CrashedError> for TransactionError {
    fn from(e: CrashedError) -> Self {
        TransactionError::Crashed(e)
    }
}

impl From<AdmissionError> for TransactionError {
    fn from(e: AdmissionError) -> Self {
        TransactionError::Admission(e)
    }
}

impl From<ChannelError> for TransactionError {
    fn from(e: ChannelError) -> Self {
        TransactionError::Channel(e)
    }
}

impl From<TransactionError> for DeployError {
    fn from(e: TransactionError) -> Self {
        match e {
            TransactionError::Admission(AdmissionError { rejected, report }) => {
                DeployError::Admission { rejected, report }
            }
            TransactionError::Channel(ChannelError { failed, report }) => {
                DeployError::Channel { failed, report }
            }
            TransactionError::Crashed(CrashedError { epoch, report }) => {
                DeployError::Crashed { epoch, report }
            }
        }
    }
}

/// Admission outcome for one switch in a deploy transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmissionVerdict {
    /// The precise pipeline fits the budget.
    Admitted,
    /// Precise pipeline over budget; the coarse fallback was staged
    /// instead (over-delivers, never under-delivers).
    Degraded,
    /// Over budget and degradation disabled (or the fallback itself
    /// rejected).
    Rejected(InstallError),
    /// The control channel never reached the switch.
    Unreachable,
}

/// Per-switch record of what one deploy transaction did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwitchDeploy {
    pub switch: usize,
    /// Control-channel attempts across stage and commit ops.
    pub attempts: u32,
    /// Attempts beyond the first per op.
    pub retries: u32,
    pub verdict: AdmissionVerdict,
    pub staged: bool,
    pub committed: bool,
    /// Staged or committed state undone because the transaction
    /// failed elsewhere.
    pub rolled_back: bool,
    /// Modelled control-plane time spent on this switch (ops, timeouts
    /// and backoff). Always `stage_ns + commit_ns`.
    pub control_ns: u64,
    /// The stage-op share of `control_ns` (span tracing).
    pub stage_ns: u64,
    /// The commit-op share of `control_ns` (span tracing).
    pub commit_ns: u64,
}

impl SwitchDeploy {
    fn new(switch: usize) -> Self {
        SwitchDeploy {
            switch,
            attempts: 0,
            retries: 0,
            verdict: AdmissionVerdict::Unreachable,
            staged: false,
            committed: false,
            rolled_back: false,
            control_ns: 0,
            stage_ns: 0,
            commit_ns: 0,
        }
    }
}

/// The per-switch ledger of a two-phase deploy transaction.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeployReport {
    pub switches: Vec<SwitchDeploy>,
}

impl DeployReport {
    pub fn committed(&self) -> usize {
        self.switches.iter().filter(|s| s.committed).count()
    }

    pub fn total_attempts(&self) -> u32 {
        self.switches.iter().map(|s| s.attempts).sum()
    }

    pub fn total_retries(&self) -> u32 {
        self.switches.iter().map(|s| s.retries).sum()
    }

    pub fn total_control_ns(&self) -> u64 {
        self.switches.iter().map(|s| s.control_ns).sum()
    }

    pub fn degraded_switches(&self) -> Vec<usize> {
        self.switches
            .iter()
            .filter(|s| s.verdict == AdmissionVerdict::Degraded)
            .map(|s| s.switch)
            .collect()
    }
}

/// The conservative fallback for an over-budget switch: no match
/// stages at all, every message forwarded to every port any of the
/// switch's rules forwards to. Over-delivers (downstream switches and
/// hosts still filter), never under-delivers; deterministic in the
/// rule list so repair and fresh deploy converge to the same program.
fn coarse_pipeline(rules: &[camus_lang::ast::Rule]) -> Pipeline {
    let mut ports: BTreeSet<Port> = BTreeSet::new();
    for r in rules {
        if let Action::Forward(ps) = &r.action {
            ports.extend(ps.iter().copied());
        }
    }
    let default =
        if ports.is_empty() { Action::Drop } else { Action::Forward(ports.into_iter().collect()) };
    Pipeline {
        stages: Vec::new(),
        leaf: LeafTable { actions: HashMap::new(), default },
        initial: STATE_INIT,
    }
}

/// What a [`Controller::repair`] pass did (§VIII-G.3 extended to
/// failures): how long it took and how much of the previous deployment
/// it could keep.
#[derive(Debug, Clone, Copy)]
pub struct RepairStats {
    /// Total repair wall-clock: degraded routing + compile + reinstall.
    pub elapsed: Duration,
    /// The compile share of `elapsed` (the Fig. 14 metric).
    pub compile_elapsed: Duration,
    /// Switches whose pipeline changed and was recompiled.
    pub recompiled: usize,
    /// Switches whose previous pipeline was reused (fingerprint hit).
    pub reused: usize,
    /// Compiler invocations actually paid (identical rule lists share).
    pub distinct_compiles: usize,
    /// Switches whose installed pipeline actually changed.
    pub reinstalled: usize,
}

impl Controller {
    pub fn new(statics: StaticPipeline, routing: RoutingConfig) -> Self {
        Controller {
            statics,
            routing,
            switch_config: SwitchConfig::default(),
            link_latency_ns: 1_000, // 1 μs per hop by default
            retry: RetryPolicy::default(),
            degrade_over_budget: true,
            budget_overrides: HashMap::new(),
        }
    }

    fn compiler(&self) -> Compiler {
        Compiler::new().with_static(self.statics.clone())
    }

    /// The switch config for slot `s`, with any budget override.
    fn config_for(&self, s: usize) -> SwitchConfig {
        let mut cfg = self.switch_config.clone();
        if let Some(b) = self.budget_overrides.get(&s) {
            cfg.budget = *b;
        }
        cfg
    }

    /// Drive one per-switch control operation through the channel with
    /// retry + capped exponential backoff, accounting attempts and
    /// modelled time into `entry`. Returns the full outcome so callers
    /// can distinguish an exhausted channel from a crashed controller.
    fn channel_op(
        &self,
        channel: &mut dyn ControlChannel,
        entry: &mut SwitchDeploy,
        op: ControlOp,
    ) -> crate::channel::OpOutcome {
        // Each op runs on a fresh clock slice; the ledger accumulates.
        let mut clock = Clock::new();
        let out = timed_op(channel, &self.retry, &mut clock, entry.switch, op);
        entry.attempts += out.attempts;
        entry.retries += out.retries;
        let spent = clock.now_ns();
        entry.control_ns += spent;
        // Attribute the op's modelled time to its phase for span
        // tracing; `control_ns` stays the cross-phase total.
        match op {
            ControlOp::Stage => entry.stage_ns += spent,
            ControlOp::Commit => entry.commit_ns += spent,
        }
        out
    }

    /// The two-phase deployment transaction over `targets` (slot ids):
    /// stage everything under `epoch` (admission happens at the
    /// switch), announce the commit decision through
    /// [`ControlChannel::commit_point`], then commit only if every
    /// stage landed and was admitted; any failure rolls every touched
    /// switch back so forwarding is byte-identical to before the call —
    /// except a controller crash ([`TransactionError::Crashed`]), which
    /// leaves the wreckage in place for recovery to reconcile. Returns
    /// the ledger and the switches that fell back to the coarse
    /// degraded pipeline.
    fn apply_transaction(
        &self,
        network: &mut Network,
        compile: &NetworkCompile,
        routing: &RoutingResult,
        targets: &[usize],
        epoch: u64,
        channel: &mut dyn ControlChannel,
    ) -> Result<(DeployReport, BTreeSet<usize>), TransactionError> {
        // The ledger is ordered by switch index regardless of how the
        // caller discovered the targets, so reports from different
        // change-detection orders compare equal.
        let mut targets: Vec<usize> = targets.to_vec();
        targets.sort_unstable();
        let targets = &targets[..];
        let mut report = DeployReport::default();
        let mut degraded = BTreeSet::new();
        let mut rejected: Vec<(usize, InstallError)> = Vec::new();

        // Phase one: stage every target shadow-side.
        for (ti, &s) in targets.iter().enumerate() {
            let mut entry = SwitchDeploy::new(s);
            let out = self.channel_op(channel, &mut entry, ControlOp::Stage);
            if out.crashed {
                // Dead coordinator: leave everything staged so far in
                // place (recovery's presumed-abort rule cleans it up)
                // and record the untouched tail for a complete ledger.
                report.switches.push(entry);
                for &rest in &targets[ti + 1..] {
                    report.switches.push(SwitchDeploy::new(rest));
                }
                return Err(CrashedError { epoch, report }.into());
            }
            if !out.landed {
                // Channel exhausted: abort the scan, roll back
                // everything staged so far.
                report.switches.push(entry);
                for e in &mut report.switches {
                    if e.staged {
                        network.switches[e.switch].abort_staged();
                        e.rolled_back = true;
                    }
                }
                // Remaining targets were never attempted; record them
                // as untouched for a complete ledger.
                for &rest in &targets[ti + 1..] {
                    report.switches.push(SwitchDeploy::new(rest));
                }
                return Err(ChannelError { failed: vec![s], report }.into());
            }
            let pipeline = compile.switches[s].compiled.pipeline.clone();
            match network.switches[s].stage_epoch(pipeline, epoch) {
                Ok(_) => {
                    entry.verdict = AdmissionVerdict::Admitted;
                    entry.staged = true;
                }
                Err(err) if self.degrade_over_budget => {
                    // Fall back to the coarse pipeline; admission of
                    // the fallback is still the switch's call.
                    match network.switches[s]
                        .stage_epoch(coarse_pipeline(&routing.switch_rules(s)), epoch)
                    {
                        Ok(_) => {
                            entry.verdict = AdmissionVerdict::Degraded;
                            entry.staged = true;
                            degraded.insert(s);
                        }
                        Err(fallback_err) => {
                            entry.verdict = AdmissionVerdict::Rejected(fallback_err.clone());
                            rejected.push((s, err));
                        }
                    }
                }
                Err(err) => {
                    entry.verdict = AdmissionVerdict::Rejected(err.clone());
                    rejected.push((s, err));
                }
            }
            report.switches.push(entry);
        }

        // Every admission verdict is in; reject the whole transaction
        // if any switch refused, naming all offenders.
        if !rejected.is_empty() {
            for e in &mut report.switches {
                if e.staged {
                    network.switches[e.switch].abort_staged();
                    e.staged = false;
                    e.rolled_back = true;
                }
            }
            return Err(AdmissionError { rejected, report }.into());
        }

        // Commit point: every switch admitted its staged program, so
        // the transaction *will* commit. A durable channel logs the
        // decision for `epoch` here — before the first commit op — so
        // recovery can roll a half-committed transaction forward
        // (presumed abort: no logged decision ⇒ abort the epoch).
        channel.commit_point(epoch);

        // Phase two: commit. A commit keeps the displaced program
        // retired until finalisation, so a late channel failure can
        // still revert the already-committed prefix.
        for i in 0..report.switches.len() {
            let out = self.channel_op(channel, &mut report.switches[i], ControlOp::Commit);
            if out.crashed {
                // Dead coordinator past the commit point: the committed
                // prefix and staged tail stay exactly as they are;
                // recovery rolls the whole epoch forward.
                return Err(CrashedError { epoch, report }.into());
            }
            if !out.landed {
                let failed = report.switches[i].switch;
                for e in &mut report.switches {
                    if e.committed {
                        network.switches[e.switch].revert_committed();
                        e.committed = false;
                        e.rolled_back = true;
                    } else if e.staged {
                        network.switches[e.switch].abort_staged();
                        e.staged = false;
                        e.rolled_back = true;
                    }
                }
                return Err(ChannelError { failed: vec![failed], report }.into());
            }
            let s = report.switches[i].switch;
            network.switches[s].commit_staged();
            report.switches[i].committed = true;
        }
        for e in &report.switches {
            network.switches[e.switch].finalize_install();
        }
        Ok((report, degraded))
    }

    /// Compute routing, compile every switch, and build the network.
    pub fn deploy(&self, topology: HierNet, subs: &[Vec<Expr>]) -> Result<Deployment, DeployError> {
        self.deploy_degraded(topology, subs, &FaultMask::default())
    }

    /// Deploy onto a topology with faults already present: routing
    /// avoids masked elements and the network starts with the mask
    /// injected. A fresh `deploy_degraded` is the oracle that
    /// [`Controller::repair`] must converge to.
    pub fn deploy_degraded(
        &self,
        topology: HierNet,
        subs: &[Vec<Expr>],
        mask: &FaultMask,
    ) -> Result<Deployment, DeployError> {
        self.deploy_degraded_with(topology, subs, mask, &mut PerfectChannel)
    }

    /// [`deploy_degraded`](Self::deploy_degraded) over an explicit
    /// control channel. On error no [`Deployment`] is produced at all,
    /// so the caller's previous deployment (if any) is untouched.
    pub fn deploy_degraded_with(
        &self,
        topology: HierNet,
        subs: &[Vec<Expr>],
        mask: &FaultMask,
        channel: &mut dyn ControlChannel,
    ) -> Result<Deployment, DeployError> {
        let route_start = Instant::now();
        let routing = route_hierarchical_degraded(&topology, subs, self.routing, mask);
        let route_ns = route_start.elapsed().as_nanos() as u64;
        let compile = compile_network(&routing, &self.compiler())?;
        let mut switches = Vec::with_capacity(topology.switch_count());
        for sc in &compile.switches {
            // Switches boot with the empty pipeline; the real one goes
            // in through the admission-checked transaction below.
            switches.push(Switch::new(
                &self.statics,
                Pipeline::empty(),
                self.config_for(sc.switch),
            ));
        }
        let mut network = Network::new(topology, switches, self.link_latency_ns);
        network.apply_mask(mask);
        let targets: Vec<usize> = (0..compile.switches.len()).collect();
        let (report, degraded) =
            self.apply_transaction(&mut network, &compile, &routing, &targets, 1, channel)?;
        let trace = build_trace(route_ns, &compile, &report);
        Ok(Deployment { network, routing, compile, report, degraded, trace, next_epoch: 2 })
    }

    /// Recompute and reinstall pipelines after a subscription change,
    /// preserving switch state. Returns the recompile wall-clock time
    /// (the Fig. 14 measurement).
    ///
    /// Recompilation is *incremental*: switches whose routed rule list
    /// is fingerprint-identical to the deployed one keep their compiled
    /// pipeline and are not reinstalled (`deployment.compile` records
    /// the recompiled/reused split for inspection).
    pub fn reconfigure(
        &self,
        deployment: &mut Deployment,
        subs: &[Vec<Expr>],
    ) -> Result<Duration, DeployError> {
        Ok(self.repair(deployment, subs)?.compile_elapsed)
    }

    /// Recompute routing around the network's current fault mask and
    /// reinstall only the switches whose pipeline changed. This is the
    /// convergence step after a failure (or a restore — the same code
    /// path heals in both directions), and also the general
    /// reconfiguration primitive: with a healthy mask it degenerates to
    /// plain incremental reconfiguration.
    pub fn repair(
        &self,
        deployment: &mut Deployment,
        subs: &[Vec<Expr>],
    ) -> Result<RepairStats, DeployError> {
        self.repair_with(deployment, subs, &mut PerfectChannel)
    }

    /// [`repair`](Self::repair) over an explicit control channel. Any
    /// error (admission or exhausted retries) rolls the transaction
    /// back: the deployment keeps its previous routing, compile state
    /// and installed pipelines, and deliveries are byte-identical to
    /// before the call.
    pub fn repair_with(
        &self,
        deployment: &mut Deployment,
        subs: &[Vec<Expr>],
        channel: &mut dyn ControlChannel,
    ) -> Result<RepairStats, DeployError> {
        let start = Instant::now();
        let mask = deployment.network.fault_mask().clone();
        let routing = self.plan_routing(&deployment.network.topology, subs, &mask);
        let route_ns = start.elapsed().as_nanos() as u64;
        let compile = self.compile_routing(&routing, Some(&deployment.compile))?;
        self.install(deployment, routing, compile, route_ns, channel)
    }

    /// Stage one of a repair: run Algorithm 1 around `mask`. Split out
    /// so a pipelined caller (the service's route stage) can plan a
    /// transaction without holding the deployment.
    pub fn plan_routing(
        &self,
        topology: &HierNet,
        subs: &[Vec<Expr>],
        mask: &FaultMask,
    ) -> RoutingResult {
        route_hierarchical_degraded(topology, subs, self.routing, mask)
    }

    /// Stage two: compile a routing result, reusing `previous` as a
    /// content-addressed cache. The cache only affects cost, never the
    /// produced pipelines — which is what makes it safe to compile
    /// transaction N+1 against a compile whose install has not landed
    /// (or will roll back): the result is identical either way.
    pub fn compile_routing(
        &self,
        routing: &RoutingResult,
        previous: Option<&NetworkCompile>,
    ) -> Result<NetworkCompile, CompileError> {
        compile_network_incremental(routing, &self.compiler(), previous)
    }

    /// [`compile_routing`](Self::compile_routing) with *delta
    /// maintenance*: switches that miss the fingerprint cache are not
    /// recompiled from scratch but have their per-switch BDD updated
    /// in place through `cache`, in time proportional to the rule-list
    /// delta. The cache only affects cost, never the produced
    /// pipelines (the controller's compiler pins the spec's variable
    /// order, so delta-maintained and scratch-built diagrams reduce to
    /// the same tables). Callers own the cache and carry it across
    /// reconfigurations; a fresh cache degenerates to seeding every
    /// representative.
    pub fn compile_routing_delta(
        &self,
        routing: &RoutingResult,
        previous: Option<&NetworkCompile>,
        cache: &mut DeltaCache,
    ) -> Result<NetworkCompile, CompileError> {
        compile_network_incremental_delta(routing, &self.compiler(), previous, cache)
    }

    /// [`repair`](Self::repair) with delta-maintained per-switch BDDs:
    /// route, delta-compile through `cache`, install. Error semantics
    /// match [`repair_with`](Self::repair_with); on error the cache may
    /// have advanced (it is a pure cost cache, so that is harmless).
    pub fn repair_delta_with(
        &self,
        deployment: &mut Deployment,
        subs: &[Vec<Expr>],
        cache: &mut DeltaCache,
        channel: &mut dyn ControlChannel,
    ) -> Result<RepairStats, DeployError> {
        let start = Instant::now();
        let mask = deployment.network.fault_mask().clone();
        let routing = self.plan_routing(&deployment.network.topology, subs, &mask);
        let route_ns = start.elapsed().as_nanos() as u64;
        let compile = self.compile_routing_delta(&routing, Some(&deployment.compile), cache)?;
        self.install(deployment, routing, compile, route_ns, channel)
    }

    /// [`reconfigure`](Self::reconfigure) with delta-maintained
    /// per-switch BDDs. At large subscription counts this is the fast
    /// path: a small churn touches each dirty switch's diagram in time
    /// proportional to the delta instead of rebuilding it.
    pub fn reconfigure_delta(
        &self,
        deployment: &mut Deployment,
        subs: &[Vec<Expr>],
        cache: &mut DeltaCache,
    ) -> Result<Duration, DeployError> {
        Ok(self.repair_delta_with(deployment, subs, cache, &mut PerfectChannel)?.compile_elapsed)
    }

    /// Stage three: install a precomputed `(routing, compile)` pair
    /// into a live deployment over `channel`, reinstalling exactly the
    /// switches whose pipeline differs from what is *actually
    /// installed* (`deployment.compile` — not whatever cache the
    /// compile was computed against). Error semantics match
    /// [`repair_with`](Self::repair_with): any failure rolls back and
    /// the deployment keeps forwarding byte-identically.
    pub fn install(
        &self,
        deployment: &mut Deployment,
        routing: RoutingResult,
        compile: NetworkCompile,
        route_ns: u64,
        channel: &mut dyn ControlChannel,
    ) -> Result<RepairStats, DeployError> {
        let start = Instant::now();
        // Reinstall exactly the switches whose own rule list changed.
        // `reused` is not the right gate here: the compile cache is
        // content-addressed across slots, so a switch can reuse another
        // switch's previous pipeline while its own installed one is
        // stale.
        let changed = compile.changed_since(&deployment.compile);
        // Consume the epoch up front: even a crashed transaction used
        // it (switches may hold state tagged with it), so the next
        // attempt must stage under a fresh one.
        let epoch = deployment.next_epoch;
        deployment.next_epoch += 1;
        let (report, degraded) = self.apply_transaction(
            &mut deployment.network,
            &compile,
            &routing,
            &changed,
            epoch,
            channel,
        )?;
        let stats = RepairStats {
            elapsed: Duration::from_nanos(route_ns) + compile.elapsed + start.elapsed(),
            compile_elapsed: compile.elapsed,
            recompiled: compile.recompiled,
            reused: compile.reused,
            distinct_compiles: compile.distinct_compiles,
            reinstalled: report.committed(),
        };
        // A changed switch that re-admitted its precise pipeline is no
        // longer degraded; newly over-budget ones join the set.
        for s in &changed {
            deployment.degraded.remove(s);
        }
        deployment.degraded.extend(degraded);
        deployment.trace = build_trace(route_ns, &compile, &report);
        deployment.routing = routing;
        deployment.compile = compile;
        deployment.report = report;
        Ok(stats)
    }

    /// Reconcile every switch's staged / committed-but-unfinalised
    /// state after a controller crash — the recovery arm of the
    /// two-phase install. `committed_epochs` is the set of epochs whose
    /// commit decision made it to the durable log; the rule is
    /// presumed abort:
    ///
    /// * staged under a *logged* epoch → commit + finalise (the
    ///   coordinator had decided to commit; finish its job),
    /// * staged under an unlogged epoch → abort (the decision was
    ///   never made, so the transaction never happened),
    /// * committed-but-unfinalised under a logged epoch → finalise,
    /// * committed-but-unfinalised under an unlogged epoch → revert
    ///   (defensive: the protocol logs the decision before the first
    ///   commit op, so this arm only fires on a corrupted log).
    pub fn reconcile_staged(
        &self,
        network: &mut Network,
        committed_epochs: &BTreeSet<u64>,
    ) -> ReconcileStats {
        let mut stats = ReconcileStats::default();
        for sw in &mut network.switches {
            if let Some(e) = sw.unfinalized_epoch() {
                if committed_epochs.contains(&e) {
                    sw.finalize_install();
                    stats.finalized += 1;
                } else {
                    sw.revert_committed();
                    stats.reverted += 1;
                }
            }
            if let Some(e) = sw.staged_epoch() {
                if committed_epochs.contains(&e) {
                    sw.commit_staged();
                    sw.finalize_install();
                    stats.rolled_forward += 1;
                } else {
                    sw.abort_staged();
                    stats.aborted += 1;
                }
            }
        }
        stats
    }

    /// Rebuild a [`Deployment`] around a surviving network after a
    /// controller crash. The controller-side artefacts (routing,
    /// compile state, ledger) died with the old process, so recovery
    /// interrogates the switches instead:
    ///
    /// 1. [`reconcile_staged`](Self::reconcile_staged) settles every
    ///    in-doubt install against the logged commit decisions,
    /// 2. routing is re-planned from the durable subscription set and
    ///    the network's *current* fault mask, and every pipeline is
    ///    recompiled (through `cache` when the service carried one),
    /// 3. exactly the switches whose installed pipeline differs from
    ///    the recompiled intent are reinstalled through a normal
    ///    two-phase transaction under `next_epoch`.
    ///
    /// The result is byte-identical to a fresh
    /// [`deploy_degraded`](Self::deploy_degraded) of the same
    /// subscriptions onto the same mask, but without disturbing
    /// switches that already forward correctly.
    #[allow(clippy::too_many_arguments)]
    pub fn recover_deployment(
        &self,
        mut network: Network,
        subs: &[Vec<Expr>],
        committed_epochs: &BTreeSet<u64>,
        next_epoch: u64,
        cache: Option<&mut DeltaCache>,
        channel: &mut dyn ControlChannel,
    ) -> Result<(Deployment, ReconcileStats), DeployError> {
        let mut stats = self.reconcile_staged(&mut network, committed_epochs);
        let route_start = Instant::now();
        let mask = network.fault_mask().clone();
        let routing = self.plan_routing(&network.topology, subs, &mask);
        let route_ns = route_start.elapsed().as_nanos() as u64;
        let compile = match cache {
            Some(c) => self.compile_routing_delta(&routing, None, c)?,
            None => self.compile_routing(&routing, None)?,
        };
        // Interrogation-based diff: the old compile baseline is gone,
        // so compare compiled intent against what each switch actually
        // runs. Degraded switches always differ from their precise
        // pipeline and re-degrade deterministically, so they converge
        // too.
        let targets: Vec<usize> = (0..compile.switches.len())
            .filter(|&s| compile.switches[s].compiled.pipeline != *network.switches[s].pipeline())
            .collect();
        let (report, degraded) = self.apply_transaction(
            &mut network,
            &compile,
            &routing,
            &targets,
            next_epoch,
            channel,
        )?;
        stats.reinstalled = report.committed();
        let trace = build_trace(route_ns, &compile, &report);
        let deployment = Deployment {
            network,
            routing,
            compile,
            report,
            degraded,
            trace,
            next_epoch: next_epoch + 1,
        };
        Ok((deployment, stats))
    }
}

/// What [`Controller::reconcile_staged`] (and the surrounding
/// [`Controller::recover_deployment`]) did to settle a crash's
/// in-doubt state.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReconcileStats {
    /// Staged programs committed because their epoch's decision was
    /// logged.
    pub rolled_forward: usize,
    /// Staged programs aborted (no logged decision — presumed abort).
    pub aborted: usize,
    /// Committed-but-unfinalised installs finalised.
    pub finalized: usize,
    /// Committed-but-unfinalised installs reverted (unlogged epoch).
    pub reverted: usize,
    /// Switches reinstalled by the recovery transaction because their
    /// running pipeline differed from the recompiled intent.
    pub reinstalled: usize,
}

/// Render a transaction ledger as a per-phase span trace.
fn build_trace(route_ns: u64, compile: &NetworkCompile, report: &DeployReport) -> DeployTrace {
    let switches = report
        .switches
        .iter()
        .map(|e| SwitchSpan {
            switch: e.switch,
            stage_ns: e.stage_ns,
            commit_ns: e.commit_ns,
            attempts: e.attempts,
            retries: e.retries,
            committed: e.committed,
            rolled_back: e.rolled_back,
        })
        .collect();
    DeployTrace::build(route_ns, compile.elapsed.as_nanos() as u64, switches)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::ChannelOutcome;
    use camus_core::statics::compile_static;
    use camus_dataplane::PacketBuilder;
    use camus_lang::parser::parse_expr;
    use camus_lang::spec::itch_spec;
    use camus_lang::value::Value;
    use camus_routing::algorithm1::Policy;
    use camus_routing::topology::{paper_fat_tree, DownTarget};

    fn controller(policy: Policy) -> Controller {
        let statics = compile_static(&itch_spec()).unwrap();
        Controller::new(statics, RoutingConfig::new(policy))
    }

    fn subs(net: &HierNet, f: impl Fn(usize) -> Vec<&'static str>) -> Vec<Vec<Expr>> {
        (0..net.host_count())
            .map(|h| f(h).into_iter().map(|s| parse_expr(s).unwrap()).collect())
            .collect()
    }

    fn googl_packet(price: i64) -> camus_dataplane::Packet {
        let spec = itch_spec();
        PacketBuilder::new(&spec)
            .message(vec![("stock", Value::from("GOOGL")), ("price", Value::Int(price))])
            .build()
    }

    #[test]
    fn end_to_end_delivery_across_fat_tree() {
        // Publisher at host 0 (pod 0), subscriber at host 15 (pod 3).
        let net = paper_fat_tree();
        let subs = subs(&net, |h| if h == 15 { vec!["stock == GOOGL"] } else { vec![] });
        for policy in [Policy::MemoryReduction, Policy::TrafficReduction] {
            let mut d = controller(policy).deploy(net.clone(), &subs).unwrap();
            d.network.publish(0, googl_packet(10), 0);
            d.network.run(None);
            let got = d.network.deliveries(15);
            assert_eq!(got.len(), 1, "{policy:?}");
            assert_eq!(got[0].values["stock"], Value::from("GOOGL"));
            assert!(got[0].latency_ns() > 0);
            // Nobody else hears it.
            for h in 0..15 {
                assert!(d.network.deliveries(h).is_empty(), "{policy:?} host {h}");
            }
        }
    }

    #[test]
    fn multicast_to_multiple_pods_no_duplicates() {
        let net = paper_fat_tree();
        // Hosts 3 (pod 0), 7 (pod 1), 12 (pod 3) subscribe.
        let subs = subs(&net, |h| if [3, 7, 12].contains(&h) { vec!["price > 5"] } else { vec![] });
        for policy in [Policy::MemoryReduction, Policy::TrafficReduction] {
            let mut d = controller(policy).deploy(net.clone(), &subs).unwrap();
            d.network.publish(0, googl_packet(10), 0);
            d.network.run(None);
            for h in [3usize, 7, 12] {
                assert_eq!(d.network.deliveries(h).len(), 1, "{policy:?} host {h}");
            }
            let total: usize = (0..16).map(|h| d.network.deliveries(h).len()).sum();
            assert_eq!(total, 3, "{policy:?}: no duplicate deliveries");
        }
    }

    #[test]
    fn non_matching_messages_do_not_leave_tor() {
        let net = paper_fat_tree();
        let subs = subs(&net, |h| if h == 1 { vec!["price > 100"] } else { vec![] });
        // TR: a price-10 message from host 0 dies at ToR 0.
        let mut d = controller(Policy::TrafficReduction).deploy(net.clone(), &subs).unwrap();
        d.network.publish(0, googl_packet(10), 0);
        d.network.run(None);
        assert_eq!(d.network.all_deliveries().count(), 0);
        let stats = d.network.stats();
        assert_eq!(stats.layer_messages(&net, 1), 0, "nothing at agg layer");
        assert_eq!(stats.layer_messages(&net, 2), 0, "nothing at core layer");
    }

    #[test]
    fn mr_policy_sends_everything_up() {
        let net = paper_fat_tree();
        let subs = subs(&net, |h| if h == 1 { vec!["price > 100"] } else { vec![] });
        let mut d = controller(Policy::MemoryReduction).deploy(net.clone(), &subs).unwrap();
        d.network.publish(0, googl_packet(10), 0);
        d.network.run(None);
        assert_eq!(d.network.all_deliveries().count(), 0);
        // The message still ascended (MR's F_up = true).
        assert!(d.network.stats().layer_messages(&net, 0) > 0);
    }

    #[test]
    fn same_tor_delivery_stays_local() {
        let net = paper_fat_tree();
        let subs = subs(&net, |h| if h == 1 { vec!["stock == GOOGL"] } else { vec![] });
        let mut d = controller(Policy::TrafficReduction).deploy(net.clone(), &subs).unwrap();
        d.network.publish(0, googl_packet(10), 0);
        d.network.run(None);
        assert_eq!(d.network.deliveries(1).len(), 1);
        // Host 0 and 1 share ToR 0: two link hops, no agg/core traffic.
        assert_eq!(d.network.stats().layer_messages(&net, 1), 0);
        assert_eq!(d.network.stats().layer_messages(&net, 2), 0);
    }

    #[test]
    fn per_message_pruning_across_network() {
        let net = paper_fat_tree();
        let subs = subs(&net, |h| match h {
            5 => vec!["stock == GOOGL"],
            9 => vec!["stock == MSFT"],
            _ => vec![],
        });
        let mut d = controller(Policy::TrafficReduction).deploy(net.clone(), &subs).unwrap();
        let spec = itch_spec();
        let pkt = PacketBuilder::new(&spec)
            .message(vec![("stock", Value::from("GOOGL")), ("price", Value::Int(1))])
            .message(vec![("stock", Value::from("MSFT")), ("price", Value::Int(2))])
            .message(vec![("stock", Value::from("FB")), ("price", Value::Int(3))])
            .build();
        d.network.publish(0, pkt, 0);
        d.network.run(None);
        let h5 = d.network.deliveries(5);
        assert_eq!(h5.len(), 1);
        assert_eq!(h5[0].values["stock"], Value::from("GOOGL"));
        let h9 = d.network.deliveries(9);
        assert_eq!(h9.len(), 1);
        assert_eq!(h9[0].values["stock"], Value::from("MSFT"));
    }

    #[test]
    fn reconfigure_switches_subscriptions() {
        let net = paper_fat_tree();
        let sub_a = subs(&net, |h| if h == 2 { vec!["stock == GOOGL"] } else { vec![] });
        let sub_b = subs(&net, |h| if h == 2 { vec!["stock == MSFT"] } else { vec![] });
        let ctrl = controller(Policy::TrafficReduction);
        let mut d = ctrl.deploy(net.clone(), &sub_a).unwrap();
        d.network.publish(0, googl_packet(10), 0);
        d.network.run(None);
        assert_eq!(d.network.deliveries(2).len(), 1);
        // Reconfigure: GOOGL no longer interesting.
        let elapsed = ctrl.reconfigure(&mut d, &sub_b).unwrap();
        assert!(elapsed.as_nanos() > 0);
        d.network.publish(0, googl_packet(10), 1_000_000);
        d.network.run(None);
        assert_eq!(d.network.deliveries(2).len(), 1, "no new GOOGL delivery");
    }

    #[test]
    fn reconfigure_recompiles_only_distribution_path() {
        // One host's subscription changes: under MR (up-filters are
        // constant True) only the switches that carry that host's
        // down-path filters — its access ToR, designated agg, and the
        // cores above it — can change, so everything else must be
        // reused from the previous compile.
        let net = paper_fat_tree();
        let host = 5;
        let base = subs(&net, |h| if h % 3 == 0 { vec!["price > 10"] } else { vec![] });
        let mut changed = base.clone();
        changed[host] = vec![parse_expr("stock == MSFT").unwrap()];

        let ctrl = controller(Policy::MemoryReduction);
        let mut d = ctrl.deploy(net.clone(), &base).unwrap();
        assert_eq!(d.compile.reused, 0, "initial deploy compiles everything");
        ctrl.reconfigure(&mut d, &changed).unwrap();

        // Distribution path: the designated chain plus every core the
        // chain's agg can ascend to.
        let chain = net.designated_chain(host);
        let agg = chain[1];
        let mut path: std::collections::HashSet<usize> = chain.iter().copied().collect();
        path.extend(net.switches[agg].up.iter().map(|(core, _)| *core));

        let recompiled: std::collections::HashSet<usize> =
            d.compile.recompiled_switches().into_iter().collect();
        assert!(!recompiled.is_empty(), "the changed host's path must recompile");
        assert!(
            recompiled.is_subset(&path),
            "recompiled {recompiled:?} not within distribution path {path:?}"
        );
        assert_eq!(
            d.compile.reused,
            net.switch_count() - recompiled.len(),
            "every off-path switch is reused"
        );
        assert!(d.compile.reused >= net.switch_count() - path.len());

        // The incrementally reconfigured network still behaves like a
        // fresh deployment of the new subscription set.
        let spec = itch_spec();
        let msft = PacketBuilder::new(&spec)
            .message(vec![("stock", Value::from("MSFT")), ("price", Value::Int(7))])
            .build();
        d.network.publish(0, msft, 0);
        d.network.run(None);
        assert_eq!(d.network.deliveries(host).len(), 1);
    }

    #[test]
    fn reconfigure_delta_matches_fresh_deploy_through_churn() {
        // Drive a deployment through a sequence of subscription changes
        // with the delta-maintained compile path and check after every
        // round that the installed pipelines are exactly what a fresh
        // deploy of the same subscriptions installs — same fingerprints
        // and same table sizes (the controller pins the spec's variable
        // order, so delta-maintained diagrams reduce identically).
        let net = paper_fat_tree();
        let ctrl = controller(Policy::MemoryReduction);
        let rounds: Vec<Vec<Vec<Expr>>> = vec![
            subs(&net, |h| if h % 2 == 0 { vec!["price > 10"] } else { vec![] }),
            subs(&net, |h| match h {
                5 => vec!["stock == MSFT", "price > 10"],
                h if h % 2 == 0 => vec!["price > 10"],
                _ => vec![],
            }),
            subs(&net, |h| match h {
                5 => vec!["stock == MSFT"],
                15 => vec!["stock == GOOGL"],
                h if h % 2 == 0 => vec!["price > 10"],
                _ => vec![],
            }),
            subs(&net, |h| if h == 15 { vec!["stock == GOOGL"] } else { vec![] }),
        ];

        let mut cache = DeltaCache::new();
        let mut d = ctrl.deploy(net.clone(), &rounds[0]).unwrap();
        let mut delta_hits = 0;
        for round in &rounds[1..] {
            ctrl.reconfigure_delta(&mut d, round, &mut cache).unwrap();
            delta_hits += d.compile.reused;
            let oracle = ctrl.deploy(net.clone(), round).unwrap();
            for (got, want) in d.compile.switches.iter().zip(oracle.compile.switches.iter()) {
                assert_eq!(got.fingerprint, want.fingerprint, "switch {}", got.switch);
                assert_eq!(
                    got.compiled.report.total_entries, want.compiled.report.total_entries,
                    "switch {}: delta-maintained tables must match scratch",
                    got.switch
                );
            }
        }
        assert!(delta_hits > 0, "churn this local must reuse off-path switches");
        assert!(!cache.is_empty(), "live fingerprints stay cached across rounds");

        // The delta-reconfigured network forwards like a fresh deploy.
        d.network.publish(0, googl_packet(10), 0);
        d.network.run(None);
        assert_eq!(d.network.deliveries(15).len(), 1);
        assert_eq!(d.network.all_deliveries().count(), 1);
    }

    #[test]
    fn reconfigure_with_identical_subs_reuses_everything() {
        let net = paper_fat_tree();
        let s = subs(&net, |h| if h == 3 { vec!["price > 1"] } else { vec![] });
        let ctrl = controller(Policy::TrafficReduction);
        let mut d = ctrl.deploy(net.clone(), &s).unwrap();
        ctrl.reconfigure(&mut d, &s).unwrap();
        assert_eq!(d.compile.recompiled, 0);
        assert_eq!(d.compile.reused, net.switch_count());
    }

    #[test]
    fn ascent_self_heals_before_repair() {
        // Fail the publisher ToR's designated up link. The masked
        // designation falls over to the sibling agg, and under MR every
        // core carries the subscriber's filters, so delivery survives
        // with no controller involvement at all.
        let net = paper_fat_tree();
        let subs = subs(&net, |h| if h == 15 { vec!["stock == GOOGL"] } else { vec![] });
        let mut d = controller(Policy::MemoryReduction).deploy(net.clone(), &subs).unwrap();
        let tor = net.access[0].0;
        let (agg, port) = net.switches[tor].up[0];
        assert!(d.network.fail_link(agg, port));
        d.network.publish(0, googl_packet(10), 0);
        d.network.run(None);
        assert_eq!(d.network.deliveries(15).len(), 1);
        assert_eq!(d.network.all_deliveries().count(), 1, "still duplicate-free");
    }

    #[test]
    fn link_failure_on_distribution_path_repairs_incrementally() {
        let net = paper_fat_tree();
        let subs = subs(&net, |h| if h == 15 { vec!["stock == GOOGL"] } else { vec![] });
        let ctrl = controller(Policy::TrafficReduction);
        let mut d = ctrl.deploy(net.clone(), &subs).unwrap();
        d.network.publish(0, googl_packet(10), 0);
        d.network.run(None);
        assert_eq!(d.network.deliveries(15).len(), 1);

        // Cut the designated agg -> ToR link on the subscriber's chain.
        let chain = net.designated_chain(15);
        let (tor, agg) = (chain[0], chain[1]);
        let port = net.switches[agg]
            .down
            .iter()
            .position(|t| matches!(t, DownTarget::Switch(c, _) if *c == tor))
            .unwrap() as camus_lang::ast::Port;
        assert!(d.network.fail_link(agg, port));
        d.network.publish(0, googl_packet(11), 1_000_000);
        d.network.run(None);
        assert_eq!(d.network.deliveries(15).len(), 1, "blackout until repair");

        let stats = ctrl.repair(&mut d, &subs).unwrap();
        assert!(stats.reinstalled > 0, "the detour must be installed");
        assert!(stats.reused > 0, "off-path switches keep their pipelines");
        d.network.publish(0, googl_packet(12), 2_000_000);
        d.network.run(None);
        assert_eq!(d.network.deliveries(15).len(), 2, "repaired path delivers");
        assert_eq!(d.network.all_deliveries().count(), 2, "nobody else hears it");

        // Repair converged to exactly what a fresh deploy onto the
        // degraded topology would have installed.
        let oracle = ctrl.deploy_degraded(net.clone(), &subs, d.network.fault_mask()).unwrap();
        for (got, want) in d.compile.switches.iter().zip(oracle.compile.switches.iter()) {
            assert_eq!(got.fingerprint, want.fingerprint, "switch {}", got.switch);
        }

        // Restoring the link and repairing again heals back to the
        // original deployment.
        assert!(d.network.restore_link(agg, port));
        let back = ctrl.repair(&mut d, &subs).unwrap();
        assert!(back.reinstalled > 0);
        let fresh = ctrl.deploy(net.clone(), &subs).unwrap();
        for (got, want) in d.compile.switches.iter().zip(fresh.compile.switches.iter()) {
            assert_eq!(got.fingerprint, want.fingerprint, "switch {}", got.switch);
        }
    }

    #[test]
    fn publishing_through_dead_tor_is_dropped_and_recorded() {
        let net = paper_fat_tree();
        let subs = subs(&net, |h| if h == 15 { vec!["price > 0"] } else { vec![] });
        let ctrl = controller(Policy::TrafficReduction);
        let mut d = ctrl.deploy(net.clone(), &subs).unwrap();
        let tor = net.access[0].0;
        assert!(d.network.crash_switch(tor));
        d.network.publish(0, googl_packet(10), 0);
        d.network.run(None);
        assert_eq!(d.network.all_deliveries().count(), 0);
        let drops = d.network.drops();
        assert_eq!(drops.len(), 1);
        assert_eq!(drops[0].cause, crate::sim::DropCause::SwitchDown);
        assert_eq!(drops[0].switch, tor);
        assert_eq!(d.network.stats().fault_drops, 1);
        // The other host on the dead ToR is unreachable, but a repair
        // keeps everyone else consistent: host 2 (pod 0, other ToR) can
        // still reach host 15.
        ctrl.repair(&mut d, &subs).unwrap();
        d.network.publish(2, googl_packet(10), 1_000_000);
        d.network.run(None);
        assert_eq!(d.network.deliveries(15).len(), 1);
        // Restore heals completely.
        assert!(d.network.restore_switch(tor));
        ctrl.repair(&mut d, &subs).unwrap();
        d.network.publish(0, googl_packet(10), 2_000_000);
        d.network.run(None);
        assert_eq!(d.network.deliveries(15).len(), 2);
    }

    #[test]
    fn bounded_run_leaves_pending_events() {
        let net = paper_fat_tree();
        let subs = subs(&net, |_| vec!["price > 0"]);
        let mut d = controller(Policy::TrafficReduction).deploy(net.clone(), &subs).unwrap();
        d.network.publish(0, googl_packet(10), 0);
        d.network.run(Some(1)); // 1 ns horizon: nothing can complete
        assert!(d.network.pending() > 0);
        d.network.run(None);
        assert_eq!(d.network.pending(), 0);
    }

    /// A channel that eats every op of one kind to one switch; every
    /// other op is delivered.
    struct DeadOp {
        switch: usize,
        op: Option<ControlOp>,
    }

    impl ControlChannel for DeadOp {
        fn attempt(&mut self, switch: usize, op: ControlOp, _attempt: u32) -> ChannelOutcome {
            if switch == self.switch && self.op.is_none_or(|o| o == op) {
                ChannelOutcome::Dropped
            } else {
                ChannelOutcome::Delivered
            }
        }
    }

    fn msft_packet(price: i64) -> camus_dataplane::Packet {
        let spec = itch_spec();
        PacketBuilder::new(&spec)
            .message(vec![("stock", Value::from("MSFT")), ("price", Value::Int(price))])
            .build()
    }

    #[test]
    fn admission_rejection_names_offenders_and_preserves_delivery() {
        let net = paper_fat_tree();
        let tor = net.designated_chain(15)[0];
        let mut ctrl = controller(Policy::TrafficReduction);
        // The ToR has no TCAM: equality filters fit, ranges do not.
        ctrl.budget_overrides
            .insert(tor, ResourceBudget { max_tcam_entries: 0, ..ResourceBudget::unlimited() });
        ctrl.degrade_over_budget = false;

        let old = subs(&net, |h| if h == 15 { vec!["stock == GOOGL"] } else { vec![] });
        let mut d = ctrl.deploy(net.clone(), &old).unwrap();

        // A range filter needs TCAM on the ToR: the deploy must be
        // rejected naming that switch, with a budget violation inside.
        let new =
            subs(&net, |h| if h == 15 { vec!["stock == GOOGL", "price > 5"] } else { vec![] });
        let before_fp: Vec<u64> = d.compile.switches.iter().map(|s| s.fingerprint).collect();
        match ctrl.reconfigure(&mut d, &new) {
            Err(DeployError::Admission { rejected, report }) => {
                assert!(rejected.iter().any(|(s, _)| *s == tor), "must name the ToR");
                for (_, e) in &rejected {
                    assert!(matches!(e, InstallError::OverBudget(_)));
                }
                let entry = report.switches.iter().find(|e| e.switch == tor).unwrap();
                assert!(matches!(entry.verdict, AdmissionVerdict::Rejected(_)));
                assert_eq!(report.committed(), 0, "nothing may commit");
            }
            other => panic!("expected admission rejection, got {other:?}"),
        }
        // The rejected deploy left the old program running everywhere.
        let after_fp: Vec<u64> = d.compile.switches.iter().map(|s| s.fingerprint).collect();
        assert_eq!(before_fp, after_fp);
        d.network.publish(0, googl_packet(10), 0);
        d.network.publish(0, msft_packet(10), 100);
        d.network.run(None);
        // Old subscription still delivers; the half-deployed new one
        // must not (price > 5 would also match the MSFT packet).
        assert_eq!(d.network.deliveries(15).len(), 1);
        assert_eq!(d.network.deliveries(15)[0].values["stock"], Value::from("GOOGL"));
    }

    #[test]
    fn over_budget_switch_degrades_to_coarse_overdelivery() {
        let net = paper_fat_tree();
        let tor = net.designated_chain(15)[0];
        let mut ctrl = controller(Policy::TrafficReduction);
        ctrl.budget_overrides
            .insert(tor, ResourceBudget { max_tcam_entries: 0, ..ResourceBudget::unlimited() });

        // Host 14 shares the ToR with host 15, so its messages meet
        // only the degraded switch on the way.
        let subs = subs(&net, |h| if h == 15 { vec!["price > 5"] } else { vec![] });
        let d0 = ctrl.deploy(net.clone(), &subs);
        let mut d = d0.unwrap();
        assert!(d.degraded.contains(&tor), "the ToR must be degraded");
        assert_eq!(d.report.degraded_switches(), vec![tor]);

        d.network.publish(14, googl_packet(10), 0); // matches price > 5
        d.network.publish(14, googl_packet(2), 100); // does not match
        d.network.run(None);
        // The coarse pipeline over-delivers: host 15 receives both the
        // matching and the non-matching message, and nobody else
        // receives anything.
        assert_eq!(d.network.deliveries(15).len(), 2);
        for h in 0..net.host_count() {
            if h != 15 {
                assert!(d.network.deliveries(h).is_empty(), "host {h} must stay silent");
            }
        }

        // Lifting the budget and repairing restores the precise
        // pipeline: a later non-matching message is filtered again.
        ctrl.budget_overrides.clear();
        let mut fixed = ctrl.deploy(net.clone(), &subs).unwrap();
        assert!(fixed.degraded.is_empty());
        fixed.network.publish(14, googl_packet(2), 0);
        fixed.network.run(None);
        assert!(fixed.network.deliveries(15).is_empty());
    }

    #[test]
    fn exhausted_stage_op_rolls_the_transaction_back() {
        let net = paper_fat_tree();
        let tor = net.designated_chain(15)[0];
        let ctrl = controller(Policy::TrafficReduction);
        let old = subs(&net, |h| if h == 15 { vec!["stock == GOOGL"] } else { vec![] });
        let mut d = ctrl.deploy(net.clone(), &old).unwrap();

        let new =
            subs(&net, |h| if h == 15 { vec!["stock == GOOGL", "stock == MSFT"] } else { vec![] });
        let before_fp: Vec<u64> = d.compile.switches.iter().map(|s| s.fingerprint).collect();
        let mut dead = DeadOp { switch: tor, op: Some(ControlOp::Stage) };
        match ctrl.repair_with(&mut d, &new, &mut dead) {
            Err(DeployError::Channel { failed, report }) => {
                assert_eq!(failed, vec![tor]);
                let entry = report.switches.iter().find(|e| e.switch == tor).unwrap();
                assert_eq!(entry.attempts, ctrl.retry.max_attempts);
                assert_eq!(entry.retries, ctrl.retry.max_attempts - 1);
                assert!(!entry.staged && !entry.committed);
                assert_eq!(entry.verdict, AdmissionVerdict::Unreachable);
                assert!(entry.control_ns > 0, "timeouts and backoff must cost time");
                assert_eq!(report.committed(), 0);
            }
            other => panic!("expected channel failure, got {other:?}"),
        }
        let after_fp: Vec<u64> = d.compile.switches.iter().map(|s| s.fingerprint).collect();
        assert_eq!(before_fp, after_fp, "failed repair must keep the old compile state");

        d.network.publish(0, msft_packet(10), 0);
        d.network.publish(0, googl_packet(10), 100);
        d.network.run(None);
        assert_eq!(d.network.deliveries(15).len(), 1, "only the old subscription delivers");
    }

    #[test]
    fn exhausted_commit_op_reverts_committed_switches() {
        let net = paper_fat_tree();
        let tor = net.designated_chain(15)[0];
        let ctrl = controller(Policy::TrafficReduction);
        let old = subs(&net, |h| if h == 15 { vec!["stock == GOOGL"] } else { vec![] });
        let mut d = ctrl.deploy(net.clone(), &old).unwrap();

        let new =
            subs(&net, |h| if h == 15 { vec!["stock == GOOGL", "stock == MSFT"] } else { vec![] });
        // Stages land everywhere, but the ToR never acks its commit:
        // switches committed before it must be reverted.
        let mut dead = DeadOp { switch: tor, op: Some(ControlOp::Commit) };
        match ctrl.repair_with(&mut d, &new, &mut dead) {
            Err(DeployError::Channel { failed, report }) => {
                assert_eq!(failed, vec![tor]);
                let entry = report.switches.iter().find(|e| e.switch == tor).unwrap();
                // The ledger reflects final state: the stage was
                // rolled back, so nothing is left staged or committed.
                assert!(!entry.staged && !entry.committed && entry.rolled_back);
                // Every touched switch was rolled back, none left
                // staged or committed.
                for e in &report.switches {
                    assert!(!e.committed, "switch {} left committed", e.switch);
                    assert!(e.rolled_back || e.verdict == AdmissionVerdict::Unreachable);
                }
            }
            other => panic!("expected channel failure, got {other:?}"),
        }
        d.network.publish(0, msft_packet(10), 0);
        d.network.publish(0, googl_packet(10), 100);
        d.network.run(None);
        assert_eq!(d.network.deliveries(15).len(), 1, "reverted network forwards as before");

        // The same repair over a healthy channel then succeeds and the
        // new subscription goes live.
        ctrl.repair(&mut d, &new).unwrap();
        d.network.publish(0, msft_packet(10), 1_000_000);
        d.network.run(None);
        assert_eq!(d.network.deliveries(15).len(), 2);
    }

    #[test]
    fn postcards_trace_delivery_and_flag_blackholes() {
        use camus_telemetry::{Anomaly, SampleRate};
        let net = paper_fat_tree();
        let ctrl = controller(Policy::TrafficReduction);
        let subs = subs(&net, |h| if h == 15 { vec!["stock == GOOGL"] } else { vec![] });
        let mut d = ctrl.deploy(net.clone(), &subs).unwrap();
        d.network.attach_telemetry(SampleRate::always());

        let id = d.network.publish(0, googl_packet(10), 0).expect("sampled");
        d.network.collector_mut().unwrap().expect(id, 0, &[15]);
        d.network.run(None);
        let c = d.network.collector().unwrap();
        let g = c.group(id).unwrap();
        assert_eq!(g.delivered_hosts().into_iter().collect::<Vec<_>>(), vec![15]);
        assert_eq!(g.delivery_ns(15), Some(d.network.deliveries(15)[0].time_ns));
        // Host 0 (pod 0) to host 15 (pod 3) crosses the core: the one
        // delivered path is ToR→agg→core→agg→ToR, five switch hops.
        assert_eq!(c.path_percentile(0.5), 5, "{:?}", c.path_lengths());
        assert!(c.link_utilization().values().all(|&m| m == 1));
        assert!(c.anomalies().is_empty(), "{:?}", c.anomalies());

        // Cut the subscriber's access link: the next traced packet dies
        // mid-network and the collector calls it a blackhole (and never
        // a loop — the postcard path has no repeated switch).
        let (tor, port) = net.access[15];
        d.network.fail_link(tor, port);
        let id2 = d.network.publish(0, googl_packet(11), 1_000).expect("sampled");
        d.network.collector_mut().unwrap().expect(id2, 1_000, &[15]);
        d.network.run(None);
        let c = d.network.collector().unwrap();
        assert_eq!(c.blackholes(), 1);
        assert_eq!(c.loops(), 0);
        assert!(c
            .anomalies()
            .iter()
            .any(|a| matches!(a, Anomaly::Blackhole { id, missing, .. } if *id == id2 && missing.contains(&15))));
    }

    /// Deterministic flaky channel: the outcome of every attempt is a
    /// pure hash of (seed, switch, op, attempt), so two runs with the
    /// same seed see identical loss and two seeds see different loss.
    struct HashFlaky {
        seed: u64,
    }

    impl ControlChannel for HashFlaky {
        fn attempt(&mut self, switch: usize, op: ControlOp, attempt: u32) -> ChannelOutcome {
            let mut h = 0xcbf2_9ce4_8422_2325u64 ^ self.seed;
            for b in (switch as u64)
                .to_le_bytes()
                .into_iter()
                .chain([matches!(op, ControlOp::Commit) as u8])
                .chain(attempt.to_le_bytes())
            {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            match h % 5 {
                0 => ChannelOutcome::Dropped,
                1 => ChannelOutcome::Nacked,
                _ => ChannelOutcome::Delivered,
            }
        }
    }

    #[test]
    fn same_seed_runs_produce_identical_report_timings() {
        // The modelled clock is the only time source on the control
        // path: two deploys over the same flaky schedule must produce
        // byte-identical ledgers (attempts, retries, stage/commit ns),
        // however the wall clock jitters between runs.
        let net = paper_fat_tree();
        let ctrl = controller(Policy::TrafficReduction);
        let subs = subs(&net, |h| if h % 2 == 0 { vec!["price > 10"] } else { vec![] });
        let run = |seed: u64| {
            let mut d = ctrl.deploy(net.clone(), &subs).unwrap();
            let more = self::subs(&net, |h| match h {
                3 => vec!["stock == MSFT"],
                h if h % 2 == 0 => vec!["price > 10"],
                _ => vec![],
            });
            ctrl.repair_with(&mut d, &more, &mut HashFlaky { seed }).unwrap();
            d.report
        };
        let a = run(0xFEED);
        let b = run(0xFEED);
        assert_eq!(a, b, "same-seed timings must be identical");
        assert!(a.total_retries() > 0, "the flaky schedule must actually retry");
        // A different loss schedule must be visible in the timings,
        // otherwise this test would pass vacuously.
        let c = run(0xBEEF);
        assert_ne!(a, c, "different seeds must produce different ledgers");
    }

    #[test]
    fn deploy_ledger_is_ordered_by_switch_index() {
        let net = paper_fat_tree();
        let ctrl = controller(Policy::TrafficReduction);
        let subs = subs(&net, |h| if h % 3 == 0 { vec!["stock == GOOGL"] } else { vec![] });
        let mut d = ctrl.deploy(net.clone(), &subs).unwrap();
        let sorted = |r: &DeployReport| r.switches.windows(2).all(|w| w[0].switch < w[1].switch);
        assert!(sorted(&d.report), "full deploy ledger out of order");
        assert_eq!(d.report.switches.len(), net.switch_count());

        // Feed the transaction a deliberately shuffled target list; the
        // ledger must come back sorted anyway.
        let shuffled: Vec<usize> = (0..net.switch_count()).rev().collect();
        let (report, _) = ctrl
            .apply_transaction(
                &mut d.network,
                &d.compile,
                &d.routing,
                &shuffled,
                2,
                &mut PerfectChannel,
            )
            .unwrap();
        assert!(sorted(&report), "shuffled-target ledger out of order");
        assert_eq!(report.switches.len(), net.switch_count());
    }

    #[test]
    fn deploy_trace_accounts_for_ledger_control_time() {
        use camus_telemetry::DeployPhase;
        let net = paper_fat_tree();
        let ctrl = controller(Policy::TrafficReduction);
        let subs = subs(&net, |h| if h == 15 { vec!["stock == GOOGL"] } else { vec![] });
        let d = ctrl.deploy(net.clone(), &subs).unwrap();
        let total: u64 = d.report.switches.iter().map(|e| e.control_ns).sum();
        let split: u64 = d.report.switches.iter().map(|e| e.stage_ns + e.commit_ns).sum();
        assert_eq!(total, split, "per-phase split must tile control_ns");
        assert_eq!(
            d.trace.phase_ns(DeployPhase::Stage) + d.trace.phase_ns(DeployPhase::Commit),
            total
        );
        assert_eq!(d.trace.modelled_control_ns(), total);
        assert_eq!(d.trace.switches.len(), d.report.switches.len());
        assert!(d.trace.phase_ns(DeployPhase::Compile) > 0, "compile wall time recorded");
        let rendered = d.trace.render();
        assert!(rendered.contains("stage") && rendered.contains("commit"), "{rendered}");
    }
}
