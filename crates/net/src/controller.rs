//! The logically centralised controller (Fig. 2, §III).
//!
//! Input: the topology, the application's static pipeline, and the
//! per-host subscription filters. The controller runs Algorithm 1 to
//! obtain per-switch rule lists, compiles each with the Camus compiler
//! (in parallel), and instantiates the dataplane switches. It also
//! supports *dynamic reconfiguration* (§VIII-G.3): on a subscription
//! change it recomputes and reinstalls only the pipelines, preserving
//! switch state.

use crate::sim::Network;
use camus_core::compiler::{CompileError, Compiler};
use camus_core::statics::StaticPipeline;
use camus_dataplane::{Switch, SwitchConfig};
use camus_lang::ast::Expr;
use camus_routing::algorithm1::{route_hierarchical_degraded, RoutingConfig, RoutingResult};
use camus_routing::compile::{compile_network, compile_network_incremental, NetworkCompile};
use camus_routing::topology::{FaultMask, HierNet};
use std::time::{Duration, Instant};

/// Controller configuration and handles.
#[derive(Debug, Clone)]
pub struct Controller {
    pub statics: StaticPipeline,
    pub routing: RoutingConfig,
    pub switch_config: SwitchConfig,
    pub link_latency_ns: u64,
}

/// A deployed network plus the artefacts the evaluation wants to see.
pub struct Deployment {
    pub network: Network,
    pub routing: RoutingResult,
    /// Per-switch compile results (entry counts, times).
    pub compile: NetworkCompile,
}

/// What a [`Controller::repair`] pass did (§VIII-G.3 extended to
/// failures): how long it took and how much of the previous deployment
/// it could keep.
#[derive(Debug, Clone, Copy)]
pub struct RepairStats {
    /// Total repair wall-clock: degraded routing + compile + reinstall.
    pub elapsed: Duration,
    /// The compile share of `elapsed` (the Fig. 14 metric).
    pub compile_elapsed: Duration,
    /// Switches whose pipeline changed and was recompiled.
    pub recompiled: usize,
    /// Switches whose previous pipeline was reused (fingerprint hit).
    pub reused: usize,
    /// Compiler invocations actually paid (identical rule lists share).
    pub distinct_compiles: usize,
    /// Switches whose installed pipeline actually changed.
    pub reinstalled: usize,
}

impl Controller {
    pub fn new(statics: StaticPipeline, routing: RoutingConfig) -> Self {
        Controller {
            statics,
            routing,
            switch_config: SwitchConfig::default(),
            link_latency_ns: 1_000, // 1 μs per hop by default
        }
    }

    fn compiler(&self) -> Compiler {
        Compiler::new().with_static(self.statics.clone())
    }

    /// Compute routing, compile every switch, and build the network.
    pub fn deploy(
        &self,
        topology: HierNet,
        subs: &[Vec<Expr>],
    ) -> Result<Deployment, CompileError> {
        self.deploy_degraded(topology, subs, &FaultMask::default())
    }

    /// Deploy onto a topology with faults already present: routing
    /// avoids masked elements and the network starts with the mask
    /// injected. A fresh `deploy_degraded` is the oracle that
    /// [`Controller::repair`] must converge to.
    pub fn deploy_degraded(
        &self,
        topology: HierNet,
        subs: &[Vec<Expr>],
        mask: &FaultMask,
    ) -> Result<Deployment, CompileError> {
        let routing = route_hierarchical_degraded(&topology, subs, self.routing, mask);
        let compile = compile_network(&routing, &self.compiler())?;
        let mut switches = Vec::with_capacity(topology.switch_count());
        for sc in &compile.switches {
            switches.push(Switch::new(
                &self.statics,
                sc.compiled.pipeline.clone(),
                self.switch_config.clone(),
            ));
        }
        let mut network = Network::new(topology, switches, self.link_latency_ns);
        network.apply_mask(mask);
        Ok(Deployment { network, routing, compile })
    }

    /// Recompute and reinstall pipelines after a subscription change,
    /// preserving switch state. Returns the recompile wall-clock time
    /// (the Fig. 14 measurement).
    ///
    /// Recompilation is *incremental*: switches whose routed rule list
    /// is fingerprint-identical to the deployed one keep their compiled
    /// pipeline and are not reinstalled (`deployment.compile` records
    /// the recompiled/reused split for inspection).
    pub fn reconfigure(
        &self,
        deployment: &mut Deployment,
        subs: &[Vec<Expr>],
    ) -> Result<Duration, CompileError> {
        Ok(self.repair(deployment, subs)?.compile_elapsed)
    }

    /// Recompute routing around the network's current fault mask and
    /// reinstall only the switches whose pipeline changed. This is the
    /// convergence step after a failure (or a restore — the same code
    /// path heals in both directions), and also the general
    /// reconfiguration primitive: with a healthy mask it degenerates to
    /// plain incremental reconfiguration.
    pub fn repair(
        &self,
        deployment: &mut Deployment,
        subs: &[Vec<Expr>],
    ) -> Result<RepairStats, CompileError> {
        let start = Instant::now();
        let mask = deployment.network.fault_mask().clone();
        let routing =
            route_hierarchical_degraded(&deployment.network.topology, subs, self.routing, &mask);
        let compile =
            compile_network_incremental(&routing, &self.compiler(), Some(&deployment.compile))?;
        // Reinstall exactly the switches whose own rule list changed.
        // `reused` is not the right gate here: the compile cache is
        // content-addressed across slots, so a switch can reuse another
        // switch's previous pipeline while its own installed one is
        // stale.
        let changed = compile.changed_since(&deployment.compile);
        for sc in &compile.switches {
            if changed.contains(&sc.switch) {
                deployment.network.switches[sc.switch].install(sc.compiled.pipeline.clone());
            }
        }
        let stats = RepairStats {
            elapsed: start.elapsed(),
            compile_elapsed: compile.elapsed,
            recompiled: compile.recompiled,
            reused: compile.reused,
            distinct_compiles: compile.distinct_compiles,
            reinstalled: changed.len(),
        };
        deployment.routing = routing;
        deployment.compile = compile;
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use camus_core::statics::compile_static;
    use camus_dataplane::PacketBuilder;
    use camus_lang::parser::parse_expr;
    use camus_lang::spec::itch_spec;
    use camus_lang::value::Value;
    use camus_routing::algorithm1::Policy;
    use camus_routing::topology::{paper_fat_tree, DownTarget};

    fn controller(policy: Policy) -> Controller {
        let statics = compile_static(&itch_spec()).unwrap();
        Controller::new(statics, RoutingConfig::new(policy))
    }

    fn subs(net: &HierNet, f: impl Fn(usize) -> Vec<&'static str>) -> Vec<Vec<Expr>> {
        (0..net.host_count())
            .map(|h| f(h).into_iter().map(|s| parse_expr(s).unwrap()).collect())
            .collect()
    }

    fn googl_packet(price: i64) -> camus_dataplane::Packet {
        let spec = itch_spec();
        PacketBuilder::new(&spec)
            .message(vec![("stock", Value::from("GOOGL")), ("price", Value::Int(price))])
            .build()
    }

    #[test]
    fn end_to_end_delivery_across_fat_tree() {
        // Publisher at host 0 (pod 0), subscriber at host 15 (pod 3).
        let net = paper_fat_tree();
        let subs = subs(&net, |h| if h == 15 { vec!["stock == GOOGL"] } else { vec![] });
        for policy in [Policy::MemoryReduction, Policy::TrafficReduction] {
            let mut d = controller(policy).deploy(net.clone(), &subs).unwrap();
            d.network.publish(0, googl_packet(10), 0);
            d.network.run(None);
            let got = d.network.deliveries(15);
            assert_eq!(got.len(), 1, "{policy:?}");
            assert_eq!(got[0].values["stock"], Value::from("GOOGL"));
            assert!(got[0].latency_ns() > 0);
            // Nobody else hears it.
            for h in 0..15 {
                assert!(d.network.deliveries(h).is_empty(), "{policy:?} host {h}");
            }
        }
    }

    #[test]
    fn multicast_to_multiple_pods_no_duplicates() {
        let net = paper_fat_tree();
        // Hosts 3 (pod 0), 7 (pod 1), 12 (pod 3) subscribe.
        let subs = subs(&net, |h| if [3, 7, 12].contains(&h) { vec!["price > 5"] } else { vec![] });
        for policy in [Policy::MemoryReduction, Policy::TrafficReduction] {
            let mut d = controller(policy).deploy(net.clone(), &subs).unwrap();
            d.network.publish(0, googl_packet(10), 0);
            d.network.run(None);
            for h in [3usize, 7, 12] {
                assert_eq!(d.network.deliveries(h).len(), 1, "{policy:?} host {h}");
            }
            let total: usize = (0..16).map(|h| d.network.deliveries(h).len()).sum();
            assert_eq!(total, 3, "{policy:?}: no duplicate deliveries");
        }
    }

    #[test]
    fn non_matching_messages_do_not_leave_tor() {
        let net = paper_fat_tree();
        let subs = subs(&net, |h| if h == 1 { vec!["price > 100"] } else { vec![] });
        // TR: a price-10 message from host 0 dies at ToR 0.
        let mut d = controller(Policy::TrafficReduction).deploy(net.clone(), &subs).unwrap();
        d.network.publish(0, googl_packet(10), 0);
        d.network.run(None);
        assert_eq!(d.network.all_deliveries().count(), 0);
        let stats = d.network.stats();
        assert_eq!(stats.layer_messages(&net, 1), 0, "nothing at agg layer");
        assert_eq!(stats.layer_messages(&net, 2), 0, "nothing at core layer");
    }

    #[test]
    fn mr_policy_sends_everything_up() {
        let net = paper_fat_tree();
        let subs = subs(&net, |h| if h == 1 { vec!["price > 100"] } else { vec![] });
        let mut d = controller(Policy::MemoryReduction).deploy(net.clone(), &subs).unwrap();
        d.network.publish(0, googl_packet(10), 0);
        d.network.run(None);
        assert_eq!(d.network.all_deliveries().count(), 0);
        // The message still ascended (MR's F_up = true).
        assert!(d.network.stats().layer_messages(&net, 0) > 0);
    }

    #[test]
    fn same_tor_delivery_stays_local() {
        let net = paper_fat_tree();
        let subs = subs(&net, |h| if h == 1 { vec!["stock == GOOGL"] } else { vec![] });
        let mut d = controller(Policy::TrafficReduction).deploy(net.clone(), &subs).unwrap();
        d.network.publish(0, googl_packet(10), 0);
        d.network.run(None);
        assert_eq!(d.network.deliveries(1).len(), 1);
        // Host 0 and 1 share ToR 0: two link hops, no agg/core traffic.
        assert_eq!(d.network.stats().layer_messages(&net, 1), 0);
        assert_eq!(d.network.stats().layer_messages(&net, 2), 0);
    }

    #[test]
    fn per_message_pruning_across_network() {
        let net = paper_fat_tree();
        let subs = subs(&net, |h| match h {
            5 => vec!["stock == GOOGL"],
            9 => vec!["stock == MSFT"],
            _ => vec![],
        });
        let mut d = controller(Policy::TrafficReduction).deploy(net.clone(), &subs).unwrap();
        let spec = itch_spec();
        let pkt = PacketBuilder::new(&spec)
            .message(vec![("stock", Value::from("GOOGL")), ("price", Value::Int(1))])
            .message(vec![("stock", Value::from("MSFT")), ("price", Value::Int(2))])
            .message(vec![("stock", Value::from("FB")), ("price", Value::Int(3))])
            .build();
        d.network.publish(0, pkt, 0);
        d.network.run(None);
        let h5 = d.network.deliveries(5);
        assert_eq!(h5.len(), 1);
        assert_eq!(h5[0].values["stock"], Value::from("GOOGL"));
        let h9 = d.network.deliveries(9);
        assert_eq!(h9.len(), 1);
        assert_eq!(h9[0].values["stock"], Value::from("MSFT"));
    }

    #[test]
    fn reconfigure_switches_subscriptions() {
        let net = paper_fat_tree();
        let sub_a = subs(&net, |h| if h == 2 { vec!["stock == GOOGL"] } else { vec![] });
        let sub_b = subs(&net, |h| if h == 2 { vec!["stock == MSFT"] } else { vec![] });
        let ctrl = controller(Policy::TrafficReduction);
        let mut d = ctrl.deploy(net.clone(), &sub_a).unwrap();
        d.network.publish(0, googl_packet(10), 0);
        d.network.run(None);
        assert_eq!(d.network.deliveries(2).len(), 1);
        // Reconfigure: GOOGL no longer interesting.
        let elapsed = ctrl.reconfigure(&mut d, &sub_b).unwrap();
        assert!(elapsed.as_nanos() > 0);
        d.network.publish(0, googl_packet(10), 1_000_000);
        d.network.run(None);
        assert_eq!(d.network.deliveries(2).len(), 1, "no new GOOGL delivery");
    }

    #[test]
    fn reconfigure_recompiles_only_distribution_path() {
        // One host's subscription changes: under MR (up-filters are
        // constant True) only the switches that carry that host's
        // down-path filters — its access ToR, designated agg, and the
        // cores above it — can change, so everything else must be
        // reused from the previous compile.
        let net = paper_fat_tree();
        let host = 5;
        let base = subs(&net, |h| if h % 3 == 0 { vec!["price > 10"] } else { vec![] });
        let mut changed = base.clone();
        changed[host] = vec![parse_expr("stock == MSFT").unwrap()];

        let ctrl = controller(Policy::MemoryReduction);
        let mut d = ctrl.deploy(net.clone(), &base).unwrap();
        assert_eq!(d.compile.reused, 0, "initial deploy compiles everything");
        ctrl.reconfigure(&mut d, &changed).unwrap();

        // Distribution path: the designated chain plus every core the
        // chain's agg can ascend to.
        let chain = net.designated_chain(host);
        let agg = chain[1];
        let mut path: std::collections::HashSet<usize> = chain.iter().copied().collect();
        path.extend(net.switches[agg].up.iter().map(|(core, _)| *core));

        let recompiled: std::collections::HashSet<usize> =
            d.compile.recompiled_switches().into_iter().collect();
        assert!(!recompiled.is_empty(), "the changed host's path must recompile");
        assert!(
            recompiled.is_subset(&path),
            "recompiled {recompiled:?} not within distribution path {path:?}"
        );
        assert_eq!(
            d.compile.reused,
            net.switch_count() - recompiled.len(),
            "every off-path switch is reused"
        );
        assert!(d.compile.reused >= net.switch_count() - path.len());

        // The incrementally reconfigured network still behaves like a
        // fresh deployment of the new subscription set.
        let spec = itch_spec();
        let msft = PacketBuilder::new(&spec)
            .message(vec![("stock", Value::from("MSFT")), ("price", Value::Int(7))])
            .build();
        d.network.publish(0, msft, 0);
        d.network.run(None);
        assert_eq!(d.network.deliveries(host).len(), 1);
    }

    #[test]
    fn reconfigure_with_identical_subs_reuses_everything() {
        let net = paper_fat_tree();
        let s = subs(&net, |h| if h == 3 { vec!["price > 1"] } else { vec![] });
        let ctrl = controller(Policy::TrafficReduction);
        let mut d = ctrl.deploy(net.clone(), &s).unwrap();
        ctrl.reconfigure(&mut d, &s).unwrap();
        assert_eq!(d.compile.recompiled, 0);
        assert_eq!(d.compile.reused, net.switch_count());
    }

    #[test]
    fn ascent_self_heals_before_repair() {
        // Fail the publisher ToR's designated up link. The masked
        // designation falls over to the sibling agg, and under MR every
        // core carries the subscriber's filters, so delivery survives
        // with no controller involvement at all.
        let net = paper_fat_tree();
        let subs = subs(&net, |h| if h == 15 { vec!["stock == GOOGL"] } else { vec![] });
        let mut d = controller(Policy::MemoryReduction).deploy(net.clone(), &subs).unwrap();
        let tor = net.access[0].0;
        let (agg, port) = net.switches[tor].up[0];
        assert!(d.network.fail_link(agg, port));
        d.network.publish(0, googl_packet(10), 0);
        d.network.run(None);
        assert_eq!(d.network.deliveries(15).len(), 1);
        assert_eq!(d.network.all_deliveries().count(), 1, "still duplicate-free");
    }

    #[test]
    fn link_failure_on_distribution_path_repairs_incrementally() {
        let net = paper_fat_tree();
        let subs = subs(&net, |h| if h == 15 { vec!["stock == GOOGL"] } else { vec![] });
        let ctrl = controller(Policy::TrafficReduction);
        let mut d = ctrl.deploy(net.clone(), &subs).unwrap();
        d.network.publish(0, googl_packet(10), 0);
        d.network.run(None);
        assert_eq!(d.network.deliveries(15).len(), 1);

        // Cut the designated agg -> ToR link on the subscriber's chain.
        let chain = net.designated_chain(15);
        let (tor, agg) = (chain[0], chain[1]);
        let port = net.switches[agg]
            .down
            .iter()
            .position(|t| matches!(t, DownTarget::Switch(c, _) if *c == tor))
            .unwrap() as camus_lang::ast::Port;
        assert!(d.network.fail_link(agg, port));
        d.network.publish(0, googl_packet(11), 1_000_000);
        d.network.run(None);
        assert_eq!(d.network.deliveries(15).len(), 1, "blackout until repair");

        let stats = ctrl.repair(&mut d, &subs).unwrap();
        assert!(stats.reinstalled > 0, "the detour must be installed");
        assert!(stats.reused > 0, "off-path switches keep their pipelines");
        d.network.publish(0, googl_packet(12), 2_000_000);
        d.network.run(None);
        assert_eq!(d.network.deliveries(15).len(), 2, "repaired path delivers");
        assert_eq!(d.network.all_deliveries().count(), 2, "nobody else hears it");

        // Repair converged to exactly what a fresh deploy onto the
        // degraded topology would have installed.
        let oracle = ctrl.deploy_degraded(net.clone(), &subs, d.network.fault_mask()).unwrap();
        for (got, want) in d.compile.switches.iter().zip(oracle.compile.switches.iter()) {
            assert_eq!(got.fingerprint, want.fingerprint, "switch {}", got.switch);
        }

        // Restoring the link and repairing again heals back to the
        // original deployment.
        assert!(d.network.restore_link(agg, port));
        let back = ctrl.repair(&mut d, &subs).unwrap();
        assert!(back.reinstalled > 0);
        let fresh = ctrl.deploy(net.clone(), &subs).unwrap();
        for (got, want) in d.compile.switches.iter().zip(fresh.compile.switches.iter()) {
            assert_eq!(got.fingerprint, want.fingerprint, "switch {}", got.switch);
        }
    }

    #[test]
    fn publishing_through_dead_tor_is_dropped_and_recorded() {
        let net = paper_fat_tree();
        let subs = subs(&net, |h| if h == 15 { vec!["price > 0"] } else { vec![] });
        let ctrl = controller(Policy::TrafficReduction);
        let mut d = ctrl.deploy(net.clone(), &subs).unwrap();
        let tor = net.access[0].0;
        assert!(d.network.crash_switch(tor));
        d.network.publish(0, googl_packet(10), 0);
        d.network.run(None);
        assert_eq!(d.network.all_deliveries().count(), 0);
        let drops = d.network.drops();
        assert_eq!(drops.len(), 1);
        assert_eq!(drops[0].cause, crate::sim::DropCause::SwitchDown);
        assert_eq!(drops[0].switch, tor);
        assert_eq!(d.network.stats().fault_drops, 1);
        // The other host on the dead ToR is unreachable, but a repair
        // keeps everyone else consistent: host 2 (pod 0, other ToR) can
        // still reach host 15.
        ctrl.repair(&mut d, &subs).unwrap();
        d.network.publish(2, googl_packet(10), 1_000_000);
        d.network.run(None);
        assert_eq!(d.network.deliveries(15).len(), 1);
        // Restore heals completely.
        assert!(d.network.restore_switch(tor));
        ctrl.repair(&mut d, &subs).unwrap();
        d.network.publish(0, googl_packet(10), 2_000_000);
        d.network.run(None);
        assert_eq!(d.network.deliveries(15).len(), 2);
    }

    #[test]
    fn bounded_run_leaves_pending_events() {
        let net = paper_fat_tree();
        let subs = subs(&net, |_| vec!["price > 0"]);
        let mut d = controller(Policy::TrafficReduction).deploy(net.clone(), &subs).unwrap();
        d.network.publish(0, googl_packet(10), 0);
        d.network.run(Some(1)); // 1 ns horizon: nothing can complete
        assert!(d.network.pending() > 0);
        d.network.run(None);
        assert_eq!(d.network.pending(), 0);
    }
}
