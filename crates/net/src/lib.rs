//! # camus-net — network-level simulation of a Camus deployment
//!
//! Ties the pieces together the way Fig. 2 of the paper draws them: a
//! logically centralised controller with a global view ([`controller`])
//! computes the routing policy (Algorithm 1), compiles a pipeline per
//! switch, and installs them into an event-driven packet-level network
//! simulator ([`sim`]) built over the hierarchical topologies of
//! [`camus_routing::topology`].
//!
//! The simulator models what the paper measures at the network level:
//!
//! * multi-hop forwarding with per-switch pipelines and per-message
//!   multicast,
//! * the logical **up** port: round-robin choice among physical up
//!   links, and the rule that a packet received from above never
//!   re-ascends (§IV-C) — which with the tree-structured policies makes
//!   forwarding loop-free,
//! * per-link traffic accounting (the Fig. 13d "extra traffic in the
//!   core layer" metric),
//! * end-to-end message delivery records with publish→deliver latency
//!   (the Fig. 8 metric),
//! * optional INT-style postcard tracing ([`camus_telemetry`]): sampled
//!   publications accumulate per-hop records that finalize into a
//!   controller-side collector, and deploy/repair transactions carry a
//!   per-phase [`DeployTrace`](camus_telemetry::DeployTrace).

pub mod channel;
pub mod clock;
pub mod controller;
pub mod sim;

pub use channel::{
    timed_op, ChannelOutcome, ControlChannel, ControlOp, OpOutcome, PerfectChannel, RetryPolicy,
};
pub use clock::Clock;
pub use controller::{
    AdmissionError, AdmissionVerdict, ChannelError, Controller, CrashedError, DeployError,
    DeployReport, Deployment, ReconcileStats, RepairStats, SwitchDeploy, TransactionError,
};
pub use sim::{Delivered, NetTelemetry, Network, NetworkStats};
