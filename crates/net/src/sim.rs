//! The event-driven packet-level simulator.
//!
//! Discrete events move packets between switches and hosts over links
//! with a fixed propagation latency. Each switch runs its own
//! [`camus_dataplane::Switch`]; message-level multicast, egress pruning
//! and recirculation latency all come from the dataplane model.
//!
//! Port conventions (matching [`camus_routing::topology`]):
//!
//! * a switch's *down* ports are numbered `0..down.len()`,
//! * all physical up links form the single logical port
//!   [`LOGICAL_UP`]; when a pipeline forwards there, the simulator
//!   ascends via the *designated* up link (the paper also allows
//!   random or round-robin; designated ascent pairs with
//!   single-parent subscription propagation to keep multicast
//!   duplicate-free),
//! * a packet that arrived from above enters on `LOGICAL_UP`, so the
//!   dataplane's "never forward to the ingress port" rule doubles as
//!   the "never re-ascend" rule of §IV-C, keeping forwarding loop-free.

use camus_dataplane::{Packet, Switch};
use camus_lang::ast::Port;
use camus_lang::value::Value;
use camus_routing::topology::{DownTarget, FaultMask, HierNet, HostId, SwitchId, LOGICAL_UP};
use camus_telemetry::metrics::{SampleRate, Sampler};
use camus_telemetry::postcard::{Collector, HopRecord, Postcard, PostcardEnd, PostcardId};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Why the simulator discarded a packet instead of forwarding it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropCause {
    /// The egress link is failed (the switch on the far side is alive).
    LinkDown,
    /// The destination (or processing) switch is crashed.
    SwitchDown,
    /// The pipeline asked to ascend but no up link survives the mask.
    NoAscent,
}

/// A packet the simulator dropped because of an injected fault.
///
/// These are *simulator-level* drops (packets in flight towards dead
/// elements); the dataplane's own per-cause counters live in
/// [`camus_dataplane::SwitchStats`].
#[derive(Debug, Clone)]
pub struct DropRecord {
    /// Simulation time of the drop (ns).
    pub time_ns: u64,
    /// The switch at (or towards) which the packet died.
    pub switch: SwitchId,
    pub cause: DropCause,
    /// Messages lost (stack-only packets count as one).
    pub messages: u64,
}

/// A message delivered to a host.
#[derive(Debug, Clone)]
pub struct Delivered {
    pub host: HostId,
    /// Simulation time of delivery (ns).
    pub time_ns: u64,
    /// Time the enclosing packet was published (ns).
    pub published_ns: u64,
    /// The message's attribute values (or the stack attributes for
    /// message-less applications).
    pub values: HashMap<String, Value>,
}

impl Delivered {
    /// Publish-to-deliver latency. Saturating: replayed or clock-skewed
    /// traces can carry a publish stamp later than the delivery time,
    /// and a latency query must not panic the stats pass.
    pub fn latency_ns(&self) -> u64 {
        self.time_ns.saturating_sub(self.published_ns)
    }
}

/// Aggregate traffic statistics.
#[derive(Debug, Clone, Default)]
pub struct NetworkStats {
    /// Messages crossing each directed switch egress `(switch, port)`.
    pub link_messages: HashMap<(SwitchId, Port), u64>,
    /// Packets delivered to hosts.
    pub deliveries: u64,
    /// Events processed.
    pub events: u64,
    /// Messages the simulator discarded because of injected faults
    /// (see [`DropRecord`] for the per-drop detail).
    pub fault_drops: u64,
}

impl NetworkStats {
    /// Messages that crossed links adjacent to switches of `layer`
    /// (egress side) — Fig. 13d reports this for the core layer.
    pub fn layer_messages(&self, net: &HierNet, layer: usize) -> u64 {
        self.link_messages
            .iter()
            .filter(|((s, _), _)| net.switches[*s].layer == layer)
            .map(|(_, n)| *n)
            .sum()
    }
}

#[derive(Debug)]
enum Dest {
    Switch { id: SwitchId, ingress: Port },
    Host(HostId),
}

struct Event {
    time_ns: u64,
    seq: u64, // tie-breaker for determinism
    dest: Dest,
    packet: Packet,
    published_ns: u64,
    /// The INT-style postcard riding with a sampled packet. Side-band
    /// (never serialized into the packet), so tracing cannot perturb
    /// parsing or forwarding.
    card: Option<Box<Postcard>>,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        (self.time_ns, self.seq) == (other.time_ns, other.seq)
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time_ns, self.seq).cmp(&(other.time_ns, other.seq))
    }
}

/// Network-level telemetry state: the publish-time postcard sampler
/// and the controller-side collector postcards finalize into.
#[derive(Debug, Clone)]
pub struct NetTelemetry {
    sampler: Sampler,
    next_id: PostcardId,
    pub collector: Collector,
}

impl NetTelemetry {
    pub fn new(rate: SampleRate) -> Self {
        NetTelemetry { sampler: Sampler::new(rate), next_id: 0, collector: Collector::new() }
    }

    pub fn rate(&self) -> SampleRate {
        self.sampler.rate()
    }
}

/// The simulated network: topology + per-switch dataplanes.
pub struct Network {
    pub topology: HierNet,
    pub switches: Vec<Switch>,
    /// Link propagation latency in nanoseconds.
    pub link_latency_ns: u64,
    queue: BinaryHeap<Reverse<Event>>,
    seq: u64,
    now_ns: u64,
    deliveries: Vec<Vec<Delivered>>,
    stats: NetworkStats,
    /// Currently injected faults; drives per-switch port-down state.
    mask: FaultMask,
    drops: Vec<DropRecord>,
    /// Postcard sampling + collection; `None` = untraced (free).
    telemetry: Option<Box<NetTelemetry>>,
}

impl Network {
    pub fn new(topology: HierNet, switches: Vec<Switch>, link_latency_ns: u64) -> Self {
        assert_eq!(topology.switch_count(), switches.len());
        let hosts = topology.host_count();
        Network {
            topology,
            switches,
            link_latency_ns,
            queue: BinaryHeap::new(),
            seq: 0,
            now_ns: 0,
            deliveries: vec![Vec::new(); hosts],
            stats: NetworkStats::default(),
            mask: FaultMask::default(),
            drops: Vec::new(),
            telemetry: None,
        }
    }

    /// Start sampling published packets into postcards at `rate`.
    /// Replaces any previous telemetry state.
    pub fn attach_telemetry(&mut self, rate: SampleRate) {
        self.telemetry = Some(Box::new(NetTelemetry::new(rate)));
    }

    /// Stop tracing, returning the collector and everything it
    /// aggregated.
    pub fn detach_telemetry(&mut self) -> Option<Collector> {
        self.telemetry.take().map(|t| t.collector)
    }

    pub fn collector(&self) -> Option<&Collector> {
        self.telemetry.as_ref().map(|t| &t.collector)
    }

    pub fn collector_mut(&mut self) -> Option<&mut Collector> {
        self.telemetry.as_mut().map(|t| &mut t.collector)
    }

    fn ingest_card(&mut self, card: Postcard, end: PostcardEnd) {
        if let Some(t) = self.telemetry.as_mut() {
            t.collector.ingest(card, end);
        }
    }

    /// The faults currently injected into this network.
    pub fn fault_mask(&self) -> &FaultMask {
        &self.mask
    }

    /// Packets the simulator discarded because of injected faults.
    pub fn drops(&self) -> &[DropRecord] {
        &self.drops
    }

    /// Fail the link behind `switch`'s down-port `port`. Packets already
    /// in flight on the link still arrive (a cut cable does not eat the
    /// photons already past it); new traffic is dropped at the egress.
    /// Returns whether the mask changed.
    pub fn fail_link(&mut self, switch: SwitchId, port: Port) -> bool {
        let changed = self.mask.fail_link(switch, port);
        self.refresh_port_state();
        changed
    }

    pub fn restore_link(&mut self, switch: SwitchId, port: Port) -> bool {
        let changed = self.mask.restore_link(switch, port);
        self.refresh_port_state();
        changed
    }

    /// Crash a switch: packets arriving at it (including ones already in
    /// flight) are dropped, and every incident link goes down.
    pub fn crash_switch(&mut self, switch: SwitchId) -> bool {
        let changed = self.mask.fail_switch(switch);
        self.refresh_port_state();
        changed
    }

    pub fn restore_switch(&mut self, switch: SwitchId) -> bool {
        let changed = self.mask.restore_switch(switch);
        self.refresh_port_state();
        changed
    }

    /// Replace the whole fault mask at once (controller-driven restore).
    pub fn apply_mask(&mut self, mask: &FaultMask) {
        self.mask = mask.clone();
        self.refresh_port_state();
    }

    /// Recompute every switch's port-down state from the mask, so the
    /// dataplane suppresses (and counts) forwards onto dead links even
    /// before the controller repairs the routing.
    fn refresh_port_state(&mut self) {
        for s in 0..self.topology.switch_count() {
            let alive = self.mask.switch_alive(s);
            for p in 0..self.topology.switches[s].down.len() {
                let usable = self.topology.link_usable(s, p as Port, &self.mask);
                self.switches[s].set_port_down(p as Port, !usable);
            }
            if !self.topology.switches[s].up.is_empty() {
                let up_ok = alive && self.topology.designated_up_masked(s, &self.mask).is_some();
                self.switches[s].set_port_down(LOGICAL_UP, !up_ok);
            }
        }
    }

    fn record_drop(&mut self, time_ns: u64, switch: SwitchId, cause: DropCause, messages: u64) {
        self.stats.fault_drops += messages;
        self.drops.push(DropRecord { time_ns, switch, cause, messages });
    }

    fn message_units(&self, switch: SwitchId, packet: &Packet) -> u64 {
        // Stack-only packets count as one message.
        (packet.message_count(self.switches[switch].spec()) as u64).max(1)
    }

    /// Publish a packet from a host at an absolute time. When
    /// telemetry is attached and the sampler selects this packet, a
    /// postcard rides along and its id is returned so the caller can
    /// register delivery expectations with the collector.
    pub fn publish(&mut self, host: HostId, packet: Packet, time_ns: u64) -> Option<PostcardId> {
        let card = self.telemetry.as_mut().and_then(|t| {
            t.sampler.tick().then(|| {
                let id = t.next_id;
                t.next_id += 1;
                Box::new(Postcard::new(id, time_ns))
            })
        });
        let id = card.as_ref().map(|c| c.id);
        let (s, p) = self.topology.access[host];
        if !self.topology.link_usable(s, p, &self.mask) {
            // The host's access link (or ToR) is dead: the publication
            // never makes it into the fabric.
            let cause =
                if self.mask.switch_alive(s) { DropCause::LinkDown } else { DropCause::SwitchDown };
            let msgs = self.message_units(s, &packet);
            self.record_drop(time_ns, s, cause, msgs);
            if let Some(c) = card {
                self.ingest_card(*c, PostcardEnd::FaultDropped { switch: s, time_ns });
            }
            return id;
        }
        self.push(Event {
            time_ns: time_ns + self.link_latency_ns,
            seq: 0,
            dest: Dest::Switch { id: s, ingress: p },
            packet,
            published_ns: time_ns,
            card,
        });
        id
    }

    fn push(&mut self, mut ev: Event) {
        ev.seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(ev));
    }

    /// Run until the event queue drains (or `until_ns`, if given).
    pub fn run(&mut self, until_ns: Option<u64>) {
        while let Some(Reverse(ev)) = self.queue.pop() {
            if let Some(limit) = until_ns {
                if ev.time_ns > limit {
                    // Past the horizon: keep it pending and stop.
                    self.queue.push(Reverse(ev));
                    break;
                }
            }
            self.now_ns = self.now_ns.max(ev.time_ns);
            self.stats.events += 1;
            match ev.dest {
                Dest::Host(h) => self.deliver(h, ev),
                Dest::Switch { id, ingress } => {
                    if self.mask.switch_alive(id) {
                        self.forward(id, ingress, ev);
                    } else {
                        // The packet was in flight when the switch died.
                        let msgs = self.message_units(id, &ev.packet);
                        self.record_drop(ev.time_ns, id, DropCause::SwitchDown, msgs);
                        if let Some(c) = ev.card {
                            let end = PostcardEnd::FaultDropped { switch: id, time_ns: ev.time_ns };
                            self.ingest_card(*c, end);
                        }
                    }
                }
            }
        }
    }

    fn deliver(&mut self, host: HostId, mut ev: Event) {
        self.stats.deliveries += 1;
        if let Some(c) = ev.card.take() {
            self.ingest_card(*c, PostcardEnd::Delivered { host, time_ns: ev.time_ns });
        }
        let spec = {
            // All switches share the application spec; take it from the
            // host's access switch.
            let (s, _) = self.topology.access[host];
            self.switches[s].spec().clone()
        };
        let n = ev.packet.message_count(&spec);
        if n == 0 {
            // Stack-only application: record the stack attributes.
            let mut values = HashMap::new();
            for name in &spec.sequence {
                if let Some(vals) = ev.packet.stack_header(&spec, name) {
                    values.extend(vals);
                }
            }
            self.deliveries[host].push(Delivered {
                host,
                time_ns: ev.time_ns,
                published_ns: ev.published_ns,
                values,
            });
        } else {
            for i in 0..n {
                if let Some(values) = ev.packet.message(&spec, i) {
                    self.deliveries[host].push(Delivered {
                        host,
                        time_ns: ev.time_ns,
                        published_ns: ev.published_ns,
                        values,
                    });
                }
            }
        }
    }

    fn forward(&mut self, id: SwitchId, ingress: Port, ev: Event) {
        let now_us = ev.time_ns / 1_000;
        let out = self.switches[id].process(&ev.packet, ingress, now_us);
        let depart = ev.time_ns + out.latency_ns;
        // What this switch did to a traced packet: the postcard hop
        // every forwarded copy extends (with its own egress).
        let base_hop = ev.card.as_ref().map(|_| {
            let eval = self.switches[id].last_eval();
            HopRecord {
                switch: id,
                ingress,
                egress: None,
                stage_hits: eval.stage_hits,
                stage_misses: eval.stage_misses,
                entries_scanned: eval.entries_scanned,
                eval_ns: out.latency_ns,
                recirculations: out.passes as u64 - 1,
            }
        });
        let card = ev.card;
        let counted: Vec<(Port, Packet, u64)> = out
            .ports
            .into_iter()
            .map(|(port, copy)| {
                // Stack-only packets count as one message.
                let n = (copy.message_count(self.switches[id].spec()) as u64).max(1);
                (port, copy, n)
            })
            .collect();
        if counted.is_empty() {
            // The data plane forwarded nowhere: a legitimate filter
            // (or every egress suppressed). The postcard ends here.
            if let (Some(c), Some(hop)) = (card, base_hop) {
                let mut c = *c;
                c.record_hop(hop);
                self.ingest_card(c, PostcardEnd::Filtered { switch: id, time_ns: depart });
            }
            return;
        }
        for (port, copy, msgs) in counted {
            // Each forwarded copy carries its own postcard clone with
            // this switch's hop stamped with the copy's egress.
            let copy_card = match (&card, &base_hop) {
                (Some(c), Some(hop)) => {
                    let mut cc = (**c).clone();
                    let full = !cc.record_hop(HopRecord { egress: Some(port), ..*hop });
                    if full {
                        // Record bound hit: the packet forwards on
                        // untracked, the card ends here.
                        self.ingest_card(cc, PostcardEnd::HopLimit { switch: id, time_ns: depart });
                        None
                    } else {
                        Some(Box::new(cc))
                    }
                }
                _ => None,
            };
            if port == LOGICAL_UP {
                // Ascend via the designated up link. (The paper allows
                // random/round-robin here; deterministic designated
                // ascent is what pairs with single-parent subscription
                // propagation to keep multicast duplicate-free, see
                // DESIGN.md.) Under faults the masked designation skips
                // dead parents, so the data plane self-heals its ascent
                // before the controller has even repaired the routing.
                let Some((peer, peer_port)) = self.topology.designated_up_masked(id, &self.mask)
                else {
                    self.record_drop(depart, id, DropCause::NoAscent, msgs);
                    if let Some(c) = copy_card {
                        self.ingest_card(
                            *c,
                            PostcardEnd::FaultDropped { switch: id, time_ns: depart },
                        );
                    }
                    continue;
                };
                *self.stats.link_messages.entry((id, LOGICAL_UP)).or_insert(0) += msgs;
                if let Some(t) = self.telemetry.as_mut() {
                    if copy_card.is_some() {
                        t.collector.record_link(id, LOGICAL_UP, msgs);
                    }
                }
                self.push(Event {
                    time_ns: depart + self.link_latency_ns,
                    seq: 0,
                    dest: Dest::Switch { id: peer, ingress: peer_port },
                    packet: copy,
                    published_ns: ev.published_ns,
                    card: copy_card,
                });
            } else {
                let target = self.topology.switches[id].down.get(port as usize).copied();
                if target.is_some() && !self.topology.link_usable(id, port, &self.mask) {
                    // Defense in depth: the dataplane's port-down state
                    // normally suppresses this before it reaches us
                    // (e.g. a fault injected between process and drain).
                    let cause = match target {
                        Some(DownTarget::Switch(c, _)) if !self.mask.switch_alive(c) => {
                            DropCause::SwitchDown
                        }
                        _ => DropCause::LinkDown,
                    };
                    self.record_drop(depart, id, cause, msgs);
                    if let Some(c) = copy_card {
                        self.ingest_card(
                            *c,
                            PostcardEnd::FaultDropped { switch: id, time_ns: depart },
                        );
                    }
                    continue;
                }
                if let Some(t) = self.telemetry.as_mut() {
                    if copy_card.is_some() && target.is_some() {
                        t.collector.record_link(id, port, msgs);
                    }
                }
                match target {
                    Some(DownTarget::Host(h)) => {
                        *self.stats.link_messages.entry((id, port)).or_insert(0) += msgs;
                        self.push(Event {
                            time_ns: depart + self.link_latency_ns,
                            seq: 0,
                            dest: Dest::Host(h),
                            packet: copy,
                            published_ns: ev.published_ns,
                            card: copy_card,
                        });
                    }
                    Some(DownTarget::Switch(c, _)) => {
                        *self.stats.link_messages.entry((id, port)).or_insert(0) += msgs;
                        // Arrives at the child from above: ingress is
                        // the child's logical up port.
                        self.push(Event {
                            time_ns: depart + self.link_latency_ns,
                            seq: 0,
                            dest: Dest::Switch { id: c, ingress: LOGICAL_UP },
                            packet: copy,
                            published_ns: ev.published_ns,
                            card: copy_card,
                        });
                    }
                    None => {
                        // Dangling port: the copy goes nowhere.
                        if let Some(c) = copy_card {
                            self.ingest_card(
                                *c,
                                PostcardEnd::Filtered { switch: id, time_ns: depart },
                            );
                        }
                    }
                }
            }
        }
    }

    pub fn deliveries(&self, host: HostId) -> &[Delivered] {
        &self.deliveries[host]
    }

    pub fn all_deliveries(&self) -> impl Iterator<Item = &Delivered> {
        self.deliveries.iter().flatten()
    }

    pub fn stats(&self) -> &NetworkStats {
        &self.stats
    }

    pub fn now_ns(&self) -> u64 {
        self.now_ns
    }

    /// Are any events still pending (only after a bounded `run`)?
    pub fn pending(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_saturates_instead_of_underflowing() {
        let d = Delivered {
            host: 0,
            time_ns: 100,
            published_ns: 250, // publish stamp after delivery (trace skew)
            values: HashMap::new(),
        };
        assert_eq!(d.latency_ns(), 0);
        let ok = Delivered { time_ns: 300, ..d };
        assert_eq!(ok.latency_ns(), 50);
    }
}
