//! Aggregation across a whole fault schedule.

use crate::scenario::EventReport;
use std::time::Duration;

/// Everything a fault run produced, one entry per injected fault.
#[derive(Debug, Clone, Default)]
pub struct FaultReport {
    pub events: Vec<EventReport>,
}

impl FaultReport {
    pub fn max_blackout_ns(&self) -> u64 {
        self.events.iter().map(|e| e.blackout_ns).max().unwrap_or(0)
    }

    pub fn total_dropped(&self) -> usize {
        self.events.iter().map(|e| e.dropped).sum()
    }

    pub fn total_duplicated(&self) -> usize {
        self.events.iter().map(|e| e.duplicated).sum()
    }

    pub fn total_misdelivered(&self) -> usize {
        self.events.iter().map(|e| e.misdelivered).sum()
    }

    pub fn all_recovered(&self) -> bool {
        self.events.iter().all(|e| e.recovered)
    }

    /// Total controller time spent repairing (routing + compile +
    /// install decisions), across all events.
    pub fn total_repair_time(&self) -> Duration {
        self.events.iter().map(|e| e.repair.elapsed).sum()
    }

    /// Blackhole anomalies summed over events that carried telemetry.
    pub fn total_blackholes(&self) -> usize {
        self.events.iter().filter_map(|e| e.telemetry.as_ref()).map(|t| t.blackholes).sum()
    }

    /// Loop anomalies summed over events that carried telemetry.
    pub fn total_loops(&self) -> usize {
        self.events.iter().filter_map(|e| e.telemetry.as_ref()).map(|t| t.loops).sum()
    }

    /// Widest telemetry-derived dark window across events.
    pub fn max_telemetry_blackout_ns(&self) -> u64 {
        self.events
            .iter()
            .filter_map(|e| e.telemetry.as_ref())
            .map(|t| t.blackout_ns)
            .max()
            .unwrap_or(0)
    }

    /// Do the telemetry-derived numbers agree with the probe-based ones
    /// on every event that has them? Holds exactly at a 1/1 sampling
    /// rate; lower rates trace a subset of probes and may differ.
    pub fn telemetry_consistent(&self) -> bool {
        self.events.iter().all(|e| match &e.telemetry {
            None => true,
            Some(t) => {
                t.delivered == e.delivered
                    && t.dropped == e.dropped
                    && t.duplicated == e.duplicated
                    && t.misdelivered == e.misdelivered
                    && t.blackout_ns == e.blackout_ns
            }
        })
    }
}
