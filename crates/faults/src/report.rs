//! Aggregation across a whole fault schedule.

use crate::scenario::EventReport;
use std::time::Duration;

/// Everything a fault run produced, one entry per injected fault.
#[derive(Debug, Clone, Default)]
pub struct FaultReport {
    pub events: Vec<EventReport>,
}

impl FaultReport {
    pub fn max_blackout_ns(&self) -> u64 {
        self.events.iter().map(|e| e.blackout_ns).max().unwrap_or(0)
    }

    pub fn total_dropped(&self) -> usize {
        self.events.iter().map(|e| e.dropped).sum()
    }

    pub fn total_duplicated(&self) -> usize {
        self.events.iter().map(|e| e.duplicated).sum()
    }

    pub fn total_misdelivered(&self) -> usize {
        self.events.iter().map(|e| e.misdelivered).sum()
    }

    pub fn all_recovered(&self) -> bool {
        self.events.iter().all(|e| e.recovered)
    }

    /// Total controller time spent repairing (routing + compile +
    /// install decisions), across all events.
    pub fn total_repair_time(&self) -> Duration {
        self.events.iter().map(|e| e.repair.elapsed).sum()
    }
}
