//! The lossy control channel: the faults-crate implementation of
//! [`camus_net::channel::ControlChannel`].
//!
//! Three failure modes, all applied via [`FaultKind`] events so a
//! chaos schedule can turn them on and off mid-run:
//!
//! * [`FaultKind::InstallDrop`] — each op is silently lost with a
//!   probability, costing the controller its per-op timeout;
//! * [`FaultKind::InstallFail`] — the switch agent nacks (fast
//!   failure, immediate retry);
//! * [`FaultKind::ControlPartition`] — one switch is unreachable until
//!   healed; no retry count will get through.
//!
//! Loss is drawn from a seeded RNG, so a run is a pure function of
//! (seed, op sequence) and replays exactly.

use crate::event::FaultKind;
use camus_net::channel::{ChannelOutcome, ControlChannel, ControlOp};
use camus_routing::topology::SwitchId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// A control channel that drops, nacks, or partitions installs.
#[derive(Debug, Clone)]
pub struct LossyChannel {
    rng: StdRng,
    /// Percent of ops silently dropped.
    pub drop_pct: u8,
    /// Percent of ops nacked by the agent.
    pub fail_pct: u8,
    /// Switches currently unreachable (ordered for determinism).
    pub partitioned: BTreeSet<SwitchId>,
    /// Armed controller crash: the process dies after this many more
    /// ops leave it (`Some(0)` = dead now). While dead, every attempt
    /// answers [`ChannelOutcome::ControllerCrashed`] until
    /// [`revive`](Self::revive).
    pub crash_after: Option<u64>,
    /// Ops attempted / dropped / nacked, for reporting.
    pub ops: u64,
    pub dropped: u64,
    pub nacked: u64,
    /// Attempts refused because the controller was dead.
    pub crashed_ops: u64,
}

impl LossyChannel {
    pub fn new(seed: u64) -> Self {
        LossyChannel {
            rng: StdRng::seed_from_u64(seed),
            drop_pct: 0,
            fail_pct: 0,
            partitioned: BTreeSet::new(),
            crash_after: None,
            ops: 0,
            dropped: 0,
            nacked: 0,
            crashed_ops: 0,
        }
    }

    /// Apply a control-channel fault. Returns `false` (and changes
    /// nothing) for data-plane fault kinds.
    pub fn apply(&mut self, kind: FaultKind) -> bool {
        match kind {
            FaultKind::InstallDrop { pct } => {
                self.drop_pct = pct.min(100);
                true
            }
            FaultKind::InstallFail { pct } => {
                self.fail_pct = pct.min(100);
                true
            }
            FaultKind::ControlPartition { switch, healed: false } => {
                self.partitioned.insert(switch)
            }
            FaultKind::ControlPartition { switch, healed: true } => {
                self.partitioned.remove(&switch)
            }
            FaultKind::ControllerCrash { after_ops } => {
                self.crash_after = Some(after_ops);
                true
            }
            _ => false,
        }
    }

    /// A fresh controller process took over: attempts flow again.
    pub fn revive(&mut self) {
        self.crash_after = None;
    }

    /// Whether the controller process is currently dead.
    pub fn is_crashed(&self) -> bool {
        self.crash_after == Some(0)
    }

    /// Restore a perfect channel: no loss, no partitions.
    pub fn heal_all(&mut self) {
        self.drop_pct = 0;
        self.fail_pct = 0;
        self.partitioned.clear();
    }

    /// Whether any loss mode is currently active.
    pub fn is_lossy(&self) -> bool {
        self.drop_pct > 0 || self.fail_pct > 0 || !self.partitioned.is_empty()
    }
}

impl ControlChannel for LossyChannel {
    fn attempt(&mut self, switch: usize, _op: ControlOp, _attempt: u32) -> ChannelOutcome {
        // The armed crash counts down in ops actually sent; once it
        // hits zero the "process" is dead and nothing further leaves
        // it (no RNG draw — a dead process consumes no entropy).
        if let Some(n) = &mut self.crash_after {
            if *n == 0 {
                self.crashed_ops += 1;
                return ChannelOutcome::ControllerCrashed;
            }
            *n -= 1;
        }
        self.ops += 1;
        if self.partitioned.contains(&switch) {
            self.dropped += 1;
            return ChannelOutcome::Dropped;
        }
        // Draw both rolls unconditionally so the RNG stream (and thus
        // every later outcome) does not depend on the current pcts.
        let drop_roll = self.rng.gen_range(0..100u8);
        let fail_roll = self.rng.gen_range(0..100u8);
        if drop_roll < self.drop_pct {
            self.dropped += 1;
            ChannelOutcome::Dropped
        } else if fail_roll < self.fail_pct {
            self.nacked += 1;
            ChannelOutcome::Nacked
        } else {
            ChannelOutcome::Delivered
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcomes(ch: &mut LossyChannel, n: usize) -> Vec<ChannelOutcome> {
        (0..n).map(|i| ch.attempt(i % 7, ControlOp::Stage, 1)).collect()
    }

    #[test]
    fn lossless_by_default() {
        let mut ch = LossyChannel::new(1);
        assert!(!ch.is_lossy());
        assert!(outcomes(&mut ch, 50).iter().all(|o| *o == ChannelOutcome::Delivered));
        assert_eq!(ch.ops, 50);
        assert_eq!(ch.dropped + ch.nacked, 0);
    }

    #[test]
    fn loss_rates_follow_the_dials() {
        let mut ch = LossyChannel::new(7);
        assert!(ch.apply(FaultKind::InstallDrop { pct: 100 }));
        assert!(outcomes(&mut ch, 20).iter().all(|o| *o == ChannelOutcome::Dropped));
        ch.apply(FaultKind::InstallDrop { pct: 0 });
        assert!(ch.apply(FaultKind::InstallFail { pct: 100 }));
        assert!(outcomes(&mut ch, 20).iter().all(|o| *o == ChannelOutcome::Nacked));
        ch.heal_all();
        assert!(!ch.is_lossy());
        assert!(outcomes(&mut ch, 20).iter().all(|o| *o == ChannelOutcome::Delivered));
    }

    #[test]
    fn partition_blocks_one_switch_until_healed() {
        let mut ch = LossyChannel::new(3);
        assert!(ch.apply(FaultKind::ControlPartition { switch: 4, healed: false }));
        assert_eq!(ch.attempt(4, ControlOp::Commit, 1), ChannelOutcome::Dropped);
        assert_eq!(ch.attempt(5, ControlOp::Commit, 1), ChannelOutcome::Delivered);
        assert!(ch.apply(FaultKind::ControlPartition { switch: 4, healed: true }));
        assert_eq!(ch.attempt(4, ControlOp::Commit, 2), ChannelOutcome::Delivered);
    }

    #[test]
    fn data_plane_faults_are_ignored() {
        let mut ch = LossyChannel::new(3);
        assert!(!ch.apply(FaultKind::LinkDown { switch: 0, port: 0 }));
        assert!(!ch.is_lossy());
    }

    #[test]
    fn armed_crash_counts_down_then_kills_everything() {
        let mut ch = LossyChannel::new(9);
        assert!(ch.apply(FaultKind::ControllerCrash { after_ops: 2 }));
        assert!(!ch.is_crashed());
        assert_eq!(ch.attempt(0, ControlOp::Stage, 1), ChannelOutcome::Delivered);
        assert_eq!(ch.attempt(1, ControlOp::Stage, 1), ChannelOutcome::Delivered);
        // Third op: the process is dead, and stays dead.
        assert_eq!(ch.attempt(2, ControlOp::Commit, 1), ChannelOutcome::ControllerCrashed);
        assert!(ch.is_crashed());
        assert_eq!(ch.attempt(3, ControlOp::Commit, 2), ChannelOutcome::ControllerCrashed);
        assert_eq!(ch.crashed_ops, 2);
        assert_eq!(ch.ops, 2, "dead ops never leave the process");
        ch.revive();
        assert_eq!(ch.attempt(3, ControlOp::Commit, 1), ChannelOutcome::Delivered);
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = LossyChannel::new(42);
        let mut b = LossyChannel::new(42);
        a.apply(FaultKind::InstallDrop { pct: 40 });
        b.apply(FaultKind::InstallDrop { pct: 40 });
        assert_eq!(outcomes(&mut a, 64), outcomes(&mut b, 64));
    }
}
