//! The fault taxonomy and timed schedules.
//!
//! A fault is something the *environment* does to the network; the
//! controller only ever observes its effect through the network's
//! [`FaultMask`](camus_routing::topology::FaultMask). Link faults are
//! keyed like the mask: `(upper switch, down port)` names the cable
//! below that port, whichever direction traffic flows on it.

use camus_lang::ast::Port;
use camus_routing::topology::{HierNet, SwitchId};

/// One kind of injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Cut the cable below `switch`'s down port `port`.
    LinkDown { switch: SwitchId, port: Port },
    /// Splice that cable back.
    LinkUp { switch: SwitchId, port: Port },
    /// Power off a switch (all incident links go with it).
    SwitchCrash { switch: SwitchId },
    /// Power it back on (its old pipeline is stale until repaired).
    SwitchRestore { switch: SwitchId },
    /// The control channel is congested: the *next* fault's repair is
    /// delayed by this much on top of the normal repair window.
    ControlDelay { extra_ns: u64 },
    /// The control channel loses install messages: each stage/commit
    /// op is silently dropped with probability `pct`/100 (the
    /// controller burns its per-op timeout before retrying).
    InstallDrop { pct: u8 },
    /// The switch agents are flaky: each install op is nacked with
    /// probability `pct`/100 (fast failure, immediate retry).
    InstallFail { pct: u8 },
    /// The control channel to one switch is severed (`healed: false`)
    /// or restored (`healed: true`). Data-plane forwarding is
    /// unaffected; the switch just can't be reprogrammed.
    ControlPartition { switch: SwitchId, healed: bool },
    /// The *controller process* dies after `after_ops` further control
    /// operations leave it (0 = before the next one). In-flight
    /// transactions are abandoned without rollback — staged shadow
    /// programs stay on the switches. Forwarding continues on whatever
    /// is committed; only the control plane goes dark.
    ControllerCrash { after_ops: u64 },
    /// A fresh controller process starts: replay the WAL, reconcile
    /// staged epochs, reinstall divergent switches.
    ControllerRestart,
}

impl FaultKind {
    /// Stable label for CSV output and logs.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::LinkDown { .. } => "link-down",
            FaultKind::LinkUp { .. } => "link-up",
            FaultKind::SwitchCrash { .. } => "switch-crash",
            FaultKind::SwitchRestore { .. } => "switch-restore",
            FaultKind::ControlDelay { .. } => "control-delay",
            FaultKind::InstallDrop { .. } => "install-drop",
            FaultKind::InstallFail { .. } => "install-fail",
            FaultKind::ControlPartition { healed: false, .. } => "control-partition",
            FaultKind::ControlPartition { healed: true, .. } => "control-heal",
            FaultKind::ControllerCrash { .. } => "controller-crash",
            FaultKind::ControllerRestart => "controller-restart",
        }
    }

    /// Does this fault remove capacity (as opposed to restoring it or
    /// only touching the control plane)?
    pub fn is_degrading(&self) -> bool {
        matches!(self, FaultKind::LinkDown { .. } | FaultKind::SwitchCrash { .. })
    }

    /// Does this fault live on the control channel (applied to a
    /// [`LossyChannel`](crate::channel::LossyChannel), never to the
    /// data-plane network)?
    pub fn is_control_channel(&self) -> bool {
        matches!(
            self,
            FaultKind::InstallDrop { .. }
                | FaultKind::InstallFail { .. }
                | FaultKind::ControlPartition { .. }
                | FaultKind::ControllerCrash { .. }
        )
    }

    /// Check the fault names a real element of `net`.
    pub fn validate(&self, net: &HierNet) -> Result<(), String> {
        match *self {
            FaultKind::LinkDown { switch, port } | FaultKind::LinkUp { switch, port } => {
                if switch >= net.switch_count() {
                    return Err(format!("no switch {switch}"));
                }
                if port as usize >= net.switches[switch].down.len() {
                    return Err(format!("switch {switch} has no down port {port}"));
                }
                Ok(())
            }
            FaultKind::SwitchCrash { switch } | FaultKind::SwitchRestore { switch } => {
                if switch >= net.switch_count() {
                    return Err(format!("no switch {switch}"));
                }
                Ok(())
            }
            FaultKind::ControlDelay { .. } => Ok(()),
            FaultKind::InstallDrop { pct } | FaultKind::InstallFail { pct } => {
                if pct > 100 {
                    return Err(format!("loss probability {pct}% > 100%"));
                }
                Ok(())
            }
            FaultKind::ControlPartition { switch, .. } => {
                if switch >= net.switch_count() {
                    return Err(format!("no switch {switch}"));
                }
                Ok(())
            }
            FaultKind::ControllerCrash { .. } | FaultKind::ControllerRestart => Ok(()),
        }
    }
}

/// A fault pinned to a simulation time.
#[derive(Debug, Clone, Copy)]
pub struct FaultEvent {
    pub at_ns: u64,
    pub kind: FaultKind,
}

/// A time-ordered sequence of faults.
#[derive(Debug, Clone, Default)]
pub struct FaultSchedule {
    events: Vec<FaultEvent>,
}

impl FaultSchedule {
    pub fn new() -> Self {
        FaultSchedule::default()
    }

    /// Insert keeping time order; ties keep insertion order.
    pub fn push(&mut self, at_ns: u64, kind: FaultKind) {
        let i = self.events.partition_point(|e| e.at_ns <= at_ns);
        self.events.insert(i, FaultEvent { at_ns, kind });
    }

    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use camus_routing::topology::paper_fat_tree;

    #[test]
    fn schedule_keeps_time_order_with_stable_ties() {
        let mut s = FaultSchedule::new();
        s.push(300, FaultKind::SwitchCrash { switch: 1 });
        s.push(100, FaultKind::LinkDown { switch: 2, port: 0 });
        s.push(300, FaultKind::SwitchRestore { switch: 1 });
        s.push(200, FaultKind::ControlDelay { extra_ns: 5 });
        let times: Vec<u64> = s.events().iter().map(|e| e.at_ns).collect();
        assert_eq!(times, vec![100, 200, 300, 300]);
        assert_eq!(s.events()[2].kind, FaultKind::SwitchCrash { switch: 1 });
        assert_eq!(s.events()[3].kind, FaultKind::SwitchRestore { switch: 1 });
    }

    #[test]
    fn validate_rejects_phantom_elements() {
        let net = paper_fat_tree();
        assert!(FaultKind::SwitchCrash { switch: 0 }.validate(&net).is_ok());
        assert!(FaultKind::SwitchCrash { switch: 999 }.validate(&net).is_err());
        assert!(FaultKind::LinkDown { switch: 0, port: 0 }.validate(&net).is_ok());
        assert!(FaultKind::LinkDown { switch: 0, port: 99 }.validate(&net).is_err());
        assert!(FaultKind::ControlDelay { extra_ns: 1 }.validate(&net).is_ok());
    }
}
