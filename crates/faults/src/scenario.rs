//! The measurement harness: probe traffic around a fault.
//!
//! For each fault the harness publishes a fixed probe packet on a
//! steady interval — some probes before the fault (proving the path
//! worked), the rest after it (straddling the outage and the repair).
//! The repair itself is not instantaneous: a [`RepairModel`] charges a
//! detection + control + install window before the controller's
//! [`repair`](Controller::repair) lands, so probes published inside the
//! window exercise whatever self-healing the data plane manages on its
//! own (masked designated ascent).
//!
//! Accounting is exact because probes are identified by their publish
//! timestamp ([`Delivered::published_ns`]), which the simulator carries
//! end-to-end: every (expected host, probe) pair is delivered once,
//! dropped, or duplicated, and any probe surfacing at a host that never
//! subscribed is a mis-delivery.

use crate::event::{FaultKind, FaultSchedule};
use crate::report::FaultReport;
use camus_dataplane::Packet;
use camus_lang::ast::Expr;
use camus_net::controller::{Controller, DeployError, Deployment, RepairStats};
use camus_net::sim::Network;
use camus_routing::topology::HostId;
use camus_telemetry::PostcardId;
use std::collections::{BTreeSet, HashMap, HashSet};

/// The probe stream published around each fault.
#[derive(Debug, Clone)]
pub struct ProbeConfig {
    pub publisher: HostId,
    /// The probe packet (republished verbatim at each tick).
    pub packet: Packet,
    /// Hosts whose subscriptions match the probe. The publisher must
    /// not be listed: a host never hears its own publications (the
    /// ingress-port rule).
    pub expected: Vec<HostId>,
    pub interval_ns: u64,
    /// Probes published before the fault.
    pub warmup: usize,
    /// Probes published after it.
    pub after: usize,
}

/// How long the control plane takes to notice and fix a fault.
///
/// The simulator has no failure detector of its own, so convergence
/// time is modelled: `detect` (BFD-style liveness timeout) + `control`
/// (controller round trip) + `install` (table write) elapse between the
/// fault and the repaired tables taking effect. The defaults are loosely
/// sized after §VIII-G.3's end-to-end update latency.
#[derive(Debug, Clone, Copy)]
pub struct RepairModel {
    pub detect_ns: u64,
    pub control_ns: u64,
    pub install_ns: u64,
}

impl Default for RepairModel {
    fn default() -> Self {
        RepairModel { detect_ns: 50_000, control_ns: 100_000, install_ns: 200_000 }
    }
}

impl RepairModel {
    /// Fault-to-repaired-tables delay, including any control-channel
    /// congestion (`extra_ns`).
    pub fn window_ns(&self, extra_ns: u64) -> u64 {
        self.detect_ns + self.control_ns + self.install_ns + extra_ns
    }
}

/// Inject one fault into the running network. Returns whether the
/// network state changed (`ControlDelay` and the control-channel
/// kinds never change the data plane — apply those to a
/// [`LossyChannel`](crate::channel::LossyChannel) instead).
pub fn apply_fault(network: &mut Network, kind: FaultKind) -> bool {
    match kind {
        FaultKind::LinkDown { switch, port } => network.fail_link(switch, port),
        FaultKind::LinkUp { switch, port } => network.restore_link(switch, port),
        FaultKind::SwitchCrash { switch } => network.crash_switch(switch),
        FaultKind::SwitchRestore { switch } => network.restore_switch(switch),
        FaultKind::ControlDelay { .. }
        | FaultKind::InstallDrop { .. }
        | FaultKind::InstallFail { .. }
        | FaultKind::ControlPartition { .. }
        | FaultKind::ControllerCrash { .. }
        | FaultKind::ControllerRestart => false,
    }
}

/// Convergence accounting for one fault.
#[derive(Debug, Clone)]
pub struct EventReport {
    /// [`FaultKind::label`] of the injected fault.
    pub label: &'static str,
    /// Simulation time the fault struck.
    pub fault_ns: u64,
    /// What the controller's repair pass did.
    pub repair: RepairStats,
    /// Control-channel congestion charged to this repair.
    pub control_extra_ns: u64,
    /// Widest per-host dark window: from the publish time of the first
    /// missed probe to the first successful re-delivery after the last
    /// missed one (0 if nothing was missed).
    pub blackout_ns: u64,
    /// Probes published.
    pub probes: usize,
    /// Expected hosts still attached under the post-fault mask (a host
    /// whose only access path died is unreachable by definition and is
    /// excluded from the accounting).
    pub measured_hosts: usize,
    /// `measured_hosts * probes`: the (host, probe) pairs owed.
    pub expected: usize,
    pub delivered: usize,
    pub dropped: usize,
    pub duplicated: usize,
    /// Probe deliveries at hosts that never subscribed — must be zero;
    /// repair may lose traffic but must never leak it.
    pub misdelivered: usize,
    /// Every measured host received the final probe.
    pub recovered: bool,
    /// The same accounting derived from postcard telemetry instead of
    /// the host delivery logs; present when the network had telemetry
    /// attached and at least one probe was sampled.
    pub telemetry: Option<TelemetryAccounting>,
}

/// Per-fault accounting computed from the postcard
/// [`Collector`](camus_telemetry::Collector). With a 1/1 sampling rate
/// this must agree exactly with the probe-based numbers in
/// [`EventReport`]; at lower rates it is a sampled estimate over the
/// `traced` probes only.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TelemetryAccounting {
    /// Probes the sampler picked up.
    pub traced: usize,
    pub delivered: usize,
    pub dropped: usize,
    pub duplicated: usize,
    pub misdelivered: usize,
    pub blackout_ns: u64,
    /// Blackhole anomalies among this fault's traced probes.
    pub blackholes: usize,
    /// Loop anomalies among this fault's traced probes (must be zero —
    /// never-re-ascend forwarding cannot loop).
    pub loops: usize,
}

/// Inject `kind` into a deployed network under probe traffic, let the
/// repair window elapse, repair, drain, and account for every probe.
pub fn run_fault(
    ctrl: &Controller,
    d: &mut Deployment,
    subs: &[Vec<Expr>],
    kind: FaultKind,
    probe: &ProbeConfig,
    model: &RepairModel,
    control_extra_ns: u64,
) -> Result<EventReport, DeployError> {
    let host_count = d.network.topology.host_count();
    let before: Vec<usize> = (0..host_count).map(|h| d.network.deliveries(h).len()).collect();

    let t0 = d.network.now_ns();
    let iv = probe.interval_ns;
    let total = probe.warmup + probe.after;
    assert!(total > 0 && iv > 0, "probe stream must be non-empty");
    let probe_times: Vec<u64> = (0..total as u64).map(|i| t0 + (i + 1) * iv).collect();
    let fault_ns = t0 + probe.warmup as u64 * iv + iv / 2;

    let mut traced: Vec<(PostcardId, u64)> = Vec::new();
    for &t in &probe_times[..probe.warmup] {
        if let Some(id) = d.network.publish(probe.publisher, probe.packet.clone(), t) {
            traced.push((id, t));
        }
    }
    d.network.run(Some(fault_ns));
    // Failures take effect immediately — the network breaks first, the
    // controller notices later. Restores are make-before-break: a
    // resurrected element still has stale (or no) tables, so traffic
    // must not be steered back onto it until the same control action
    // that re-admits it also installs its repaired pipeline; both land
    // together at the end of the control window.
    if kind.is_degrading() {
        apply_fault(&mut d.network, kind);
    }
    for &t in &probe_times[probe.warmup..] {
        if let Some(id) = d.network.publish(probe.publisher, probe.packet.clone(), t) {
            traced.push((id, t));
        }
    }
    // The outage persists for the detection + repair window, then the
    // controller converges the tables; remaining probes ride the
    // repaired routing.
    d.network.run(Some(fault_ns + model.window_ns(control_extra_ns)));
    if !kind.is_degrading() {
        apply_fault(&mut d.network, kind);
    }
    let repair = ctrl.repair(d, subs)?;
    d.network.run(None);

    // --- accounting ---
    let mask = d.network.fault_mask().clone();
    let measured: Vec<HostId> = probe
        .expected
        .iter()
        .copied()
        .filter(|&h| d.network.topology.host_attached(h, &mask))
        .collect();
    let times: HashSet<u64> = probe_times.iter().copied().collect();
    let last_probe = *probe_times.last().unwrap();

    let (mut delivered, mut dropped, mut duplicated) = (0usize, 0usize, 0usize);
    let mut blackout_ns = 0u64;
    let mut recovered = true;
    for &h in &measured {
        let got = &d.network.deliveries(h)[before[h]..];
        let mut copies: HashMap<u64, usize> = HashMap::new();
        for del in got.iter().filter(|del| times.contains(&del.published_ns)) {
            *copies.entry(del.published_ns).or_insert(0) += 1;
        }
        let missed: Vec<u64> =
            probe_times.iter().copied().filter(|t| !copies.contains_key(t)).collect();
        delivered += copies.values().sum::<usize>();
        dropped += missed.len();
        duplicated += copies.values().filter(|&&c| c > 1).map(|&c| c - 1).sum::<usize>();
        if !copies.contains_key(&last_probe) {
            recovered = false;
        }
        if let (Some(&first), Some(&last)) = (missed.first(), missed.last()) {
            // Dark from the first missed publication until a later
            // probe actually lands again (or the end of the run if
            // none ever does).
            let end = got
                .iter()
                .filter(|del| del.published_ns > last && times.contains(&del.published_ns))
                .map(|del| del.time_ns)
                .min()
                .unwrap_or_else(|| d.network.now_ns());
            blackout_ns = blackout_ns.max(end.saturating_sub(first));
        }
    }

    let expected_hosts: HashSet<HostId> = probe.expected.iter().copied().collect();
    let mut misdelivered = 0usize;
    for h in (0..host_count).filter(|h| !expected_hosts.contains(h)) {
        misdelivered += d.network.deliveries(h)[before[h]..]
            .iter()
            .filter(|del| times.contains(&del.published_ns))
            .count();
    }

    let telemetry = account_from_telemetry(&mut d.network, &traced, &measured, &expected_hosts);

    Ok(EventReport {
        label: kind.label(),
        fault_ns,
        repair,
        control_extra_ns,
        blackout_ns,
        probes: total,
        measured_hosts: measured.len(),
        expected: measured.len() * total,
        delivered,
        dropped,
        duplicated,
        misdelivered,
        recovered,
        telemetry,
    })
}

/// Rebuild the probe accounting from the collector's postcard groups.
/// Registers the post-fault expectation (the `measured` hosts) for each
/// traced probe first, so the collector's blackhole detector and this
/// accounting agree on who was owed a copy.
fn account_from_telemetry(
    network: &mut Network,
    traced: &[(PostcardId, u64)],
    measured: &[HostId],
    expected_hosts: &HashSet<HostId>,
) -> Option<TelemetryAccounting> {
    if traced.is_empty() {
        return None;
    }
    let now = network.now_ns();
    {
        let col = network.collector_mut()?;
        for &(id, t) in traced {
            col.expect(id, t, measured);
        }
    }
    let col = network.collector()?;
    let mut acc = TelemetryAccounting { traced: traced.len(), ..TelemetryAccounting::default() };
    for &h in measured {
        let mut missed: Vec<u64> = Vec::new();
        let mut landed: Vec<(u64, u64)> = Vec::new();
        for &(id, t) in traced {
            let g = col.group(id).expect("expectation registered above");
            let mut copies = 0usize;
            for &(dh, tn) in &g.deliveries {
                if dh == h {
                    copies += 1;
                    landed.push((t, tn));
                }
            }
            if copies == 0 {
                missed.push(t);
            } else {
                acc.delivered += copies;
                acc.duplicated += copies - 1;
            }
        }
        acc.dropped += missed.len();
        if let (Some(&first), Some(&last)) = (missed.first(), missed.last()) {
            let end =
                landed.iter().filter(|&&(t, _)| t > last).map(|&(_, tn)| tn).min().unwrap_or(now);
            acc.blackout_ns = acc.blackout_ns.max(end.saturating_sub(first));
        }
    }
    for &(id, _) in traced {
        let g = col.group(id).expect("expectation registered above");
        acc.misdelivered +=
            g.deliveries.iter().filter(|(h, _)| !expected_hosts.contains(h)).count();
        if !g.missing_hosts().is_empty() {
            acc.blackholes += 1;
        }
        let mut looped: BTreeSet<usize> = BTreeSet::new();
        for (card, _) in &g.completed {
            if let Some(s) = card.find_loop() {
                if looped.insert(s) {
                    acc.loops += 1;
                }
            }
        }
    }
    Some(acc)
}

/// Run a whole schedule. `ControlDelay` events are not faults of their
/// own: they accumulate onto the repair window of the next real fault.
/// Event times pace the runs (the network idles forward to each).
pub fn run_schedule(
    ctrl: &Controller,
    d: &mut Deployment,
    subs: &[Vec<Expr>],
    schedule: &FaultSchedule,
    probe: &ProbeConfig,
    model: &RepairModel,
) -> Result<FaultReport, DeployError> {
    let mut report = FaultReport::default();
    let mut extra = 0u64;
    for ev in schedule.events() {
        if ev.at_ns > d.network.now_ns() {
            d.network.run(Some(ev.at_ns));
        }
        match ev.kind {
            FaultKind::ControlDelay { extra_ns } => extra += extra_ns,
            // Control-channel faults have no effect under this
            // harness's perfect channel; the chaos soak drives them
            // through a `LossyChannel` instead.
            kind if kind.is_control_channel() => {}
            kind => {
                report.events.push(run_fault(ctrl, d, subs, kind, probe, model, extra)?);
                extra = 0;
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use camus_core::statics::compile_static;
    use camus_dataplane::PacketBuilder;
    use camus_lang::parser::parse_expr;
    use camus_lang::spec::itch_spec;
    use camus_lang::value::Value;
    use camus_net::controller::Controller;
    use camus_routing::algorithm1::{Policy, RoutingConfig};
    use camus_routing::topology::{paper_fat_tree, DownTarget};

    fn setup() -> (Controller, Deployment, Vec<Vec<Expr>>, ProbeConfig) {
        let net = paper_fat_tree();
        let statics = compile_static(&itch_spec()).unwrap();
        let ctrl = Controller::new(statics, RoutingConfig::new(Policy::TrafficReduction));
        let subs: Vec<Vec<Expr>> = (0..net.host_count())
            .map(|h| if h == 15 { vec![parse_expr("stock == GOOGL").unwrap()] } else { vec![] })
            .collect();
        let d = ctrl.deploy(net, &subs).unwrap();
        let packet = PacketBuilder::new(&itch_spec())
            .message(vec![("stock", Value::from("GOOGL")), ("price", Value::Int(10))])
            .build();
        let probe = ProbeConfig {
            publisher: 0,
            packet,
            expected: vec![15],
            interval_ns: 20_000,
            warmup: 3,
            after: 30,
        };
        (ctrl, d, subs, probe)
    }

    fn chain_link(d: &Deployment, host: usize) -> (usize, u16) {
        let net = &d.network.topology;
        let chain = net.designated_chain(host);
        let (tor, agg) = (chain[0], chain[1]);
        let port = net.switches[agg]
            .down
            .iter()
            .position(|t| matches!(t, DownTarget::Switch(c, _) if *c == tor))
            .unwrap();
        (agg, port as u16)
    }

    #[test]
    fn link_down_blacks_out_then_recovers() {
        let (ctrl, mut d, subs, probe) = setup();
        let (agg, port) = chain_link(&d, 15);
        let model = RepairModel::default();
        let r = run_fault(
            &ctrl,
            &mut d,
            &subs,
            FaultKind::LinkDown { switch: agg, port },
            &probe,
            &model,
            0,
        )
        .unwrap();
        assert_eq!(r.label, "link-down");
        assert_eq!(r.measured_hosts, 1);
        assert!(r.dropped > 0, "the cut must cost something");
        assert!(r.blackout_ns > 0);
        assert!(r.recovered, "repair must restore delivery");
        assert_eq!(r.misdelivered, 0);
        assert_eq!(r.duplicated, 0);
        assert_eq!(r.delivered + r.dropped, r.expected);
        assert!(r.repair.reinstalled > 0);
        assert!(r.repair.reused > 0);
        // Blackout is bounded by the repair window plus probe slack.
        assert!(r.blackout_ns <= model.window_ns(0) + 3 * probe.interval_ns);

        // Healing the link back is hitless: the degraded routing is
        // still valid on the healthier topology, so no probe is lost.
        let up = run_fault(
            &ctrl,
            &mut d,
            &subs,
            FaultKind::LinkUp { switch: agg, port },
            &probe,
            &model,
            0,
        )
        .unwrap();
        assert_eq!(up.dropped, 0, "restores are make-before-break");
        assert_eq!(up.blackout_ns, 0);
        assert_eq!(up.misdelivered, 0);
        assert!(up.recovered);
        assert!(up.repair.reinstalled > 0, "repair moves back to the healthy routing");
    }

    #[test]
    fn control_delay_widens_the_blackout() {
        let (ctrl, mut d, subs, probe) = setup();
        let (agg, port) = chain_link(&d, 15);
        let model = RepairModel::default();
        let fast = run_fault(
            &ctrl,
            &mut d,
            &subs,
            FaultKind::LinkDown { switch: agg, port },
            &probe,
            &model,
            0,
        )
        .unwrap();
        run_fault(&ctrl, &mut d, &subs, FaultKind::LinkUp { switch: agg, port }, &probe, &model, 0)
            .unwrap();
        let extra = 200_000;
        let slow = run_fault(
            &ctrl,
            &mut d,
            &subs,
            FaultKind::LinkDown { switch: agg, port },
            &probe,
            &model,
            extra,
        )
        .unwrap();
        assert!(slow.blackout_ns > fast.blackout_ns, "congested control plane converges later");
        assert_eq!(slow.control_extra_ns, extra);
        assert!(slow.recovered);
    }

    #[test]
    fn telemetry_accounting_matches_probe_accounting() {
        use camus_telemetry::SampleRate;
        let (ctrl, mut d, subs, probe) = setup();
        d.network.attach_telemetry(SampleRate::always());
        let (agg, port) = chain_link(&d, 15);
        let model = RepairModel::default();
        let r = run_fault(
            &ctrl,
            &mut d,
            &subs,
            FaultKind::LinkDown { switch: agg, port },
            &probe,
            &model,
            0,
        )
        .unwrap();
        let t = r.telemetry.as_ref().expect("1/1 sampling traces every probe");
        assert_eq!(t.traced, r.probes);
        // Every number the probe harness computed from host delivery
        // logs must be reproduced from postcards alone.
        assert_eq!(t.delivered, r.delivered);
        assert_eq!(t.dropped, r.dropped);
        assert_eq!(t.duplicated, r.duplicated);
        assert_eq!(t.misdelivered, r.misdelivered);
        assert_eq!(t.blackout_ns, r.blackout_ns);
        // One measured host: each missed probe is exactly one
        // blackhole anomaly, and loop-free forwarding reports none.
        assert_eq!(t.blackholes, r.dropped);
        assert_eq!(t.loops, 0);

        // Without telemetry attached the field stays empty and the
        // legacy accounting is unaffected.
        d.network.detach_telemetry().expect("collector was attached");
        let up = run_fault(
            &ctrl,
            &mut d,
            &subs,
            FaultKind::LinkUp { switch: agg, port },
            &probe,
            &model,
            0,
        )
        .unwrap();
        assert!(up.telemetry.is_none());
        assert!(up.recovered);
    }

    #[test]
    fn switch_crash_and_restore_round_trip() {
        let (ctrl, mut d, subs, probe) = setup();
        let agg = d.network.topology.designated_chain(15)[1];
        let model = RepairModel::default();
        let mut schedule = FaultSchedule::new();
        schedule.push(0, FaultKind::SwitchCrash { switch: agg });
        schedule.push(1, FaultKind::ControlDelay { extra_ns: 50_000 });
        schedule.push(2, FaultKind::SwitchRestore { switch: agg });
        let report = run_schedule(&ctrl, &mut d, &subs, &schedule, &probe, &model).unwrap();
        assert_eq!(report.events.len(), 2, "control delay folds into the restore");
        assert_eq!(report.events[0].label, "switch-crash");
        assert_eq!(report.events[1].label, "switch-restore");
        assert_eq!(report.events[1].control_extra_ns, 50_000);
        assert_eq!(report.total_misdelivered(), 0);
        assert!(report.all_recovered());
        assert!(report.events[0].blackout_ns > 0);
        assert_eq!(report.events[1].dropped, 0, "restore is hitless");
        assert!(d.network.fault_mask().is_healthy());
    }
}
