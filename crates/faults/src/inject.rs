//! Seeded selection of fault targets.
//!
//! Everything here is a pure function of the seed and the topology, so
//! a failure run reproduces exactly from its `--seed` (the same
//! discipline as the workload generators).

use crate::event::{FaultKind, FaultSchedule};
use camus_lang::ast::Port;
use camus_routing::topology::{DownTarget, HierNet, HostId, SwitchId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Picks which element to break, deterministically from a seed.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    rng: StdRng,
}

impl FaultInjector {
    pub fn new(seed: u64) -> Self {
        FaultInjector { rng: StdRng::seed_from_u64(seed) }
    }

    /// Every switch-to-switch link, keyed `(upper switch, down port)` —
    /// the same key the [`FaultMask`](camus_routing::topology::FaultMask)
    /// uses. Access (switch-to-host) links are excluded: cutting one
    /// just detaches the host, which no amount of routing can repair.
    pub fn links(net: &HierNet) -> Vec<(SwitchId, Port)> {
        let mut out = Vec::new();
        for (s, sw) in net.switches.iter().enumerate() {
            for (p, t) in sw.down.iter().enumerate() {
                if matches!(t, DownTarget::Switch(..)) {
                    out.push((s, p as Port));
                }
            }
        }
        out
    }

    /// A uniformly random switch-to-switch link.
    pub fn pick_link(&mut self, net: &HierNet) -> (SwitchId, Port) {
        let links = Self::links(net);
        assert!(!links.is_empty(), "topology has no switch-to-switch links");
        links[self.rng.gen_range(0..links.len())]
    }

    /// A uniformly random switch at layer `min_layer` or above (pass 1
    /// to spare the ToRs, whose loss detaches hosts).
    pub fn pick_switch(&mut self, net: &HierNet, min_layer: usize) -> SwitchId {
        let candidates: Vec<SwitchId> =
            (0..net.switch_count()).filter(|&s| net.switches[s].layer >= min_layer).collect();
        assert!(!candidates.is_empty(), "no switch at layer >= {min_layer}");
        candidates[self.rng.gen_range(0..candidates.len())]
    }

    /// A random link on `host`'s designated distribution chain — the
    /// kind of failure guaranteed to black the host out until either
    /// the data plane re-ascends or the controller repairs.
    pub fn pick_link_on_chain(&mut self, net: &HierNet, host: HostId) -> (SwitchId, Port) {
        let chain = net.designated_chain(host);
        let mut edges = Vec::new();
        for w in chain.windows(2) {
            let (lower, upper) = (w[0], w[1]);
            for (p, t) in net.switches[upper].down.iter().enumerate() {
                if matches!(t, DownTarget::Switch(c, _) if *c == lower) {
                    edges.push((upper, p as Port));
                }
            }
        }
        assert!(!edges.is_empty(), "host {host} has no chain edges (single-switch net?)");
        edges[self.rng.gen_range(0..edges.len())]
    }

    /// A deterministic fail/heal schedule: `pairs` fault pairs starting
    /// at `start_ns`, one fault every `gap_ns`, each healed one gap
    /// later. Alternates link and switch faults.
    pub fn schedule(
        &mut self,
        net: &HierNet,
        pairs: usize,
        start_ns: u64,
        gap_ns: u64,
    ) -> FaultSchedule {
        let mut out = FaultSchedule::new();
        let mut t = start_ns;
        for i in 0..pairs {
            if i % 2 == 0 {
                let (switch, port) = self.pick_link(net);
                out.push(t, FaultKind::LinkDown { switch, port });
                out.push(t + gap_ns, FaultKind::LinkUp { switch, port });
            } else {
                let switch = self.pick_switch(net, 1);
                out.push(t, FaultKind::SwitchCrash { switch });
                out.push(t + gap_ns, FaultKind::SwitchRestore { switch });
            }
            t += 2 * gap_ns;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use camus_routing::topology::paper_fat_tree;

    #[test]
    fn same_seed_same_choices() {
        let net = paper_fat_tree();
        let mut a = FaultInjector::new(7);
        let mut b = FaultInjector::new(7);
        for _ in 0..10 {
            assert_eq!(a.pick_link(&net), b.pick_link(&net));
            assert_eq!(a.pick_switch(&net, 1), b.pick_switch(&net, 1));
        }
    }

    #[test]
    fn links_exclude_host_access() {
        let net = paper_fat_tree();
        for (s, p) in FaultInjector::links(&net) {
            assert!(matches!(net.switches[s].down[p as usize], DownTarget::Switch(..)));
        }
        // Fat tree: agg->tor (2 aggs * 2 tors * 4 pods) + core->agg
        // (4 cores * 2 aggs * 4 pods) = 16 + 32.
        assert_eq!(FaultInjector::links(&net).len(), 48);
    }

    #[test]
    fn chain_links_sit_on_the_designated_chain() {
        let net = paper_fat_tree();
        let mut inj = FaultInjector::new(3);
        for host in 0..net.host_count() {
            let chain = net.designated_chain(host);
            let (s, p) = inj.pick_link_on_chain(&net, host);
            assert!(chain.contains(&s));
            match net.switches[s].down[p as usize] {
                DownTarget::Switch(c, _) => assert!(chain.contains(&c)),
                _ => panic!("chain edge must join two switches"),
            }
        }
    }

    #[test]
    fn min_layer_spares_the_tors() {
        let net = paper_fat_tree();
        let mut inj = FaultInjector::new(11);
        for _ in 0..20 {
            assert!(net.switches[inj.pick_switch(&net, 1)].layer >= 1);
        }
    }

    #[test]
    fn schedule_pairs_every_fault_with_its_heal() {
        let net = paper_fat_tree();
        let mut inj = FaultInjector::new(5);
        let s = inj.schedule(&net, 4, 1_000, 500);
        assert_eq!(s.len(), 8);
        for (i, ev) in s.events().iter().enumerate() {
            assert!(ev.kind.validate(&net).is_ok());
            let degrading = ev.kind.is_degrading();
            assert_eq!(degrading, i % 2 == 0, "alternating fail/heal at {i}");
        }
    }
}
