//! # camus-faults — fault injection and self-healing measurement
//!
//! The paper's controller (§III) recomputes routing when subscriptions
//! change; the same machinery must also survive the *network* changing
//! under it. This crate injects deterministic faults into a running
//! [`camus_net::sim::Network`], drives the controller's
//! [`repair`](camus_net::controller::Controller::repair) path, and
//! measures convergence: how long subscribers were dark (blackout),
//! what was dropped, duplicated or mis-delivered, and how much of the
//! previous deployment the incremental recompiler could keep.
//!
//! Layering:
//!
//! * [`event`] — the fault taxonomy ([`event::FaultKind`]) and timed
//!   schedules of them,
//! * [`inject`] — a seeded injector that picks *which* link or switch
//!   to break, reproducibly,
//! * [`scenario`] — the measurement harness: probe traffic around a
//!   fault, a modelled detection/repair window, per-event accounting,
//! * [`report`] — aggregation across a whole schedule
//!   ([`report::FaultReport`]).

pub mod channel;
pub mod chaos;
pub mod event;
pub mod inject;
pub mod report;
pub mod scenario;

pub use channel::LossyChannel;
pub use chaos::{run_chaos, ChaosConfig, ChaosInput, ChaosReport, ChaosStep};
pub use event::{FaultEvent, FaultKind, FaultSchedule};
pub use inject::FaultInjector;
pub use report::FaultReport;
pub use scenario::{
    apply_fault, run_fault, run_schedule, EventReport, ProbeConfig, RepairModel,
    TelemetryAccounting,
};
