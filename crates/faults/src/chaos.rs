//! The chaos soak: seeded random interleavings of subscription churn,
//! data-plane faults, and control-channel loss.
//!
//! Each step draws one operation (churn a host's subscriptions, cut or
//! splice a link, crash or restore a switch, re-dial the channel loss
//! rates, partition or heal a switch's control channel), lets the
//! controller attempt a repair over the lossy channel, then publishes
//! a burst of witness probes and audits every delivery:
//!
//! * **no mis-delivery, ever** — a host whose *deployed* subscriptions
//!   do not match the witness must never receive it, rollback or not;
//! * **no duplicates, ever**;
//! * **committed ⇒ delivered** — after a successful (committed) repair
//!   every attached matching host receives every probe;
//! * **bounded blackout** — a host can only stay dark while repairs
//!   are rolling back *or the controller is down*, so the longest dark
//!   streak is bounded by the longest such outage streak;
//! * **eventual convergence** — once faults are restored and the
//!   channel heals, one repair converges the network to exactly what a
//!   fresh deploy would install (per-switch fingerprints and installed
//!   pipelines).
//!
//! The schedule can also **kill the controller** mid-transaction
//! ([`FaultKind::ControllerCrash`] arms the channel to die after N
//! more ops — mid-compile, mid-stage, or mid-commit depending on N).
//! A crashed transaction is abandoned with *no rollback*: staged
//! shadow programs stay on the switches, and a crash after the commit
//! point leaves the fleet half-old half-new. While the controller is
//! down the audit checks deliveries against the *union* of the old
//! deployed state and the in-doubt transaction's target (either is
//! legitimate; anything else is a leak). [`FaultKind::ControllerRestart`]
//! brings a fresh controller up over the recorded commit decisions:
//! staged epochs are reconciled presumed-abort, divergent switches are
//! reinstalled, and the recovered step must deliver in full.
//!
//! The harness asserts the invariants inline (a violation is a test
//! failure, not a data point) and returns a per-step report whose
//! columns are all deterministic in the seed.

use crate::channel::LossyChannel;
use crate::event::FaultKind;
use crate::inject::FaultInjector;
use crate::scenario::apply_fault;
use camus_dataplane::Packet;
use camus_lang::ast::Port;
use camus_lang::ast::{Expr, Operand};
use camus_lang::value::Value;
use camus_net::controller::{Controller, Deployment};
use camus_net::{ChannelOutcome, ControlChannel, ControlOp, ReconcileStats};
use camus_routing::topology::{HierNet, HostId, SwitchId};
use camus_telemetry::{PostcardId, SampleRate};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, BTreeSet};

/// Knobs of one chaos run.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    pub seed: u64,
    /// Chaos steps (one operation + repair + probe burst each).
    pub steps: usize,
    /// Witness probes published per step.
    pub probes_per_step: usize,
    pub probe_interval_ns: u64,
    /// Postcard sampling for the witness probes. When enabled, the
    /// per-step dark/blackhole audit is sourced from the telemetry
    /// collector and cross-checked against the delivery logs.
    pub sample: SampleRate,
    /// Controller outage bound: after this many consecutive
    /// controller-down steps the next step restarts it (the operator's
    /// pager), whatever the schedule would otherwise draw. The RNG's
    /// restart arm can still fire earlier.
    pub restart_within: usize,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 0xC4A0,
            steps: 12,
            probes_per_step: 3,
            probe_interval_ns: 20_000,
            sample: SampleRate::DISABLED,
            restart_within: 4,
        }
    }
}

/// One audited chaos step. Every field is deterministic in the seed —
/// no wall-clock anywhere.
#[derive(Debug, Clone)]
pub struct ChaosStep {
    pub step: usize,
    /// What the step did (fault label, `churn`, `drop-pct=30`, ...).
    pub label: String,
    /// `committed`, `rolled-back`, `noop` (nothing to reinstall),
    /// `controller-down` (process dead, no repair ran or it died
    /// mid-flight), or `recovered` (restart + reconcile + reinstall).
    pub outcome: &'static str,
    /// Control-channel attempts / retries of the repair transaction.
    pub attempts: u32,
    pub retries: u32,
    /// Switches whose new pipeline was committed.
    pub reinstalled: usize,
    /// Switches currently on the coarse degraded pipeline.
    pub degraded: usize,
    /// Probe deliveries owed to attached matching hosts this step.
    pub expected: usize,
    pub delivered: usize,
    pub missed: usize,
    pub misdelivered: usize,
    pub duplicated: usize,
    /// Channel dials in force during the step.
    pub drop_pct: u8,
    pub fail_pct: u8,
    pub partitions: usize,
    /// Witness probes the postcard sampler traced (0 when disabled).
    pub traced: usize,
    /// Blackhole anomalies the collector reported for this step's
    /// traced probes.
    pub blackholes: usize,
    /// Loop anomalies — must always be zero.
    pub loops: usize,
}

/// The whole soak, plus the convergence audit.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    pub steps: Vec<ChaosStep>,
    pub committed_steps: usize,
    pub rolled_back_steps: usize,
    /// Steps spent with the controller process dead.
    pub down_steps: usize,
    /// Controller crashes injected / recoveries performed.
    pub crashes: usize,
    pub recoveries: usize,
    /// Longest run of consecutive rolled-back repairs.
    pub max_rollback_streak: usize,
    /// Longest run of consecutive steps with no committed repair
    /// (rolled back or controller down) — the blackout bound.
    pub max_outage_streak: usize,
    /// Longest run of consecutive steps any single host stayed dark.
    pub max_dark_streak: usize,
    /// Deliveries of the post-heal final probe burst.
    pub final_delivered: usize,
    /// The healed network matched a fresh deploy switch-for-switch.
    pub converged: bool,
}

/// Channel wrapper that records every commit decision at the commit
/// point — the soak's stand-in for the service's durable WAL (same
/// hook, same presumed-abort contract).
struct DecisionLog<'a> {
    inner: &'a mut LossyChannel,
    decisions: &'a mut BTreeSet<u64>,
}

impl ControlChannel for DecisionLog<'_> {
    fn attempt(&mut self, switch: usize, op: ControlOp, attempt: u32) -> ChannelOutcome {
        self.inner.attempt(switch, op, attempt)
    }

    fn commit_point(&mut self, epoch: u64) {
        self.decisions.insert(epoch);
        self.inner.commit_point(epoch);
    }
}

/// Bring a dead (or about-to-die) controller back: revive the
/// channel, reconcile every switch's staged epoch against the logged
/// commit decisions (presumed abort), and reinstall whatever diverges
/// from a fresh compile of the target state. Recovery runs over the
/// management path — the chaos dials are lifted for its transaction
/// and restored afterwards — so it always commits, the way an
/// operator-driven restart does.
fn recover_controller(
    ctrl: &Controller,
    d: Deployment,
    subs: &[Vec<Expr>],
    channel: &mut LossyChannel,
    decisions: &mut BTreeSet<u64>,
) -> (Deployment, ReconcileStats) {
    let dials = (channel.drop_pct, channel.fail_pct, std::mem::take(&mut channel.partitioned));
    channel.revive();
    channel.heal_all();
    // The dead controller's memory is gone: the next epoch comes from
    // the durable decision log alone.
    let next_epoch = decisions.iter().max().map_or(1, |m| m + 1);
    let committed = decisions.clone();
    let (nd, stats) = ctrl
        .recover_deployment(
            d.network,
            subs,
            &committed,
            next_epoch,
            None,
            &mut DecisionLog { inner: channel, decisions },
        )
        .expect("recovery over the management channel must commit");
    channel.drop_pct = dials.0;
    channel.fail_pct = dials.1;
    channel.partitioned = dials.2;
    (nd, stats)
}

/// The scripted inputs of a run (the randomness lives in the config
/// seed, not here).
pub struct ChaosInput<'a> {
    pub ctrl: &'a Controller,
    pub net: &'a HierNet,
    /// Initial per-host subscriptions; churned in place as the soak
    /// runs.
    pub subs: Vec<Vec<Expr>>,
    /// Spare filters churn draws from.
    pub pool: Vec<Expr>,
    /// The witness packet probes are published as.
    pub witness: Packet,
    /// The witness's attribute values, for deciding who must hear it.
    pub witness_values: Vec<(String, Value)>,
    pub publisher: HostId,
}

/// Hosts whose subscription set matches the witness packet.
fn matching_hosts(
    subs: &[Vec<Expr>],
    witness: &[(String, Value)],
    publisher: HostId,
) -> BTreeSet<HostId> {
    let lookup = |op: &Operand| match op {
        Operand::Field(name) => witness.iter().find(|(n, _)| n == name).map(|(_, v)| v.clone()),
        Operand::Aggregate { .. } => None,
    };
    subs.iter()
        .enumerate()
        .filter(|(h, fs)| *h != publisher && fs.iter().any(|f| f.eval_with(lookup)))
        .map(|(h, _)| h)
        .collect()
}

/// Run the soak. Panics (test failure) on any invariant violation.
pub fn run_chaos(input: ChaosInput<'_>, cfg: &ChaosConfig) -> ChaosReport {
    let ChaosInput { ctrl, net, mut subs, pool, witness, witness_values, publisher } = input;
    assert!(!pool.is_empty(), "churn needs a filter pool");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut injector = FaultInjector::new(cfg.seed ^ 0x1517);
    let mut channel = LossyChannel::new(cfg.seed ^ 0xFA11);

    let mut d = ctrl.deploy(net.clone(), &subs).expect("initial deploy");
    if !cfg.sample.is_disabled() {
        d.network.attach_telemetry(cfg.sample);
    }
    // The subscriptions the network actually runs: follows `subs` on
    // every committed repair, freezes across rollbacks.
    let mut deployed_subs = subs.clone();
    let mut pool_next = 0usize;

    // Live fault state, bounded so no host is ever physically cut off
    // (crashes spare the ToRs; at most 2 links + 1 switch down at once).
    let mut broken_links: Vec<(SwitchId, Port)> = Vec::new();
    let mut dead_switch: Option<SwitchId> = None;

    let mut steps = Vec::new();
    let mut rollback_streak = 0usize;
    let mut max_rollback_streak = 0usize;
    let mut outage_streak = 0usize;
    let mut max_outage_streak = 0usize;
    let mut dark_streak: BTreeMap<HostId, usize> = BTreeMap::new();
    let mut max_dark_streak = 0usize;
    let (mut committed_steps, mut rolled_back_steps) = (0usize, 0usize);
    let (mut down_steps, mut crashes, mut recoveries) = (0usize, 0usize, 0usize);
    // Consecutive controller-down steps; bounded by the restart pager.
    let mut down_streak = 0usize;
    // The durable commit ledger: epoch 1 is the initial deploy. A
    // recovering controller knows *only* what is in here.
    let mut decisions: BTreeSet<u64> = BTreeSet::new();
    decisions.insert(1);
    // Target of a transaction the controller died inside of after its
    // commit point: deliveries may reflect it, the old state, or any
    // per-switch mix until recovery reconciles.
    let mut in_doubt: Option<Vec<Vec<Expr>>> = None;

    for step in 0..cfg.steps {
        // --- 1. one chaos operation ---
        // A restart step repairs inside the op itself; it sets this to
        // skip the normal lossy-channel repair below.
        let mut step_override: Option<(&'static str, usize)> = None;
        // The RNG always advances (keeps the schedule seed-stable);
        // past the outage bound the draw is overridden into the
        // restart arm.
        let roll = rng.gen_range(0..100u32);
        let roll = if channel.crash_after.is_some() && down_streak >= cfg.restart_within {
            99
        } else {
            roll
        };
        let label: String = match roll {
            0..40 => {
                let host = {
                    let mut h = rng.gen_range(0..net.host_count());
                    if h == publisher {
                        h = (h + 1) % net.host_count();
                    }
                    h
                };
                if !subs[host].is_empty() && rng.gen_bool(0.5) {
                    subs[host].pop();
                    format!("churn-unsub h{host}")
                } else {
                    subs[host].push(pool[pool_next % pool.len()].clone());
                    pool_next += 1;
                    format!("churn-sub h{host}")
                }
            }
            40..54 => {
                if !broken_links.is_empty() && (broken_links.len() >= 2 || rng.gen_bool(0.5)) {
                    let (s, p) = broken_links.swap_remove(rng.gen_range(0..broken_links.len()));
                    apply_fault(&mut d.network, FaultKind::LinkUp { switch: s, port: p });
                    format!("link-up {s}:{p}")
                } else {
                    let (s, p) = injector.pick_link(net);
                    if broken_links.contains(&(s, p)) || Some(s) == dead_switch {
                        "noop-link".to_string()
                    } else {
                        broken_links.push((s, p));
                        apply_fault(&mut d.network, FaultKind::LinkDown { switch: s, port: p });
                        format!("link-down {s}:{p}")
                    }
                }
            }
            54..63 => match dead_switch.take() {
                Some(s) => {
                    apply_fault(&mut d.network, FaultKind::SwitchRestore { switch: s });
                    format!("switch-restore {s}")
                }
                None => {
                    let s = injector.pick_switch(net, 1);
                    dead_switch = Some(s);
                    apply_fault(&mut d.network, FaultKind::SwitchCrash { switch: s });
                    format!("switch-crash {s}")
                }
            },
            63..74 => {
                let pct = [0u8, 10, 30, 60][rng.gen_range(0..4usize)];
                channel.apply(FaultKind::InstallDrop { pct });
                format!("drop-pct={pct}")
            }
            74..83 => {
                let pct = [0u8, 10, 30, 60][rng.gen_range(0..4usize)];
                channel.apply(FaultKind::InstallFail { pct });
                format!("fail-pct={pct}")
            }
            83..91 => {
                if channel.partitioned.is_empty() {
                    let s = rng.gen_range(0..net.switch_count());
                    channel.apply(FaultKind::ControlPartition { switch: s, healed: false });
                    format!("control-partition {s}")
                } else {
                    let s = *channel.partitioned.iter().next().unwrap();
                    channel.apply(FaultKind::ControlPartition { switch: s, healed: true });
                    format!("control-heal {s}")
                }
            }
            _ => {
                if channel.crash_after.is_some() {
                    // Restart: a fresh controller replays the decision
                    // ledger and reconciles the fleet.
                    let (nd, rstats) =
                        recover_controller(ctrl, d, &subs, &mut channel, &mut decisions);
                    d = nd;
                    deployed_subs = subs.clone();
                    in_doubt = None;
                    recoveries += 1;
                    step_override = Some(("recovered", rstats.reinstalled));
                    format!(
                        "controller-restart rf={} ab={} fin={} rev={}",
                        rstats.rolled_forward, rstats.aborted, rstats.finalized, rstats.reverted
                    )
                } else {
                    // Arm the crash N ops out so it lands mid-stage or
                    // mid-commit of whichever repair runs next.
                    let after_ops = [0u64, 1, 2, 3, 5, 8, 13, 21][rng.gen_range(0..8usize)];
                    channel.apply(FaultKind::ControllerCrash { after_ops });
                    crashes += 1;
                    format!("controller-crash after={after_ops}")
                }
            }
        };

        // --- 2. repair over the lossy channel ---
        let (outcome, attempts, retries, reinstalled) = if let Some((oc, ri)) = step_override {
            (oc, 0, 0, ri)
        } else if channel.is_crashed() {
            // No controller process: nothing even attempts a repair.
            // Forwarding keeps running on whatever is installed.
            ("controller-down", 0, 0, 0)
        } else {
            let mut logged = DecisionLog { inner: &mut channel, decisions: &mut decisions };
            match ctrl.repair_with(&mut d, &subs, &mut logged) {
                Ok(stats) => {
                    deployed_subs = subs.clone();
                    in_doubt = None;
                    let r = &d.report;
                    let oc = if stats.reinstalled == 0 { "noop" } else { "committed" };
                    (oc, r.total_attempts(), r.total_retries(), stats.reinstalled)
                }
                Err(camus_net::DeployError::Crashed { report, .. }) => {
                    // The armed crash fired mid-transaction. Past the
                    // commit point some switches already run the new
                    // program, so the target joins the audit's legit
                    // set; before it, staged shadows never forward.
                    if report.committed() > 0 {
                        in_doubt = Some(subs.clone());
                    }
                    ("controller-down", report.total_attempts(), report.total_retries(), 0)
                }
                Err(e) => {
                    let r = match &e {
                        camus_net::DeployError::Admission { report, .. }
                        | camus_net::DeployError::Channel { report, .. } => report.clone(),
                        camus_net::DeployError::Compile(c) => panic!("chaos compile failed: {c}"),
                        camus_net::DeployError::Crashed { .. } => unreachable!("matched above"),
                    };
                    ("rolled-back", r.total_attempts(), r.total_retries(), 0)
                }
            }
        };
        match outcome {
            "rolled-back" => {
                rolled_back_steps += 1;
                rollback_streak += 1;
                max_rollback_streak = max_rollback_streak.max(rollback_streak);
            }
            "controller-down" => {
                down_steps += 1;
                down_streak += 1;
                rollback_streak = 0;
            }
            _ => {
                committed_steps += 1;
                rollback_streak = 0;
            }
        }
        if outcome != "controller-down" {
            down_streak = 0;
        }
        assert!(
            down_streak <= cfg.restart_within + 1,
            "controller outage ({down_streak} steps) exceeds the restart bound"
        );
        if outcome == "rolled-back" || outcome == "controller-down" {
            outage_streak += 1;
            max_outage_streak = max_outage_streak.max(outage_streak);
        } else {
            outage_streak = 0;
        }

        // --- 3. probe burst + audit ---
        let before: Vec<usize> =
            (0..net.host_count()).map(|h| d.network.deliveries(h).len()).collect();
        let t0 = d.network.now_ns();
        let times: BTreeSet<u64> =
            (1..=cfg.probes_per_step as u64).map(|i| t0 + i * cfg.probe_interval_ns).collect();
        let mut traced: Vec<(PostcardId, u64)> = Vec::new();
        for &t in &times {
            if let Some(id) = d.network.publish(publisher, witness.clone(), t) {
                traced.push((id, t));
            }
        }
        d.network.run(None);

        let mask = d.network.fault_mask().clone();
        let matching_deployed = matching_hosts(&deployed_subs, &witness_values, publisher);
        // While a crashed transaction is in doubt, a host matching
        // either the old deployed state or the half-committed target
        // may legitimately hear the witness; anything outside the
        // union is still a leak.
        let matching: BTreeSet<HostId> = match &in_doubt {
            Some(target) => matching_deployed
                .union(&matching_hosts(target, &witness_values, publisher))
                .copied()
                .collect(),
            None => matching_deployed.clone(),
        };
        let expected_hosts: BTreeSet<HostId> = matching_deployed
            .iter()
            .copied()
            .filter(|&h| d.network.topology.host_attached(h, &mask))
            .collect();
        let (mut delivered, mut missed, mut duplicated, mut misdelivered) = (0, 0, 0, 0);
        for (h, &seen) in before.iter().enumerate() {
            let got = d.network.deliveries(h)[seen..]
                .iter()
                .filter(|del| times.contains(&del.published_ns))
                .count();
            if matching.contains(&h) {
                delivered += got.min(times.len());
                duplicated += got.saturating_sub(times.len());
                if expected_hosts.contains(&h) {
                    missed += times.len().saturating_sub(got);
                }
            } else {
                misdelivered += got;
            }
        }
        // Invariants: never leak, never duplicate; a committed repair
        // delivers in full.
        assert_eq!(misdelivered, 0, "step {step} ({label}): witness leaked");
        assert_eq!(duplicated, 0, "step {step} ({label}): duplicate delivery");
        if outcome != "rolled-back" && outcome != "controller-down" {
            assert_eq!(missed, 0, "step {step} ({label}): committed repair must deliver");
        }

        // --- telemetry audit: reconstruct the same accounting from
        // postcards alone and cross-check it against the logs ---
        let (step_traced, blackholes, loops, lit) = if traced.is_empty() {
            (0, 0, 0, None)
        } else {
            let hosts: Vec<HostId> = expected_hosts.iter().copied().collect();
            {
                let col = d.network.collector_mut().expect("sampled probes imply a collector");
                for &(id, t) in &traced {
                    col.expect(id, t, &hosts);
                }
            }
            let col = d.network.collector().expect("collector attached");
            let (mut blackholes, mut loops) = (0usize, 0usize);
            let (mut t_delivered, mut t_missed, mut t_misdelivered) = (0usize, 0usize, 0usize);
            let mut lit: BTreeSet<HostId> = BTreeSet::new();
            for &(id, _) in &traced {
                let g = col.group(id).expect("expectation registered above");
                for &(h, _) in &g.deliveries {
                    if matching.contains(&h) {
                        t_delivered += 1;
                        lit.insert(h);
                    } else {
                        t_misdelivered += 1;
                    }
                }
                let missing = g.missing_hosts();
                t_missed += missing.len();
                if !missing.is_empty() {
                    blackholes += 1;
                }
                let mut looped: BTreeSet<usize> = BTreeSet::new();
                for (card, _) in &g.completed {
                    if let Some(s) = card.find_loop() {
                        if looped.insert(s) {
                            loops += 1;
                        }
                    }
                }
            }
            assert_eq!(t_misdelivered, 0, "step {step} ({label}): postcard saw a leak");
            assert_eq!(loops, 0, "step {step} ({label}): postcard saw a loop");
            let full = traced.len() == times.len();
            if full {
                assert_eq!(t_delivered, delivered, "step {step} ({label}): postcard deliveries");
                assert_eq!(t_missed, missed, "step {step} ({label}): postcard misses");
            }
            (traced.len(), blackholes, loops, full.then_some(lit))
        };

        for &h in &expected_hosts {
            // Dark-window accounting comes from the collector when the
            // sampler traced the full burst; the log scan is the
            // fallback for untraced runs.
            let got = match &lit {
                Some(seen) => seen.contains(&h),
                None => d.network.deliveries(h)[before[h]..]
                    .iter()
                    .any(|del| times.contains(&del.published_ns)),
            };
            let streak = dark_streak.entry(h).or_insert(0);
            if got {
                *streak = 0;
            } else {
                *streak += 1;
                max_dark_streak = max_dark_streak.max(*streak);
            }
        }

        steps.push(ChaosStep {
            step,
            label,
            outcome,
            attempts,
            retries,
            reinstalled,
            degraded: d.degraded.len(),
            expected: expected_hosts.len() * times.len(),
            delivered,
            missed,
            misdelivered,
            duplicated,
            drop_pct: channel.drop_pct,
            fail_pct: channel.fail_pct,
            partitions: channel.partitioned.len(),
            traced: step_traced,
            blackholes,
            loops,
        });
    }
    // Blackout is bounded: a host only stays dark while repairs are
    // rolling back or the controller is down.
    assert!(
        max_dark_streak <= max_outage_streak.max(1),
        "dark streak {max_dark_streak} exceeds outage streak {max_outage_streak}"
    );

    // --- finale: heal everything, converge, audit equivalence ---
    if channel.crash_after.is_some() {
        // A crash still armed (or in force) at the end of the soak:
        // recover before the convergence audit, like an operator would.
        let (nd, _) = recover_controller(ctrl, d, &subs, &mut channel, &mut decisions);
        d = nd;
        recoveries += 1;
    }
    for (s, p) in broken_links.drain(..) {
        apply_fault(&mut d.network, FaultKind::LinkUp { switch: s, port: p });
    }
    if let Some(s) = dead_switch.take() {
        apply_fault(&mut d.network, FaultKind::SwitchRestore { switch: s });
    }
    channel.heal_all();
    let mut logged = DecisionLog { inner: &mut channel, decisions: &mut decisions };
    ctrl.repair_with(&mut d, &subs, &mut logged).expect("healed repair must commit");
    assert!(d.network.fault_mask().is_healthy());

    let fresh = ctrl.deploy(net.clone(), &subs).expect("fresh oracle deploy");
    let mut converged = true;
    for (got, want) in d.compile.switches.iter().zip(fresh.compile.switches.iter()) {
        converged &= got.fingerprint == want.fingerprint;
    }
    for s in 0..net.switch_count() {
        converged &= d.network.switches[s].pipeline() == fresh.network.switches[s].pipeline();
    }
    assert!(converged, "healed network must equal a fresh deploy");

    let before: Vec<usize> = (0..net.host_count()).map(|h| d.network.deliveries(h).len()).collect();
    let t0 = d.network.now_ns();
    let times: BTreeSet<u64> =
        (1..=cfg.probes_per_step as u64).map(|i| t0 + i * cfg.probe_interval_ns).collect();
    for &t in &times {
        d.network.publish(publisher, witness.clone(), t);
    }
    d.network.run(None);
    let matching = matching_hosts(&subs, &witness_values, publisher);
    let mut final_delivered = 0usize;
    for &h in &matching {
        let got = d.network.deliveries(h)[before[h]..]
            .iter()
            .filter(|del| times.contains(&del.published_ns))
            .count();
        assert_eq!(got, times.len(), "healed network must deliver to host {h}");
        final_delivered += got;
    }

    ChaosReport {
        steps,
        committed_steps,
        rolled_back_steps,
        down_steps,
        crashes,
        recoveries,
        max_rollback_streak,
        max_outage_streak,
        max_dark_streak,
        final_delivered,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use camus_core::statics::compile_static;
    use camus_dataplane::PacketBuilder;
    use camus_lang::parser::parse_expr;
    use camus_lang::spec::itch_spec;
    use camus_net::controller::Controller;
    use camus_routing::algorithm1::{Policy, RoutingConfig};
    use camus_routing::topology::paper_fat_tree;

    fn setup() -> (Controller, HierNet, ChaosInput<'static>) {
        let net = paper_fat_tree();
        let statics = compile_static(&itch_spec()).unwrap();
        let ctrl = Controller::new(statics, RoutingConfig::new(Policy::TrafficReduction));
        let ctrl = Box::leak(Box::new(ctrl));
        let netref = Box::leak(Box::new(net.clone()));
        let subs: Vec<Vec<Expr>> = (0..net.host_count())
            .map(|h| match h {
                5 | 11 => vec![parse_expr("stock == GOOGL").unwrap()],
                15 => vec![parse_expr("price < 100").unwrap()],
                _ => vec![],
            })
            .collect();
        let pool = vec![
            parse_expr("stock == GOOGL").unwrap(),
            parse_expr("price > 500").unwrap(),
            parse_expr("stock == MSFT").unwrap(),
            parse_expr("price < 50").unwrap(),
        ];
        let witness = PacketBuilder::new(&itch_spec())
            .message(vec![("stock", Value::from("GOOGL")), ("price", Value::Int(10))])
            .build();
        let input = ChaosInput {
            ctrl,
            net: netref,
            subs,
            pool,
            witness,
            witness_values: vec![
                ("stock".to_string(), Value::from("GOOGL")),
                ("price".to_string(), Value::Int(10)),
            ],
            publisher: 0,
        };
        (
            Controller::new(
                compile_static(&itch_spec()).unwrap(),
                RoutingConfig::new(Policy::TrafficReduction),
            ),
            net,
            input,
        )
    }

    #[test]
    fn soak_holds_invariants_and_converges() {
        let (_, _, input) = setup();
        let cfg = ChaosConfig { seed: 0xD06, steps: 16, probes_per_step: 2, ..Default::default() };
        let r = run_chaos(input, &cfg);
        assert_eq!(r.steps.len(), 16);
        assert!(r.converged);
        assert!(r.final_delivered > 0);
        assert_eq!(r.committed_steps + r.rolled_back_steps + r.down_steps, 16);
        for s in &r.steps {
            assert_eq!(s.misdelivered, 0);
            assert_eq!(s.duplicated, 0);
            assert!(s.attempts >= s.retries);
        }
    }

    #[test]
    fn crash_soaks_kill_recover_and_still_converge() {
        // Longer soaks across seeds must actually exercise the
        // controller-crash arm end to end: crashes fire, restarts
        // reconcile, and every run still converges with a clean audit
        // (the inline asserts in run_chaos are the real teeth here).
        let (mut total_crashes, mut total_recoveries, mut total_down) = (0usize, 0usize, 0usize);
        for seed in [0xC4A5u64, 0xD1E, 0xFEED] {
            let (_, _, input) = setup();
            let cfg = ChaosConfig { seed, steps: 40, probes_per_step: 2, ..Default::default() };
            let r = run_chaos(input, &cfg);
            assert!(r.converged);
            assert!(r.final_delivered > 0);
            assert_eq!(r.committed_steps + r.rolled_back_steps + r.down_steps, 40);
            assert!(r.max_dark_streak <= r.max_outage_streak.max(1));
            total_crashes += r.crashes;
            total_recoveries += r.recoveries;
            total_down += r.down_steps;
        }
        assert!(total_crashes > 0, "no controller crashes in 120 chaos steps");
        assert!(total_recoveries > 0, "crashes never recovered");
        assert!(total_down > 0, "controller never observed down");
    }

    #[test]
    fn same_seed_same_soak() {
        let (_, _, a) = setup();
        let (_, _, b) = setup();
        let cfg = ChaosConfig { seed: 0xBEEF, steps: 12, ..Default::default() };
        let ra = run_chaos(a, &cfg);
        let rb = run_chaos(b, &cfg);
        let key = |r: &ChaosReport| {
            r.steps
                .iter()
                .map(|s| {
                    (
                        s.label.clone(),
                        s.outcome,
                        s.attempts,
                        s.retries,
                        s.reinstalled,
                        s.delivered,
                        s.missed,
                    )
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(key(&ra), key(&rb));
        assert_eq!(ra.final_delivered, rb.final_delivered);
    }

    #[test]
    fn traced_soak_matches_log_audit_and_sees_every_outage() {
        let (_, _, input) = setup();
        let cfg = ChaosConfig {
            seed: 0xD06,
            steps: 16,
            probes_per_step: 2,
            sample: SampleRate::always(),
            ..Default::default()
        };
        let r = run_chaos(input, &cfg);
        // The inline cross-checks already asserted postcard==log per
        // step; here pin the aggregate shape.
        for s in &r.steps {
            assert_eq!(s.traced, 2, "1/1 sampling traces every witness");
            assert_eq!(s.loops, 0);
            // A step with misses must surface at least one blackhole
            // anomaly, and a fully delivered step must surface none.
            assert_eq!(s.blackholes > 0, s.missed > 0, "step {} ({})", s.step, s.label);
        }
        assert!(r.converged);

        // The traced soak is behaviourally identical to the untraced
        // one: same outcomes, same delivery accounting, same streaks.
        let (_, _, untraced) = setup();
        let base = run_chaos(untraced, &ChaosConfig { sample: SampleRate::DISABLED, ..cfg });
        let key = |r: &ChaosReport| {
            r.steps
                .iter()
                .map(|s| (s.label.clone(), s.outcome, s.delivered, s.missed))
                .collect::<Vec<_>>()
        };
        assert_eq!(key(&r), key(&base));
        assert_eq!(r.max_dark_streak, base.max_dark_streak);
    }

    #[test]
    fn lossy_seeds_do_roll_back_sometimes() {
        // Across a few seeds the channel dials must actually bite at
        // least once; otherwise the soak is not exercising retry paths.
        let mut rolled = 0usize;
        for seed in [1u64, 2, 3] {
            let (_, _, input) = setup();
            let cfg = ChaosConfig { seed, steps: 14, ..Default::default() };
            rolled += run_chaos(input, &cfg).rolled_back_steps;
        }
        assert!(rolled > 0, "no rollbacks in 42 lossy steps — dials too weak");
    }
}
