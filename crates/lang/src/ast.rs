//! Abstract syntax of packet subscriptions (Fig. 1 of the paper).
//!
//! A *filter* is a logical expression over constraints; each constraint
//! compares a packet attribute (or an aggregate of a state variable)
//! with a constant using a relation. A *rule* pairs a filter with a
//! forwarding directive, e.g. `stock == GOOGL: fwd(1)` (§IV-D).

use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Relations supported over numbers (equality and ordering) and strings
/// (equality and prefix), per §II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Rel {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    /// String prefix match: `name =^ "h1"` holds when the attribute
    /// starts with the constant.
    Prefix,
    /// Negated prefix match. Only produced by negation-pushing during
    /// DNF normalisation; has no surface syntax of its own.
    NotPrefix,
}

impl Rel {
    /// The relation denoting the complement set: used to push `not`
    /// through atomic constraints during DNF normalisation.
    pub fn negate(self) -> Rel {
        match self {
            Rel::Eq => Rel::Ne,
            Rel::Ne => Rel::Eq,
            Rel::Lt => Rel::Ge,
            Rel::Le => Rel::Gt,
            Rel::Gt => Rel::Le,
            Rel::Ge => Rel::Lt,
            Rel::Prefix => Rel::NotPrefix,
            Rel::NotPrefix => Rel::Prefix,
        }
    }

    /// Whether the relation applies to integer operands.
    pub fn applies_to_int(self) -> bool {
        !matches!(self, Rel::Prefix | Rel::NotPrefix)
    }

    /// Whether the relation applies to string operands.
    pub fn applies_to_str(self) -> bool {
        matches!(self, Rel::Eq | Rel::Ne | Rel::Prefix | Rel::NotPrefix)
    }

    /// Evaluate the relation on two integers.
    pub fn eval_int(self, lhs: i64, rhs: i64) -> bool {
        match self {
            Rel::Eq => lhs == rhs,
            Rel::Ne => lhs != rhs,
            Rel::Lt => lhs < rhs,
            Rel::Le => lhs <= rhs,
            Rel::Gt => lhs > rhs,
            Rel::Ge => lhs >= rhs,
            Rel::Prefix | Rel::NotPrefix => false,
        }
    }

    /// Evaluate the relation on two strings.
    pub fn eval_str(self, lhs: &str, rhs: &str) -> bool {
        match self {
            Rel::Eq => lhs == rhs,
            Rel::Ne => lhs != rhs,
            Rel::Prefix => lhs.starts_with(rhs),
            Rel::NotPrefix => !lhs.starts_with(rhs),
            // Ordering over strings is not part of the language.
            _ => false,
        }
    }
}

impl fmt::Display for Rel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Rel::Eq => "==",
            Rel::Ne => "!=",
            Rel::Lt => "<",
            Rel::Le => "<=",
            Rel::Gt => ">",
            Rel::Ge => ">=",
            Rel::Prefix => "=^",
            Rel::NotPrefix => "!^",
        };
        f.write_str(s)
    }
}

/// Stateful aggregation functions over tumbling windows (§II). Only
/// local, windowed aggregates are expressible, mirroring the paper's
/// restrictions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AggFunc {
    Count,
    Sum,
    Avg,
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Avg => "avg",
        })
    }
}

/// The left-hand side of a constraint: either a packet attribute
/// (possibly a dotted path like `ip.dst` or `int.hop_latency`) or a
/// windowed aggregate over an attribute.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Operand {
    /// A packet attribute, referenced by its (dotted) name.
    Field(String),
    /// A windowed aggregate of an attribute, e.g. `avg(price)`.
    Aggregate { func: AggFunc, field: String },
}

impl Operand {
    /// The attribute name this operand reads.
    pub fn field_name(&self) -> &str {
        match self {
            Operand::Field(f) => f,
            Operand::Aggregate { field, .. } => field,
        }
    }

    /// Whether evaluating this operand requires switch state.
    pub fn is_stateful(&self) -> bool {
        matches!(self, Operand::Aggregate { .. })
    }

    /// A canonical string used as the BDD variable key for this operand:
    /// `price` for fields, `avg(price)` for aggregates.
    pub fn key(&self) -> String {
        self.to_string()
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Field(name) => f.write_str(name),
            Operand::Aggregate { func, field } => write!(f, "{func}({field})"),
        }
    }
}

/// An atomic constraint: `operand REL constant`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Predicate {
    pub operand: Operand,
    pub rel: Rel,
    pub constant: Value,
}

impl Predicate {
    pub fn new(operand: Operand, rel: Rel, constant: impl Into<Value>) -> Self {
        Predicate { operand, rel, constant: constant.into() }
    }

    /// Shorthand for a stateless field constraint.
    pub fn field(name: &str, rel: Rel, constant: impl Into<Value>) -> Self {
        Predicate::new(Operand::Field(name.to_string()), rel, constant)
    }

    /// The complement constraint (`negate` of the relation).
    pub fn negated(&self) -> Predicate {
        Predicate {
            operand: self.operand.clone(),
            rel: self.rel.negate(),
            constant: self.constant.clone(),
        }
    }

    /// Evaluate this predicate against a concrete attribute value.
    /// Type mismatches evaluate to `false` (a packet lacking the typed
    /// attribute simply does not match, per pub/sub convention).
    pub fn eval(&self, actual: &Value) -> bool {
        match (actual, &self.constant) {
            (Value::Int(a), Value::Int(c)) => self.rel.eval_int(*a, *c),
            (Value::Str(a), Value::Str(c)) => self.rel.eval_str(a, c),
            _ => false,
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.operand, self.rel, self.constant)
    }
}

/// A filter expression: the boolean combination layer of Fig. 1.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Expr {
    /// Matches every packet. Used by the memory-reduction routing policy
    /// for `F_up` sets (§IV-C).
    True,
    /// Matches no packet.
    False,
    Atom(Predicate),
    Not(Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
}

impl Expr {
    pub fn atom(p: Predicate) -> Expr {
        Expr::Atom(p)
    }

    pub fn and(self, rhs: Expr) -> Expr {
        Expr::And(Box::new(self), Box::new(rhs))
    }

    pub fn or(self, rhs: Expr) -> Expr {
        Expr::Or(Box::new(self), Box::new(rhs))
    }

    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Expr {
        Expr::Not(Box::new(self))
    }

    /// Build the conjunction of an iterator of expressions (`True` when
    /// empty).
    pub fn conj<I: IntoIterator<Item = Expr>>(parts: I) -> Expr {
        parts.into_iter().reduce(Expr::and).unwrap_or(Expr::True)
    }

    /// Build the disjunction of an iterator of expressions (`False` when
    /// empty).
    pub fn disj<I: IntoIterator<Item = Expr>>(parts: I) -> Expr {
        parts.into_iter().reduce(Expr::or).unwrap_or(Expr::False)
    }

    /// Evaluate against an attribute lookup function. `lookup` returns
    /// `None` when the packet does not carry the attribute, in which
    /// case the atom is false.
    pub fn eval_with<F: Fn(&Operand) -> Option<Value> + Copy>(&self, lookup: F) -> bool {
        match self {
            Expr::True => true,
            Expr::False => false,
            Expr::Atom(p) => lookup(&p.operand).is_some_and(|v| p.eval(&v)),
            Expr::Not(e) => !e.eval_with(lookup),
            Expr::And(a, b) => a.eval_with(lookup) && b.eval_with(lookup),
            Expr::Or(a, b) => a.eval_with(lookup) || b.eval_with(lookup),
        }
    }

    /// All distinct operand keys mentioned by the expression, in first-
    /// appearance order. The compiler uses this to pick a variable order.
    pub fn operands(&self) -> Vec<Operand> {
        let mut out = Vec::new();
        self.collect_operands(&mut out);
        out
    }

    fn collect_operands(&self, out: &mut Vec<Operand>) {
        match self {
            Expr::True | Expr::False => {}
            Expr::Atom(p) => {
                if !out.contains(&p.operand) {
                    out.push(p.operand.clone());
                }
            }
            Expr::Not(e) => e.collect_operands(out),
            Expr::And(a, b) | Expr::Or(a, b) => {
                a.collect_operands(out);
                b.collect_operands(out);
            }
        }
    }

    /// Whether any constraint in the expression is stateful.
    pub fn is_stateful(&self) -> bool {
        match self {
            Expr::True | Expr::False => false,
            Expr::Atom(p) => p.operand.is_stateful(),
            Expr::Not(e) => e.is_stateful(),
            Expr::And(a, b) | Expr::Or(a, b) => a.is_stateful() || b.is_stateful(),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Fully parenthesised form: verbose but guaranteed to reparse.
        match self {
            Expr::True => f.write_str("true"),
            Expr::False => f.write_str("false"),
            Expr::Atom(p) => write!(f, "{p}"),
            Expr::Not(e) => write!(f, "(not {e})"),
            Expr::And(a, b) => write!(f, "({a} and {b})"),
            Expr::Or(a, b) => write!(f, "({a} or {b})"),
        }
    }
}

/// A physical switch port number.
pub type Port = u16;

/// The action half of a rule (§IV-D and the DNS resolver application of
/// §VIII-C.5): what to do with a matching packet.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Action {
    /// Forward to one or more ports (multicast when more than one).
    Forward(Vec<Port>),
    /// Craft a DNS authoritative answer with the given IPv4 address and
    /// send it back to the source (custom action, §VIII-C.5).
    AnswerDns(u32),
    /// Drop the packet.
    Drop,
    /// An application-defined action with a name and integer arguments.
    /// The dataplane maps it onto a registered action handler.
    Custom(String, Vec<i64>),
}

impl Action {
    /// Forwarding ports, if this is a `Forward` action.
    pub fn ports(&self) -> Option<&[Port]> {
        match self {
            Action::Forward(ps) => Some(ps),
            _ => None,
        }
    }

    /// Merge two actions for a packet matched by multiple rules.
    /// Forwarding sets union (and become a multicast group, §V-D);
    /// any non-forward action dominates a `Drop`; two distinct custom
    /// actions keep the first (the dataplane logs the conflict).
    pub fn merge(&self, other: &Action) -> Action {
        match (self, other) {
            (Action::Forward(a), Action::Forward(b)) => {
                let mut ports: Vec<Port> = a.iter().chain(b.iter()).copied().collect();
                ports.sort_unstable();
                ports.dedup();
                Action::Forward(ports)
            }
            (Action::Drop, x) | (x, Action::Drop) => x.clone(),
            (a, _) => a.clone(),
        }
    }
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Forward(ports) => {
                write!(f, "fwd(")?;
                for (i, p) in ports.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            Action::AnswerDns(ip) => {
                write!(f, "answerDNS({})", crate::value::format_ipv4(*ip))
            }
            Action::Drop => f.write_str("drop()"),
            Action::Custom(name, args) => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// A complete subscription rule: `filter: action`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Rule {
    pub filter: Expr,
    pub action: Action,
}

impl Rule {
    pub fn new(filter: Expr, action: Action) -> Self {
        Rule { filter, action }
    }

    /// A rule forwarding matches of `filter` to a single port.
    pub fn fwd(filter: Expr, port: Port) -> Self {
        Rule { filter, action: Action::Forward(vec![port]) }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.filter, self.action)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(name: &str, rel: Rel, v: i64) -> Predicate {
        Predicate::field(name, rel, v)
    }

    #[test]
    fn rel_negation_is_involutive() {
        for r in [Rel::Eq, Rel::Ne, Rel::Lt, Rel::Le, Rel::Gt, Rel::Ge, Rel::Prefix, Rel::NotPrefix]
        {
            assert_eq!(r.negate().negate(), r);
        }
    }

    #[test]
    fn rel_eval_int() {
        assert!(Rel::Eq.eval_int(3, 3));
        assert!(Rel::Ne.eval_int(3, 4));
        assert!(Rel::Lt.eval_int(3, 4));
        assert!(Rel::Le.eval_int(4, 4));
        assert!(Rel::Gt.eval_int(5, 4));
        assert!(Rel::Ge.eval_int(4, 4));
        assert!(!Rel::Gt.eval_int(4, 4));
    }

    #[test]
    fn rel_eval_str_prefix() {
        assert!(Rel::Prefix.eval_str("GOOGL", "GOO"));
        assert!(!Rel::Prefix.eval_str("GOO", "GOOGL"));
        assert!(Rel::NotPrefix.eval_str("MSFT", "GOO"));
        assert!(Rel::Eq.eval_str("a", "a"));
    }

    #[test]
    fn predicate_eval_respects_types() {
        let pred = Predicate::field("stock", Rel::Eq, "GOOGL");
        assert!(pred.eval(&Value::from("GOOGL")));
        assert!(!pred.eval(&Value::Int(5))); // type mismatch -> false
    }

    #[test]
    fn predicate_negated_complements() {
        let pred = p("price", Rel::Gt, 50);
        for v in [-5i64, 0, 49, 50, 51, 1000] {
            assert_ne!(pred.eval(&Value::Int(v)), pred.negated().eval(&Value::Int(v)));
        }
    }

    #[test]
    fn expr_eval_boolean_structure() {
        let e = Expr::atom(p("a", Rel::Gt, 1)).and(Expr::atom(p("b", Rel::Lt, 5)));
        let lookup = |op: &Operand| match op.field_name() {
            "a" => Some(Value::Int(2)),
            "b" => Some(Value::Int(3)),
            _ => None,
        };
        assert!(e.eval_with(lookup));
        assert!(!e.clone().not().eval_with(lookup));
        assert!(Expr::True.eval_with(lookup));
        assert!(!Expr::False.eval_with(lookup));
        assert!(Expr::False.or(e).eval_with(lookup));
    }

    #[test]
    fn expr_missing_attribute_is_false() {
        let e = Expr::atom(p("missing", Rel::Eq, 1));
        fn none(_: &Operand) -> Option<Value> {
            None
        }
        assert!(!e.eval_with(none));
        // ...but the negation of a missing attribute is true.
        assert!(e.not().eval_with(none));
    }

    #[test]
    fn operand_collection_dedups_in_order() {
        let e = Expr::atom(p("b", Rel::Gt, 1))
            .and(Expr::atom(p("a", Rel::Lt, 2)))
            .or(Expr::atom(p("b", Rel::Eq, 3)));
        let ops: Vec<String> = e.operands().iter().map(|o| o.key()).collect();
        assert_eq!(ops, vec!["b", "a"]);
    }

    #[test]
    fn conj_disj_of_empty() {
        assert_eq!(Expr::conj(std::iter::empty()), Expr::True);
        assert_eq!(Expr::disj(std::iter::empty()), Expr::False);
    }

    #[test]
    fn stateful_detection() {
        let agg = Predicate::new(
            Operand::Aggregate { func: AggFunc::Avg, field: "price".into() },
            Rel::Gt,
            60,
        );
        assert!(Expr::atom(agg).is_stateful());
        assert!(!Expr::atom(p("x", Rel::Eq, 1)).is_stateful());
    }

    #[test]
    fn action_merge_unions_ports() {
        let a = Action::Forward(vec![1, 2]);
        let b = Action::Forward(vec![2, 3]);
        assert_eq!(a.merge(&b), Action::Forward(vec![1, 2, 3]));
        assert_eq!(Action::Drop.merge(&a), a);
        assert_eq!(a.merge(&Action::Drop), a);
    }

    #[test]
    fn display_forms() {
        let r = Rule::fwd(
            Expr::atom(Predicate::field("stock", Rel::Eq, "GOOGL")).and(Expr::atom(p(
                "price",
                Rel::Gt,
                50,
            ))),
            1,
        );
        assert_eq!(r.to_string(), "(stock == \"GOOGL\" and price > 50): fwd(1)");
        assert_eq!(Action::AnswerDns(0x0A00_0069).to_string(), "answerDNS(10.0.0.105)");
        assert_eq!(
            Operand::Aggregate { func: AggFunc::Avg, field: "price".into() }.key(),
            "avg(price)"
        );
    }
}
