//! Semantic algebra of atomic predicates.
//!
//! The BDD reductions of §V-C(iii) need *domain-specific knowledge*: if
//! an ancestor node fixes `price > 50` to true, then `price > 40` is
//! implied true and `price < 30` implied false. This module provides
//! that reasoning for both numeric predicates (via exact interval sets
//! over `i64`) and string predicates (via equality/prefix constraint
//! sets), plus conjunction-satisfiability used to prune unsatisfiable
//! DNF terms and BDD paths.

use crate::ast::{Predicate, Rel};
use crate::value::Value;
use std::collections::BTreeSet;
use std::fmt;

// ---------------------------------------------------------------------------
// Integer interval sets
// ---------------------------------------------------------------------------

/// A set of `i64` values represented as a sorted union of disjoint,
/// non-adjacent closed intervals. The representation is canonical, so
/// equality of sets is structural equality.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct IntSet {
    /// Sorted, disjoint, non-adjacent `[lo, hi]` intervals.
    ivs: Vec<(i64, i64)>,
}

impl IntSet {
    /// The empty set.
    pub fn empty() -> Self {
        IntSet { ivs: Vec::new() }
    }

    /// The full set of all `i64` values.
    pub fn full() -> Self {
        IntSet { ivs: vec![(i64::MIN, i64::MAX)] }
    }

    /// The singleton `{v}`.
    pub fn point(v: i64) -> Self {
        IntSet { ivs: vec![(v, v)] }
    }

    /// The closed interval `[lo, hi]` (empty when `lo > hi`).
    pub fn range(lo: i64, hi: i64) -> Self {
        if lo > hi {
            IntSet::empty()
        } else {
            IntSet { ivs: vec![(lo, hi)] }
        }
    }

    /// The set denoted by `field REL c`.
    pub fn from_rel(rel: Rel, c: i64) -> Self {
        match rel {
            Rel::Eq => IntSet::point(c),
            Rel::Ne => IntSet::point(c).complement(),
            Rel::Lt => {
                if c == i64::MIN {
                    IntSet::empty()
                } else {
                    IntSet::range(i64::MIN, c - 1)
                }
            }
            Rel::Le => IntSet::range(i64::MIN, c),
            Rel::Gt => {
                if c == i64::MAX {
                    IntSet::empty()
                } else {
                    IntSet::range(c + 1, i64::MAX)
                }
            }
            Rel::Ge => IntSet::range(c, i64::MAX),
            // String relations denote nothing over the integer domain.
            Rel::Prefix | Rel::NotPrefix => IntSet::empty(),
        }
    }

    /// Normalise: sort, merge overlapping and adjacent intervals.
    fn normalise(mut ivs: Vec<(i64, i64)>) -> Self {
        ivs.retain(|&(lo, hi)| lo <= hi);
        ivs.sort_unstable();
        let mut out: Vec<(i64, i64)> = Vec::with_capacity(ivs.len());
        for (lo, hi) in ivs {
            match out.last_mut() {
                // Merge if overlapping or adjacent (watch for overflow at MAX).
                Some(&mut (_, ref mut phi)) if lo <= phi.saturating_add(1) => {
                    *phi = (*phi).max(hi);
                }
                _ => out.push((lo, hi)),
            }
        }
        IntSet { ivs: out }
    }

    pub fn is_empty(&self) -> bool {
        self.ivs.is_empty()
    }

    pub fn is_full(&self) -> bool {
        self.ivs == [(i64::MIN, i64::MAX)]
    }

    pub fn contains(&self, v: i64) -> bool {
        self.ivs
            .binary_search_by(|&(lo, hi)| {
                if v < lo {
                    std::cmp::Ordering::Greater
                } else if v > hi {
                    std::cmp::Ordering::Less
                } else {
                    std::cmp::Ordering::Equal
                }
            })
            .is_ok()
    }

    /// The intervals, sorted and disjoint. Useful for lowering to table
    /// entries (Algorithm 2 intersects predicate ranges along paths).
    pub fn intervals(&self) -> &[(i64, i64)] {
        &self.ivs
    }

    pub fn complement(&self) -> IntSet {
        let mut out = Vec::with_capacity(self.ivs.len() + 1);
        let mut next = i64::MIN;
        let mut exhausted = false;
        for &(lo, hi) in &self.ivs {
            if lo > next {
                out.push((next, lo - 1));
            }
            if hi == i64::MAX {
                exhausted = true;
                break;
            }
            next = hi + 1;
        }
        if !exhausted {
            out.push((next, i64::MAX));
        }
        // Handle the case where the set starts at i64::MIN: the loop
        // above pushes nothing for it because lo == next.
        IntSet::normalise(out)
    }

    pub fn intersect(&self, other: &IntSet) -> IntSet {
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.ivs.len() && j < other.ivs.len() {
            let (alo, ahi) = self.ivs[i];
            let (blo, bhi) = other.ivs[j];
            let lo = alo.max(blo);
            let hi = ahi.min(bhi);
            if lo <= hi {
                out.push((lo, hi));
            }
            if ahi < bhi {
                i += 1;
            } else {
                j += 1;
            }
        }
        IntSet { ivs: out }
    }

    pub fn union(&self, other: &IntSet) -> IntSet {
        let mut ivs = self.ivs.clone();
        ivs.extend_from_slice(&other.ivs);
        IntSet::normalise(ivs)
    }

    /// Is `self ⊆ other`?
    pub fn is_subset(&self, other: &IntSet) -> bool {
        self.intersect(other) == *self
    }

    /// Is `self ∩ other = ∅`?
    pub fn is_disjoint(&self, other: &IntSet) -> bool {
        self.intersect(other).is_empty()
    }

    /// Total number of values in the set, saturating at `u64::MAX`.
    pub fn len(&self) -> u64 {
        let mut n: u64 = 0;
        for &(lo, hi) in &self.ivs {
            let w = (hi as i128 - lo as i128 + 1) as u128;
            n = n.saturating_add(w.min(u128::from(u64::MAX)) as u64);
        }
        n
    }

    /// An arbitrary element of the set, if non-empty. Used by tests and
    /// by the workload generator to pick satisfying witnesses.
    pub fn sample(&self) -> Option<i64> {
        self.ivs.first().map(|&(lo, _)| lo)
    }
}

impl fmt::Display for IntSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return f.write_str("∅");
        }
        for (i, &(lo, hi)) in self.ivs.iter().enumerate() {
            if i > 0 {
                f.write_str(" ∪ ")?;
            }
            if lo == hi {
                write!(f, "{{{lo}}}")?;
            } else {
                write!(f, "[{lo},{hi}]")?;
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// String constraint sets
// ---------------------------------------------------------------------------

/// A set of strings described by equality/prefix constraints: the
/// intersection of `= eq?`, `starts_with(prefix)?`, `∉ ne`, and
/// `¬starts_with(p)` for every `p ∈ not_prefixes`. `Empty` is the
/// canonical unsatisfiable set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StrSet {
    Empty,
    Constrained {
        eq: Option<String>,
        prefix: Option<String>,
        ne: BTreeSet<String>,
        not_prefixes: BTreeSet<String>,
    },
}

impl StrSet {
    /// The set of all strings.
    pub fn full() -> Self {
        StrSet::Constrained {
            eq: None,
            prefix: None,
            ne: BTreeSet::new(),
            not_prefixes: BTreeSet::new(),
        }
    }

    /// The set denoted by `field REL s`.
    pub fn from_rel(rel: Rel, s: &str) -> Self {
        let mut set = StrSet::full();
        set.add(rel, s);
        set
    }

    /// Intersect with the constraint `field REL s`, normalising.
    pub fn add(&mut self, rel: Rel, s: &str) {
        let StrSet::Constrained { eq, prefix, ne, not_prefixes } = self else {
            return; // already empty
        };
        match rel {
            Rel::Eq => match eq {
                Some(e) if e != s => *self = StrSet::Empty,
                _ => *eq = Some(s.to_string()),
            },
            Rel::Ne => {
                ne.insert(s.to_string());
            }
            Rel::Prefix => match prefix.as_deref() {
                // Keep the longer (more specific) of two nested prefixes;
                // incompatible prefixes make the set empty.
                Some(p) if p.starts_with(s) => {}
                Some(p) if s.starts_with(p) => *prefix = Some(s.to_string()),
                Some(_) => *self = StrSet::Empty,
                None => *prefix = Some(s.to_string()),
            },
            Rel::NotPrefix => {
                not_prefixes.insert(s.to_string());
            }
            // Numeric relations denote nothing over strings.
            _ => *self = StrSet::Empty,
        }
        self.canonicalise();
    }

    fn canonicalise(&mut self) {
        let StrSet::Constrained { eq, prefix, ne, not_prefixes } = self else {
            return;
        };
        if let Some(e) = eq.as_deref() {
            let violates = prefix.as_deref().is_some_and(|p| !e.starts_with(p))
                || ne.contains(e)
                || not_prefixes.iter().any(|p| e.starts_with(p));
            if violates {
                *self = StrSet::Empty;
                return;
            }
            // With an equality pinned, the other constraints are redundant.
            *prefix = None;
            ne.clear();
            not_prefixes.clear();
            return;
        }
        if let Some(p) = prefix.as_deref() {
            // A not-prefix that is a prefix of (or equal to) `p` empties
            // the set: everything starting with `p` also starts with it.
            if not_prefixes.iter().any(|np| p.starts_with(np)) {
                *self = StrSet::Empty;
                return;
            }
            // Drop irrelevant constraints outside the `p` subtree.
            ne.retain(|s| s.starts_with(p));
            not_prefixes.retain(|np| np.starts_with(p));
        }
    }

    pub fn is_empty(&self) -> bool {
        // `ne`/`not_prefixes` exclusions can never exhaust the infinite
        // string universe (or a prefix subtree), so `Constrained` is
        // always non-empty.
        matches!(self, StrSet::Empty)
    }

    pub fn contains(&self, s: &str) -> bool {
        match self {
            StrSet::Empty => false,
            StrSet::Constrained { eq, prefix, ne, not_prefixes } => {
                eq.as_deref().is_none_or(|e| e == s)
                    && prefix.as_deref().is_none_or(|p| s.starts_with(p))
                    && !ne.contains(s)
                    && !not_prefixes.iter().any(|p| s.starts_with(p))
            }
        }
    }

    pub fn intersect(&self, other: &StrSet) -> StrSet {
        match (self, other) {
            (StrSet::Empty, _) | (_, StrSet::Empty) => StrSet::Empty,
            (a, StrSet::Constrained { eq, prefix, ne, not_prefixes }) => {
                let mut out = a.clone();
                if let Some(e) = eq {
                    out.add(Rel::Eq, e);
                }
                if let Some(p) = prefix {
                    out.add(Rel::Prefix, p);
                }
                for s in ne {
                    out.add(Rel::Ne, s);
                }
                for p in not_prefixes {
                    out.add(Rel::NotPrefix, p);
                }
                out
            }
        }
    }

    /// The pinned equality value, when the set is a singleton.
    pub fn exact(&self) -> Option<&str> {
        match self {
            StrSet::Constrained { eq: Some(e), .. } => Some(e),
            _ => None,
        }
    }

    /// The required prefix, when one is pinned (and no equality).
    pub fn required_prefix(&self) -> Option<&str> {
        match self {
            StrSet::Constrained { eq: None, prefix: Some(p), .. } => Some(p),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------------
// Implication between same-operand predicates
// ---------------------------------------------------------------------------

/// Given that predicate `given` evaluated to `given_val` for the packet,
/// decide the value of `q` over the *same operand*:
/// `Some(true)` (implied true), `Some(false)` (implied false), or `None`
/// (undetermined). Predicates over different operands are independent
/// and must not be passed here.
pub fn implication(given: &Predicate, given_val: bool, q: &Predicate) -> Option<bool> {
    debug_assert_eq!(given.operand, q.operand, "implication requires a shared operand");
    match (&given.constant, &q.constant) {
        (Value::Int(gc), Value::Int(qc)) => {
            let gset = IntSet::from_rel(given.rel, *gc);
            let known = if given_val { gset } else { gset.complement() };
            let qset = IntSet::from_rel(q.rel, *qc);
            if known.is_empty() {
                // Contradictory ancestor: any answer is sound; pick true.
                return Some(true);
            }
            if known.is_subset(&qset) {
                Some(true)
            } else if known.is_disjoint(&qset) {
                Some(false)
            } else {
                None
            }
        }
        (Value::Str(gs), Value::Str(qs)) => str_implication(given.rel, gs, given_val, q.rel, qs),
        // Mixed types: the attribute can only have one type at runtime;
        // the parser prevents this, so treat as undetermined.
        _ => None,
    }
}

fn str_implication(grel: Rel, gs: &str, gval: bool, qrel: Rel, qs: &str) -> Option<bool> {
    // Normalise "given false" into the complementary relation.
    let grel = if gval { grel } else { grel.negate() };
    match (grel, qrel) {
        // field == gs
        (Rel::Eq, _) => Some(match qrel {
            Rel::Eq => gs == qs,
            Rel::Ne => gs != qs,
            Rel::Prefix => gs.starts_with(qs),
            Rel::NotPrefix => !gs.starts_with(qs),
            _ => false,
        }),
        // field != gs
        (Rel::Ne, Rel::Eq) if gs == qs => Some(false),
        (Rel::Ne, Rel::Ne) if gs == qs => Some(true),
        (Rel::Ne, _) => None,
        // field starts_with gs
        (Rel::Prefix, Rel::Eq) => {
            if !qs.starts_with(gs) {
                Some(false)
            } else {
                None
            }
        }
        (Rel::Prefix, Rel::Ne) => {
            if !qs.starts_with(gs) {
                Some(true)
            } else {
                None
            }
        }
        (Rel::Prefix, Rel::Prefix) => {
            if gs.starts_with(qs) {
                Some(true) // finer prefix implies coarser
            } else if qs.starts_with(gs) {
                None // coarser does not decide finer
            } else {
                Some(false) // incompatible subtrees
            }
        }
        (Rel::Prefix, Rel::NotPrefix) => {
            str_implication(Rel::Prefix, gs, true, Rel::Prefix, qs).map(|b| !b)
        }
        // field does NOT start with gs
        (Rel::NotPrefix, Rel::Eq) => {
            if qs.starts_with(gs) {
                Some(false)
            } else {
                None
            }
        }
        (Rel::NotPrefix, Rel::Ne) => {
            if qs.starts_with(gs) {
                Some(true)
            } else {
                None
            }
        }
        (Rel::NotPrefix, Rel::Prefix) => {
            if qs.starts_with(gs) {
                Some(false) // would require the forbidden prefix
            } else {
                None
            }
        }
        (Rel::NotPrefix, Rel::NotPrefix) => {
            if qs.starts_with(gs) {
                Some(true)
            } else {
                None
            }
        }
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Conjunction satisfiability
// ---------------------------------------------------------------------------

/// Decide whether a conjunction of atomic predicates is satisfiable,
/// i.e. some packet matches all of them. Predicates over distinct
/// operands are independent; per operand we intersect the denoted sets.
/// A mix of integer and string constraints on the same operand is
/// unsatisfiable (an attribute has a single type).
pub fn conjunction_satisfiable(atoms: &[Predicate]) -> bool {
    use std::collections::HashMap;
    let mut ints: HashMap<String, IntSet> = HashMap::new();
    let mut strs: HashMap<String, StrSet> = HashMap::new();
    for a in atoms {
        let key = a.operand.key();
        match &a.constant {
            Value::Int(c) => {
                if strs.contains_key(&key) {
                    return false;
                }
                let e = ints.entry(key).or_insert_with(IntSet::full);
                *e = e.intersect(&IntSet::from_rel(a.rel, *c));
                if e.is_empty() {
                    return false;
                }
            }
            Value::Str(s) => {
                if ints.contains_key(&key) {
                    return false;
                }
                let e = strs.entry(key).or_insert_with(StrSet::full);
                e.add(a.rel, s);
                if e.is_empty() {
                    return false;
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Predicate;

    #[test]
    fn intset_from_rel_contains() {
        assert!(IntSet::from_rel(Rel::Gt, 50).contains(51));
        assert!(!IntSet::from_rel(Rel::Gt, 50).contains(50));
        assert!(IntSet::from_rel(Rel::Ge, 50).contains(50));
        assert!(IntSet::from_rel(Rel::Lt, 50).contains(49));
        assert!(!IntSet::from_rel(Rel::Lt, 50).contains(50));
        assert!(IntSet::from_rel(Rel::Ne, 5).contains(4));
        assert!(!IntSet::from_rel(Rel::Ne, 5).contains(5));
        assert!(IntSet::from_rel(Rel::Eq, 5).contains(5));
    }

    #[test]
    fn intset_boundaries() {
        assert!(IntSet::from_rel(Rel::Lt, i64::MIN).is_empty());
        assert!(IntSet::from_rel(Rel::Gt, i64::MAX).is_empty());
        assert!(IntSet::from_rel(Rel::Le, i64::MAX).is_full());
        assert!(IntSet::from_rel(Rel::Ge, i64::MIN).is_full());
    }

    #[test]
    fn intset_complement_involutive() {
        for set in [
            IntSet::empty(),
            IntSet::full(),
            IntSet::point(0),
            IntSet::point(i64::MIN),
            IntSet::point(i64::MAX),
            IntSet::range(10, 20),
            IntSet::range(10, 20).union(&IntSet::range(30, 40)),
            IntSet::from_rel(Rel::Ne, 7),
        ] {
            assert_eq!(set.complement().complement(), set, "double complement of {set}");
        }
        assert!(IntSet::full().complement().is_empty());
        assert!(IntSet::empty().complement().is_full());
    }

    #[test]
    fn intset_union_merges_adjacent() {
        let s = IntSet::range(1, 5).union(&IntSet::range(6, 9));
        assert_eq!(s.intervals(), &[(1, 9)]);
        let s = IntSet::range(1, 5).union(&IntSet::range(3, 9));
        assert_eq!(s.intervals(), &[(1, 9)]);
        let s = IntSet::range(1, 2).union(&IntSet::range(4, 5));
        assert_eq!(s.intervals(), &[(1, 2), (4, 5)]);
    }

    #[test]
    fn intset_intersect() {
        let a = IntSet::range(0, 10).union(&IntSet::range(20, 30));
        let b = IntSet::range(5, 25);
        assert_eq!(a.intersect(&b).intervals(), &[(5, 10), (20, 25)]);
        assert!(a.intersect(&IntSet::empty()).is_empty());
        assert_eq!(a.intersect(&IntSet::full()), a);
    }

    #[test]
    fn intset_subset_disjoint() {
        let gt50 = IntSet::from_rel(Rel::Gt, 50);
        let gt40 = IntSet::from_rel(Rel::Gt, 40);
        let lt30 = IntSet::from_rel(Rel::Lt, 30);
        assert!(gt50.is_subset(&gt40));
        assert!(!gt40.is_subset(&gt50));
        assert!(gt50.is_disjoint(&lt30));
        assert!(!gt40.is_disjoint(&gt50));
    }

    #[test]
    fn intset_len_and_sample() {
        assert_eq!(IntSet::range(1, 10).len(), 10);
        assert_eq!(IntSet::point(5).len(), 1);
        assert_eq!(IntSet::empty().len(), 0);
        assert_eq!(IntSet::range(3, 9).sample(), Some(3));
        assert_eq!(IntSet::empty().sample(), None);
        assert_eq!(IntSet::full().len(), u64::MAX); // saturates
    }

    #[test]
    fn strset_eq_pin() {
        let mut s = StrSet::full();
        s.add(Rel::Eq, "GOOGL");
        assert!(s.contains("GOOGL"));
        assert!(!s.contains("MSFT"));
        assert_eq!(s.exact(), Some("GOOGL"));
        s.add(Rel::Eq, "MSFT");
        assert!(s.is_empty());
    }

    #[test]
    fn strset_prefix_nesting() {
        let mut s = StrSet::full();
        s.add(Rel::Prefix, "GO");
        s.add(Rel::Prefix, "GOO");
        assert_eq!(s.required_prefix(), Some("GOO"));
        s.add(Rel::Prefix, "MS");
        assert!(s.is_empty());
    }

    #[test]
    fn strset_eq_vs_prefix() {
        let s = StrSet::from_rel(Rel::Eq, "GOOGL").intersect(&StrSet::from_rel(Rel::Prefix, "GOO"));
        assert!(!s.is_empty());
        let s = StrSet::from_rel(Rel::Eq, "MSFT").intersect(&StrSet::from_rel(Rel::Prefix, "GOO"));
        assert!(s.is_empty());
    }

    #[test]
    fn strset_not_prefix_empties_prefix() {
        let s =
            StrSet::from_rel(Rel::Prefix, "GOO").intersect(&StrSet::from_rel(Rel::NotPrefix, "G"));
        assert!(s.is_empty());
        // Not-prefix of a *finer* subtree does not empty it.
        let s = StrSet::from_rel(Rel::Prefix, "GOO")
            .intersect(&StrSet::from_rel(Rel::NotPrefix, "GOOG"));
        assert!(!s.is_empty());
        assert!(s.contains("GOOX"));
        assert!(!s.contains("GOOGL"));
    }

    #[test]
    fn strset_ne_exclusion() {
        let s = StrSet::from_rel(Rel::Ne, "A").intersect(&StrSet::from_rel(Rel::Ne, "B"));
        assert!(!s.contains("A"));
        assert!(!s.contains("B"));
        assert!(s.contains("C"));
        let s = s.intersect(&StrSet::from_rel(Rel::Eq, "A"));
        assert!(s.is_empty());
    }

    fn pred(rel: Rel, v: impl Into<Value>) -> Predicate {
        Predicate::field("f", rel, v)
    }

    #[test]
    fn implication_numeric() {
        // price > 50 true ⇒ price > 40 true.
        assert_eq!(implication(&pred(Rel::Gt, 50i64), true, &pred(Rel::Gt, 40i64)), Some(true));
        // price > 50 true ⇒ price < 30 false.
        assert_eq!(implication(&pred(Rel::Gt, 50i64), true, &pred(Rel::Lt, 30i64)), Some(false));
        // price > 50 false ⇒ price < 60 undetermined? price <= 50 ⊆ price < 60 → true.
        assert_eq!(implication(&pred(Rel::Gt, 50i64), false, &pred(Rel::Lt, 60i64)), Some(true));
        // price > 50 true ⇒ price == 60 undetermined.
        assert_eq!(implication(&pred(Rel::Gt, 50i64), true, &pred(Rel::Eq, 60i64)), None);
        // price == 60 true ⇒ price > 50 true.
        assert_eq!(implication(&pred(Rel::Eq, 60i64), true, &pred(Rel::Gt, 50i64)), Some(true));
        // price == 60 false ⇒ price == 60 false (trivially).
        assert_eq!(implication(&pred(Rel::Eq, 60i64), false, &pred(Rel::Eq, 60i64)), Some(false));
        // price != 60 true ⇒ price == 60 false.
        assert_eq!(implication(&pred(Rel::Ne, 60i64), true, &pred(Rel::Eq, 60i64)), Some(false));
    }

    #[test]
    fn implication_string() {
        // stock == GOOGL true decides everything.
        assert_eq!(
            implication(&pred(Rel::Eq, "GOOGL"), true, &pred(Rel::Prefix, "GOO")),
            Some(true)
        );
        assert_eq!(implication(&pred(Rel::Eq, "GOOGL"), true, &pred(Rel::Eq, "MSFT")), Some(false));
        assert_eq!(implication(&pred(Rel::Eq, "GOOGL"), true, &pred(Rel::Ne, "MSFT")), Some(true));
        // stock == GOOGL false only decides GOOGL-related questions.
        assert_eq!(
            implication(&pred(Rel::Eq, "GOOGL"), false, &pred(Rel::Eq, "GOOGL")),
            Some(false)
        );
        assert_eq!(implication(&pred(Rel::Eq, "GOOGL"), false, &pred(Rel::Eq, "MSFT")), None);
        // prefix reasoning.
        assert_eq!(
            implication(&pred(Rel::Prefix, "GOO"), true, &pred(Rel::Prefix, "G")),
            Some(true)
        );
        assert_eq!(implication(&pred(Rel::Prefix, "G"), true, &pred(Rel::Prefix, "GOO")), None);
        assert_eq!(
            implication(&pred(Rel::Prefix, "GOO"), true, &pred(Rel::Prefix, "MS")),
            Some(false)
        );
        assert_eq!(
            implication(&pred(Rel::Prefix, "GOO"), true, &pred(Rel::Eq, "MSFT")),
            Some(false)
        );
        assert_eq!(
            implication(&pred(Rel::Prefix, "GOO"), false, &pred(Rel::Eq, "GOOGL")),
            Some(false)
        );
        assert_eq!(
            implication(&pred(Rel::Prefix, "GOO"), false, &pred(Rel::Prefix, "GOOG")),
            Some(false)
        );
    }

    #[test]
    fn implication_matches_brute_force_numeric() {
        // Exhaustive check over a small domain: implication() must agree
        // with truth-table evaluation over all values in [-3, 8].
        let rels = [Rel::Eq, Rel::Ne, Rel::Lt, Rel::Le, Rel::Gt, Rel::Ge];
        let consts = [-1i64, 0, 1, 3, 5];
        for &gr in &rels {
            for &gc in &consts {
                for &qr in &rels {
                    for &qc in &consts {
                        for gval in [true, false] {
                            let g = pred(gr, gc);
                            let q = pred(qr, qc);
                            let got = implication(&g, gval, &q);
                            // Brute force over a window that includes
                            // all boundaries (constants span [-1, 5]).
                            let mut all_true = true;
                            let mut all_false = true;
                            let mut any = false;
                            for v in -10i64..=15 {
                                if g.eval(&Value::Int(v)) == gval {
                                    any = true;
                                    if q.eval(&Value::Int(v)) {
                                        all_false = false;
                                    } else {
                                        all_true = false;
                                    }
                                }
                            }
                            if !any {
                                continue; // vacuous ancestors can answer anything
                            }
                            // The window [-10, 15] is conservative but not
                            // exhaustive; only check when implication()
                            // made a claim.
                            if let Some(b) = got {
                                if b {
                                    assert!(all_true, "{g} ={gval} wrongly implies {q} true");
                                } else {
                                    assert!(all_false, "{g} ={gval} wrongly implies {q} false");
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn conjunction_sat_basic() {
        let sat = |atoms: &[Predicate]| conjunction_satisfiable(atoms);
        assert!(sat(&[pred(Rel::Gt, 10i64), pred(Rel::Lt, 20i64)]));
        assert!(!sat(&[pred(Rel::Gt, 20i64), pred(Rel::Lt, 10i64)]));
        assert!(!sat(&[pred(Rel::Eq, 5i64), pred(Rel::Ne, 5i64)]));
        assert!(!sat(&[pred(Rel::Eq, "A"), pred(Rel::Eq, "B")]));
        assert!(sat(&[pred(Rel::Eq, "GOOGL"), pred(Rel::Prefix, "GOO")]));
        // Type clash on the same operand.
        assert!(!sat(&[pred(Rel::Eq, 5i64), pred(Rel::Eq, "A")]));
        // Distinct operands are independent.
        let a = Predicate::field("a", Rel::Gt, 20i64);
        let b = Predicate::field("b", Rel::Lt, 10i64);
        assert!(sat(&[a, b]));
        assert!(sat(&[])); // empty conjunction is `true`
    }
}
