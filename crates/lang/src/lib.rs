//! # camus-lang — the Camus packet-subscription language
//!
//! This crate implements the subscription language from *Forwarding and
//! Routing with Packet Subscriptions* (Jepsen et al., CoNEXT 2020):
//!
//! * the abstract syntax of filters (Fig. 1 of the paper): logical
//!   expressions of constraints over packet attributes and state
//!   variables ([`ast`]),
//! * a lexer and recursive-descent parser for the concrete syntax used
//!   throughout the paper, e.g. `stock == GOOGL and price > 50: fwd(1)`
//!   ([`lexer`], [`parser`]),
//! * normalisation to disjunctive normal form, the first step of the
//!   compiler pipeline ([`dnf`]),
//! * the semantic algebra of atomic predicates — satisfiability,
//!   implication and intersection over numeric intervals and string
//!   equality/prefix constraints — used by the BDD reductions
//!   ([`sets`]),
//! * the annotated header specification language of Fig. 4, which plays
//!   the role of the user-provided P4 header declarations ([`spec`]),
//! * the α-discretisation filter-approximation scheme of §IV-D
//!   ([`approx`]).
//!
//! # Quick example
//!
//! ```
//! use camus_lang::parser::parse_rule;
//!
//! let rule = parse_rule("stock == GOOGL and price > 50: fwd(1,2)").unwrap();
//! assert_eq!(rule.action.ports(), Some(&[1u16, 2][..]));
//! ```

pub mod approx;
pub mod ast;
pub mod dnf;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod sets;
pub mod spec;
pub mod value;

pub use ast::{Action, AggFunc, Expr, Operand, Predicate, Rel, Rule};
pub use error::{LangError, Result};
pub use value::Value;
