//! Error types shared across the language front-end.

use std::fmt;

/// Convenient result alias for language operations.
pub type Result<T> = std::result::Result<T, LangError>;

/// Errors produced while lexing, parsing, or type-checking subscriptions
/// and header specifications.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LangError {
    /// An unexpected character in the input stream.
    Lex { pos: usize, msg: String },
    /// A syntactic error: what was found and what was expected.
    Parse { pos: usize, msg: String },
    /// A semantic error: unknown field, relation not applicable to the
    /// operand type, aggregate over a string field, and so on.
    Semantic(String),
    /// A header-spec error (duplicate header, bad annotation, width 0...).
    Spec(String),
}

impl LangError {
    pub(crate) fn lex(pos: usize, msg: impl Into<String>) -> Self {
        LangError::Lex { pos, msg: msg.into() }
    }
    pub(crate) fn parse(pos: usize, msg: impl Into<String>) -> Self {
        LangError::Parse { pos, msg: msg.into() }
    }
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LangError::Lex { pos, msg } => write!(f, "lex error at byte {pos}: {msg}"),
            LangError::Parse { pos, msg } => write!(f, "parse error at byte {pos}: {msg}"),
            LangError::Semantic(msg) => write!(f, "semantic error: {msg}"),
            LangError::Spec(msg) => write!(f, "spec error: {msg}"),
        }
    }
}

impl std::error::Error for LangError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_position() {
        let e = LangError::lex(7, "bad char");
        assert_eq!(e.to_string(), "lex error at byte 7: bad char");
        let e = LangError::parse(3, "expected ')'");
        assert_eq!(e.to_string(), "parse error at byte 3: expected ')'");
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&LangError::Semantic("x".into()));
    }
}
