//! The annotated header-specification language (Fig. 4 of the paper).
//!
//! Applications characterise their domain by a set of headers and packet
//! formats. In the paper this is P4 source extended with annotations;
//! here it is a small standalone language with the same information
//! content, consumed by the static compiler (pipeline generation) and
//! by the dataplane parser:
//!
//! ```text
//! header ethernet {
//!     bit<48> dstAddr;
//!     bit<48> srcAddr;
//!     bit<16> etherType;
//! }
//!
//! header itch_order {
//!     bit<16>  length;
//!     @field       bit<32> shares;
//!     @field       bit<32> price;
//!     @field_exact str<8>  stock;
//!     @counter(my_counter, 100us)
//! }
//!
//! sequence ethernet itch_order
//! messages itch_order          # repeated message header (batching)
//! ```
//!
//! * `@field` marks a field usable in subscriptions (default match kind
//!   chosen by the compiler, usually range for integers),
//! * `@field_exact` / `@field_range` / `@field_ternary` override the
//!   match kind (§V-A: "users may specify the match type"),
//! * `@counter(name, window)` declares a tumbling-window state variable
//!   (§II, Fig. 4 line 11),
//! * `sequence` lists the fixed header stack in parse order,
//! * `messages` names the header that repeats as a batched
//!   application-level message (§VI), if any.

use crate::error::{LangError, Result};
use crate::value::{Type, Value};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// How a subscribable field should be matched in hardware (§V-E).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MatchHint {
    /// Let the compiler choose (exact for strings/equality-only fields,
    /// range otherwise).
    Auto,
    /// SRAM exact match only: cheap, but range predicates on this field
    /// are rejected.
    Exact,
    /// TCAM/range match.
    Range,
    /// Ternary (masked) match.
    Ternary,
}

/// One fixed-width field of a header.
///
/// Integer fields are **unsigned on the wire**: encoding a negative
/// [`Value::Int`] truncates to the low bits and decodes back as a large
/// non-negative number, exactly as a real header field would.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FieldSpec {
    pub name: String,
    pub ty: Type,
    /// Width in bits. Strings are byte-aligned (`str<N>` is `8·N` bits).
    pub width_bits: u32,
    /// Bit offset from the start of the enclosing header.
    pub offset_bits: u32,
    /// Whether subscriptions may constrain this field (`@field*`).
    pub subscribable: bool,
    pub match_hint: MatchHint,
}

impl FieldSpec {
    /// Width in whole bytes (fields are byte-aligned in this model).
    pub fn width_bytes(&self) -> usize {
        (self.width_bits as usize).div_ceil(8)
    }

    /// Byte offset within the header.
    pub fn offset_bytes(&self) -> usize {
        (self.offset_bits as usize) / 8
    }
}

/// A tumbling-window state variable declared with `@counter`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterSpec {
    pub name: String,
    /// Window length in microseconds.
    pub window_us: u64,
}

/// One header type.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HeaderSpec {
    pub name: String,
    pub fields: Vec<FieldSpec>,
    pub counters: Vec<CounterSpec>,
}

impl HeaderSpec {
    /// Total header width in bytes.
    pub fn width_bytes(&self) -> usize {
        self.fields.iter().map(|f| f.width_bytes()).sum()
    }

    pub fn field(&self, name: &str) -> Option<&FieldSpec> {
        self.fields.iter().find(|f| f.name == name)
    }
}

/// A complete application specification.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Spec {
    pub headers: Vec<HeaderSpec>,
    /// Fixed header stack, in parse order (names into `headers`).
    pub sequence: Vec<String>,
    /// Header that repeats as batched messages after the stack, if any.
    pub messages: Option<String>,
}

impl Spec {
    /// Parse the textual spec format.
    pub fn parse(src: &str) -> Result<Spec> {
        Parser { src, pos: 0 }.spec()
    }

    pub fn header(&self, name: &str) -> Option<&HeaderSpec> {
        self.headers.iter().find(|h| h.name == name)
    }

    /// Resolve an attribute path from a subscription. Accepts
    /// `header.field` or a bare `field` when unique across all headers.
    pub fn resolve(&self, path: &str) -> Option<(&HeaderSpec, &FieldSpec)> {
        if let Some((hname, fname)) = path.split_once('.') {
            let h = self.header(hname)?;
            let f = h.field(fname)?;
            return Some((h, f));
        }
        let mut found = None;
        for h in &self.headers {
            if let Some(f) = h.field(path) {
                if found.is_some() {
                    return None; // ambiguous bare name
                }
                found = Some((h, f));
            }
        }
        found
    }

    /// Resolve a counter name declared in any header.
    pub fn resolve_counter(&self, name: &str) -> Option<&CounterSpec> {
        self.headers.iter().flat_map(|h| h.counters.iter()).find(|c| c.name == name)
    }

    /// All subscribable attribute paths, in declaration order, as
    /// `header.field` pairs. The compiler derives its default BDD
    /// variable order from this.
    pub fn subscribable_fields(&self) -> Vec<(String, &FieldSpec)> {
        let mut out = Vec::new();
        for h in &self.headers {
            for f in &h.fields {
                if f.subscribable {
                    out.push((format!("{}.{}", h.name, f.name), f));
                }
            }
        }
        out
    }

    /// Byte offset of `header` within the fixed stack, if it is part of
    /// the `sequence`.
    pub fn stack_offset(&self, header: &str) -> Option<usize> {
        let mut off = 0usize;
        for name in &self.sequence {
            if name == header {
                return Some(off);
            }
            off += self.header(name)?.width_bytes();
        }
        None
    }

    /// Total width in bytes of the fixed header stack.
    pub fn stack_width(&self) -> usize {
        self.sequence.iter().filter_map(|n| self.header(n)).map(|h| h.width_bytes()).sum()
    }

    /// Encode a header instance from an attribute map (field name →
    /// value); absent fields are zero.
    pub fn encode_header(&self, header: &str, values: &HashMap<String, Value>) -> Result<Vec<u8>> {
        let h = self
            .header(header)
            .ok_or_else(|| LangError::Spec(format!("unknown header `{header}`")))?;
        let mut out = vec![0u8; h.width_bytes()];
        for f in &h.fields {
            if let Some(v) = values.get(&f.name) {
                if v.ty() != f.ty {
                    return Err(LangError::Spec(format!(
                        "type mismatch for `{}.{}`",
                        header, f.name
                    )));
                }
                let bytes = v.encode(f.width_bytes());
                let off = f.offset_bytes();
                out[off..off + bytes.len()].copy_from_slice(&bytes);
            }
        }
        Ok(out)
    }

    /// Decode a header instance from raw bytes into an attribute map.
    /// Returns `None` when the buffer is too short.
    pub fn decode_header(&self, header: &str, bytes: &[u8]) -> Option<HashMap<String, Value>> {
        let h = self.header(header)?;
        if bytes.len() < h.width_bytes() {
            return None;
        }
        let mut out = HashMap::with_capacity(h.fields.len());
        for f in &h.fields {
            let off = f.offset_bytes();
            let v = Value::decode(f.ty, &bytes[off..off + f.width_bytes()]);
            out.insert(f.name.clone(), v);
        }
        Some(out)
    }
}

// ---------------------------------------------------------------------------
// Spec parser (line/token oriented, independent of the filter lexer)
// ---------------------------------------------------------------------------

struct Parser<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn spec(&mut self) -> Result<Spec> {
        let mut headers: Vec<HeaderSpec> = Vec::new();
        let mut sequence = Vec::new();
        let mut messages = None;
        loop {
            self.skip_ws();
            if self.pos >= self.src.len() {
                break;
            }
            let word = self.word()?;
            match word.as_str() {
                "header" => {
                    let h = self.header()?;
                    if headers.iter().any(|x| x.name == h.name) {
                        return Err(LangError::Spec(format!("duplicate header `{}`", h.name)));
                    }
                    headers.push(h);
                }
                "sequence" => {
                    sequence = self.rest_of_line_words();
                    if sequence.is_empty() {
                        return Err(LangError::Spec("empty `sequence` directive".into()));
                    }
                }
                "messages" => {
                    let names = self.rest_of_line_words();
                    if names.len() != 1 {
                        return Err(LangError::Spec(
                            "`messages` takes exactly one header name".into(),
                        ));
                    }
                    messages = Some(names.into_iter().next().unwrap());
                }
                other => {
                    return Err(LangError::Spec(format!(
                        "expected `header`, `sequence` or `messages`, found `{other}`"
                    )))
                }
            }
        }
        let spec = Spec { headers, sequence, messages };
        // Validate references.
        for name in &spec.sequence {
            if spec.header(name).is_none() {
                return Err(LangError::Spec(format!(
                    "sequence references unknown header `{name}`"
                )));
            }
        }
        if let Some(m) = &spec.messages {
            if spec.header(m).is_none() {
                return Err(LangError::Spec(format!("messages references unknown header `{m}`")));
            }
        }
        Ok(spec)
    }

    fn header(&mut self) -> Result<HeaderSpec> {
        let name = self.word()?;
        self.expect('{')?;
        let mut fields: Vec<FieldSpec> = Vec::new();
        let mut counters = Vec::new();
        let mut offset_bits = 0u32;
        loop {
            self.skip_ws();
            if self.peek() == Some('}') {
                self.pos += 1;
                break;
            }
            // Annotations.
            let mut subscribable = false;
            let mut match_hint = MatchHint::Auto;
            while self.peek() == Some('@') {
                self.pos += 1;
                let ann = self.word()?;
                match ann.as_str() {
                    "field" => subscribable = true,
                    "field_exact" => {
                        subscribable = true;
                        match_hint = MatchHint::Exact;
                    }
                    "field_range" => {
                        subscribable = true;
                        match_hint = MatchHint::Range;
                    }
                    "field_ternary" => {
                        subscribable = true;
                        match_hint = MatchHint::Ternary;
                    }
                    "counter" => {
                        self.expect('(')?;
                        let cname = self.word()?;
                        self.expect(',')?;
                        let window_us = self.duration_us()?;
                        self.expect(')')?;
                        counters.push(CounterSpec { name: cname, window_us });
                    }
                    other => return Err(LangError::Spec(format!("unknown annotation `@{other}`"))),
                }
                self.skip_ws();
            }
            self.skip_ws();
            if self.peek() == Some('}') {
                if subscribable {
                    return Err(LangError::Spec("dangling field annotation".into()));
                }
                continue;
            }
            // A field declaration, unless the line was only annotations
            // (e.g. a lone `@counter(...)`).
            if !self.at_type_keyword() {
                if subscribable {
                    return Err(LangError::Spec("field annotation without a field".into()));
                }
                continue;
            }
            let (ty, width_bits) = self.field_type()?;
            let fname = self.word()?;
            self.expect(';')?;
            if fields.iter().any(|f| f.name == fname) {
                return Err(LangError::Spec(format!("duplicate field `{name}.{fname}`")));
            }
            fields.push(FieldSpec {
                name: fname,
                ty,
                width_bits,
                offset_bits,
                subscribable,
                match_hint,
            });
            offset_bits += width_bits.next_multiple_of(8);
        }
        Ok(HeaderSpec { name, fields, counters })
    }

    fn at_type_keyword(&self) -> bool {
        let rest = &self.src[self.pos..];
        rest.starts_with("bit<") || rest.starts_with("str<")
    }

    fn field_type(&mut self) -> Result<(Type, u32)> {
        let kw = self.word()?;
        self.expect('<')?;
        let n = self.number()?;
        self.expect('>')?;
        match kw.as_str() {
            "bit" => {
                if n == 0 || n > 64 {
                    return Err(LangError::Spec(format!("bit<{n}> out of range (1..=64)")));
                }
                Ok((Type::Int, n as u32))
            }
            "str" => {
                if n == 0 || n > 1024 {
                    return Err(LangError::Spec(format!("str<{n}> out of range (1..=1024)")));
                }
                Ok((Type::Str, (n as u32) * 8))
            }
            other => Err(LangError::Spec(format!("unknown type `{other}`"))),
        }
    }

    fn duration_us(&mut self) -> Result<u64> {
        self.skip_ws();
        let n = self.number()?;
        let unit = self.word()?;
        let us = match unit.as_str() {
            "us" => n,
            "ms" => n * 1_000,
            "s" => n * 1_000_000,
            other => return Err(LangError::Spec(format!("unknown time unit `{other}`"))),
        };
        if us == 0 {
            return Err(LangError::Spec("zero-length window".into()));
        }
        Ok(us)
    }

    // --- low-level helpers ---

    fn peek(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    fn skip_ws(&mut self) {
        loop {
            let rest = &self.src[self.pos..];
            let trimmed = rest.trim_start();
            self.pos += rest.len() - trimmed.len();
            if trimmed.starts_with('#') {
                match trimmed.find('\n') {
                    Some(nl) => self.pos += nl,
                    None => self.pos = self.src.len(),
                }
            } else {
                break;
            }
        }
    }

    fn word(&mut self) -> Result<String> {
        self.skip_ws();
        let start = self.pos;
        for (i, c) in self.src[start..].char_indices() {
            if !(c.is_ascii_alphanumeric() || c == '_') {
                self.pos = start + i;
                break;
            }
            self.pos = start + i + c.len_utf8();
        }
        if self.pos == start {
            return Err(LangError::Spec(format!(
                "expected a word at byte {start}: ...{:?}",
                &self.src[start..self.src.len().min(start + 20)]
            )));
        }
        Ok(self.src[start..self.pos].to_string())
    }

    fn number(&mut self) -> Result<u64> {
        self.skip_ws();
        let start = self.pos;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(LangError::Spec(format!("expected a number at byte {start}")));
        }
        self.src[start..self.pos].parse().map_err(|_| LangError::Spec("number out of range".into()))
    }

    fn expect(&mut self, c: char) -> Result<()> {
        self.skip_ws();
        if self.peek() == Some(c) {
            self.pos += c.len_utf8();
            Ok(())
        } else {
            Err(LangError::Spec(format!(
                "expected `{c}` at byte {}, found {:?}",
                self.pos,
                self.peek()
            )))
        }
    }

    fn rest_of_line_words(&mut self) -> Vec<String> {
        let nl = self.src[self.pos..].find('\n').map_or(self.src.len(), |i| self.pos + i);
        let mut line = &self.src[self.pos..nl];
        if let Some(c) = line.find('#') {
            line = &line[..c]; // trailing comment
        }
        self.pos = nl;
        line.split_whitespace().map(|s| s.to_string()).collect()
    }
}

/// The ITCH specification used as the running example throughout the
/// paper (Fig. 4): MoldUDP framing plus batched `itch_order` messages.
pub fn itch_spec() -> Spec {
    Spec::parse(
        r#"
        header moldudp {
            bit<64> session;
            bit<64> seq;
            bit<16> msg_count;
        }
        header itch_order {
            bit<16>  length;
            bit<8>   msg_type;
            @field       bit<32> shares;
            @field       bit<32> price;
            @field_exact str<8>  stock;
            @field       bit<8>  side;
            @counter(my_counter, 100us)
        }
        sequence moldudp
        messages itch_order
        "#,
    )
    .expect("built-in ITCH spec parses")
}

/// The INT (in-band network telemetry) specification used by the
/// telemetry-analytics application (§VIII-C.2).
pub fn int_spec() -> Spec {
    Spec::parse(
        r#"
        header int_report {
            @field bit<32> switch_id;
            @field bit<32> hop_latency;
            @field bit<32> q_occupancy;
            @field bit<32> flow_id;
            bit<32> ingress_tstamp;
        }
        sequence int_report
        "#,
    )
    .expect("built-in INT spec parses")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_itch_spec() {
        let spec = itch_spec();
        assert_eq!(spec.headers.len(), 2);
        let itch = spec.header("itch_order").unwrap();
        assert_eq!(itch.width_bytes(), 2 + 1 + 4 + 4 + 8 + 1);
        let stock = itch.field("stock").unwrap();
        assert_eq!(stock.ty, Type::Str);
        assert_eq!(stock.width_bits, 64);
        assert_eq!(stock.match_hint, MatchHint::Exact);
        assert!(stock.subscribable);
        assert!(!itch.field("length").unwrap().subscribable);
        assert_eq!(itch.counters.len(), 1);
        assert_eq!(itch.counters[0].window_us, 100);
        assert_eq!(spec.messages.as_deref(), Some("itch_order"));
    }

    #[test]
    fn field_offsets_accumulate() {
        let spec = itch_spec();
        let itch = spec.header("itch_order").unwrap();
        assert_eq!(itch.field("length").unwrap().offset_bytes(), 0);
        assert_eq!(itch.field("msg_type").unwrap().offset_bytes(), 2);
        assert_eq!(itch.field("shares").unwrap().offset_bytes(), 3);
        assert_eq!(itch.field("price").unwrap().offset_bytes(), 7);
        assert_eq!(itch.field("stock").unwrap().offset_bytes(), 11);
    }

    #[test]
    fn resolve_bare_and_dotted() {
        let spec = itch_spec();
        assert!(spec.resolve("price").is_some());
        assert!(spec.resolve("itch_order.price").is_some());
        assert!(spec.resolve("itch_order.nope").is_none());
        assert!(spec.resolve("nope.price").is_none());
        assert!(spec.resolve("nothere").is_none());
    }

    #[test]
    fn resolve_ambiguous_bare_name_fails() {
        let spec = Spec::parse(
            "header a { @field bit<8> x; }\nheader b { @field bit<8> x; }\nsequence a b",
        )
        .unwrap();
        assert!(spec.resolve("x").is_none());
        assert!(spec.resolve("a.x").is_some());
        assert!(spec.resolve("b.x").is_some());
    }

    #[test]
    fn stack_offsets() {
        let spec = itch_spec();
        assert_eq!(spec.stack_offset("moldudp"), Some(0));
        assert_eq!(spec.stack_width(), 18);
        assert_eq!(spec.stack_offset("itch_order"), None); // not in sequence
    }

    #[test]
    fn encode_decode_roundtrip() {
        let spec = itch_spec();
        let mut vals = HashMap::new();
        vals.insert("shares".to_string(), Value::Int(500));
        vals.insert("price".to_string(), Value::Int(1050));
        vals.insert("stock".to_string(), Value::from("GOOGL"));
        vals.insert("msg_type".to_string(), Value::Int(b'A' as i64));
        let bytes = spec.encode_header("itch_order", &vals).unwrap();
        assert_eq!(bytes.len(), 20);
        let decoded = spec.decode_header("itch_order", &bytes).unwrap();
        assert_eq!(decoded["shares"], Value::Int(500));
        assert_eq!(decoded["price"], Value::Int(1050));
        assert_eq!(decoded["stock"], Value::from("GOOGL"));
        assert_eq!(decoded["length"], Value::Int(0)); // unset -> zero
    }

    #[test]
    fn encode_rejects_type_mismatch() {
        let spec = itch_spec();
        let mut vals = HashMap::new();
        vals.insert("price".to_string(), Value::from("oops"));
        assert!(spec.encode_header("itch_order", &vals).is_err());
    }

    #[test]
    fn decode_short_buffer_is_none() {
        let spec = itch_spec();
        assert!(spec.decode_header("itch_order", &[0u8; 3]).is_none());
    }

    #[test]
    fn spec_errors() {
        assert!(Spec::parse("header a { bit<0> x; }").is_err());
        assert!(Spec::parse("header a { bit<65> x; }").is_err());
        assert!(Spec::parse("header a { bit<8> x; bit<8> x; }").is_err());
        assert!(Spec::parse("header a { bit<8> x; }\nheader a { bit<8> y; }").is_err());
        assert!(Spec::parse("sequence nope").is_err());
        assert!(Spec::parse("messages nope").is_err());
        assert!(Spec::parse("garbage").is_err());
        assert!(Spec::parse("header a { @bogus bit<8> x; }").is_err());
        assert!(Spec::parse("header a { @counter(c, 0us) }").is_err());
        assert!(Spec::parse("header a { @counter(c, 5fortnights) }").is_err());
    }

    #[test]
    fn durations() {
        let s = Spec::parse("header a { @counter(c, 10ms) bit<8> x; }").unwrap();
        assert_eq!(s.headers[0].counters[0].window_us, 10_000);
        let s = Spec::parse("header a { @counter(c, 2s) bit<8> x; }").unwrap();
        assert_eq!(s.headers[0].counters[0].window_us, 2_000_000);
    }

    #[test]
    fn comments_allowed() {
        let s =
            Spec::parse("# hi\nheader a { # fields\n bit<8> x; }\nsequence a # tail\n").unwrap();
        assert_eq!(s.headers.len(), 1);
        assert_eq!(s.sequence, vec!["a"]);
    }

    #[test]
    fn subscribable_fields_ordered() {
        let spec = itch_spec();
        let names: Vec<String> = spec.subscribable_fields().into_iter().map(|(n, _)| n).collect();
        assert_eq!(
            names,
            vec!["itch_order.shares", "itch_order.price", "itch_order.stock", "itch_order.side"]
        );
    }
}
