//! Typed atomic values carried by packet attributes and compared against
//! by subscription constraints.
//!
//! The paper's data model (§V-A) structures packets as sets of named
//! attributes with *typed atomic values*: numbers and fixed-width
//! strings. IP addresses are just numbers (the paper treats `ip.dst` as
//! another attribute); the parser folds dotted-quad literals into
//! [`Value::Int`].

use serde::{Deserialize, Serialize};
use std::fmt;

/// The type of an attribute or constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Type {
    /// Signed 64-bit integer. Wide enough for every fixed-width header
    /// field the applications use (ITCH prices, INT latencies, IPv4/ILA
    /// identifiers...).
    Int,
    /// A short byte string (stock symbols, host names, content ids).
    /// On the wire these are fixed-width, space- or NUL-padded fields.
    Str,
}

/// A constant value: the right-hand side of a constraint, or the value
/// of an attribute extracted from a packet.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Value {
    Int(i64),
    Str(String),
}

impl Value {
    /// The type of this value.
    pub fn ty(&self) -> Type {
        match self {
            Value::Int(_) => Type::Int,
            Value::Str(_) => Type::Str,
        }
    }

    /// The integer payload, if this is an [`Value::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Str(_) => None,
        }
    }

    /// The string payload, if this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            Value::Int(_) => None,
        }
    }

    /// Encode this value into a fixed-width big-endian byte field, the
    /// way it would appear inside a packet. Strings are right-padded
    /// with spaces (the ITCH convention); integers are the low `width`
    /// bytes of the big-endian encoding.
    pub fn encode(&self, width: usize) -> Vec<u8> {
        match self {
            Value::Int(i) => {
                let be = i.to_be_bytes();
                let start = be.len().saturating_sub(width);
                let mut out = vec![0u8; width.saturating_sub(be.len())];
                out.extend_from_slice(&be[start..]);
                out
            }
            Value::Str(s) => {
                let mut out = s.as_bytes().to_vec();
                out.truncate(width);
                out.resize(width, b' ');
                out
            }
        }
    }

    /// Decode a fixed-width field back into a value of type `ty`.
    /// Strings have trailing spaces/NULs stripped; integers are read as
    /// big-endian unsigned (headers never carry negative numbers) and
    /// therefore fit in `i64` for widths up to 8 bytes.
    pub fn decode(ty: Type, bytes: &[u8]) -> Value {
        match ty {
            Type::Int => {
                let mut v: i64 = 0;
                for &b in bytes.iter().take(8) {
                    v = (v << 8) | i64::from(b);
                }
                Value::Int(v)
            }
            Type::Str => {
                let end = bytes.iter().rposition(|&b| b != b' ' && b != 0).map_or(0, |p| p + 1);
                Value::Str(String::from_utf8_lossy(&bytes[..end]).into_owned())
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            // Quote so the pretty-printed form reparses unambiguously.
            Value::Str(s) => write!(f, "\"{s}\""),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

/// Parse a dotted-quad IPv4 literal into its u32 value.
/// Returns `None` if the string is not a well-formed dotted quad.
pub fn parse_ipv4(s: &str) -> Option<u32> {
    let mut parts = s.split('.');
    let mut v: u32 = 0;
    let mut n = 0;
    for p in parts.by_ref() {
        if p.is_empty() || p.len() > 3 || !p.bytes().all(|b| b.is_ascii_digit()) {
            return None;
        }
        let octet: u32 = p.parse().ok()?;
        if octet > 255 {
            return None;
        }
        v = (v << 8) | octet;
        n += 1;
        if n > 4 {
            return None;
        }
    }
    if n == 4 {
        Some(v)
    } else {
        None
    }
}

/// Format a u32 as a dotted-quad IPv4 address.
pub fn format_ipv4(v: u32) -> String {
    format!("{}.{}.{}.{}", (v >> 24) & 0xff, (v >> 16) & 0xff, (v >> 8) & 0xff, v & 0xff)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_types() {
        assert_eq!(Value::Int(3).ty(), Type::Int);
        assert_eq!(Value::from("x").ty(), Type::Str);
        assert_eq!(Value::Int(3).as_int(), Some(3));
        assert_eq!(Value::Int(3).as_str(), None);
        assert_eq!(Value::from("abc").as_str(), Some("abc"));
    }

    #[test]
    fn int_encode_roundtrip() {
        for (v, w) in [(0i64, 4), (1, 4), (0xDEAD, 4), (0xFFFF_FFFF, 4), (42, 8), (7, 2)] {
            let bytes = Value::Int(v).encode(w);
            assert_eq!(bytes.len(), w);
            assert_eq!(Value::decode(Type::Int, &bytes), Value::Int(v));
        }
    }

    #[test]
    fn int_encode_narrow_width_truncates_high_bytes() {
        // 0x1234 in 1 byte keeps only the low byte.
        assert_eq!(Value::Int(0x1234).encode(1), vec![0x34]);
    }

    #[test]
    fn str_encode_pads_with_spaces() {
        let bytes = Value::from("GOOGL").encode(8);
        assert_eq!(bytes, b"GOOGL   ".to_vec());
        assert_eq!(Value::decode(Type::Str, &bytes), Value::from("GOOGL"));
    }

    #[test]
    fn str_encode_truncates() {
        let bytes = Value::from("TOOLONGNAME").encode(4);
        assert_eq!(bytes, b"TOOL".to_vec());
    }

    #[test]
    fn str_decode_strips_nul_padding() {
        assert_eq!(Value::decode(Type::Str, b"ab\0\0"), Value::from("ab"));
    }

    #[test]
    fn ipv4_parsing() {
        assert_eq!(parse_ipv4("192.168.0.1"), Some(0xC0A8_0001));
        assert_eq!(parse_ipv4("0.0.0.0"), Some(0));
        assert_eq!(parse_ipv4("255.255.255.255"), Some(u32::MAX));
        assert_eq!(parse_ipv4("256.0.0.1"), None);
        assert_eq!(parse_ipv4("1.2.3"), None);
        assert_eq!(parse_ipv4("1.2.3.4.5"), None);
        assert_eq!(parse_ipv4("a.b.c.d"), None);
        assert_eq!(parse_ipv4(""), None);
    }

    #[test]
    fn ipv4_roundtrip() {
        for v in [0u32, 1, 0xC0A8_0001, u32::MAX] {
            assert_eq!(parse_ipv4(&format_ipv4(v)), Some(v));
        }
    }

    #[test]
    fn display_quotes_strings() {
        assert_eq!(Value::Int(5).to_string(), "5");
        assert_eq!(Value::from("GOOGL").to_string(), "\"GOOGL\"");
    }

    #[test]
    fn value_ordering_is_total_within_type() {
        assert!(Value::Int(1) < Value::Int(2));
        assert!(Value::from("a") < Value::from("b"));
    }
}
