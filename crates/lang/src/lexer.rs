//! Hand-written lexer for the subscription language.
//!
//! Tokens cover the concrete syntax used throughout the paper:
//! identifiers and dotted field paths (`ip.dst`, `int.hop_latency`),
//! integer and dotted-quad literals, quoted strings, comparison
//! operators (`==`, `!=`, `<`, `<=`, `>`, `>=`, `=^`, `!^`), boolean
//! connectives (`and`/`&&`/`∧`, `or`/`||`/`∨`, `not`/`!`), parentheses,
//! the rule separator `:`, and commas inside action argument lists.

use crate::error::{LangError, Result};

/// A lexical token with its byte offset in the source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    pub pos: usize,
}

/// The kinds of token the subscription grammar uses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or dotted path: `price`, `ip.dst`, `itch.stock`.
    Ident(String),
    /// Integer literal (decimal, hex with `0x`, or negative).
    Int(i64),
    /// Dotted-quad IPv4 literal, folded to its numeric value.
    Ip(u32),
    /// Double-quoted string literal (no escapes beyond `\"` and `\\`).
    Str(String),
    Eq,        // ==
    Ne,        // !=
    Lt,        // <
    Le,        // <=
    Gt,        // >
    Ge,        // >=
    PrefixOp,  // =^
    NotPrefix, // !^
    And,
    Or,
    Not,
    True,
    False,
    LParen,
    RParen,
    Colon,
    Comma,
    /// End of input.
    Eof,
}

impl TokenKind {
    /// Human-readable name used in parse errors.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(s) => format!("identifier `{s}`"),
            TokenKind::Int(i) => format!("integer `{i}`"),
            TokenKind::Ip(v) => format!("ip literal `{}`", crate::value::format_ipv4(*v)),
            TokenKind::Str(s) => format!("string \"{s}\""),
            TokenKind::Eq => "`==`".into(),
            TokenKind::Ne => "`!=`".into(),
            TokenKind::Lt => "`<`".into(),
            TokenKind::Le => "`<=`".into(),
            TokenKind::Gt => "`>`".into(),
            TokenKind::Ge => "`>=`".into(),
            TokenKind::PrefixOp => "`=^`".into(),
            TokenKind::NotPrefix => "`!^`".into(),
            TokenKind::And => "`and`".into(),
            TokenKind::Or => "`or`".into(),
            TokenKind::Not => "`not`".into(),
            TokenKind::True => "`true`".into(),
            TokenKind::False => "`false`".into(),
            TokenKind::LParen => "`(`".into(),
            TokenKind::RParen => "`)`".into(),
            TokenKind::Colon => "`:`".into(),
            TokenKind::Comma => "`,`".into(),
            TokenKind::Eof => "end of input".into(),
        }
    }
}

/// Tokenise `src` into a vector ending with [`TokenKind::Eof`].
pub fn lex(src: &str) -> Result<Vec<Token>> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'#' => {
                // Comment to end of line.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'(' => {
                toks.push(Token { kind: TokenKind::LParen, pos: i });
                i += 1;
            }
            b')' => {
                toks.push(Token { kind: TokenKind::RParen, pos: i });
                i += 1;
            }
            b':' => {
                toks.push(Token { kind: TokenKind::Colon, pos: i });
                i += 1;
            }
            b',' => {
                toks.push(Token { kind: TokenKind::Comma, pos: i });
                i += 1;
            }
            b'=' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push(Token { kind: TokenKind::Eq, pos: i });
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'^') {
                    toks.push(Token { kind: TokenKind::PrefixOp, pos: i });
                    i += 2;
                } else {
                    // Accept single `=` as equality; the paper's INT
                    // example writes `int.switch_id = 2`.
                    toks.push(Token { kind: TokenKind::Eq, pos: i });
                    i += 1;
                }
            }
            b'!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push(Token { kind: TokenKind::Ne, pos: i });
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'^') {
                    toks.push(Token { kind: TokenKind::NotPrefix, pos: i });
                    i += 2;
                } else {
                    toks.push(Token { kind: TokenKind::Not, pos: i });
                    i += 1;
                }
            }
            b'<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push(Token { kind: TokenKind::Le, pos: i });
                    i += 2;
                } else {
                    toks.push(Token { kind: TokenKind::Lt, pos: i });
                    i += 1;
                }
            }
            b'>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push(Token { kind: TokenKind::Ge, pos: i });
                    i += 2;
                } else {
                    toks.push(Token { kind: TokenKind::Gt, pos: i });
                    i += 1;
                }
            }
            b'&' => {
                if bytes.get(i + 1) == Some(&b'&') {
                    toks.push(Token { kind: TokenKind::And, pos: i });
                    i += 2;
                } else {
                    return Err(LangError::lex(i, "expected `&&`"));
                }
            }
            b'|' => {
                if bytes.get(i + 1) == Some(&b'|') {
                    toks.push(Token { kind: TokenKind::Or, pos: i });
                    i += 2;
                } else {
                    return Err(LangError::lex(i, "expected `||`"));
                }
            }
            b'"' => {
                let (s, next) = lex_string(bytes, i)?;
                toks.push(Token { kind: TokenKind::Str(s), pos: i });
                i = next;
            }
            b'0'..=b'9' | b'-' => {
                let (kind, next) = lex_number(src, bytes, i)?;
                toks.push(Token { kind, pos: i });
                i = next;
            }
            _ if b.is_ascii_alphabetic() || b == b'_' => {
                let (kind, next) = lex_word(src, bytes, i);
                toks.push(Token { kind, pos: i });
                i = next;
            }
            // The paper also writes conjunction as the Unicode wedge.
            _ if src[i..].starts_with('\u{2227}') => {
                toks.push(Token { kind: TokenKind::And, pos: i });
                i += '\u{2227}'.len_utf8();
            }
            _ if src[i..].starts_with('\u{2228}') => {
                toks.push(Token { kind: TokenKind::Or, pos: i });
                i += '\u{2228}'.len_utf8();
            }
            _ if src[i..].starts_with('\u{00ac}') => {
                toks.push(Token { kind: TokenKind::Not, pos: i });
                i += '\u{00ac}'.len_utf8();
            }
            _ => {
                return Err(LangError::lex(
                    i,
                    format!("unexpected character {:?}", src[i..].chars().next().unwrap()),
                ))
            }
        }
    }
    toks.push(Token { kind: TokenKind::Eof, pos: bytes.len() });
    Ok(toks)
}

fn lex_string(bytes: &[u8], start: usize) -> Result<(String, usize)> {
    let mut i = start + 1;
    let mut out = String::new();
    while i < bytes.len() {
        match bytes[i] {
            b'"' => return Ok((out, i + 1)),
            b'\\' => {
                match bytes.get(i + 1) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    _ => return Err(LangError::lex(i, "bad escape in string literal")),
                }
                i += 2;
            }
            b => {
                out.push(b as char);
                i += 1;
            }
        }
    }
    Err(LangError::lex(start, "unterminated string literal"))
}

fn lex_number(src: &str, bytes: &[u8], start: usize) -> Result<(TokenKind, usize)> {
    let neg = bytes[start] == b'-';
    let mut i = if neg { start + 1 } else { start };
    if i >= bytes.len() || !bytes[i].is_ascii_digit() {
        return Err(LangError::lex(start, "expected digits after `-`"));
    }
    // Hex literal.
    if !neg && bytes[i] == b'0' && bytes.get(i + 1) == Some(&b'x') {
        let hs = i + 2;
        let mut j = hs;
        while j < bytes.len() && bytes[j].is_ascii_hexdigit() {
            j += 1;
        }
        if j == hs {
            return Err(LangError::lex(start, "empty hex literal"));
        }
        let v = i64::from_str_radix(&src[hs..j], 16)
            .map_err(|_| LangError::lex(start, "hex literal out of range"))?;
        return Ok((TokenKind::Int(v), j));
    }
    // Scan digits and dots to decide between int and dotted-quad.
    let mut j = i;
    let mut dots = 0;
    while j < bytes.len() && (bytes[j].is_ascii_digit() || bytes[j] == b'.') {
        if bytes[j] == b'.' {
            // A trailing dot (e.g. `1.`) is not part of the number.
            if !bytes.get(j + 1).is_some_and(|b| b.is_ascii_digit()) {
                break;
            }
            dots += 1;
        }
        j += 1;
    }
    let text = &src[start..j];
    if dots == 3 && !neg {
        if let Some(ip) = crate::value::parse_ipv4(text) {
            return Ok((TokenKind::Ip(ip), j));
        }
        return Err(LangError::lex(start, format!("bad IPv4 literal `{text}`")));
    }
    if dots > 0 {
        return Err(LangError::lex(start, format!("bad numeric literal `{text}`")));
    }
    i = j;
    let v: i64 = text
        .parse()
        .map_err(|_| LangError::lex(start, format!("integer `{text}` out of range")))?;
    Ok((TokenKind::Int(v), i))
}

fn lex_word(src: &str, bytes: &[u8], start: usize) -> (TokenKind, usize) {
    let mut i = start;
    while i < bytes.len()
        && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b'.')
    {
        // A dot must be followed by an identifier character to belong to
        // the path (so `a.b:` lexes as `a.b` then `:`).
        if bytes[i] == b'.'
            && !bytes.get(i + 1).is_some_and(|b| b.is_ascii_alphanumeric() || *b == b'_')
        {
            break;
        }
        i += 1;
    }
    let word = &src[start..i];
    let kind = match word {
        "and" | "AND" => TokenKind::And,
        "or" | "OR" => TokenKind::Or,
        "not" | "NOT" => TokenKind::Not,
        "true" => TokenKind::True,
        "false" => TokenKind::False,
        _ => TokenKind::Ident(word.to_string()),
    };
    (kind, i)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lex_basic_rule() {
        let ks = kinds("stock == GOOGL and price > 50: fwd(1,2)");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("stock".into()),
                TokenKind::Eq,
                TokenKind::Ident("GOOGL".into()),
                TokenKind::And,
                TokenKind::Ident("price".into()),
                TokenKind::Gt,
                TokenKind::Int(50),
                TokenKind::Colon,
                TokenKind::Ident("fwd".into()),
                TokenKind::LParen,
                TokenKind::Int(1),
                TokenKind::Comma,
                TokenKind::Int(2),
                TokenKind::RParen,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lex_dotted_paths_and_ips() {
        let ks = kinds("ip.dst == 192.168.0.1");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("ip.dst".into()),
                TokenKind::Eq,
                TokenKind::Ip(0xC0A8_0001),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn lex_single_equals_like_paper_int_example() {
        let ks = kinds("int.switch_id = 2 and int.hop_latency > 100");
        assert!(ks.contains(&TokenKind::Eq));
        assert!(ks.contains(&TokenKind::Ident("int.hop_latency".into())));
    }

    #[test]
    fn lex_operators() {
        assert_eq!(
            kinds("< <= > >= == != =^ !^ ! && ||"),
            vec![
                TokenKind::Lt,
                TokenKind::Le,
                TokenKind::Gt,
                TokenKind::Ge,
                TokenKind::Eq,
                TokenKind::Ne,
                TokenKind::PrefixOp,
                TokenKind::NotPrefix,
                TokenKind::Not,
                TokenKind::And,
                TokenKind::Or,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn lex_unicode_connectives() {
        assert_eq!(kinds("a \u{2227} b \u{2228} \u{00ac} c").len(), 7);
    }

    #[test]
    fn lex_strings_and_escapes() {
        assert_eq!(kinds("\"GOOGL\""), vec![TokenKind::Str("GOOGL".into()), TokenKind::Eof]);
        assert_eq!(kinds(r#""a\"b\\c""#), vec![TokenKind::Str("a\"b\\c".into()), TokenKind::Eof]);
        assert!(lex("\"unterminated").is_err());
    }

    #[test]
    fn lex_numbers() {
        assert_eq!(
            kinds("0 42 -7 0xff"),
            vec![
                TokenKind::Int(0),
                TokenKind::Int(42),
                TokenKind::Int(-7),
                TokenKind::Int(255),
                TokenKind::Eof
            ]
        );
        assert!(lex("1.2").is_err()); // floats are not in the language
        assert!(lex("999999999999999999999").is_err());
    }

    #[test]
    fn lex_comments_and_whitespace() {
        assert_eq!(
            kinds("# a comment\n  x == 1"),
            vec![TokenKind::Ident("x".into()), TokenKind::Eq, TokenKind::Int(1), TokenKind::Eof]
        );
    }

    #[test]
    fn lex_rejects_stray_characters() {
        assert!(lex("a @ b").is_err());
        assert!(lex("a & b").is_err());
        assert!(lex("a | b").is_err());
    }

    #[test]
    fn lex_positions_are_byte_offsets() {
        let toks = lex("ab == 3").unwrap();
        assert_eq!(toks[0].pos, 0);
        assert_eq!(toks[1].pos, 3);
        assert_eq!(toks[2].pos, 6);
    }
}
