//! Normalisation of filters into disjunctive normal form (§V-C).
//!
//! The compiler's first step turns each subscription filter into "a set
//! of independent rules in which the condition in each rule consists of
//! a conjunction of atomic predicates". Negation is pushed down to the
//! atoms (every relation in the language has a complementary relation),
//! unsatisfiable conjunctions are pruned using the predicate algebra of
//! [`crate::sets`], and redundant atoms within a conjunction are
//! dropped.

use crate::ast::{Expr, Predicate};
use crate::sets::{conjunction_satisfiable, implication};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A conjunction of atomic predicates. The empty conjunction is `true`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Conjunction {
    pub atoms: Vec<Predicate>,
}

impl Conjunction {
    pub fn new(atoms: Vec<Predicate>) -> Self {
        Conjunction { atoms }
    }

    /// Evaluate against an attribute lookup.
    pub fn eval_with<F: Fn(&crate::ast::Operand) -> Option<crate::value::Value>>(
        &self,
        lookup: F,
    ) -> bool {
        self.atoms.iter().all(|p| lookup(&p.operand).is_some_and(|v| p.eval(&v)))
    }

    /// Remove duplicate atoms and atoms implied by another atom on the
    /// same operand (e.g. `x > 40` is dropped when `x > 50` is present).
    fn simplify(&mut self) {
        let mut kept: Vec<Predicate> = Vec::with_capacity(self.atoms.len());
        'outer: for a in self.atoms.drain(..) {
            for k in &kept {
                if k.operand == a.operand && implication(k, true, &a) == Some(true) {
                    continue 'outer; // `a` is implied by `k`
                }
            }
            // Remove previously kept atoms that `a` implies.
            kept.retain(|k| !(k.operand == a.operand && implication(&a, true, k) == Some(true)));
            kept.push(a);
        }
        self.atoms = kept;
    }
}

impl fmt::Display for Conjunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.atoms.is_empty() {
            return f.write_str("true");
        }
        for (i, a) in self.atoms.iter().enumerate() {
            if i > 0 {
                f.write_str(" and ")?;
            }
            write!(f, "{a}")?;
        }
        Ok(())
    }
}

/// A filter in disjunctive normal form: a disjunction of conjunctions.
/// `Dnf(vec![])` is `false`; a DNF containing an empty conjunction
/// matches everything.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Dnf {
    pub terms: Vec<Conjunction>,
}

impl Dnf {
    /// The unsatisfiable DNF.
    pub fn none() -> Self {
        Dnf { terms: vec![] }
    }

    /// The DNF matching every packet.
    pub fn all() -> Self {
        Dnf { terms: vec![Conjunction::new(vec![])] }
    }

    pub fn is_false(&self) -> bool {
        self.terms.is_empty()
    }

    pub fn is_true(&self) -> bool {
        self.terms.iter().any(|c| c.atoms.is_empty())
    }

    /// Evaluate against an attribute lookup.
    pub fn eval_with<F: Fn(&crate::ast::Operand) -> Option<crate::value::Value> + Copy>(
        &self,
        lookup: F,
    ) -> bool {
        self.terms.iter().any(|c| c.eval_with(lookup))
    }

    /// Total number of atomic predicates across all terms — the "size"
    /// used when reporting compilation workloads.
    pub fn atom_count(&self) -> usize {
        self.terms.iter().map(|c| c.atoms.len()).sum()
    }
}

impl fmt::Display for Dnf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.terms.is_empty() {
            return f.write_str("false");
        }
        for (i, c) in self.terms.iter().enumerate() {
            if i > 0 {
                f.write_str(" or ")?;
            }
            write!(f, "({c})")?;
        }
        Ok(())
    }
}

/// Convert an arbitrary filter expression to DNF.
///
/// Negation is pushed to the leaves with De Morgan's laws and eliminated
/// at atoms by flipping the relation ([`crate::ast::Rel::negate`]).
/// Unsatisfiable conjunctions are pruned; each surviving conjunction is
/// simplified by removing implied atoms.
pub fn to_dnf(expr: &Expr) -> Dnf {
    let terms_raw = dnf_rec(expr, false);
    let mut terms = Vec::with_capacity(terms_raw.len());
    for mut c in terms_raw {
        if !conjunction_satisfiable(&c.atoms) {
            continue;
        }
        c.simplify();
        // An empty conjunction subsumes everything.
        if c.atoms.is_empty() {
            return Dnf::all();
        }
        if !terms.contains(&c) {
            terms.push(c);
        }
    }
    Dnf { terms }
}

/// Recursive DNF with negation context (`neg` = an odd number of `not`s
/// above us).
fn dnf_rec(expr: &Expr, neg: bool) -> Vec<Conjunction> {
    match (expr, neg) {
        (Expr::True, false) | (Expr::False, true) => vec![Conjunction::new(vec![])],
        (Expr::True, true) | (Expr::False, false) => vec![],
        (Expr::Atom(p), false) => vec![Conjunction::new(vec![p.clone()])],
        (Expr::Atom(p), true) => vec![Conjunction::new(vec![p.negated()])],
        (Expr::Not(e), _) => dnf_rec(e, !neg),
        // ¬(a ∧ b) = ¬a ∨ ¬b and ¬(a ∨ b) = ¬a ∧ ¬b.
        (Expr::And(a, b), false) | (Expr::Or(a, b), true) => {
            let left = dnf_rec(a, neg);
            let right = dnf_rec(b, neg);
            let mut out = Vec::with_capacity(left.len() * right.len());
            for l in &left {
                for r in &right {
                    let mut atoms = l.atoms.clone();
                    atoms.extend(r.atoms.iter().cloned());
                    out.push(Conjunction::new(atoms));
                }
            }
            out
        }
        (Expr::Or(a, b), false) | (Expr::And(a, b), true) => {
            let mut out = dnf_rec(a, neg);
            out.extend(dnf_rec(b, neg));
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Operand, Rel};
    use crate::parser::parse_expr;
    use crate::value::Value;

    fn dnf(src: &str) -> Dnf {
        to_dnf(&parse_expr(src).unwrap())
    }

    #[test]
    fn atom_is_single_term() {
        let d = dnf("price > 50");
        assert_eq!(d.terms.len(), 1);
        assert_eq!(d.terms[0].atoms.len(), 1);
    }

    #[test]
    fn and_merges_or_splits() {
        let d = dnf("a == 1 and b == 2");
        assert_eq!(d.terms.len(), 1);
        assert_eq!(d.terms[0].atoms.len(), 2);
        let d = dnf("a == 1 or b == 2");
        assert_eq!(d.terms.len(), 2);
    }

    #[test]
    fn distribution() {
        // (a or b) and (c or d) -> 4 terms.
        let d = dnf("(a == 1 or b == 2) and (c == 3 or d == 4)");
        assert_eq!(d.terms.len(), 4);
    }

    #[test]
    fn negation_pushes_to_atoms() {
        let d = dnf("not (a > 5 and b < 3)");
        assert_eq!(d.terms.len(), 2);
        assert_eq!(d.terms[0].atoms[0].rel, Rel::Le);
        assert_eq!(d.terms[1].atoms[0].rel, Rel::Ge);
        let d = dnf("not not a == 1");
        assert_eq!(d.terms.len(), 1);
        assert_eq!(d.terms[0].atoms[0].rel, Rel::Eq);
    }

    #[test]
    fn constants() {
        assert!(dnf("true").is_true());
        assert!(dnf("false").is_false());
        assert!(dnf("not true").is_false());
        assert!(dnf("not false").is_true());
        assert!(dnf("a == 1 or true").is_true());
        assert_eq!(dnf("a == 1 and true").terms.len(), 1);
        assert!(dnf("a == 1 and false").is_false());
    }

    #[test]
    fn unsatisfiable_terms_pruned() {
        assert!(dnf("a > 20 and a < 10").is_false());
        let d = dnf("(a > 20 and a < 10) or b == 1");
        assert_eq!(d.terms.len(), 1);
        assert!(dnf("stock == GOOGL and stock == MSFT").is_false());
    }

    #[test]
    fn implied_atoms_dropped() {
        let d = dnf("a > 50 and a > 40");
        assert_eq!(d.terms.len(), 1);
        assert_eq!(d.terms[0].atoms.len(), 1);
        assert_eq!(d.terms[0].atoms[0].constant, Value::Int(50));
        // Prefix subsumption.
        let d = dnf("stock =^ GOO and stock =^ G");
        assert_eq!(d.terms[0].atoms.len(), 1);
        assert_eq!(d.terms[0].atoms[0].constant, Value::Str("GOO".into()));
    }

    #[test]
    fn duplicate_terms_dedup() {
        let d = dnf("a == 1 or a == 1");
        assert_eq!(d.terms.len(), 1);
    }

    #[test]
    fn dnf_preserves_semantics_randomised() {
        // Evaluate original and DNF against random small assignments.
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        let exprs = [
            "a > 3 and (b < 5 or not c == 2)",
            "not (a > 3 or b == 1) and c >= 0",
            "(a == 1 or a == 2) and (b != 2 and not a == 2)",
            "not (not (a < 5))",
            "a >= 2 and a <= 2 and b > -3",
        ];
        for src in exprs {
            let e = parse_expr(src).unwrap();
            let d = to_dnf(&e);
            for _ in 0..300 {
                let (a, b, c) =
                    (rng.gen_range(-4i64..8), rng.gen_range(-4i64..8), rng.gen_range(-4i64..8));
                let lookup = |op: &Operand| {
                    Some(Value::Int(match op.field_name() {
                        "a" => a,
                        "b" => b,
                        "c" => c,
                        _ => return None,
                    }))
                };
                assert_eq!(
                    e.eval_with(lookup),
                    d.eval_with(lookup),
                    "mismatch for {src} at a={a} b={b} c={c}; dnf = {d}"
                );
            }
        }
    }

    #[test]
    fn atom_count() {
        assert_eq!(dnf("a == 1 and b == 2").atom_count(), 2);
        assert_eq!(dnf("a == 1 or b == 2").atom_count(), 2);
        assert_eq!(dnf("true").atom_count(), 0);
    }

    #[test]
    fn display_roundtrips_through_parser() {
        let d = dnf("(a == 1 and b > 2) or c =^ xyz");
        let reparsed = to_dnf(&parse_expr(&d.to_string()).unwrap());
        assert_eq!(d, reparsed);
        assert_eq!(Dnf::none().to_string(), "false");
        assert_eq!(Dnf::all().to_string(), "(true)");
    }
}
