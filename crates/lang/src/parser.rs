//! Recursive-descent parser for filters and rules.
//!
//! Grammar (precedence: `not` > `and` > `or`):
//!
//! ```text
//! rule      := expr ':' action
//! expr      := or
//! or        := and ( 'or' and )*
//! and       := unary ( 'and' unary )*
//! unary     := 'not' unary | primary
//! primary   := '(' expr ')' | 'true' | 'false' | constraint
//! constraint:= operand rel constant
//! operand   := ident | aggfunc '(' ident ')'
//! aggfunc   := 'count' | 'sum' | 'avg'
//! rel       := '==' | '!=' | '<' | '<=' | '>' | '>=' | '=^' | '!^'
//! constant  := int | ip | string | ident          (bare idents are strings)
//! action    := ident '(' args? ')'                 e.g. fwd(1,2), drop()
//! ```
//!
//! Bare identifiers on the right-hand side of a relation are string
//! constants, so the paper's `stock == GOOGL` parses as expected.

use crate::ast::{Action, AggFunc, Expr, Operand, Predicate, Rel, Rule};
use crate::error::{LangError, Result};
use crate::lexer::{lex, Token, TokenKind};
use crate::value::Value;

/// Parse a complete rule, `filter: action`.
pub fn parse_rule(src: &str) -> Result<Rule> {
    let mut p = Parser::new(src)?;
    let rule = p.rule()?;
    p.expect_eof()?;
    Ok(rule)
}

/// Parse a bare filter expression (no action part).
pub fn parse_expr(src: &str) -> Result<Expr> {
    let mut p = Parser::new(src)?;
    let e = p.expr()?;
    p.expect_eof()?;
    Ok(e)
}

/// Parse a newline-separated program of rules. Blank lines and `#`
/// comments are allowed between rules.
pub fn parse_rules(src: &str) -> Result<Vec<Rule>> {
    src.lines()
        .map(|l| l.trim())
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(parse_rule)
        .collect()
}

struct Parser {
    toks: Vec<Token>,
    i: usize,
}

impl Parser {
    fn new(src: &str) -> Result<Self> {
        Ok(Parser { toks: lex(src)?, i: 0 })
    }

    fn peek(&self) -> &TokenKind {
        &self.toks[self.i].kind
    }

    fn pos(&self) -> usize {
        self.toks[self.i].pos
    }

    fn bump(&mut self) -> TokenKind {
        let t = self.toks[self.i].kind.clone();
        if self.i + 1 < self.toks.len() {
            self.i += 1;
        }
        t
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind) -> Result<()> {
        if self.peek() == &kind {
            self.bump();
            Ok(())
        } else {
            Err(LangError::parse(
                self.pos(),
                format!("expected {}, found {}", kind.describe(), self.peek().describe()),
            ))
        }
    }

    fn expect_eof(&mut self) -> Result<()> {
        if matches!(self.peek(), TokenKind::Eof) {
            Ok(())
        } else {
            Err(LangError::parse(
                self.pos(),
                format!("unexpected trailing {}", self.peek().describe()),
            ))
        }
    }

    fn rule(&mut self) -> Result<Rule> {
        let filter = self.expr()?;
        self.expect(TokenKind::Colon)?;
        let action = self.action()?;
        Ok(Rule { filter, action })
    }

    fn expr(&mut self) -> Result<Expr> {
        let mut lhs = self.and_expr()?;
        while self.eat(&TokenKind::Or) {
            let rhs = self.and_expr()?;
            lhs = lhs.or(rhs);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.unary()?;
        while self.eat(&TokenKind::And) {
            let rhs = self.unary()?;
            lhs = lhs.and(rhs);
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr> {
        if self.eat(&TokenKind::Not) {
            return Ok(self.unary()?.not());
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.peek().clone() {
            TokenKind::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::True => {
                self.bump();
                Ok(Expr::True)
            }
            TokenKind::False => {
                self.bump();
                Ok(Expr::False)
            }
            TokenKind::Ident(_) => self.constraint().map(Expr::Atom),
            other => Err(LangError::parse(
                self.pos(),
                format!("expected a constraint or `(`, found {}", other.describe()),
            )),
        }
    }

    fn constraint(&mut self) -> Result<Predicate> {
        let operand = self.operand()?;
        let rel = self.rel()?;
        let constant = self.constant()?;
        // Type-check the relation against the constant's type.
        let ok = match constant {
            Value::Int(_) => rel.applies_to_int(),
            Value::Str(_) => rel.applies_to_str(),
        };
        if !ok {
            return Err(LangError::Semantic(format!(
                "relation `{rel}` not applicable to {} constant `{constant}`",
                match constant {
                    Value::Int(_) => "integer",
                    Value::Str(_) => "string",
                }
            )));
        }
        if operand.is_stateful() && constant.as_int().is_none() {
            return Err(LangError::Semantic(
                "aggregates compare against integer constants only".into(),
            ));
        }
        Ok(Predicate { operand, rel, constant })
    }

    fn operand(&mut self) -> Result<Operand> {
        let pos = self.pos();
        let name = match self.bump() {
            TokenKind::Ident(n) => n,
            other => {
                return Err(LangError::parse(
                    pos,
                    format!("expected a field name, found {}", other.describe()),
                ))
            }
        };
        let func = match name.as_str() {
            "count" => Some(AggFunc::Count),
            "sum" => Some(AggFunc::Sum),
            "avg" => Some(AggFunc::Avg),
            _ => None,
        };
        if let (Some(func), &TokenKind::LParen) = (func, self.peek()) {
            self.bump();
            let fpos = self.pos();
            let field = match self.bump() {
                TokenKind::Ident(n) => n,
                other => {
                    return Err(LangError::parse(
                        fpos,
                        format!(
                            "expected a field name inside aggregate, found {}",
                            other.describe()
                        ),
                    ))
                }
            };
            self.expect(TokenKind::RParen)?;
            return Ok(Operand::Aggregate { func, field });
        }
        Ok(Operand::Field(name))
    }

    fn rel(&mut self) -> Result<Rel> {
        let pos = self.pos();
        let rel = match self.bump() {
            TokenKind::Eq => Rel::Eq,
            TokenKind::Ne => Rel::Ne,
            TokenKind::Lt => Rel::Lt,
            TokenKind::Le => Rel::Le,
            TokenKind::Gt => Rel::Gt,
            TokenKind::Ge => Rel::Ge,
            TokenKind::PrefixOp => Rel::Prefix,
            TokenKind::NotPrefix => Rel::NotPrefix,
            other => {
                return Err(LangError::parse(
                    pos,
                    format!("expected a relation, found {}", other.describe()),
                ))
            }
        };
        Ok(rel)
    }

    fn constant(&mut self) -> Result<Value> {
        let pos = self.pos();
        match self.bump() {
            TokenKind::Int(v) => Ok(Value::Int(v)),
            TokenKind::Ip(v) => Ok(Value::Int(i64::from(v))),
            TokenKind::Str(s) => Ok(Value::Str(s)),
            // Bare identifier as a string constant: `stock == GOOGL`.
            TokenKind::Ident(s) => Ok(Value::Str(s)),
            other => Err(LangError::parse(
                pos,
                format!("expected a constant, found {}", other.describe()),
            )),
        }
    }

    fn action(&mut self) -> Result<Action> {
        let pos = self.pos();
        let name = match self.bump() {
            TokenKind::Ident(n) => n,
            other => {
                return Err(LangError::parse(
                    pos,
                    format!("expected an action name, found {}", other.describe()),
                ))
            }
        };
        self.expect(TokenKind::LParen)?;
        let mut int_args: Vec<i64> = Vec::new();
        let mut ip_args: Vec<u32> = Vec::new();
        if !self.eat(&TokenKind::RParen) {
            loop {
                let apos = self.pos();
                match self.bump() {
                    TokenKind::Int(v) => int_args.push(v),
                    TokenKind::Ip(v) => {
                        ip_args.push(v);
                        int_args.push(i64::from(v));
                    }
                    other => {
                        return Err(LangError::parse(
                            apos,
                            format!("expected an action argument, found {}", other.describe()),
                        ))
                    }
                }
                if self.eat(&TokenKind::RParen) {
                    break;
                }
                self.expect(TokenKind::Comma)?;
            }
        }
        match name.as_str() {
            "fwd" => {
                let mut ports = Vec::with_capacity(int_args.len());
                for a in int_args {
                    let p = u16::try_from(a).map_err(|_| {
                        LangError::Semantic(format!("port {a} out of range in fwd()"))
                    })?;
                    ports.push(p);
                }
                if ports.is_empty() {
                    return Err(LangError::Semantic("fwd() requires at least one port".into()));
                }
                Ok(Action::Forward(ports))
            }
            "answerDNS" => {
                let ip = ip_args
                    .first()
                    .copied()
                    .or_else(|| int_args.first().and_then(|&v| u32::try_from(v).ok()))
                    .ok_or_else(|| {
                        LangError::Semantic("answerDNS() requires an IPv4 argument".into())
                    })?;
                Ok(Action::AnswerDns(ip))
            }
            "drop" => Ok(Action::Drop),
            _ => Ok(Action::Custom(name, int_args)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_paper_examples() {
        // §II examples.
        let r = parse_expr("ip.dst == 192.168.0.1").unwrap();
        assert_eq!(r, Expr::Atom(Predicate::field("ip.dst", Rel::Eq, 0xC0A8_0001i64)));

        let r = parse_rule("stock == GOOGL and price > 50: fwd(1)").unwrap();
        assert_eq!(r.action, Action::Forward(vec![1]));

        let e = parse_expr("stock == GOOGL and avg(price) > 60").unwrap();
        assert!(e.is_stateful());

        // §VIII-C.6 Linear-Road example.
        let r = parse_rule("x > 10 and x < 20 and y > 30 and y < 40 and spd > 55: fwd(1)").unwrap();
        assert_eq!(r.filter.operands().len(), 3);

        // §VIII-F INT example (single `=`).
        let e = parse_expr("int.switch_id = 2 and int.hop_latency > 100").unwrap();
        assert_eq!(e.operands().len(), 2);
    }

    #[test]
    fn parse_precedence_not_and_or() {
        let e = parse_expr("a == 1 or b == 2 and c == 3").unwrap();
        // `and` binds tighter than `or`.
        match e {
            Expr::Or(_, rhs) => assert!(matches!(*rhs, Expr::And(_, _))),
            other => panic!("expected Or at top, got {other:?}"),
        }
        let e = parse_expr("not a == 1 and b == 2").unwrap();
        match e {
            Expr::And(lhs, _) => assert!(matches!(*lhs, Expr::Not(_))),
            other => panic!("expected And at top, got {other:?}"),
        }
    }

    #[test]
    fn parse_parentheses_override() {
        let e = parse_expr("(a == 1 or b == 2) and c == 3").unwrap();
        assert!(matches!(e, Expr::And(_, _)));
    }

    #[test]
    fn parse_true_false() {
        assert_eq!(parse_expr("true").unwrap(), Expr::True);
        assert_eq!(parse_expr("false").unwrap(), Expr::False);
        let r = parse_rule("true: fwd(3)").unwrap();
        assert_eq!(r.filter, Expr::True);
    }

    #[test]
    fn parse_multicast_and_actions() {
        assert_eq!(
            parse_rule("a == 1: fwd(1,2,3)").unwrap().action,
            Action::Forward(vec![1, 2, 3])
        );
        assert_eq!(
            parse_rule("name == h105: answerDNS(10.0.0.105)").unwrap().action,
            Action::AnswerDns(0x0A00_0069)
        );
        assert_eq!(parse_rule("a == 1: drop()").unwrap().action, Action::Drop);
        assert_eq!(
            parse_rule("a == 1: mirror(7)").unwrap().action,
            Action::Custom("mirror".into(), vec![7])
        );
    }

    #[test]
    fn parse_prefix_relation() {
        let e = parse_expr("name =^ \"h1\"").unwrap();
        assert_eq!(e, Expr::Atom(Predicate::field("name", Rel::Prefix, "h1")));
        // Bare identifier RHS also works for prefix.
        let e = parse_expr("name =^ h1").unwrap();
        assert_eq!(e, Expr::Atom(Predicate::field("name", Rel::Prefix, "h1")));
    }

    #[test]
    fn parse_rejects_type_mismatches() {
        // Ordering over strings is rejected.
        assert!(parse_expr("stock > GOOGL").is_err());
        // Prefix over integers is rejected.
        assert!(parse_expr("price =^ 10").is_err());
        // Aggregates over string constants are rejected.
        assert!(parse_expr("avg(price) == GOOGL").is_err());
    }

    #[test]
    fn parse_errors_are_positioned() {
        let err = parse_expr("a == ").unwrap_err();
        assert!(matches!(err, LangError::Parse { .. }), "{err}");
        assert!(parse_rule("a == 1").is_err()); // missing `: action`
        assert!(parse_rule("a == 1: fwd(1) extra").is_err());
        assert!(parse_rule("a == 1: fwd()").is_err());
        assert!(parse_rule("a == 1: fwd(70000)").is_err());
    }

    #[test]
    fn parse_rules_program() {
        let rules = parse_rules(
            "# market data\nstock == GOOGL: fwd(1)\n\nstock == MSFT and price > 10: fwd(2)\n",
        )
        .unwrap();
        assert_eq!(rules.len(), 2);
    }

    #[test]
    fn pretty_print_roundtrip_examples() {
        for src in [
            "stock == GOOGL and price > 50: fwd(1,2)",
            "(a == 1 or b == 2) and not c == 3: fwd(4)",
            "avg(price) > 60: fwd(1)",
            "name =^ \"h1\": drop()",
            "true: fwd(9)",
        ] {
            let r1 = parse_rule(src).unwrap();
            let r2 = parse_rule(&r1.to_string()).unwrap();
            assert_eq!(r1, r2, "round-trip failed for {src}");
        }
    }

    #[test]
    fn aggregate_parses_three_functions() {
        for (src, func) in [
            ("count(x) > 3", AggFunc::Count),
            ("sum(x) > 3", AggFunc::Sum),
            ("avg(x) > 3", AggFunc::Avg),
        ] {
            let e = parse_expr(src).unwrap();
            match e {
                Expr::Atom(Predicate { operand: Operand::Aggregate { func: f, .. }, .. }) => {
                    assert_eq!(f, func)
                }
                other => panic!("expected aggregate, got {other:?}"),
            }
        }
        // `avg` not followed by `(` is an ordinary field named avg.
        let e = parse_expr("avg == 3").unwrap();
        assert_eq!(e, Expr::Atom(Predicate::field("avg", Rel::Eq, 3i64)));
    }
}
