//! The filter-approximation scheme of §IV-D.
//!
//! To reduce the number of *unique* constraints — and therefore BDD
//! nodes and table entries — the controller may rewrite the numeric
//! constants in comparison constraints as multiples of a discretisation
//! unit α. The rewrite always *widens* the matched set (completeness is
//! preserved; the cost is false-positive traffic, measured in Fig. 13d):
//!
//! * `x > c` and `x ≥ c` round `c` **down** to a multiple of α
//!   (`price > 53` → `price > 50` for α = 10),
//! * `x < c` and `x ≤ c` round `c` **up** (`price < 57` → `price < 60`),
//! * `x == c` optionally widens to the containing bucket
//!   `αk ≤ x < α(k+1)`; by default equalities are kept exact, since
//!   exact matches live in cheap SRAM anyway,
//! * `x != c` and all string constraints are untouched.

use crate::ast::{Expr, Predicate, Rel, Rule};
use crate::value::Value;

/// Configuration for the approximation pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ApproxConfig {
    /// The discretisation unit α. `1` disables rewriting (identity).
    pub alpha: i64,
    /// Whether to widen equality constraints to their α-bucket.
    pub widen_eq: bool,
}

impl ApproxConfig {
    pub fn new(alpha: i64) -> Self {
        assert!(alpha >= 1, "alpha must be positive");
        ApproxConfig { alpha, widen_eq: false }
    }
}

/// Statistics from an approximation pass, used by the evaluation to
/// correlate α with rule aggregation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ApproxStats {
    /// Constants rewritten to a different value.
    pub rewritten: usize,
    /// Constraints visited.
    pub visited: usize,
}

/// Largest multiple of α that is ≤ c (floor division toward -∞).
fn floor_alpha(c: i64, alpha: i64) -> i64 {
    c.div_euclid(alpha).saturating_mul(alpha)
}

/// Smallest multiple of α that is ≥ c.
fn ceil_alpha(c: i64, alpha: i64) -> i64 {
    let f = floor_alpha(c, alpha);
    if f == c {
        c
    } else {
        f.saturating_add(alpha)
    }
}

/// Approximate a single predicate. Returns the (possibly widened)
/// replacement expression.
fn approx_pred(p: &Predicate, cfg: ApproxConfig, stats: &mut ApproxStats) -> Expr {
    stats.visited += 1;
    let Value::Int(c) = p.constant else {
        return Expr::Atom(p.clone()); // strings untouched
    };
    if cfg.alpha == 1 {
        return Expr::Atom(p.clone());
    }
    let rewrite = |rel: Rel, nc: i64, stats: &mut ApproxStats| {
        if nc != c {
            stats.rewritten += 1;
        }
        Expr::Atom(Predicate { operand: p.operand.clone(), rel, constant: Value::Int(nc) })
    };
    match p.rel {
        Rel::Gt | Rel::Ge => rewrite(p.rel, floor_alpha(c, cfg.alpha), stats),
        Rel::Lt | Rel::Le => rewrite(p.rel, ceil_alpha(c, cfg.alpha), stats),
        Rel::Eq if cfg.widen_eq => {
            let lo = floor_alpha(c, cfg.alpha);
            let hi = lo.saturating_add(cfg.alpha);
            stats.rewritten += 1;
            Expr::Atom(Predicate {
                operand: p.operand.clone(),
                rel: Rel::Ge,
                constant: Value::Int(lo),
            })
            .and(Expr::Atom(Predicate {
                operand: p.operand.clone(),
                rel: Rel::Lt,
                constant: Value::Int(hi),
            }))
        }
        // Equalities (by default), inequalities and everything else are
        // left exact: widening `!=` is impossible without matching all.
        _ => Expr::Atom(p.clone()),
    }
}

/// Approximate every numeric comparison constant in `expr`.
///
/// Note: widening is only sound for *positively* occurring constraints.
/// Under a `not`, widening an atom would shrink the overall match set,
/// so atoms under negation are rewritten in the *narrowing* direction,
/// which after the `not` widens again. This is handled by tracking
/// polarity.
pub fn approximate_expr(expr: &Expr, cfg: ApproxConfig) -> (Expr, ApproxStats) {
    let mut stats = ApproxStats::default();
    let e = approx_rec(expr, cfg, false, &mut stats);
    (e, stats)
}

fn approx_rec(expr: &Expr, cfg: ApproxConfig, negated: bool, stats: &mut ApproxStats) -> Expr {
    match expr {
        Expr::True => {
            if negated {
                Expr::False
            } else {
                Expr::True
            }
        }
        Expr::False => {
            if negated {
                Expr::True
            } else {
                Expr::False
            }
        }
        Expr::Atom(p) => {
            if negated {
                // The enclosing `not` has been absorbed (the Expr::Not
                // arm returns our result directly), so produce the
                // widened form of the complement predicate.
                approx_pred(&p.negated(), cfg, stats)
            } else {
                approx_pred(p, cfg, stats)
            }
        }
        Expr::Not(e) => {
            let inner = approx_rec(e, cfg, !negated, stats);
            // The polarity flip already produced the widened *negated*
            // meaning of `e`, so no standalone `not` remains.
            inner
        }
        Expr::And(a, b) => {
            let (fa, fb) = (approx_rec(a, cfg, negated, stats), approx_rec(b, cfg, negated, stats));
            if negated {
                fa.or(fb) // De Morgan: ¬(a ∧ b) = ¬a ∨ ¬b
            } else {
                fa.and(fb)
            }
        }
        Expr::Or(a, b) => {
            let (fa, fb) = (approx_rec(a, cfg, negated, stats), approx_rec(b, cfg, negated, stats));
            if negated {
                fa.and(fb)
            } else {
                fa.or(fb)
            }
        }
    }
}

/// Approximate a rule's filter, keeping its action.
pub fn approximate_rule(rule: &Rule, cfg: ApproxConfig) -> (Rule, ApproxStats) {
    let (filter, stats) = approximate_expr(&rule.filter, cfg);
    (Rule { filter, action: rule.action.clone() }, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Operand;
    use crate::parser::parse_expr;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn paper_examples() {
        // §IV-D: α=10 rewrites price > 53 and price > 57 to price > 50.
        let cfg = ApproxConfig::new(10);
        let (e, st) = approximate_expr(&parse_expr("price > 53").unwrap(), cfg);
        assert_eq!(e, parse_expr("price > 50").unwrap());
        assert_eq!(st.rewritten, 1);
        let (e, _) = approximate_expr(&parse_expr("price > 57").unwrap(), cfg);
        assert_eq!(e, parse_expr("price > 50").unwrap());
        // ...and price < 53 / price < 57 to price < 60.
        let (e, _) = approximate_expr(&parse_expr("price < 53").unwrap(), cfg);
        assert_eq!(e, parse_expr("price < 60").unwrap());
        let (e, _) = approximate_expr(&parse_expr("price < 57").unwrap(), cfg);
        assert_eq!(e, parse_expr("price < 60").unwrap());
    }

    #[test]
    fn alpha_one_is_identity() {
        let src = "price > 53 and x < 7 and stock == GOOGL";
        let e = parse_expr(src).unwrap();
        let (out, st) = approximate_expr(&e, ApproxConfig::new(1));
        assert_eq!(out, e);
        assert_eq!(st.rewritten, 0);
        assert_eq!(st.visited, 3);
    }

    #[test]
    fn multiples_unchanged() {
        let (e, st) = approximate_expr(&parse_expr("price > 50").unwrap(), ApproxConfig::new(10));
        assert_eq!(e, parse_expr("price > 50").unwrap());
        assert_eq!(st.rewritten, 0);
    }

    #[test]
    fn negative_constants_floor_toward_minus_infinity() {
        let cfg = ApproxConfig::new(10);
        let (e, _) = approximate_expr(&parse_expr("t > -7").unwrap(), cfg);
        assert_eq!(e, parse_expr("t > -10").unwrap());
        let (e, _) = approximate_expr(&parse_expr("t < -7").unwrap(), cfg);
        assert_eq!(e, parse_expr("t < 0").unwrap());
    }

    #[test]
    fn eq_widening_optional() {
        let mut cfg = ApproxConfig::new(10);
        let (e, _) = approximate_expr(&parse_expr("price == 53").unwrap(), cfg);
        assert_eq!(e, parse_expr("price == 53").unwrap());
        cfg.widen_eq = true;
        let (e, _) = approximate_expr(&parse_expr("price == 53").unwrap(), cfg);
        assert_eq!(e, parse_expr("price >= 50 and price < 60").unwrap());
    }

    #[test]
    fn strings_untouched() {
        let cfg = ApproxConfig::new(10);
        let src = "stock == GOOGL and name =^ ab";
        let (e, st) = approximate_expr(&parse_expr(src).unwrap(), cfg);
        assert_eq!(e, parse_expr(src).unwrap());
        assert_eq!(st.rewritten, 0);
    }

    /// The key soundness property (completeness, §IV-C): for any packet,
    /// if the exact filter matches then the approximated filter matches.
    #[test]
    fn approximation_is_superset_randomised() {
        let mut rng = StdRng::seed_from_u64(42);
        let exprs = [
            "a > 53 and b < 57",
            "a >= 53 or b <= 41",
            "not (a > 53)",
            "not (a > 53 and b < 57)",
            "a > 13 and not (b >= 27 or a < 19)",
            "not (not (a < 55))",
            "a == 53 or b > 99",
        ];
        for alpha in [2i64, 5, 10, 50] {
            let mut cfg = ApproxConfig::new(alpha);
            for widen_eq in [false, true] {
                cfg.widen_eq = widen_eq;
                for src in exprs {
                    let exact = parse_expr(src).unwrap();
                    let (approx, _) = approximate_expr(&exact, cfg);
                    for _ in 0..500 {
                        let a = rng.gen_range(-120i64..120);
                        let b = rng.gen_range(-120i64..120);
                        let lookup = |op: &Operand| {
                            Some(Value::Int(match op.field_name() {
                                "a" => a,
                                "b" => b,
                                _ => return None,
                            }))
                        };
                        if exact.eval_with(lookup) {
                            assert!(
                                approx.eval_with(lookup),
                                "approximation shrank the match set: {src} α={alpha} \
                                 widen_eq={widen_eq} a={a} b={b}; approx = {approx}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn approximation_reduces_unique_constants() {
        // The point of the exercise: many distinct constants collapse.
        let cfg = ApproxConfig::new(10);
        let mut consts = std::collections::HashSet::new();
        for c in 51..60 {
            let (e, _) = approximate_expr(&parse_expr(&format!("price > {c}")).unwrap(), cfg);
            if let Expr::Atom(p) = e {
                consts.insert(p.constant.clone());
            }
        }
        assert_eq!(consts.len(), 1); // all nine collapse to price > 50
    }

    #[test]
    #[should_panic(expected = "alpha must be positive")]
    fn zero_alpha_panics() {
        ApproxConfig::new(0);
    }
}
