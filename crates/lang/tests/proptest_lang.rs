//! Property-based tests for the language core: parser round-trips,
//! DNF semantic preservation, interval-set algebra, and approximation
//! soundness, over arbitrary generated inputs.

use camus_lang::approx::{approximate_expr, ApproxConfig};
use camus_lang::ast::{Expr, Operand, Predicate, Rel};
use camus_lang::dnf::to_dnf;
use camus_lang::parser::{parse_expr, parse_rule};
use camus_lang::sets::IntSet;
use camus_lang::value::Value;
use proptest::prelude::*;

fn arb_rel_int() -> impl Strategy<Value = Rel> {
    prop_oneof![
        Just(Rel::Eq),
        Just(Rel::Ne),
        Just(Rel::Lt),
        Just(Rel::Le),
        Just(Rel::Gt),
        Just(Rel::Ge)
    ]
}

fn arb_pred() -> impl Strategy<Value = Predicate> {
    let field = prop_oneof![Just("a"), Just("b"), Just("c")];
    let int_pred =
        (field, arb_rel_int(), -20i64..20).prop_map(|(f, r, c)| Predicate::field(f, r, c));
    let str_rel = prop_oneof![Just(Rel::Eq), Just(Rel::Ne), Just(Rel::Prefix)];
    let sym = prop_oneof![Just("x"), Just("xy"), Just("xyz"), Just("q")];
    let str_pred = (prop_oneof![Just("s"), Just("t")], str_rel, sym)
        .prop_map(|(f, r, c)| Predicate::field(f, r, c));
    prop_oneof![3 => int_pred, 1 => str_pred]
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        4 => arb_pred().prop_map(Expr::Atom),
        1 => Just(Expr::True),
        1 => Just(Expr::False)
    ];
    leaf.prop_recursive(4, 32, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            inner.prop_map(Expr::not),
        ]
    })
}

fn arb_packet() -> impl Strategy<Value = Vec<(String, Value)>> {
    let sym = prop_oneof![Just("x"), Just("xy"), Just("xyz"), Just("q"), Just("zz")];
    (-25i64..25, -25i64..25, -25i64..25, sym.clone(), sym).prop_map(|(a, b, c, s, t)| {
        vec![
            ("a".into(), Value::Int(a)),
            ("b".into(), Value::Int(b)),
            ("c".into(), Value::Int(c)),
            ("s".into(), Value::Str(s.into())),
            ("t".into(), Value::Str(t.into())),
        ]
    })
}

fn eval(e: &Expr, pkt: &[(String, Value)]) -> bool {
    let lookup = |op: &Operand| pkt.iter().find(|(n, _)| *n == op.key()).map(|(_, v)| v.clone());
    e.eval_with(lookup)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Pretty-printing any expression reparses to the same AST.
    #[test]
    fn parser_roundtrip(e in arb_expr()) {
        let printed = e.to_string();
        let reparsed = parse_expr(&printed)
            .unwrap_or_else(|err| panic!("reparse of {printed:?} failed: {err}"));
        prop_assert_eq!(e, reparsed);
    }

    /// Rules round-trip too (filter + action).
    #[test]
    fn rule_roundtrip(e in arb_expr(), port in 1u16..100) {
        let rule = camus_lang::ast::Rule::fwd(e, port);
        let reparsed = parse_rule(&rule.to_string()).unwrap();
        prop_assert_eq!(rule, reparsed);
    }

    /// DNF normalisation preserves semantics on total assignments.
    #[test]
    fn dnf_preserves_semantics(e in arb_expr(), pkts in prop::collection::vec(arb_packet(), 1..8)) {
        let d = to_dnf(&e);
        for pkt in &pkts {
            let lookup = |op: &Operand| {
                pkt.iter().find(|(n, _)| *n == op.key()).map(|(_, v)| v.clone())
            };
            prop_assert_eq!(e.eval_with(lookup), d.eval_with(lookup), "expr {} dnf {}", e, d);
        }
    }

    /// α-approximation only widens the match set.
    #[test]
    fn approximation_is_superset(
        e in arb_expr(),
        pkts in prop::collection::vec(arb_packet(), 1..8),
        alpha in 2i64..30,
        widen_eq in any::<bool>(),
    ) {
        let mut cfg = ApproxConfig::new(alpha);
        cfg.widen_eq = widen_eq;
        let (approx, _) = approximate_expr(&e, cfg);
        for pkt in &pkts {
            if eval(&e, pkt) {
                prop_assert!(
                    eval(&approx, pkt),
                    "α={} widen_eq={} shrank: {} -> {}",
                    alpha, widen_eq, e, approx
                );
            }
        }
    }

    /// Interval-set algebra: De Morgan, involution, and membership
    /// consistency across operations.
    #[test]
    fn intset_algebra(
        rels in prop::collection::vec((arb_rel_int(), -30i64..30), 1..5),
        samples in prop::collection::vec(-40i64..40, 1..20),
    ) {
        let sets: Vec<IntSet> = rels.iter().map(|&(r, c)| IntSet::from_rel(r, c)).collect();
        for s in &sets {
            prop_assert_eq!(&s.complement().complement(), s);
        }
        for (i, a) in sets.iter().enumerate() {
            for b in &sets[i..] {
                let inter = a.intersect(b);
                let uni = a.union(b);
                // De Morgan.
                prop_assert_eq!(
                    inter.complement(),
                    a.complement().union(&b.complement())
                );
                prop_assert_eq!(
                    uni.complement(),
                    a.complement().intersect(&b.complement())
                );
                // Membership consistency.
                for &v in &samples {
                    prop_assert_eq!(inter.contains(v), a.contains(v) && b.contains(v));
                    prop_assert_eq!(uni.contains(v), a.contains(v) || b.contains(v));
                    prop_assert_eq!(a.complement().contains(v), !a.contains(v));
                }
                // Subset relations.
                prop_assert!(inter.is_subset(a) && inter.is_subset(b));
                prop_assert!(a.is_subset(&uni) && b.is_subset(&uni));
            }
        }
    }

    /// Predicate evaluation agrees with the denoted interval set.
    #[test]
    fn pred_eval_matches_set(rel in arb_rel_int(), c in -30i64..30, v in -40i64..40) {
        let set = IntSet::from_rel(rel, c);
        let pred = Predicate::field("f", rel, c);
        prop_assert_eq!(set.contains(v), pred.eval(&Value::Int(v)));
    }
}
