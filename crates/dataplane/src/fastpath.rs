//! Slot-resolved evaluation plans: the data-plane half of the compiled
//! fast path.
//!
//! [`CompiledPipeline`](camus_core::CompiledPipeline) interns operands
//! to dense slot ids; [`EvalPlan::build`] resolves each slot against
//! the application [`Spec`] **once**, at install time, into byte
//! offsets. Per message, [`EvalPlan::eval`] decodes fields straight
//! from the packet buffer into a reusable slot-indexed scratch array
//! and runs the compiled pipeline — no string hashing, no per-message
//! `HashMap`, and zero steady-state heap allocations (string slots
//! reuse their buffers).
//!
//! Resolution mirrors [`ParseOutcome::lookup`](crate::parser::ParseOutcome::lookup)
//! exactly, source by source:
//!
//! 1. a field of the batched message header (bare name),
//! 2. the fixed stack — bare names when unambiguous across all
//!    headers, `header.field` paths for sequence headers; either is
//!    present only when the whole enclosing header is on the wire,
//! 3. the dotted fallback: `anything.field` reaches the message header
//!    field `field` (the interpreter ignores the prefix).
//!
//! Stack-only applications (no batched messages) consult source 2
//! alone, matching the interpreter's bare-stack evaluation.

use crate::packet::Packet;
use crate::state::StateStore;
use camus_core::compiled::{ActionId, CompiledPipeline, EvalCounters};
use camus_core::pipeline::Pipeline;
use camus_lang::ast::{AggFunc, Operand, Port};
use camus_lang::spec::Spec;
use camus_lang::value::{Type, Value};

/// Hint the cache hierarchy to pull `bytes`' first line(s) while the
/// current packet evaluates: the batch loop calls this one packet
/// ahead, hiding the DRAM latency of cold packet buffers behind useful
/// work. Advisory only — a no-op off x86_64 and on empty slices.
#[inline]
pub fn prefetch_read(bytes: &[u8]) {
    #[cfg(target_arch = "x86_64")]
    {
        if !bytes.is_empty() {
            // Safety: _mm_prefetch never faults, even on invalid
            // addresses; the pointer is a live slice start.
            unsafe {
                use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
                _mm_prefetch(bytes.as_ptr() as *const i8, _MM_HINT_T0);
                if bytes.len() > 64 {
                    _mm_prefetch(bytes.as_ptr().add(64) as *const i8, _MM_HINT_T0);
                }
            }
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = bytes;
    }
}

/// A field of the batched message header: offset within one message.
#[derive(Debug, Clone, Copy)]
pub struct MsgRef {
    pub off: usize,
    pub len: usize,
    pub ty: Type,
}

/// A field of the fixed stack: absolute packet offset, valid only when
/// the whole enclosing header is on the wire (`pkt.len() >= header_end`
/// — a truncated header contributes no attributes, like the parser).
#[derive(Debug, Clone, Copy)]
pub struct StackRef {
    pub off: usize,
    pub len: usize,
    pub ty: Type,
    pub header_end: usize,
}

/// Where one operand's value comes from, in lookup-precedence order.
#[derive(Debug, Clone, Copy, Default)]
pub struct FieldLookup {
    pub msg: Option<MsgRef>,
    pub stack: Option<StackRef>,
    pub msg_fallback: Option<MsgRef>,
}

/// Per-slot fill strategy.
#[derive(Debug, Clone)]
pub enum SlotPlan {
    /// Decoded from packet bytes.
    Field(FieldLookup),
    /// Filled from the register file by the aggregate pass.
    Aggregate,
}

/// One aggregate stage: update the register with the input field, then
/// publish the windowed read into its value slot. Kept in pipeline
/// stage order — including duplicates — so register update counts match
/// the interpreter exactly.
#[derive(Debug, Clone)]
pub struct AggPlan {
    /// Register key (the operand key, e.g. `avg(price)`).
    pub key: String,
    pub func: AggFunc,
    /// Lookup for the aggregated field (same precedence as any field).
    pub input: FieldLookup,
    /// Slot that receives the windowed value.
    pub slot: usize,
}

/// The install-time product: slot fill plans plus packet geometry.
#[derive(Debug, Clone, Default)]
pub struct EvalPlan {
    pub slots: Vec<SlotPlan>,
    pub aggs: Vec<AggPlan>,
    /// Byte offset where batched messages start (the stack width).
    pub msg_base: usize,
    /// Width of one batched message; 0 when the spec has none.
    pub msg_width: usize,
    /// End offsets of sequence headers carrying at least one field:
    /// the packet has stack attributes iff any of these fits.
    pub stack_field_ends: Vec<usize>,
}

impl EvalPlan {
    /// Resolve every compiled slot (and every aggregate stage of the
    /// installed pipeline) against the spec.
    pub fn build(spec: &Spec, compiled: &CompiledPipeline, pipeline: &Pipeline) -> EvalPlan {
        let slots = compiled
            .slots()
            .iter()
            .map(|op| match op {
                Operand::Field(name) => SlotPlan::Field(plan_field(spec, name)),
                Operand::Aggregate { .. } => SlotPlan::Aggregate,
            })
            .collect();
        let aggs = pipeline
            .stages
            .iter()
            .filter_map(|s| match &s.operand {
                Operand::Aggregate { func, field } => Some(AggPlan {
                    key: s.operand.key(),
                    func: *func,
                    input: plan_field(spec, field),
                    slot: compiled
                        .slots()
                        .iter()
                        .position(|o| o == &s.operand)
                        .expect("every stage operand is interned"),
                }),
                Operand::Field(_) => None,
            })
            .collect();
        let msg_width =
            spec.messages.as_ref().and_then(|m| spec.header(m)).map_or(0, |h| h.width_bytes());
        let mut stack_field_ends = Vec::new();
        for name in &spec.sequence {
            if let (Some(off), Some(h)) = (spec.stack_offset(name), spec.header(name)) {
                if !h.fields.is_empty() {
                    stack_field_ends.push(off + h.width_bytes());
                }
            }
        }
        EvalPlan { slots, aggs, msg_base: spec.stack_width(), msg_width, stack_field_ends }
    }

    /// Whole batched messages in the packet (≡ `Packet::message_count`).
    pub fn message_count(&self, pkt: &Packet) -> usize {
        pkt.len().saturating_sub(self.msg_base).checked_div(self.msg_width).unwrap_or(0)
    }

    /// Byte offset of message `index`.
    pub fn msg_offset(&self, index: usize) -> usize {
        self.msg_base + index * self.msg_width
    }

    /// Whether the packet carries any stack attributes (the parser's
    /// non-empty-stack condition for stack-only evaluation).
    pub fn stack_has_fields(&self, pkt: &Packet) -> bool {
        self.stack_field_ends.iter().any(|&end| pkt.len() >= end)
    }

    /// Whether the packet's geometry is malformed for this spec: a
    /// truncated stack, or trailing bytes that do not form a whole
    /// batched message. Such bytes are never decoded — a graceful
    /// parse miss — but the switch counts the packet.
    pub fn is_malformed(&self, pkt: &Packet) -> bool {
        if pkt.len() < self.msg_base {
            return true;
        }
        self.msg_width != 0 && !(pkt.len() - self.msg_base).is_multiple_of(self.msg_width)
    }

    /// Evaluate one message (`msg_off = Some(byte offset)`) or the bare
    /// stack (`None`) against the compiled pipeline. `values` is the
    /// reusable slot scratch (`len == compiled.slots().len()`).
    #[allow(clippy::too_many_arguments)]
    pub fn eval(
        &self,
        compiled: &CompiledPipeline,
        state: &mut StateStore,
        values: &mut [Option<Value>],
        pkt: &Packet,
        msg_off: Option<usize>,
        now_us: u64,
        counters: &mut EvalCounters,
    ) -> ActionId {
        for (slot, sp) in self.slots.iter().enumerate() {
            if let SlotPlan::Field(fl) = sp {
                fill_field(fl, pkt, msg_off, &mut values[slot]);
            }
        }
        // Aggregates: every register update lands before any read, in
        // stage order — the interpreter's update-then-read interleaving
        // reduces to this because registers are keyed per operand.
        for agg in &self.aggs {
            if let Some(v) = read_input_int(&agg.input, pkt, msg_off) {
                state.update(&agg.key, now_us, v);
            }
        }
        for agg in &self.aggs {
            let v = state.read(&agg.key, now_us, agg.func);
            set_int(&mut values[agg.slot], v);
        }
        compiled.eval_counted(values, counters)
    }
}

/// Resolve one field operand's sources against the spec.
fn plan_field(spec: &Spec, name: &str) -> FieldLookup {
    let mut fl = FieldLookup::default();
    if let Some(h) = spec.messages.as_ref().and_then(|m| spec.header(m)) {
        if let Some(f) = h.field(name) {
            fl.msg = Some(MsgRef { off: f.offset_bytes(), len: f.width_bytes(), ty: f.ty });
        }
        // The interpreter's dotted fallback strips *any* prefix.
        if let Some((_, suffix)) = name.split_once('.') {
            if let Some(f) = h.field(suffix) {
                fl.msg_fallback =
                    Some(MsgRef { off: f.offset_bytes(), len: f.width_bytes(), ty: f.ty });
            }
        }
    }
    // Stack entries exist for `header.field` paths of sequence headers
    // and for bare names that resolve unambiguously; `Spec::resolve`
    // implements both, and `stack_offset` filters to the sequence.
    if let Some((h, f)) = spec.resolve(name) {
        if let Some(base) = spec.stack_offset(&h.name) {
            fl.stack = Some(StackRef {
                off: base + f.offset_bytes(),
                len: f.width_bytes(),
                ty: f.ty,
                header_end: base + h.width_bytes(),
            });
        }
    }
    fl
}

/// Big-endian unsigned decode of up to 8 bytes (≡ `Value::decode`).
#[inline]
pub fn decode_int(bytes: &[u8]) -> i64 {
    let mut v: i64 = 0;
    for &b in bytes.iter().take(8) {
        v = (v << 8) | i64::from(b);
    }
    v
}

#[inline]
fn set_int(slot: &mut Option<Value>, x: i64) {
    match slot {
        Some(Value::Int(v)) => *v = x,
        _ => *slot = Some(Value::Int(x)),
    }
}

/// Decode a string field into the slot, reusing the slot's existing
/// buffer (≡ `Value::decode`: trailing space/NUL stripped, lossy UTF-8).
#[inline]
fn set_str(slot: &mut Option<Value>, bytes: &[u8]) {
    let end = bytes.iter().rposition(|&b| b != b' ' && b != 0).map_or(0, |p| p + 1);
    let trimmed = &bytes[..end];
    match std::str::from_utf8(trimmed) {
        Ok(s) => match slot {
            Some(Value::Str(dst)) => {
                dst.clear();
                dst.push_str(s);
            }
            _ => *slot = Some(Value::Str(s.to_owned())),
        },
        // Invalid UTF-8 is not a steady-state path for well-formed
        // traffic; match the interpreter's lossy decode.
        Err(_) => *slot = Some(Value::Str(String::from_utf8_lossy(trimmed).into_owned())),
    }
}

#[inline]
fn decode_into(slot: &mut Option<Value>, ty: Type, bytes: &[u8]) {
    match ty {
        Type::Int => set_int(slot, decode_int(bytes)),
        Type::Str => set_str(slot, bytes),
    }
}

/// Fill one slot from the first present source, or clear it.
#[inline]
fn fill_field(fl: &FieldLookup, pkt: &Packet, msg_off: Option<usize>, slot: &mut Option<Value>) {
    if let (Some(m), Some(base)) = (&fl.msg, msg_off) {
        decode_into(slot, m.ty, &pkt.bytes[base + m.off..base + m.off + m.len]);
        return;
    }
    if let Some(s) = &fl.stack {
        if pkt.len() >= s.header_end {
            decode_into(slot, s.ty, &pkt.bytes[s.off..s.off + s.len]);
            return;
        }
    }
    if let (Some(m), Some(base)) = (&fl.msg_fallback, msg_off) {
        decode_into(slot, m.ty, &pkt.bytes[base + m.off..base + m.off + m.len]);
        return;
    }
    *slot = None;
}

/// Read an aggregate's input as an integer: the first present source
/// decides — a string-typed hit yields no update, like the
/// interpreter's `if let Some(Value::Int(v))` gate.
#[inline]
fn read_input_int(fl: &FieldLookup, pkt: &Packet, msg_off: Option<usize>) -> Option<i64> {
    if let (Some(m), Some(base)) = (&fl.msg, msg_off) {
        return (m.ty == Type::Int)
            .then(|| decode_int(&pkt.bytes[base + m.off..base + m.off + m.len]));
    }
    if let Some(s) = &fl.stack {
        if pkt.len() >= s.header_end {
            return (s.ty == Type::Int).then(|| decode_int(&pkt.bytes[s.off..s.off + s.len]));
        }
    }
    if let (Some(m), Some(base)) = (&fl.msg_fallback, msg_off) {
        return (m.ty == Type::Int)
            .then(|| decode_int(&pkt.bytes[base + m.off..base + m.off + m.len]));
    }
    None
}

/// Reusable per-port keep lists: the port mask of §VI-A without a fresh
/// `HashMap<Port, Vec<usize>>` per packet. Lists are indexed by port
/// and only the touched ones are cleared between packets.
#[derive(Debug, Clone, Default)]
pub struct KeepLists {
    pub(crate) touched: Vec<Port>,
    pub(crate) lists: Vec<Vec<usize>>,
}

impl KeepLists {
    pub fn clear(&mut self) {
        for &p in &self.touched {
            self.lists[p as usize].clear();
        }
        self.touched.clear();
    }

    pub fn push(&mut self, port: Port, msg_index: usize) {
        let pi = port as usize;
        if pi >= self.lists.len() {
            self.lists.resize_with(pi + 1, Vec::new);
        }
        if self.lists[pi].is_empty() {
            self.touched.push(port);
        }
        self.lists[pi].push(msg_index);
    }

    /// Ports touched by this packet, sorted (deterministic fan-out).
    pub fn sort_ports(&mut self) {
        self.touched.sort_unstable();
    }
}

/// Per-switch scratch reused across packets (allocation-free once warm).
#[derive(Debug, Clone, Default)]
pub struct EvalScratch {
    /// Slot-indexed values for the message under evaluation.
    pub values: Vec<Option<Value>>,
    pub keep: KeepLists,
}

impl EvalScratch {
    /// Resize for a freshly installed pipeline.
    pub fn reset(&mut self, slot_count: usize) {
        self.values.clear();
        self.values.resize(slot_count, None);
        self.keep = KeepLists::default();
    }
}
