//! Stateful predicates: the register file and tumbling windows (§II).
//!
//! The static compiler pre-allocates a block of registers; each
//! register implements a *tumbling window* over a field: when the
//! window elapses, the aggregate resets and starts accumulating anew
//! (the paper's restriction — no sliding windows, only count/sum/avg).
//! Stateful predicates are only evaluated at the last-hop switch (§II);
//! the network layer enforces that, this module just does the
//! arithmetic.

use camus_lang::ast::AggFunc;
use serde::{Deserialize, Serialize};

/// One tumbling-window register.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WindowRegister {
    pub window_us: u64,
    window_start_us: u64,
    count: u64,
    sum: i64,
}

impl WindowRegister {
    pub fn new(window_us: u64) -> Self {
        assert!(window_us > 0, "window must be positive");
        WindowRegister { window_us, window_start_us: 0, count: 0, sum: 0 }
    }

    fn roll(&mut self, now_us: u64) {
        if now_us >= self.window_start_us + self.window_us {
            // Tumble: align the new window to the configured size.
            self.window_start_us = now_us - (now_us % self.window_us);
            self.count = 0;
            self.sum = 0;
        }
    }

    /// Record one observation at time `now_us`.
    pub fn update(&mut self, now_us: u64, value: i64) {
        self.roll(now_us);
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Read an aggregate at time `now_us` (rolls the window first, so a
    /// stale window reads as empty).
    pub fn read(&mut self, now_us: u64, func: AggFunc) -> i64 {
        self.roll(now_us);
        match func {
            AggFunc::Count => self.count as i64,
            AggFunc::Sum => self.sum,
            AggFunc::Avg => {
                if self.count == 0 {
                    0
                } else {
                    self.sum / self.count as i64
                }
            }
        }
    }
}

/// The switch's register file: one window register per aggregate
/// operand key (`avg(price)`, `count(hop_latency)`, ...). Registers are
/// created on first use with the default window unless pre-allocated by
/// the static compiler's `@counter` declarations.
#[derive(Debug, Clone, Default)]
pub struct StateStore {
    regs: std::collections::HashMap<String, WindowRegister>,
    /// Window applied to aggregates without an explicit `@counter`.
    pub default_window_us: u64,
}

impl StateStore {
    pub fn new(default_window_us: u64) -> Self {
        StateStore { regs: Default::default(), default_window_us }
    }

    /// Pre-allocate a register (static compilation path).
    pub fn allocate(&mut self, key: &str, window_us: u64) {
        self.regs.entry(key.to_string()).or_insert_with(|| WindowRegister::new(window_us));
    }

    fn reg(&mut self, key: &str) -> &mut WindowRegister {
        // Probe before inserting: the steady-state hit path must not
        // allocate a `String` just to look the register up.
        if !self.regs.contains_key(key) {
            let w = if self.default_window_us == 0 { 1_000_000 } else { self.default_window_us };
            self.regs.insert(key.to_string(), WindowRegister::new(w));
        }
        self.regs.get_mut(key).expect("present or just inserted")
    }

    /// Record a field observation into the aggregate register `key`.
    pub fn update(&mut self, key: &str, now_us: u64, value: i64) {
        self.reg(key).update(now_us, value);
    }

    /// Read aggregate `func` from register `key`.
    pub fn read(&mut self, key: &str, now_us: u64, func: AggFunc) -> i64 {
        self.reg(key).read(now_us, func)
    }

    pub fn register_count(&self) -> usize {
        self.regs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_sum_avg_within_window() {
        let mut r = WindowRegister::new(100);
        r.update(10, 5);
        r.update(20, 15);
        assert_eq!(r.read(30, AggFunc::Count), 2);
        assert_eq!(r.read(30, AggFunc::Sum), 20);
        assert_eq!(r.read(30, AggFunc::Avg), 10);
    }

    #[test]
    fn window_tumbles_and_resets() {
        let mut r = WindowRegister::new(100);
        r.update(10, 50);
        assert_eq!(r.read(99, AggFunc::Sum), 50);
        // At t=100 the window [0,100) has elapsed.
        assert_eq!(r.read(100, AggFunc::Sum), 0);
        r.update(150, 7);
        assert_eq!(r.read(199, AggFunc::Sum), 7);
        // Next window.
        assert_eq!(r.read(200, AggFunc::Sum), 0);
    }

    #[test]
    fn window_alignment_is_absolute() {
        let mut r = WindowRegister::new(100);
        // First observation late in a window still tumbles at the
        // absolute boundary.
        r.update(90, 1);
        assert_eq!(r.read(95, AggFunc::Count), 1);
        assert_eq!(r.read(105, AggFunc::Count), 0);
    }

    #[test]
    fn avg_of_empty_window_is_zero() {
        let mut r = WindowRegister::new(10);
        assert_eq!(r.read(5, AggFunc::Avg), 0);
    }

    #[test]
    fn sum_saturates() {
        let mut r = WindowRegister::new(1_000);
        r.update(1, i64::MAX);
        r.update(2, i64::MAX);
        assert_eq!(r.read(3, AggFunc::Sum), i64::MAX);
    }

    #[test]
    fn store_allocates_and_defaults() {
        let mut s = StateStore::new(100);
        s.allocate("avg(price)", 500);
        s.update("avg(price)", 10, 8);
        s.update("count(x)", 10, 1); // implicit register, window 100
        assert_eq!(s.register_count(), 2);
        assert_eq!(s.read("avg(price)", 400, AggFunc::Avg), 8); // still in 500us window
        assert_eq!(s.read("count(x)", 10, AggFunc::Count), 1);
        assert_eq!(s.read("count(x)", 150, AggFunc::Count), 0); // tumbled
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_panics() {
        WindowRegister::new(0);
    }
}
