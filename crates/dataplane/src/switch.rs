//! The full per-packet switch path (§VI).
//!
//! Ingress parses the packet (deep parsing with recirculation) and
//! evaluates the compiled pipeline once per batched message, producing
//! a port mask per message. The crossbar then replicates the packet —
//! one copy per output port — and egress prunes from each copy the
//! messages that port's subscribers did not ask for (§VI-A; on
//! hardware the mask rides in an unused header field, here it is
//! explicit). Non-forward actions (`answerDNS`, custom) are surfaced
//! to the embedding application.
//!
//! Latency is modelled as a base pipeline traversal plus a penalty per
//! recirculation pass, defaulting to the paper's sub-microsecond
//! pipeline (§VIII-F).

use crate::fastpath::{EvalPlan, EvalScratch, KeepLists};
use crate::packet::Packet;
use crate::parser::{DeepParser, ParseOutcome};
use crate::state::StateStore;
use crate::telemetry::SwitchTelemetry;
use camus_core::compiled::{CompiledPipeline, EvalCounters};
use camus_core::pipeline::Pipeline;
use camus_core::resources::{self, AdmissionError, ResourceBudget, ResourceReport};
use camus_core::statics::StaticPipeline;
use camus_lang::ast::{Action, AggFunc, Operand, Port};
use camus_lang::spec::Spec;
use camus_lang::value::Value;
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Hardware-model parameters.
#[derive(Debug, Clone)]
pub struct SwitchConfig {
    /// Messages extracted per parser pass (PHV budget).
    pub max_msgs_per_pass: usize,
    /// Dedicated recirculation ports.
    pub recirc_ports: usize,
    /// One pipeline traversal, in nanoseconds (§VIII-F: < 1 μs).
    pub base_latency_ns: u64,
    /// Extra latency per recirculation pass.
    pub recirc_latency_ns: u64,
    /// Window for aggregates without an explicit `@counter`.
    pub default_window_us: u64,
    /// Resource budget every installed pipeline must fit (Table I).
    /// Defaults to unlimited so unbudgeted simulations never reject;
    /// the controller overrides it per switch for admission control.
    pub budget: ResourceBudget,
}

impl Default for SwitchConfig {
    fn default() -> Self {
        SwitchConfig {
            max_msgs_per_pass: 4,
            recirc_ports: 3,
            base_latency_ns: 600,
            recirc_latency_ns: 400,
            default_window_us: 100,
            budget: ResourceBudget::unlimited(),
        }
    }
}

/// Why an install was refused. The previous program keeps forwarding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InstallError {
    /// The compiled pipeline exceeds this switch's resource budget.
    OverBudget(AdmissionError),
}

impl fmt::Display for InstallError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstallError::OverBudget(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for InstallError {}

/// A complete forwarding program: the control-plane pipeline plus
/// everything lowered from it at install time. Built shadow-side and
/// swapped in atomically, so a failed build never disturbs forwarding.
#[derive(Debug, Clone)]
struct Program {
    pipeline: Pipeline,
    /// Fast-path lowering of `pipeline`.
    compiled: CompiledPipeline,
    /// Slot resolution of `compiled` against the spec.
    plan: EvalPlan,
    /// Aggregate operands appearing in the pipeline, cached.
    aggregates: Vec<(String, AggFunc, String)>, // (key, func, field)
}

impl Program {
    fn build(spec: &Spec, pipeline: Pipeline) -> Program {
        let aggregates = pipeline
            .stages
            .iter()
            .filter_map(|s| match &s.operand {
                Operand::Aggregate { func, field } => Some((s.operand.key(), *func, field.clone())),
                Operand::Field(_) => None,
            })
            .collect();
        let compiled = CompiledPipeline::lower(&pipeline);
        let plan = EvalPlan::build(spec, &compiled, &pipeline);
        Program { pipeline, compiled, plan, aggregates }
    }
}

/// Running counters exposed for the evaluation.
///
/// Cache-line aligned so per-shard switches laid out contiguously (the
/// sharded throughput driver owns one `Switch` per shard) never share a
/// line of hot counters between cores — false sharing on these would
/// serialise the very scaling the shards exist to measure.
#[repr(align(64))]
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SwitchStats {
    pub packets: u64,
    pub messages: u64,
    /// Packets whose geometry does not fit the spec (truncated stack
    /// or a partial trailing message). The decodable prefix is still
    /// processed; the malformed tail is a graceful parse miss.
    pub malformed: u64,
    pub truncated_messages: u64,
    pub recirculation_passes: u64,
    /// Messages forwarded nowhere (every target port pruned), whatever
    /// the cause — the total the per-cause counters below attribute.
    pub dropped_messages: u64,
    /// Output packet copies emitted.
    pub copies: u64,
    /// Messages dropped because no rule routed them anywhere usable:
    /// explicit `drop` actions and ingress-only matches.
    pub dropped_no_route: u64,
    /// Per-port forwarding decisions suppressed because the egress
    /// port was down. Counted per (message, port) pair, so it can
    /// exceed `dropped_messages` when a multicast message loses some
    /// ports but still leaves through others.
    pub dropped_port_down: u64,
    /// Messages lost to resource exhaustion (parser PHV/recirculation
    /// budget) — mirrors `truncated_messages`, kept separate so the
    /// drop-cause counters add up on their own.
    pub dropped_resource: u64,
    /// Compiled-path stage lookups that found a transition.
    pub stage_hits: u64,
    /// Compiled-path stage lookups that missed (§V-D pass-through).
    pub stage_misses: u64,
    /// Compiled-path match probes performed (binary-search steps plus
    /// linear entries touched) — attributes where evaluation time goes.
    pub entries_scanned: u64,
    /// `process_batch` invocations.
    pub batches: u64,
    /// Packets processed through `process_batch` (with `batches`, the
    /// mean batch size).
    pub batched_packets: u64,
    /// Output copies that shared the input buffer (no pruning needed:
    /// an `Arc` bump, not a byte copy).
    pub shared_copies: u64,
    /// Output copies that materialised a pruned buffer.
    pub deep_copies: u64,
}

impl SwitchStats {
    /// Fold another switch's counters into this one — the reduction the
    /// sharded throughput driver applies across per-shard switches.
    pub fn merge(&mut self, other: &SwitchStats) {
        self.packets += other.packets;
        self.messages += other.messages;
        self.malformed += other.malformed;
        self.truncated_messages += other.truncated_messages;
        self.recirculation_passes += other.recirculation_passes;
        self.dropped_messages += other.dropped_messages;
        self.copies += other.copies;
        self.dropped_no_route += other.dropped_no_route;
        self.dropped_port_down += other.dropped_port_down;
        self.dropped_resource += other.dropped_resource;
        self.stage_hits += other.stage_hits;
        self.stage_misses += other.stage_misses;
        self.entries_scanned += other.entries_scanned;
        self.batches += other.batches;
        self.batched_packets += other.batched_packets;
        self.shared_copies += other.shared_copies;
        self.deep_copies += other.deep_copies;
    }

    /// The counters that describe *what was forwarded*, with the
    /// batching-shape counters (`batches`, `batched_packets`) zeroed.
    /// Drivers with different chunk sizes legitimately disagree on
    /// those two while forwarding identically; this is the projection
    /// the shard-sum differential tests compare.
    pub fn forwarding_stats(&self) -> SwitchStats {
        SwitchStats { batches: 0, batched_packets: 0, ..*self }
    }
}

/// The result of processing one packet.
#[derive(Debug, Clone, Default)]
pub struct SwitchOutput {
    /// One (port, pruned copy) per output port.
    pub ports: Vec<(Port, Packet)>,
    /// Non-forward actions raised by messages: `(message index, action)`.
    pub actions: Vec<(usize, Action)>,
    /// Modelled processing latency.
    pub latency_ns: u64,
    /// Parser passes used.
    pub passes: usize,
}

/// A switch loaded with an application and a compiled pipeline.
#[derive(Debug, Clone)]
pub struct Switch {
    parser: DeepParser,
    /// The live forwarding program.
    program: Program,
    /// Shadow-side program staged by [`stage`](Self::stage), awaiting
    /// commit, tagged with the install transaction's epoch so a
    /// recovering controller can tell *which* transaction left it
    /// behind. Never touches the data path.
    staged: Option<(u64, Program)>,
    /// Epoch of the last commit that has not been finalised or
    /// reverted — the other half of the reconciliation handshake.
    committed_epoch: Option<u64>,
    /// The program displaced by the last commit, retained until
    /// [`finalize_install`](Self::finalize_install) so a network-wide
    /// transaction can still revert this switch.
    retired: Option<Program>,
    /// Field widths for resource accounting, derived from the spec.
    widths: HashMap<String, u32>,
    /// Reusable per-packet scratch (slot values + keep lists).
    scratch: EvalScratch,
    state: StateStore,
    config: SwitchConfig,
    stats: SwitchStats,
    /// Egress ports currently marked down (fault model): forwarding
    /// decisions towards them are suppressed and counted.
    port_down: HashSet<Port>,
    /// Optional sampled instruments; `None` keeps the fast path free
    /// of even the sampler tick. Boxed so the common case stays one
    /// pointer in the hot struct.
    telemetry: Option<Box<SwitchTelemetry>>,
    /// Evaluation counters of the most recent [`process`](Self::process)
    /// call, for the simulator to copy into packet postcards.
    last_eval: EvalCounters,
}

impl Switch {
    /// Build from the static pipeline (application) and a dynamically
    /// compiled rule pipeline.
    pub fn new(statics: &StaticPipeline, pipeline: Pipeline, config: SwitchConfig) -> Self {
        let mut state = StateStore::new(config.default_window_us);
        for reg in &statics.registers {
            state.allocate(&reg.name, reg.window_us);
        }
        Switch::with_spec(statics.spec.clone(), pipeline, state, config)
    }

    /// Build from a bare spec (tests and simple applications).
    pub fn from_spec(spec: Spec, pipeline: Pipeline, config: SwitchConfig) -> Self {
        let state = StateStore::new(config.default_window_us);
        Switch::with_spec(spec, pipeline, state, config)
    }

    fn with_spec(spec: Spec, pipeline: Pipeline, state: StateStore, config: SwitchConfig) -> Self {
        // Widths for resource accounting: dotted path plus bare name
        // (the compiler keys stages by the bare name when unambiguous).
        let mut widths = HashMap::new();
        for (path, f) in spec.subscribable_fields() {
            let bare = path.rsplit('.').next().unwrap_or(&path).to_string();
            widths.insert(path, f.width_bits);
            widths.insert(bare, f.width_bits);
        }
        let parser = DeepParser::new(spec, config.max_msgs_per_pass, config.recirc_ports);
        let program = Program::build(parser.spec(), Pipeline::empty());
        let mut sw = Switch {
            parser,
            program,
            staged: None,
            committed_epoch: None,
            retired: None,
            widths,
            scratch: EvalScratch::default(),
            state,
            config,
            stats: SwitchStats::default(),
            port_down: HashSet::new(),
            telemetry: None,
            last_eval: EvalCounters::default(),
        };
        sw.install(pipeline);
        sw
    }

    /// Account `pipeline` against this switch's budget without
    /// touching any install state.
    pub fn admit(&self, pipeline: &Pipeline) -> Result<ResourceReport, InstallError> {
        let report = resources::report(pipeline, pipeline.multicast_group_count(), &self.widths);
        self.config.budget.admit(&report).map_err(InstallError::OverBudget)?;
        Ok(report)
    }

    /// Phase one of an install: validate `pipeline` against the
    /// resource budget and build it shadow-side under transaction
    /// epoch 0 (library callers that never recover). Forwarding is
    /// untouched; on rejection nothing is staged and the previous
    /// staged program (if any) is kept.
    pub fn stage(&mut self, pipeline: Pipeline) -> Result<ResourceReport, InstallError> {
        self.stage_epoch(pipeline, 0)
    }

    /// Phase one with an explicit transaction epoch. The epoch rides
    /// with the shadow program so [`staged_epoch`](Self::staged_epoch)
    /// can answer a recovering controller's "what did I leave here?".
    pub fn stage_epoch(
        &mut self,
        pipeline: Pipeline,
        epoch: u64,
    ) -> Result<ResourceReport, InstallError> {
        let report = self.admit(&pipeline)?;
        self.staged = Some((epoch, Program::build(self.parser.spec(), pipeline)));
        Ok(report)
    }

    /// Phase two: atomically swap the staged program into the data
    /// path. The displaced program is retained so the commit can still
    /// be reverted until [`finalize_install`](Self::finalize_install).
    /// Returns `false` (a no-op) when nothing is staged.
    pub fn commit_staged(&mut self) -> bool {
        match self.staged.take() {
            Some((epoch, p)) => {
                self.scratch.reset(p.compiled.slots().len());
                self.retired = Some(std::mem::replace(&mut self.program, p));
                self.committed_epoch = Some(epoch);
                true
            }
            None => false,
        }
    }

    /// Undo a not-yet-finalised commit: the retired program resumes
    /// forwarding. Returns `false` when there is nothing to revert.
    pub fn revert_committed(&mut self) -> bool {
        match self.retired.take() {
            Some(p) => {
                self.scratch.reset(p.compiled.slots().len());
                self.program = p;
                self.committed_epoch = None;
                true
            }
            None => false,
        }
    }

    /// Discard a staged-but-uncommitted program. Returns `false` when
    /// nothing was staged.
    pub fn abort_staged(&mut self) -> bool {
        self.staged.take().is_some()
    }

    /// Make the last commit permanent by dropping the retired program.
    pub fn finalize_install(&mut self) {
        self.retired = None;
        self.committed_epoch = None;
    }

    /// Whether a shadow program is currently staged.
    pub fn has_staged(&self) -> bool {
        self.staged.is_some()
    }

    /// Epoch of the staged-but-uncommitted program, if any — what a
    /// recovering controller interrogates to decide commit vs. abort.
    pub fn staged_epoch(&self) -> Option<u64> {
        self.staged.as_ref().map(|(e, _)| *e)
    }

    /// Epoch of a committed-but-unfinalised install, if any. A
    /// recovering controller finalises these when the commit decision
    /// was logged, and reverts them otherwise.
    pub fn unfinalized_epoch(&self) -> Option<u64> {
        self.committed_epoch
    }

    /// Admission-checked atomic install (dynamic reconfiguration,
    /// §VIII-G.3): stage, commit, finalize. On error the previous
    /// program keeps forwarding, byte for byte. State registers
    /// persist across reconfigurations.
    pub fn try_install(&mut self, pipeline: Pipeline) -> Result<ResourceReport, InstallError> {
        let report = self.stage(pipeline)?;
        self.commit_staged();
        self.finalize_install();
        Ok(report)
    }

    /// Infallible install wrapper (tests and unbudgeted simulations).
    /// Panics if the pipeline is rejected — only possible once a
    /// finite budget is configured.
    pub fn install(&mut self, pipeline: Pipeline) {
        self.try_install(pipeline).expect("install rejected by resource budget");
    }

    pub fn spec(&self) -> &Spec {
        self.parser.spec()
    }

    pub fn stats(&self) -> SwitchStats {
        self.stats
    }

    pub fn pipeline(&self) -> &Pipeline {
        &self.program.pipeline
    }

    /// The fast-path lowering of the installed pipeline.
    pub fn compiled(&self) -> &CompiledPipeline {
        &self.program.compiled
    }

    /// Mark an egress port up or down (link/peer failure). While a
    /// port is down, forwarding decisions towards it are suppressed
    /// and counted in [`SwitchStats::dropped_port_down`]; pipelines
    /// and state are untouched, so restoring the port resumes
    /// forwarding without a reinstall.
    pub fn set_port_down(&mut self, port: Port, down: bool) {
        if down {
            self.port_down.insert(port);
        } else {
            self.port_down.remove(&port);
        }
    }

    pub fn port_is_down(&self, port: Port) -> bool {
        self.port_down.contains(&port)
    }

    /// Attach sampled instruments to this switch. Until detached,
    /// every processed packet pays one sampler tick; sampled packets
    /// record into the instruments' shared registry.
    pub fn attach_telemetry(&mut self, telemetry: SwitchTelemetry) {
        self.telemetry = Some(Box::new(telemetry));
    }

    /// Remove the instruments, restoring the telemetry-free path.
    pub fn detach_telemetry(&mut self) -> Option<SwitchTelemetry> {
        self.telemetry.take().map(|t| *t)
    }

    pub fn telemetry(&self) -> Option<&SwitchTelemetry> {
        self.telemetry.as_deref()
    }

    /// Evaluation counters of the most recent fast-path
    /// [`process`](Self::process) call (postcard source material).
    pub fn last_eval(&self) -> EvalCounters {
        self.last_eval
    }

    /// Process a packet arriving on `ingress` at absolute time
    /// `now_us`, through the compiled fast path: slot-indexed decode
    /// straight from the packet bytes, reusable keep lists, and
    /// copy-on-prune replication. Allocation-free once warm.
    pub fn process(&mut self, pkt: &Packet, ingress: Port, now_us: u64) -> SwitchOutput {
        self.stats.packets += 1;
        if self.program.plan.is_malformed(pkt) {
            self.stats.malformed += 1;
        }
        // Parser budget model (≡ DeepParser::parse without the maps).
        let total = self.program.plan.message_count(pkt);
        let budget = (self.config.recirc_ports + 1) * self.config.max_msgs_per_pass;
        let extract = total.min(budget);
        let truncated = total - extract;
        let passes =
            if total == 0 { 1 } else { extract.div_ceil(self.config.max_msgs_per_pass).max(1) };
        self.stats.truncated_messages += truncated as u64;
        self.stats.dropped_resource += truncated as u64;
        self.stats.recirculation_passes += (passes - 1) as u64;

        let mut out = SwitchOutput {
            passes,
            latency_ns: self.config.base_latency_ns
                + self.config.recirc_latency_ns * (passes as u64 - 1),
            ..Default::default()
        };

        let mut counters = EvalCounters::default();
        let Switch { program, state, scratch, stats, port_down, telemetry, last_eval, .. } = self;
        let (plan, compiled) = (&program.plan, &program.compiled);
        scratch.keep.clear();

        if total == 0 {
            // Stack-only application (e.g. INT): the packet itself is
            // the message.
            if plan.stack_has_fields(pkt) {
                stats.messages += 1;
                let id = plan.eval(
                    compiled,
                    state,
                    &mut scratch.values,
                    pkt,
                    None,
                    now_us,
                    &mut counters,
                );
                apply_action(
                    compiled.action(id),
                    0,
                    ingress,
                    port_down,
                    &mut scratch.keep,
                    stats,
                    &mut out,
                );
            }
        } else {
            for index in 0..extract {
                stats.messages += 1;
                let off = plan.msg_offset(index);
                let id = plan.eval(
                    compiled,
                    state,
                    &mut scratch.values,
                    pkt,
                    Some(off),
                    now_us,
                    &mut counters,
                );
                apply_action(
                    compiled.action(id),
                    index,
                    ingress,
                    port_down,
                    &mut scratch.keep,
                    stats,
                    &mut out,
                );
            }
        }
        stats.stage_hits += counters.stage_hits;
        stats.stage_misses += counters.stage_misses;
        stats.entries_scanned += counters.entries_scanned;
        *last_eval = counters;
        if let Some(t) = telemetry.as_deref_mut() {
            t.observe(&counters, out.latency_ns, passes);
        }

        // Crossbar replication + egress pruning: one copy per port. A
        // copy that keeps every byte shares the input buffer (`Bytes`
        // is refcounted) instead of deep-cloning.
        scratch.keep.sort_ports();
        let share_whole = plan.msg_width == 0;
        let exact_len = plan.msg_base + total * plan.msg_width;
        for ti in 0..scratch.keep.touched.len() {
            let port = scratch.keep.touched[ti];
            let indices = &scratch.keep.lists[port as usize];
            let copy = if share_whole || (indices.len() == total && pkt.len() == exact_len) {
                stats.shared_copies += 1;
                pkt.clone()
            } else {
                stats.deep_copies += 1;
                pkt.prune_messages(self.parser.spec(), indices)
            };
            stats.copies += 1;
            out.ports.push((port, copy));
        }
        out
    }

    /// Process a batch of `(packet, ingress)` pairs arriving together.
    /// Amortises per-call overhead and feeds the batch-size counters.
    pub fn process_batch(&mut self, pkts: &[(Packet, Port)], now_us: u64) -> Vec<SwitchOutput> {
        let mut out = Vec::new();
        self.batch_into(pkts, now_us, 0, &mut out);
        out
    }

    /// [`process_batch`](Self::process_batch) with per-packet
    /// timestamps and caller-owned output: packet `j` of the batch is
    /// processed at time `first_index + j`, so a driver that splits one
    /// packet stream across shards can hand each shard its *global*
    /// packet indices and every shard agrees with the sequential lanes
    /// on timestamp-keyed aggregate/window semantics. `out` is cleared
    /// and refilled, letting a hot loop reuse one allocation across
    /// batches.
    pub fn process_batch_indexed(
        &mut self,
        pkts: &[(Packet, Port)],
        first_index: u64,
        out: &mut Vec<SwitchOutput>,
    ) {
        out.clear();
        self.batch_into(pkts, first_index, 1, out);
    }

    /// Shared batch loop: packet `j` runs at `base_us + j * step_us`,
    /// with the next packet's header bytes prefetched while the current
    /// one evaluates.
    fn batch_into(
        &mut self,
        pkts: &[(Packet, Port)],
        base_us: u64,
        step_us: u64,
        out: &mut Vec<SwitchOutput>,
    ) {
        self.stats.batches += 1;
        self.stats.batched_packets += pkts.len() as u64;
        out.reserve(pkts.len());
        for (j, (pkt, ingress)) in pkts.iter().enumerate() {
            if let Some((next, _)) = pkts.get(j + 1) {
                crate::fastpath::prefetch_read(next.bytes.as_slice());
            }
            out.push(self.process(pkt, *ingress, base_us + j as u64 * step_us));
        }
    }

    /// The interpreted reference path: `DeepParser::parse` into string-
    /// keyed maps, `Pipeline::evaluate` per message. Semantically
    /// identical to [`process`](Self::process) (the differential tests
    /// pin this); kept for equivalence testing and as the measured
    /// baseline in the `throughput` experiment.
    pub fn process_reference(&mut self, pkt: &Packet, ingress: Port, now_us: u64) -> SwitchOutput {
        let outcome = self.parser.parse(pkt);
        self.stats.packets += 1;
        if self.program.plan.is_malformed(pkt) {
            self.stats.malformed += 1;
        }
        self.stats.truncated_messages += outcome.truncated as u64;
        self.stats.dropped_resource += outcome.truncated as u64;
        self.stats.recirculation_passes += (outcome.passes - 1) as u64;

        let mut out = SwitchOutput {
            passes: outcome.passes,
            latency_ns: self.config.base_latency_ns
                + self.config.recirc_latency_ns * (outcome.passes as u64 - 1),
            ..Default::default()
        };

        // Per-port keep lists (the port mask of §VI-A).
        let mut keep = KeepLists::default();

        if outcome.messages.is_empty() {
            // Stack-only application (e.g. INT): the packet itself is
            // the message.
            if pkt.message_count(self.parser.spec()) == 0 && !outcome.stack.is_empty() {
                self.stats.messages += 1;
                let action = self.eval_message(&outcome, None, now_us);
                apply_action(
                    &action,
                    0,
                    ingress,
                    &self.port_down,
                    &mut keep,
                    &mut self.stats,
                    &mut out,
                );
            }
        } else {
            for mi in 0..outcome.messages.len() {
                self.stats.messages += 1;
                let action = self.eval_message(&outcome, Some(mi), now_us);
                let index = outcome.messages[mi].index;
                apply_action(
                    &action,
                    index,
                    ingress,
                    &self.port_down,
                    &mut keep,
                    &mut self.stats,
                    &mut out,
                );
            }
        }

        // Crossbar replication + egress pruning: one copy per port.
        keep.sort_ports();
        for ti in 0..keep.touched.len() {
            let port = keep.touched[ti];
            let indices = &keep.lists[port as usize];
            let copy = if self.parser.spec().messages.is_some() {
                pkt.prune_messages(self.parser.spec(), indices)
            } else {
                pkt.clone()
            };
            self.stats.copies += 1;
            out.ports.push((port, copy));
        }
        out
    }

    /// Evaluate the interpreted pipeline for one message (or the bare
    /// stack), updating aggregate registers first so the aggregate
    /// includes the current observation.
    fn eval_message(&mut self, outcome: &ParseOutcome, msg: Option<usize>, now_us: u64) -> Action {
        // 1. Update every aggregate register with its field value.
        let field_value = |key: &str| -> Option<Value> {
            match msg {
                Some(mi) => outcome.lookup(&outcome.messages[mi], key).cloned(),
                None => outcome.stack.get(key).cloned(),
            }
        };
        let mut agg_values: HashMap<String, Value> = HashMap::new();
        for (key, func, field) in &self.program.aggregates {
            if let Some(Value::Int(v)) = field_value(field) {
                self.state.update(key, now_us, v);
            }
            agg_values.insert(key.clone(), Value::Int(self.state.read(key, now_us, *func)));
        }
        // 2. Evaluate the pipeline with message + stack + aggregates.
        self.program.pipeline.evaluate(|op: &Operand| match op {
            Operand::Field(_) => field_value(&op.key()),
            Operand::Aggregate { .. } => agg_values.get(&op.key()).cloned(),
        })
    }
}

/// Route one message's action into the keep lists and stats.
fn apply_action(
    action: &Action,
    msg_index: usize,
    ingress: Port,
    port_down: &HashSet<Port>,
    keep: &mut KeepLists,
    stats: &mut SwitchStats,
    out: &mut SwitchOutput,
) {
    match action {
        Action::Forward(ports) => {
            let mut any = false;
            let mut suppressed_down = false;
            for &p in ports {
                if p == ingress {
                    continue;
                }
                if port_down.contains(&p) {
                    stats.dropped_port_down += 1;
                    suppressed_down = true;
                    continue;
                }
                keep.push(p, msg_index);
                any = true;
            }
            if !any {
                stats.dropped_messages += 1;
                // Attribute the loss once: a message that lost a down
                // port is a port-down drop (already counted above);
                // otherwise nothing routed it.
                if !suppressed_down {
                    stats.dropped_no_route += 1;
                }
            }
        }
        Action::Drop => {
            stats.dropped_messages += 1;
            stats.dropped_no_route += 1;
        }
        other => out.actions.push((msg_index, other.clone())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::PacketBuilder;
    use camus_core::compiler::Compiler;
    use camus_core::statics::compile_static;
    use camus_lang::parser::parse_rules;
    use camus_lang::spec::itch_spec;

    fn itch_switch(rules_src: &str) -> Switch {
        let statics = compile_static(&itch_spec()).unwrap();
        let rules = parse_rules(rules_src).unwrap();
        let compiled = Compiler::new().with_static(statics.clone()).compile(&rules).unwrap();
        Switch::new(&statics, compiled.pipeline, SwitchConfig::default())
    }

    fn order(stock: &str, price: i64) -> Vec<(&'static str, Value)> {
        vec![("stock", Value::from(stock)), ("price", Value::Int(price))]
    }

    #[test]
    fn forwards_matching_messages_to_ports() {
        let mut sw = itch_switch(
            "stock == GOOGL: fwd(1)\n\
             stock == MSFT: fwd(2)\n",
        );
        let spec = itch_spec();
        let pkt = PacketBuilder::new(&spec)
            .message(order("GOOGL", 10))
            .message(order("MSFT", 20))
            .message(order("FB", 30))
            .build();
        let out = sw.process(&pkt, 0, 0);
        assert_eq!(out.ports.len(), 2);
        let (p1, c1) = &out.ports[0];
        assert_eq!(*p1, 1);
        assert_eq!(c1.message_count(&spec), 1);
        assert_eq!(c1.message(&spec, 0).unwrap()["stock"], Value::from("GOOGL"));
        let (p2, c2) = &out.ports[1];
        assert_eq!(*p2, 2);
        assert_eq!(c2.message(&spec, 0).unwrap()["stock"], Value::from("MSFT"));
        assert_eq!(sw.stats().dropped_messages, 1); // FB
        assert_eq!(sw.stats().messages, 3);
    }

    #[test]
    fn multicast_message_reaches_both_subscribers() {
        let mut sw = itch_switch(
            "stock == GOOGL: fwd(1)\n\
             price > 5: fwd(2)\n",
        );
        let spec = itch_spec();
        let pkt = PacketBuilder::new(&spec).message(order("GOOGL", 10)).build();
        let out = sw.process(&pkt, 0, 0);
        let ports: Vec<Port> = out.ports.iter().map(|(p, _)| *p).collect();
        assert_eq!(ports, vec![1, 2]);
        // Both copies carry the single message.
        for (_, c) in &out.ports {
            assert_eq!(c.message_count(&spec), 1);
        }
    }

    #[test]
    fn never_forwards_to_ingress_port() {
        let mut sw = itch_switch("stock == GOOGL: fwd(1)\n");
        let spec = itch_spec();
        let pkt = PacketBuilder::new(&spec).message(order("GOOGL", 10)).build();
        let out = sw.process(&pkt, 1, 0);
        assert!(out.ports.is_empty());
        assert_eq!(sw.stats().dropped_messages, 1);
    }

    #[test]
    fn recirculation_latency_model() {
        let mut sw = itch_switch("stock == GOOGL: fwd(1)\n");
        let spec = itch_spec();
        let mut b = PacketBuilder::new(&spec);
        for _ in 0..10 {
            b = b.message(order("GOOGL", 1));
        }
        let out = sw.process(&b.build(), 0, 0);
        // 10 messages, 4 per pass -> 3 passes -> base + 2*recirc.
        assert_eq!(out.passes, 3);
        assert_eq!(out.latency_ns, 600 + 2 * 400);
        assert_eq!(sw.stats().recirculation_passes, 2);
        // All 10 messages forwarded in one copy.
        assert_eq!(out.ports[0].1.message_count(&spec), 10);
    }

    #[test]
    fn truncation_counts() {
        let statics = compile_static(&itch_spec()).unwrap();
        let rules = parse_rules("stock == GOOGL: fwd(1)\n").unwrap();
        let compiled = Compiler::new().with_static(statics.clone()).compile(&rules).unwrap();
        let cfg = SwitchConfig { max_msgs_per_pass: 2, recirc_ports: 1, ..Default::default() };
        let mut sw = Switch::new(&statics, compiled.pipeline, cfg);
        let spec = itch_spec();
        let mut b = PacketBuilder::new(&spec);
        for _ in 0..7 {
            b = b.message(order("GOOGL", 1));
        }
        let out = sw.process(&b.build(), 0, 0);
        assert_eq!(sw.stats().truncated_messages, 3);
        assert_eq!(out.ports[0].1.message_count(&spec), 4);
    }

    #[test]
    fn stateful_average_gates_forwarding() {
        // §II example: forward GOOGL only when avg(price) > 60.
        let mut sw = itch_switch("stock == GOOGL and avg(price) > 60: fwd(1)\n");
        let spec = itch_spec();
        let pkt = |price: i64| PacketBuilder::new(&spec).message(order("GOOGL", price)).build();
        // First message: avg = 50 -> no match.
        let out = sw.process(&pkt(50), 0, 0);
        assert!(out.ports.is_empty());
        // Second message at price 90 -> avg = 70 -> match.
        let out = sw.process(&pkt(90), 0, 10);
        assert_eq!(out.ports.len(), 1);
        // After the 100 μs default window tumbles, a 50 alone fails again.
        let out = sw.process(&pkt(50), 0, 200);
        assert!(out.ports.is_empty());
    }

    #[test]
    fn stack_only_application_forwards_whole_packet() {
        // INT-style spec without batched messages.
        let spec = camus_lang::spec::int_spec();
        let statics = compile_static(&spec).unwrap();
        let rules = parse_rules("switch_id == 2 and hop_latency > 100: fwd(3)\n").unwrap();
        let compiled = Compiler::new().with_static(statics.clone()).compile(&rules).unwrap();
        let mut sw = Switch::new(&statics, compiled.pipeline, SwitchConfig::default());
        let pkt = PacketBuilder::new(&spec)
            .stack_field("int_report", "switch_id", 2i64)
            .stack_field("int_report", "hop_latency", 500i64)
            .build();
        let out = sw.process(&pkt, 0, 0);
        assert_eq!(out.ports.len(), 1);
        assert_eq!(out.ports[0].0, 3);
        assert_eq!(out.ports[0].1, pkt); // forwarded intact
                                         // Non-matching report is dropped.
        let quiet = PacketBuilder::new(&spec)
            .stack_field("int_report", "switch_id", 2i64)
            .stack_field("int_report", "hop_latency", 50i64)
            .build();
        let out = sw.process(&quiet, 0, 1);
        assert!(out.ports.is_empty());
    }

    #[test]
    fn custom_actions_are_surfaced() {
        let mut sw = itch_switch("stock == GOOGL: mirror(9)\n");
        let spec = itch_spec();
        let pkt = PacketBuilder::new(&spec).message(order("GOOGL", 1)).build();
        let out = sw.process(&pkt, 0, 0);
        assert!(out.ports.is_empty());
        assert_eq!(out.actions, vec![(0, Action::Custom("mirror".into(), vec![9]))]);
    }

    #[test]
    fn down_port_suppresses_and_counts() {
        let mut sw = itch_switch("stock == GOOGL: fwd(1)\n");
        let spec = itch_spec();
        let pkt = PacketBuilder::new(&spec).message(order("GOOGL", 10)).build();
        sw.set_port_down(1, true);
        assert!(sw.port_is_down(1));
        let out = sw.process(&pkt, 0, 0);
        assert!(out.ports.is_empty());
        assert_eq!(sw.stats().dropped_messages, 1);
        assert_eq!(sw.stats().dropped_port_down, 1);
        assert_eq!(sw.stats().dropped_no_route, 0, "loss attributed to the dead port");
        // Restoring the port resumes forwarding with no reinstall.
        sw.set_port_down(1, false);
        let out = sw.process(&pkt, 0, 1);
        assert_eq!(out.ports.len(), 1);
        assert_eq!(sw.stats().dropped_messages, 1);
    }

    #[test]
    fn multicast_survives_partial_port_failure() {
        let mut sw = itch_switch(
            "stock == GOOGL: fwd(1)\n\
             price > 5: fwd(2)\n",
        );
        let spec = itch_spec();
        let pkt = PacketBuilder::new(&spec).message(order("GOOGL", 10)).build();
        sw.set_port_down(1, true);
        let out = sw.process(&pkt, 0, 0);
        let ports: Vec<Port> = out.ports.iter().map(|(p, _)| *p).collect();
        assert_eq!(ports, vec![2], "surviving port still served");
        assert_eq!(sw.stats().dropped_port_down, 1);
        assert_eq!(sw.stats().dropped_messages, 0, "the message did leave the switch");
    }

    #[test]
    fn drop_causes_attribute_no_route_and_resource() {
        // No-route: ingress-only match.
        let mut sw = itch_switch("stock == GOOGL: fwd(1)\n");
        let spec = itch_spec();
        let pkt = PacketBuilder::new(&spec).message(order("GOOGL", 10)).build();
        sw.process(&pkt, 1, 0);
        assert_eq!(sw.stats().dropped_no_route, 1);
        assert_eq!(sw.stats().dropped_port_down, 0);

        // Resource: PHV/recirculation budget truncation.
        let statics = compile_static(&itch_spec()).unwrap();
        let rules = parse_rules("stock == GOOGL: fwd(1)\n").unwrap();
        let compiled = Compiler::new().with_static(statics.clone()).compile(&rules).unwrap();
        let cfg = SwitchConfig { max_msgs_per_pass: 2, recirc_ports: 1, ..Default::default() };
        let mut sw = Switch::new(&statics, compiled.pipeline, cfg);
        let mut b = PacketBuilder::new(&spec);
        for _ in 0..7 {
            b = b.message(order("GOOGL", 1));
        }
        sw.process(&b.build(), 0, 0);
        assert_eq!(sw.stats().dropped_resource, sw.stats().truncated_messages);
        assert_eq!(sw.stats().dropped_resource, 3);
    }

    #[test]
    fn copy_on_prune_shares_unpruned_buffers() {
        let mut sw = itch_switch("price > 0: fwd(1)\n");
        let spec = itch_spec();
        // Every message kept: the output copy shares the input buffer.
        let pkt = PacketBuilder::new(&spec).message(order("A", 1)).message(order("B", 2)).build();
        let out = sw.process(&pkt, 0, 0);
        assert_eq!(out.ports.len(), 1);
        assert_eq!(out.ports[0].1, pkt);
        assert_eq!(sw.stats().shared_copies, 1);
        assert_eq!(sw.stats().deep_copies, 0);
        // One message pruned: a materialised copy is unavoidable.
        let pkt = PacketBuilder::new(&spec).message(order("A", 9)).message(order("B", 0)).build();
        let out = sw.process(&pkt, 0, 1);
        assert_eq!(out.ports[0].1.message_count(&spec), 1);
        assert_eq!(sw.stats().shared_copies, 1);
        assert_eq!(sw.stats().deep_copies, 1);
        assert_eq!(sw.stats().copies, 2);
    }

    #[test]
    fn stack_only_copies_are_shared() {
        let spec = camus_lang::spec::int_spec();
        let statics = compile_static(&spec).unwrap();
        let rules = parse_rules("switch_id == 2: fwd(3)\n").unwrap();
        let compiled = Compiler::new().with_static(statics.clone()).compile(&rules).unwrap();
        let mut sw = Switch::new(&statics, compiled.pipeline, SwitchConfig::default());
        let pkt = PacketBuilder::new(&spec).stack_field("int_report", "switch_id", 2i64).build();
        sw.process(&pkt, 0, 0);
        assert_eq!(sw.stats().shared_copies, 1);
        assert_eq!(sw.stats().deep_copies, 0);
    }

    #[test]
    fn process_batch_counts_batch_sizes() {
        let mut sw = itch_switch("stock == GOOGL: fwd(1)\n");
        let spec = itch_spec();
        let pkts: Vec<(Packet, Port)> = (0..5)
            .map(|i| (PacketBuilder::new(&spec).message(order("GOOGL", i)).build(), 0))
            .collect();
        let outs = sw.process_batch(&pkts, 0);
        assert_eq!(outs.len(), 5);
        assert!(outs.iter().all(|o| o.ports.len() == 1));
        assert_eq!(sw.stats().batches, 1);
        assert_eq!(sw.stats().batched_packets, 5);
        assert_eq!(sw.stats().packets, 5);
    }

    #[test]
    fn eval_counters_accumulate() {
        let mut sw = itch_switch("stock == GOOGL and price > 50: fwd(1)\n");
        let spec = itch_spec();
        let pkt = PacketBuilder::new(&spec)
            .message(order("GOOGL", 60))
            .message(order("MSFT", 10))
            .build();
        sw.process(&pkt, 0, 0);
        let s = sw.stats();
        assert!(s.stage_hits > 0, "matching message transitions stages");
        assert!(s.entries_scanned > 0);
        assert_eq!(s.stage_hits + s.stage_misses, 2 * sw.compiled().depth() as u64);
    }

    #[test]
    fn fast_path_matches_reference_path() {
        let rules = "stock == GOOGL and avg(price) > 40: fwd(1)\n\
                     price > 25: fwd(2)\n\
                     shares < 100 and price >= 30: fwd(3)\n\
                     side == 1: drop()\n";
        let mut fast = itch_switch(rules);
        let mut reference = fast.clone();
        let spec = itch_spec();
        let feeds = [
            vec![order("GOOGL", 50)],
            vec![order("GOOD", 10), order("MSFT", 30)],
            vec![order("GOOGL", 80), order("GOOGL", 5), order("AAPL", 26)],
            vec![],
        ];
        for (t, msgs) in feeds.iter().enumerate() {
            let mut b = PacketBuilder::new(&spec).stack_field("moldudp", "seq", t as i64);
            for m in msgs {
                b = b.message(m.clone());
            }
            let pkt = b.build();
            let a = fast.process(&pkt, 0, t as u64 * 10);
            let r = reference.process_reference(&pkt, 0, t as u64 * 10);
            assert_eq!(a.ports, r.ports, "packet {t}");
            assert_eq!(a.actions, r.actions, "packet {t}");
            assert_eq!(a.latency_ns, r.latency_ns);
            assert_eq!(a.passes, r.passes);
        }
        let (f, r) = (fast.stats(), reference.stats());
        assert_eq!(f.messages, r.messages);
        assert_eq!(f.dropped_messages, r.dropped_messages);
        assert_eq!(f.copies, r.copies);
        assert_eq!(f.dropped_no_route, r.dropped_no_route);
    }

    #[test]
    fn install_swaps_pipeline_keeps_state() {
        let mut sw = itch_switch("stock == GOOGL: fwd(1)\n");
        let spec = itch_spec();
        let pkt = PacketBuilder::new(&spec).message(order("GOOGL", 1)).build();
        assert_eq!(sw.process(&pkt, 0, 0).ports.len(), 1);
        // Reconfigure: now only MSFT is interesting.
        let statics = compile_static(&itch_spec()).unwrap();
        let rules = parse_rules("stock == MSFT: fwd(2)\n").unwrap();
        let compiled = Compiler::new().with_static(statics).compile(&rules).unwrap();
        sw.install(compiled.pipeline);
        assert!(sw.process(&pkt, 0, 1).ports.is_empty());
    }

    fn compile_itch(rules_src: &str) -> Pipeline {
        let statics = compile_static(&itch_spec()).unwrap();
        let rules = parse_rules(rules_src).unwrap();
        Compiler::new().with_static(statics).compile(&rules).unwrap().pipeline
    }

    #[test]
    fn failed_install_preserves_previous_program() {
        let mut sw = itch_switch("stock == GOOGL: fwd(1)\n");
        sw.config.budget = ResourceBudget { max_tables: 1, ..ResourceBudget::unlimited() };
        let spec = itch_spec();
        let pkt = PacketBuilder::new(&spec).message(order("GOOGL", 1)).build();
        assert_eq!(sw.process(&pkt, 0, 0).ports.len(), 1);
        let before_pipeline = sw.pipeline().clone();
        let before_stats = sw.stats();

        let err = sw.try_install(compile_itch("stock == MSFT: fwd(2)\n")).unwrap_err();
        let InstallError::OverBudget(adm) = &err;
        assert!(!adm.violations.is_empty());

        // The previous compiled pipeline, keep-lists and stats are
        // untouched, and forwarding is byte-identical.
        assert_eq!(sw.pipeline(), &before_pipeline);
        assert_eq!(sw.stats(), before_stats);
        assert!(!sw.has_staged());
        let out = sw.process(&pkt, 0, 1);
        assert_eq!(out.ports.len(), 1);
        assert_eq!(out.ports[0].0, 1);
        assert_eq!(out.ports[0].1, pkt);
    }

    #[test]
    fn staged_program_only_forwards_after_commit() {
        let mut sw = itch_switch("stock == GOOGL: fwd(1)\n");
        let spec = itch_spec();
        let googl = PacketBuilder::new(&spec).message(order("GOOGL", 1)).build();
        let msft = PacketBuilder::new(&spec).message(order("MSFT", 1)).build();

        sw.stage(compile_itch("stock == MSFT: fwd(2)\n")).unwrap();
        assert!(sw.has_staged());
        // Shadow program does not affect the data path.
        assert_eq!(sw.process(&googl, 0, 0).ports.len(), 1);
        assert!(sw.process(&msft, 0, 1).ports.is_empty());

        assert!(sw.commit_staged());
        assert!(sw.process(&googl, 0, 2).ports.is_empty());
        assert_eq!(sw.process(&msft, 0, 3).ports.len(), 1);

        // The commit can still be reverted until finalised.
        assert!(sw.revert_committed());
        assert_eq!(sw.process(&googl, 0, 4).ports.len(), 1);
        assert!(!sw.revert_committed(), "retired program consumed");

        // A finalised commit is permanent.
        sw.stage(compile_itch("stock == MSFT: fwd(2)\n")).unwrap();
        sw.commit_staged();
        sw.finalize_install();
        assert!(!sw.revert_committed());
        assert_eq!(sw.process(&msft, 0, 5).ports.len(), 1);
    }

    #[test]
    fn abort_staged_discards_shadow_program() {
        let mut sw = itch_switch("stock == GOOGL: fwd(1)\n");
        sw.stage(compile_itch("stock == MSFT: fwd(2)\n")).unwrap();
        assert!(sw.abort_staged());
        assert!(!sw.abort_staged());
        assert!(!sw.commit_staged(), "nothing staged after abort");
        let spec = itch_spec();
        let googl = PacketBuilder::new(&spec).message(order("GOOGL", 1)).build();
        assert_eq!(sw.process(&googl, 0, 0).ports.len(), 1);
    }

    #[test]
    fn malformed_packets_counted_in_both_paths() {
        let mut fast = itch_switch("stock == GOOGL: fwd(1)\n");
        let mut reference = fast.clone();
        let spec = itch_spec();
        let good = PacketBuilder::new(&spec).message(order("GOOGL", 1)).build();
        // Chop off the last byte: a partial trailing message.
        let truncated = Packet::new(good.bytes[..good.len() - 1].into());
        for sw in [&mut fast, &mut reference] {
            assert_eq!(sw.process(&good, 0, 0).ports.len(), 1);
        }
        let f = fast.process(&truncated, 0, 1);
        let r = reference.process_reference(&truncated, 0, 1);
        assert_eq!(f.ports, r.ports, "graceful miss in both paths");
        assert_eq!(fast.stats().malformed, 1);
        assert_eq!(reference.stats().malformed, 1);
        assert_eq!(fast.stats().malformed, reference.stats().malformed);
    }
}
