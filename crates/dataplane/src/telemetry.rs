//! The data-plane end of the telemetry subsystem.
//!
//! A [`SwitchTelemetry`] is an optional attachment on a
//! [`Switch`](crate::switch::Switch): when present, every processed
//! packet pays one sampler tick (an increment plus a mask test), and
//! sampled packets record their evaluation latency and table activity
//! into shared lock-free instruments from a
//! [`MetricsRegistry`](camus_telemetry::MetricsRegistry). Nothing on
//! this path allocates, so the PR-3 zero-alloc guarantee holds with
//! telemetry attached, disabled or enabled.

use camus_core::compiled::EvalCounters;
use camus_telemetry::metrics::{Counter, Histogram, MetricsRegistry, SampleRate, Sampler};
use std::sync::Arc;

/// Per-switch sampled instruments, handles into a shared registry.
#[derive(Debug, Clone)]
pub struct SwitchTelemetry {
    sampler: Sampler,
    /// Modelled per-packet pipeline latency (ns).
    pub eval_ns: Arc<Histogram>,
    /// Match probes per sampled packet.
    pub entries_scanned: Arc<Histogram>,
    /// Packets the sampler selected.
    pub sampled_packets: Arc<Counter>,
    pub stage_hits: Arc<Counter>,
    pub stage_misses: Arc<Counter>,
    /// Recirculation passes beyond the first, over sampled packets.
    pub recirculations: Arc<Counter>,
}

impl SwitchTelemetry {
    /// Instruments are registered under `switch.*`; switches sharing a
    /// registry aggregate into the same instruments.
    pub fn new(registry: &MetricsRegistry, rate: SampleRate) -> Self {
        SwitchTelemetry {
            sampler: Sampler::new(rate),
            eval_ns: registry.histogram("switch.eval_ns"),
            entries_scanned: registry.histogram("switch.entries_scanned"),
            sampled_packets: registry.counter("switch.sampled_packets"),
            stage_hits: registry.counter("switch.stage_hits"),
            stage_misses: registry.counter("switch.stage_misses"),
            recirculations: registry.counter("switch.recirculations"),
        }
    }

    pub fn rate(&self) -> SampleRate {
        self.sampler.rate()
    }

    /// Called by the switch once per processed packet. The unsampled
    /// path is the sampler tick and nothing else.
    #[inline]
    pub(crate) fn observe(&mut self, counters: &EvalCounters, latency_ns: u64, passes: usize) {
        if !self.sampler.tick() {
            return;
        }
        self.sampled_packets.inc();
        self.eval_ns.record(latency_ns);
        self.entries_scanned.record(counters.entries_scanned);
        self.stage_hits.add(counters.stage_hits);
        self.stage_misses.add(counters.stage_misses);
        self.recirculations.add(passes as u64 - 1);
    }
}
