//! # camus-dataplane — a programmable-switch simulator
//!
//! The execution substrate standing in for the paper's Barefoot Tofino
//! switches: it runs the pipelines produced by [`camus_core`] against
//! real packet bytes, with the hardware mechanisms of §V–§VI modelled
//! explicitly:
//!
//! * [`packet`] — wire-format packets: the fixed header stack of the
//!   application spec followed by batched fixed-width messages
//!   (MoldUDP-style framing, §VIII-C.1).
//! * [`parser`] — the deep-parsing scheme of Fig. 7: a first pass
//!   multicasts copies onto recirculation ports; pass *k* skips `k·B`
//!   messages by counter-matched shifts and extracts the next `B` into
//!   the PHV. The PHV budget and recirculation-port count bound how
//!   many messages one packet may carry.
//! * [`state`] — the register file for stateful predicates: tumbling
//!   windows computing `count`/`sum`/`avg` (§II), pre-allocated by the
//!   static compiler and linked to subscription actions dynamically.
//! * [`switch`] — the full per-packet path: parse → per-message
//!   pipeline evaluation in ingress → port-mask computation → crossbar
//!   replication (one copy per output port) → egress pruning of the
//!   messages each subscriber did not ask for (§VI-A) → custom actions
//!   (e.g. `answerDNS`).
//! * [`telemetry`] — optional sampled instruments on the switch path
//!   ([`camus_telemetry`] handles); one mask test per packet when
//!   attached, nothing at all when not.
//!
//! Latency is modelled, not measured: a base pipeline traversal cost
//! plus a per-recirculation penalty, calibrated to the paper's "less
//! than 1 μs" pipeline latency (§VIII-F).

pub mod fastpath;
pub mod packet;
pub mod parser;
pub mod state;
pub mod switch;
pub mod telemetry;

pub use fastpath::{EvalPlan, EvalScratch};
pub use packet::{Packet, PacketBuilder};
pub use parser::{DeepParser, ParseOutcome};
pub use state::StateStore;
pub use switch::{InstallError, Switch, SwitchConfig, SwitchOutput, SwitchStats};
pub use telemetry::SwitchTelemetry;
