//! Wire-format packets.
//!
//! A Camus packet is the application's fixed header stack (the
//! `sequence` of the spec) followed by zero or more batched fixed-width
//! messages (the `messages` header), exactly the ITCH/MoldUDP layout of
//! §VIII-C.1. Packets are immutable byte buffers ([`bytes::Bytes`]);
//! building one goes through [`PacketBuilder`].

use bytes::Bytes;
use camus_lang::spec::Spec;
use camus_lang::value::Value;
use std::collections::HashMap;
use std::fmt;

/// Why a packet could not be encoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodeError {
    /// Messages were added but the spec declares no batched message
    /// header.
    NoMessageHeader,
    /// A value does not fit its field: a positive integer wider than
    /// the field, or a string longer than the field. (Negative
    /// integers are *not* errors: header fields are unsigned on the
    /// wire and documented to truncate to the low bits.)
    Oversized { header: String, field: String, value: String, width_bits: u32 },
    /// A value's type disagrees with the field's declared type.
    TypeMismatch { header: String, field: String },
    /// Anything else the spec encoder rejects (unknown header, ...).
    Spec(String),
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::NoMessageHeader => write!(f, "spec has no batched message header"),
            EncodeError::Oversized { header, field, value, width_bits } => {
                write!(f, "value {value} does not fit `{header}.{field}` (bit<{width_bits}>)")
            }
            EncodeError::TypeMismatch { header, field } => {
                write!(f, "type mismatch for `{header}.{field}`")
            }
            EncodeError::Spec(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for EncodeError {}

/// An immutable packet with its payload bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    pub bytes: Bytes,
}

impl Packet {
    pub fn new(bytes: Bytes) -> Self {
        Packet { bytes }
    }

    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Number of whole batched messages this packet carries under a
    /// given spec (fixed-width messages after the fixed stack).
    pub fn message_count(&self, spec: &Spec) -> usize {
        let Some(msg) = &spec.messages else { return 0 };
        let Some(h) = spec.header(msg) else { return 0 };
        let w = h.width_bytes();
        if w == 0 {
            return 0;
        }
        self.bytes.len().saturating_sub(spec.stack_width()) / w
    }

    /// Decode the fixed stack header `name` (must be in the sequence).
    pub fn stack_header(&self, spec: &Spec, name: &str) -> Option<HashMap<String, Value>> {
        let off = spec.stack_offset(name)?;
        spec.decode_header(name, self.bytes.get(off..)?)
    }

    /// Decode batched message `i`.
    pub fn message(&self, spec: &Spec, i: usize) -> Option<HashMap<String, Value>> {
        let msg = spec.messages.as_ref()?;
        let h = spec.header(msg)?;
        let w = h.width_bytes();
        let off = spec.stack_width() + i * w;
        spec.decode_header(msg, self.bytes.get(off..off + w)?)
    }

    /// A copy of this packet keeping only the selected messages (egress
    /// pruning, §VI-A). The fixed stack is preserved; `keep` indexes
    /// messages.
    pub fn prune_messages(&self, spec: &Spec, keep: &[usize]) -> Packet {
        let stack = spec.stack_width();
        let Some(msg) = &spec.messages else {
            return self.clone();
        };
        let w = spec.header(msg).map_or(0, |h| h.width_bytes());
        if w == 0 {
            return self.clone();
        }
        let mut out = Vec::with_capacity(stack + keep.len() * w);
        out.extend_from_slice(&self.bytes[..stack.min(self.bytes.len())]);
        for &i in keep {
            let off = stack + i * w;
            if let Some(slice) = self.bytes.get(off..off + w) {
                out.extend_from_slice(slice);
            }
        }
        Packet::new(Bytes::from(out))
    }
}

/// Builds packets under a spec: set stack-header fields, append
/// messages, finish.
pub struct PacketBuilder<'a> {
    spec: &'a Spec,
    stack_values: HashMap<String, HashMap<String, Value>>,
    messages: Vec<HashMap<String, Value>>,
}

impl<'a> PacketBuilder<'a> {
    pub fn new(spec: &'a Spec) -> Self {
        PacketBuilder { spec, stack_values: HashMap::new(), messages: Vec::new() }
    }

    /// Set a field of a fixed stack header.
    pub fn stack_field(mut self, header: &str, field: &str, value: impl Into<Value>) -> Self {
        self.stack_values
            .entry(header.to_string())
            .or_default()
            .insert(field.to_string(), value.into());
        self
    }

    /// Append a batched message given as field → value pairs.
    pub fn message<I, S, V>(mut self, fields: I) -> Self
    where
        I: IntoIterator<Item = (S, V)>,
        S: Into<String>,
        V: Into<Value>,
    {
        self.messages.push(fields.into_iter().map(|(k, v)| (k.into(), v.into())).collect());
        self
    }

    /// Check the provided values against `header`'s field widths and
    /// types. Keys that name no field are ignored (the encoder skips
    /// them too — spec fields not supplied default to zero, and the
    /// reverse direction mirrors that leniency).
    fn check_values(
        &self,
        header: &str,
        values: &HashMap<String, Value>,
    ) -> Result<(), EncodeError> {
        let h = self
            .spec
            .header(header)
            .ok_or_else(|| EncodeError::Spec(format!("unknown header `{header}`")))?;
        for f in &h.fields {
            let Some(v) = values.get(&f.name) else { continue };
            if v.ty() != f.ty {
                return Err(EncodeError::TypeMismatch {
                    header: header.to_string(),
                    field: f.name.clone(),
                });
            }
            let fits = match v {
                Value::Int(i) => {
                    *i < 0 || f.width_bits >= 63 || (*i as u64) < (1u64 << f.width_bits)
                }
                Value::Str(s) => s.len() <= f.width_bytes(),
            };
            if !fits {
                return Err(EncodeError::Oversized {
                    header: header.to_string(),
                    field: f.name.clone(),
                    value: format!("{v:?}"),
                    width_bits: f.width_bits,
                });
            }
        }
        Ok(())
    }

    /// Encode to bytes, rejecting values that would be silently
    /// mangled: oversized integers/strings, type mismatches, and
    /// messages on a spec without a batched message header.
    pub fn try_build(self) -> Result<Packet, EncodeError> {
        let mut out = Vec::with_capacity(self.spec.stack_width() + self.messages.len() * 32);
        let empty = HashMap::new();
        for name in &self.spec.sequence {
            let vals = self.stack_values.get(name).unwrap_or(&empty);
            self.check_values(name, vals)?;
            let bytes = self
                .spec
                .encode_header(name, vals)
                .map_err(|e| EncodeError::Spec(format!("encoding stack header {name}: {e}")))?;
            out.extend_from_slice(&bytes);
        }
        if let Some(msg) = &self.spec.messages {
            for m in &self.messages {
                self.check_values(msg, m)?;
                let bytes = self
                    .spec
                    .encode_header(msg, m)
                    .map_err(|e| EncodeError::Spec(format!("encoding message {msg}: {e}")))?;
                out.extend_from_slice(&bytes);
            }
        } else if !self.messages.is_empty() {
            return Err(EncodeError::NoMessageHeader);
        }
        Ok(Packet::new(Bytes::from(out)))
    }

    /// Encode to bytes. Panics where [`PacketBuilder::try_build`]
    /// errors (a programming error in the caller).
    pub fn build(self) -> Packet {
        self.try_build().unwrap_or_else(|e| panic!("{e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use camus_lang::spec::itch_spec;

    fn order(stock: &str, price: i64, shares: i64) -> Vec<(&'static str, Value)> {
        vec![
            ("stock", Value::from(stock)),
            ("price", Value::Int(price)),
            ("shares", Value::Int(shares)),
        ]
    }

    #[test]
    fn build_and_decode_roundtrip() {
        let spec = itch_spec();
        let pkt = PacketBuilder::new(&spec)
            .stack_field("moldudp", "seq", 42i64)
            .stack_field("moldudp", "msg_count", 2i64)
            .message(order("GOOGL", 1050, 100))
            .message(order("MSFT", 300, 5))
            .build();
        assert_eq!(pkt.len(), spec.stack_width() + 2 * 20);
        assert_eq!(pkt.message_count(&spec), 2);

        let mold = pkt.stack_header(&spec, "moldudp").unwrap();
        assert_eq!(mold["seq"], Value::Int(42));
        assert_eq!(mold["msg_count"], Value::Int(2));

        let m0 = pkt.message(&spec, 0).unwrap();
        assert_eq!(m0["stock"], Value::from("GOOGL"));
        assert_eq!(m0["price"], Value::Int(1050));
        let m1 = pkt.message(&spec, 1).unwrap();
        assert_eq!(m1["stock"], Value::from("MSFT"));
        assert!(pkt.message(&spec, 2).is_none());
    }

    #[test]
    fn empty_packet_has_no_messages() {
        let spec = itch_spec();
        let pkt = PacketBuilder::new(&spec).build();
        assert_eq!(pkt.message_count(&spec), 0);
        assert_eq!(pkt.len(), spec.stack_width());
        assert!(!pkt.is_empty());
    }

    #[test]
    fn prune_keeps_selected_messages() {
        let spec = itch_spec();
        let pkt = PacketBuilder::new(&spec)
            .message(order("A", 1, 1))
            .message(order("B", 2, 2))
            .message(order("C", 3, 3))
            .build();
        let pruned = pkt.prune_messages(&spec, &[0, 2]);
        assert_eq!(pruned.message_count(&spec), 2);
        assert_eq!(pruned.message(&spec, 0).unwrap()["stock"], Value::from("A"));
        assert_eq!(pruned.message(&spec, 1).unwrap()["stock"], Value::from("C"));
        // The original is untouched.
        assert_eq!(pkt.message_count(&spec), 3);
    }

    #[test]
    fn prune_to_empty() {
        let spec = itch_spec();
        let pkt = PacketBuilder::new(&spec).message(order("A", 1, 1)).build();
        let pruned = pkt.prune_messages(&spec, &[]);
        assert_eq!(pruned.message_count(&spec), 0);
        assert_eq!(pruned.len(), spec.stack_width());
    }

    #[test]
    fn short_buffer_is_rejected_gracefully() {
        let spec = itch_spec();
        let pkt = Packet::new(Bytes::from_static(&[0u8; 4]));
        assert_eq!(pkt.message_count(&spec), 0);
        assert!(pkt.stack_header(&spec, "moldudp").is_none());
        assert!(pkt.message(&spec, 0).is_none());
    }

    #[test]
    #[should_panic(expected = "no batched message header")]
    fn message_on_stack_only_spec_panics() {
        let spec = camus_lang::spec::int_spec();
        let _ = PacketBuilder::new(&spec).message(vec![("switch_id", 1i64)]).build();
    }

    #[test]
    fn try_build_matches_build() {
        let spec = itch_spec();
        let a = PacketBuilder::new(&spec)
            .stack_field("moldudp", "seq", 7i64)
            .message(order("GOOGL", 10, 5))
            .try_build()
            .unwrap();
        let b = PacketBuilder::new(&spec)
            .stack_field("moldudp", "seq", 7i64)
            .message(order("GOOGL", 10, 5))
            .build();
        assert_eq!(a, b);
    }

    #[test]
    fn oversized_int_is_rejected_not_truncated() {
        let spec = itch_spec();
        let too_big = 1i64 << 33; // price is bit<32>
        let err =
            PacketBuilder::new(&spec).message(order("GOOGL", too_big, 1)).try_build().unwrap_err();
        match err {
            EncodeError::Oversized { header, field, width_bits, .. } => {
                assert_eq!(field, "price");
                assert_eq!(width_bits, 32);
                assert!(!header.is_empty());
            }
            other => panic!("expected Oversized, got {other:?}"),
        }
        // The widest representable value still encodes.
        let max = (1i64 << 32) - 1;
        let pkt = PacketBuilder::new(&spec).message(order("GOOGL", max, 1)).try_build().unwrap();
        assert_eq!(pkt.message(&spec, 0).unwrap()["price"], Value::Int(max));
    }

    #[test]
    fn oversized_string_is_rejected() {
        let spec = itch_spec();
        let err = PacketBuilder::new(&spec)
            .message(order("WAYTOOLONG", 1, 1)) // stock is str<8>
            .try_build()
            .unwrap_err();
        assert!(matches!(err, EncodeError::Oversized { ref field, .. } if field == "stock"));
    }

    #[test]
    fn type_mismatch_is_rejected() {
        let spec = itch_spec();
        let err = PacketBuilder::new(&spec)
            .message(vec![("price", Value::from("not a number"))])
            .try_build()
            .unwrap_err();
        assert!(matches!(err, EncodeError::TypeMismatch { ref field, .. } if field == "price"));
    }

    #[test]
    fn negative_int_still_truncates_by_contract() {
        // FieldSpec documents integer fields as unsigned on the wire:
        // negatives truncate to the low bits rather than erroring.
        let spec = itch_spec();
        let pkt = PacketBuilder::new(&spec).message(order("GOOGL", -1, 1)).try_build().unwrap();
        assert_eq!(pkt.message(&spec, 0).unwrap()["price"], Value::Int((1 << 32) - 1));
    }

    #[test]
    fn message_on_stack_only_spec_errors() {
        let spec = camus_lang::spec::int_spec();
        let err =
            PacketBuilder::new(&spec).message(vec![("switch_id", 1i64)]).try_build().unwrap_err();
        assert_eq!(err, EncodeError::NoMessageHeader);
        assert!(err.to_string().contains("no batched message header"));
    }
}
