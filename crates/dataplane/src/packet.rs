//! Wire-format packets.
//!
//! A Camus packet is the application's fixed header stack (the
//! `sequence` of the spec) followed by zero or more batched fixed-width
//! messages (the `messages` header), exactly the ITCH/MoldUDP layout of
//! §VIII-C.1. Packets are immutable byte buffers ([`bytes::Bytes`]);
//! building one goes through [`PacketBuilder`].

use bytes::Bytes;
use camus_lang::spec::Spec;
use camus_lang::value::Value;
use std::collections::HashMap;

/// An immutable packet with its payload bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    pub bytes: Bytes,
}

impl Packet {
    pub fn new(bytes: Bytes) -> Self {
        Packet { bytes }
    }

    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Number of whole batched messages this packet carries under a
    /// given spec (fixed-width messages after the fixed stack).
    pub fn message_count(&self, spec: &Spec) -> usize {
        let Some(msg) = &spec.messages else { return 0 };
        let Some(h) = spec.header(msg) else { return 0 };
        let w = h.width_bytes();
        if w == 0 {
            return 0;
        }
        self.bytes.len().saturating_sub(spec.stack_width()) / w
    }

    /// Decode the fixed stack header `name` (must be in the sequence).
    pub fn stack_header(&self, spec: &Spec, name: &str) -> Option<HashMap<String, Value>> {
        let off = spec.stack_offset(name)?;
        spec.decode_header(name, self.bytes.get(off..)?)
    }

    /// Decode batched message `i`.
    pub fn message(&self, spec: &Spec, i: usize) -> Option<HashMap<String, Value>> {
        let msg = spec.messages.as_ref()?;
        let h = spec.header(msg)?;
        let w = h.width_bytes();
        let off = spec.stack_width() + i * w;
        spec.decode_header(msg, self.bytes.get(off..off + w)?)
    }

    /// A copy of this packet keeping only the selected messages (egress
    /// pruning, §VI-A). The fixed stack is preserved; `keep` indexes
    /// messages.
    pub fn prune_messages(&self, spec: &Spec, keep: &[usize]) -> Packet {
        let stack = spec.stack_width();
        let Some(msg) = &spec.messages else {
            return self.clone();
        };
        let w = spec.header(msg).map_or(0, |h| h.width_bytes());
        if w == 0 {
            return self.clone();
        }
        let mut out = Vec::with_capacity(stack + keep.len() * w);
        out.extend_from_slice(&self.bytes[..stack.min(self.bytes.len())]);
        for &i in keep {
            let off = stack + i * w;
            if let Some(slice) = self.bytes.get(off..off + w) {
                out.extend_from_slice(slice);
            }
        }
        Packet::new(Bytes::from(out))
    }
}

/// Builds packets under a spec: set stack-header fields, append
/// messages, finish.
pub struct PacketBuilder<'a> {
    spec: &'a Spec,
    stack_values: HashMap<String, HashMap<String, Value>>,
    messages: Vec<HashMap<String, Value>>,
}

impl<'a> PacketBuilder<'a> {
    pub fn new(spec: &'a Spec) -> Self {
        PacketBuilder { spec, stack_values: HashMap::new(), messages: Vec::new() }
    }

    /// Set a field of a fixed stack header.
    pub fn stack_field(mut self, header: &str, field: &str, value: impl Into<Value>) -> Self {
        self.stack_values
            .entry(header.to_string())
            .or_default()
            .insert(field.to_string(), value.into());
        self
    }

    /// Append a batched message given as field → value pairs.
    pub fn message<I, S, V>(mut self, fields: I) -> Self
    where
        I: IntoIterator<Item = (S, V)>,
        S: Into<String>,
        V: Into<Value>,
    {
        self.messages.push(fields.into_iter().map(|(k, v)| (k.into(), v.into())).collect());
        self
    }

    /// Encode to bytes. Panics only on type mismatches against the spec
    /// (a programming error in the caller).
    pub fn build(self) -> Packet {
        let mut out = Vec::with_capacity(self.spec.stack_width() + self.messages.len() * 32);
        for name in &self.spec.sequence {
            let empty = HashMap::new();
            let vals = self.stack_values.get(name).unwrap_or(&empty);
            let bytes = self
                .spec
                .encode_header(name, vals)
                .unwrap_or_else(|e| panic!("encoding stack header {name}: {e}"));
            out.extend_from_slice(&bytes);
        }
        if let Some(msg) = &self.spec.messages {
            for m in &self.messages {
                let bytes = self
                    .spec
                    .encode_header(msg, m)
                    .unwrap_or_else(|e| panic!("encoding message {msg}: {e}"));
                out.extend_from_slice(&bytes);
            }
        } else {
            assert!(self.messages.is_empty(), "spec has no batched message header");
        }
        Packet::new(Bytes::from(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use camus_lang::spec::itch_spec;

    fn order(stock: &str, price: i64, shares: i64) -> Vec<(&'static str, Value)> {
        vec![
            ("stock", Value::from(stock)),
            ("price", Value::Int(price)),
            ("shares", Value::Int(shares)),
        ]
    }

    #[test]
    fn build_and_decode_roundtrip() {
        let spec = itch_spec();
        let pkt = PacketBuilder::new(&spec)
            .stack_field("moldudp", "seq", 42i64)
            .stack_field("moldudp", "msg_count", 2i64)
            .message(order("GOOGL", 1050, 100))
            .message(order("MSFT", 300, 5))
            .build();
        assert_eq!(pkt.len(), spec.stack_width() + 2 * 20);
        assert_eq!(pkt.message_count(&spec), 2);

        let mold = pkt.stack_header(&spec, "moldudp").unwrap();
        assert_eq!(mold["seq"], Value::Int(42));
        assert_eq!(mold["msg_count"], Value::Int(2));

        let m0 = pkt.message(&spec, 0).unwrap();
        assert_eq!(m0["stock"], Value::from("GOOGL"));
        assert_eq!(m0["price"], Value::Int(1050));
        let m1 = pkt.message(&spec, 1).unwrap();
        assert_eq!(m1["stock"], Value::from("MSFT"));
        assert!(pkt.message(&spec, 2).is_none());
    }

    #[test]
    fn empty_packet_has_no_messages() {
        let spec = itch_spec();
        let pkt = PacketBuilder::new(&spec).build();
        assert_eq!(pkt.message_count(&spec), 0);
        assert_eq!(pkt.len(), spec.stack_width());
        assert!(!pkt.is_empty());
    }

    #[test]
    fn prune_keeps_selected_messages() {
        let spec = itch_spec();
        let pkt = PacketBuilder::new(&spec)
            .message(order("A", 1, 1))
            .message(order("B", 2, 2))
            .message(order("C", 3, 3))
            .build();
        let pruned = pkt.prune_messages(&spec, &[0, 2]);
        assert_eq!(pruned.message_count(&spec), 2);
        assert_eq!(pruned.message(&spec, 0).unwrap()["stock"], Value::from("A"));
        assert_eq!(pruned.message(&spec, 1).unwrap()["stock"], Value::from("C"));
        // The original is untouched.
        assert_eq!(pkt.message_count(&spec), 3);
    }

    #[test]
    fn prune_to_empty() {
        let spec = itch_spec();
        let pkt = PacketBuilder::new(&spec).message(order("A", 1, 1)).build();
        let pruned = pkt.prune_messages(&spec, &[]);
        assert_eq!(pruned.message_count(&spec), 0);
        assert_eq!(pruned.len(), spec.stack_width());
    }

    #[test]
    fn short_buffer_is_rejected_gracefully() {
        let spec = itch_spec();
        let pkt = Packet::new(Bytes::from_static(&[0u8; 4]));
        assert_eq!(pkt.message_count(&spec), 0);
        assert!(pkt.stack_header(&spec, "moldudp").is_none());
        assert!(pkt.message(&spec, 0).is_none());
    }

    #[test]
    #[should_panic(expected = "no batched message header")]
    fn message_on_stack_only_spec_panics() {
        let spec = camus_lang::spec::int_spec();
        let _ = PacketBuilder::new(&spec).message(vec![("switch_id", 1i64)]).build();
    }
}
