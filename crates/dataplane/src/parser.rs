//! Deep packet parsing with recirculation (Fig. 7, §VI-B).
//!
//! Hardware constraint: the Packet Header Vector (PHV) carried through
//! the pipeline has limited capacity, so only `B` batched messages can
//! be extracted per pass. For packets with more messages, the first
//! pass multicasts copies onto recirculation ports; the copy returning
//! on recirculation port `k` skips `k·B` messages via counter-matched
//! shift states and extracts the next `B`. With `R` recirculation
//! ports, at most `(R + 1) · B` messages per packet are processed;
//! anything beyond is truncated and counted.

use crate::packet::Packet;
use camus_lang::spec::Spec;
use camus_lang::value::Value;
use std::collections::HashMap;

/// One extracted message: its index in the packet and its attributes.
#[derive(Debug, Clone)]
pub struct ParsedMessage {
    pub index: usize,
    pub values: HashMap<String, Value>,
}

/// The result of fully parsing one packet (all passes).
#[derive(Debug, Clone, Default)]
pub struct ParseOutcome {
    /// Fixed-stack attribute values, keyed `header.field` *and* bare
    /// `field` where unambiguous.
    pub stack: HashMap<String, Value>,
    /// Extracted messages across all passes, in packet order.
    pub messages: Vec<ParsedMessage>,
    /// Number of pipeline passes used (1 = no recirculation).
    pub passes: usize,
    /// Messages dropped because the recirculation budget ran out.
    pub truncated: usize,
}

/// The parser model: PHV budget and recirculation ports.
#[derive(Debug, Clone)]
pub struct DeepParser {
    spec: Spec,
    /// Messages extracted per pass (`B`): the PHV budget.
    pub max_msgs_per_pass: usize,
    /// Number of dedicated recirculation ports (`R`).
    pub recirc_ports: usize,
}

impl DeepParser {
    pub fn new(spec: Spec, max_msgs_per_pass: usize, recirc_ports: usize) -> Self {
        assert!(max_msgs_per_pass > 0, "PHV must hold at least one message");
        DeepParser { spec, max_msgs_per_pass, recirc_ports }
    }

    pub fn spec(&self) -> &Spec {
        &self.spec
    }

    /// Parse a packet, modelling the multi-pass scheme of Fig. 7.
    pub fn parse(&self, pkt: &Packet) -> ParseOutcome {
        let mut out = ParseOutcome { passes: 1, ..Default::default() };

        // Fixed stack: parsed on every pass in hardware; extracted once
        // here. Also index fields by bare name when unambiguous.
        for name in &self.spec.sequence {
            if let Some(vals) = pkt.stack_header(&self.spec, name) {
                for (f, v) in vals {
                    if self.spec.resolve(&f).is_some() {
                        out.stack.insert(f.clone(), v.clone());
                    }
                    out.stack.insert(format!("{name}.{f}"), v);
                }
            }
        }

        let total = pkt.message_count(&self.spec);
        if total == 0 {
            return out;
        }
        let budget = (self.recirc_ports + 1) * self.max_msgs_per_pass;
        let extract = total.min(budget);
        out.truncated = total - extract;
        // Pass p handles messages [p*B, (p+1)*B).
        out.passes = extract.div_ceil(self.max_msgs_per_pass).max(1);
        for index in 0..extract {
            if let Some(values) = pkt.message(&self.spec, index) {
                out.messages.push(ParsedMessage { index, values });
            }
        }
        out
    }

    /// Worst-case messages a single packet can carry through this
    /// parser configuration.
    pub fn capacity(&self) -> usize {
        (self.recirc_ports + 1) * self.max_msgs_per_pass
    }
}

impl ParseOutcome {
    /// Attribute lookup for one message: message fields shadow stack
    /// fields; `header.field` paths reach both.
    pub fn lookup<'a>(&'a self, msg: &'a ParsedMessage, key: &str) -> Option<&'a Value> {
        msg.values.get(key).or_else(|| self.stack.get(key)).or_else(|| {
            // `header.field` for the message header.
            key.split_once('.').and_then(|(_, f)| msg.values.get(f))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::PacketBuilder;
    use camus_lang::spec::itch_spec;

    fn feed(n: usize) -> Packet {
        let spec = itch_spec();
        let mut b = PacketBuilder::new(&spec).stack_field("moldudp", "seq", 7i64);
        for i in 0..n {
            b = b.message(vec![("price", Value::Int(i as i64)), ("stock", Value::from("GOOGL"))]);
        }
        b.build()
    }

    #[test]
    fn single_pass_within_budget() {
        let p = DeepParser::new(itch_spec(), 4, 3);
        let out = p.parse(&feed(3));
        assert_eq!(out.passes, 1);
        assert_eq!(out.messages.len(), 3);
        assert_eq!(out.truncated, 0);
        assert_eq!(out.stack["seq"], Value::Int(7));
        assert_eq!(out.stack["moldudp.seq"], Value::Int(7));
    }

    #[test]
    fn recirculation_passes_count() {
        let p = DeepParser::new(itch_spec(), 4, 3);
        // 10 messages, 4 per pass -> 3 passes.
        let out = p.parse(&feed(10));
        assert_eq!(out.passes, 3);
        assert_eq!(out.messages.len(), 10);
        assert_eq!(out.truncated, 0);
        // Messages arrive in packet order with correct indices.
        let idx: Vec<usize> = out.messages.iter().map(|m| m.index).collect();
        assert_eq!(idx, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn truncation_beyond_recirc_budget() {
        let p = DeepParser::new(itch_spec(), 2, 1); // capacity 4
        assert_eq!(p.capacity(), 4);
        let out = p.parse(&feed(7));
        assert_eq!(out.messages.len(), 4);
        assert_eq!(out.truncated, 3);
        assert_eq!(out.passes, 2);
    }

    #[test]
    fn no_messages_single_pass() {
        let p = DeepParser::new(itch_spec(), 4, 3);
        let out = p.parse(&feed(0));
        assert_eq!(out.passes, 1);
        assert!(out.messages.is_empty());
        assert_eq!(out.truncated, 0);
    }

    #[test]
    fn lookup_resolution() {
        let p = DeepParser::new(itch_spec(), 4, 3);
        let out = p.parse(&feed(1));
        let m = &out.messages[0];
        assert_eq!(out.lookup(m, "price"), Some(&Value::Int(0)));
        assert_eq!(out.lookup(m, "itch_order.price"), Some(&Value::Int(0)));
        assert_eq!(out.lookup(m, "seq"), Some(&Value::Int(7)));
        assert_eq!(out.lookup(m, "nope"), None);
    }

    #[test]
    #[should_panic(expected = "PHV must hold at least one message")]
    fn zero_budget_panics() {
        DeepParser::new(itch_spec(), 0, 1);
    }
}
