//! Differential equivalence of the batch drivers.
//!
//! The sharded throughput driver feeds [`Switch::process_batch_indexed`]
//! with global packet indices; correctness of everything it reports
//! rests on three identities, pinned here on *stateful* rule sets whose
//! tumbling-window aggregates span batch boundaries:
//!
//! * `process_batch_indexed` over any chunking of a packet stream is
//!   byte-identical to driving [`Switch::process`] packet-by-packet at
//!   the same global timestamps — batching is a driver optimisation,
//!   never a semantic change;
//! * both agree with [`Switch::process_reference`], the interpreted
//!   oracle, on ports and actions;
//! * per-shard switches driven over a partition of the stream produce
//!   stats that [`SwitchStats::merge`] sums to the single-core totals
//!   (for stateless rules, where partitioning cannot change per-message
//!   outcomes).

use camus_core::compiler::Compiler;
use camus_core::statics::compile_static;
use camus_dataplane::packet::{Packet, PacketBuilder};
use camus_dataplane::switch::{Switch, SwitchConfig, SwitchOutput, SwitchStats};
use camus_lang::ast::Port;
use camus_lang::parser::parse_rules;
use camus_lang::spec::itch_spec;
use camus_lang::value::Value;
use proptest::prelude::*;

/// Stateful rules: the `avg(price)` aggregate makes every forwarding
/// decision depend on the whole history of timestamps seen so far, so
/// any batching bug that perturbs timestamps shows up as a port
/// divergence. The default window is 100 μs and timestamps advance
/// 1 μs per packet, so a ~200-packet stream tumbles the window twice.
fn stateful_switch() -> Switch {
    let spec = itch_spec();
    let statics = compile_static(&spec).unwrap();
    let rules = parse_rules(
        "stock == GOOGL and avg(price) > 60: fwd(1)\n\
         price > 500: fwd(2)\n\
         stock == MSFT and count(price) > 3: fwd(3)\n",
    )
    .unwrap();
    let compiled = Compiler::new().with_static(statics.clone()).compile(&rules).unwrap();
    Switch::new(&statics, compiled.pipeline, SwitchConfig::default())
}

/// Stateless rules, for the shard-sum identity (per-shard state
/// registers legitimately differ from a single switch's, so the
/// stats-sum identity holds only without aggregates).
fn stateless_switch() -> Switch {
    let spec = itch_spec();
    let statics = compile_static(&spec).unwrap();
    let rules = parse_rules(
        "stock == GOOGL: fwd(1)\n\
         price > 500: fwd(2)\n",
    )
    .unwrap();
    let compiled = Compiler::new().with_static(statics.clone()).compile(&rules).unwrap();
    Switch::new(&statics, compiled.pipeline, SwitchConfig::default())
}

fn packet(stock: &str, price: i64) -> Packet {
    let spec = itch_spec();
    PacketBuilder::new(&spec)
        .message(vec![("stock", Value::from(stock)), ("price", Value::Int(price))])
        .build()
}

fn arb_symbol() -> impl Strategy<Value = String> {
    prop_oneof![Just("GOOGL".to_string()), Just("MSFT".to_string()), Just("AAPL".to_string()),]
}

/// A stream of (symbol, price) orders long enough that the 100 μs
/// default window tumbles mid-stream.
fn arb_stream() -> impl Strategy<Value = Vec<(String, i64)>> {
    prop::collection::vec((arb_symbol(), 0i64..1_000), 1..220)
}

fn ports_of(out: &SwitchOutput) -> Vec<Port> {
    out.ports.iter().map(|(p, _)| *p).collect()
}

/// Drive `pkts` through `process_batch_indexed` in `chunk`-sized
/// batches with global indices, returning every output in order.
fn drive_batched(sw: &mut Switch, pkts: &[(Packet, Port)], chunk: usize) -> Vec<SwitchOutput> {
    let mut all = Vec::with_capacity(pkts.len());
    let mut out = Vec::new();
    let mut idx = 0u64;
    for c in pkts.chunks(chunk.max(1)) {
        sw.process_batch_indexed(c, idx, &mut out);
        idx += c.len() as u64;
        all.append(&mut out);
    }
    all
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Batched ≡ sequential ≡ reference on stateful streams, for every
    /// chunking — including chunk sizes that split aggregate windows
    /// across batch boundaries.
    #[test]
    fn batch_matches_sequential_and_reference(
        stream in arb_stream(),
        chunk in 1usize..70,
    ) {
        let pkts: Vec<(Packet, Port)> =
            stream.iter().map(|(s, p)| (packet(s, *p), 0)).collect();
        let base = stateful_switch();

        let mut batched = base.clone();
        let outs_batch = drive_batched(&mut batched, &pkts, chunk);

        let mut seq = base.clone();
        let outs_seq: Vec<SwitchOutput> =
            pkts.iter().enumerate().map(|(i, (p, port))| seq.process(p, *port, i as u64)).collect();

        let mut oracle = base.clone();
        let outs_ref: Vec<SwitchOutput> = pkts
            .iter()
            .enumerate()
            .map(|(i, (p, port))| oracle.process_reference(p, *port, i as u64))
            .collect();

        for (i, ((b, s), r)) in outs_batch.iter().zip(&outs_seq).zip(&outs_ref).enumerate() {
            prop_assert_eq!(b.ports.clone(), s.ports.clone(), "batch/seq ports @ {}", i);
            prop_assert_eq!(&b.actions, &s.actions, "batch/seq actions @ {}", i);
            prop_assert_eq!(ports_of(b), ports_of(r), "batch/reference ports @ {}", i);
            prop_assert_eq!(&b.actions, &r.actions, "batch/reference actions @ {}", i);
        }
        // Everything but the batching shape matches the per-packet
        // drive exactly.
        prop_assert_eq!(
            batched.stats().forwarding_stats(),
            seq.stats().forwarding_stats()
        );
    }

    /// Per-shard stats over any contiguous partition of a stateless
    /// stream merge to the single-core totals.
    #[test]
    fn shard_stats_sum_to_single_core(
        stream in arb_stream(),
        shards in 1usize..9,
    ) {
        let pkts: Vec<(Packet, Port)> =
            stream.iter().map(|(s, p)| (packet(s, *p), 0)).collect();
        let base = stateless_switch();

        let mut single = base.clone();
        drive_batched(&mut single, &pkts, 64);

        let chunk = pkts.len().div_ceil(shards).max(1);
        let mut merged = SwitchStats::default();
        for (u, slice) in pkts.chunks(chunk).enumerate() {
            let mut sw = base.clone();
            let mut out = Vec::new();
            sw.process_batch_indexed(slice, (u * chunk) as u64, &mut out);
            merged.merge(&sw.stats());
        }
        prop_assert_eq!(
            merged.forwarding_stats(),
            single.stats().forwarding_stats(),
            "sharded counters diverged from the single-core run"
        );
        prop_assert_eq!(merged.packets, pkts.len() as u64);
    }
}

/// The window-tumble boundary case, deterministically: the aggregate
/// register must see the same global timestamps whether the stream is
/// driven in one batch or split exactly at the tumble.
#[test]
fn window_spanning_batches_agree_with_sequential() {
    // 150 MSFT orders: `count(price) > 3` opens the gate at the 4th
    // packet of each window, and the window tumbles at ts = 100,
    // resetting the count so packets 100..103 are *not* forwarded.
    // Any driver that restarts timestamps at a batch boundary (or
    // pins them, like the legacy single-timestamp API) tumbles at the
    // wrong packets.
    let pkts: Vec<(Packet, Port)> = (0..150).map(|_| (packet("MSFT", 10), 0)).collect();
    let base = stateful_switch();

    let mut seq = base.clone();
    let seq_ports: Vec<Vec<Port>> = pkts
        .iter()
        .enumerate()
        .map(|(i, (p, port))| ports_of(&seq.process(p, *port, i as u64)))
        .collect();

    for chunk in [1usize, 7, 64, 100, 150] {
        let mut batched = base.clone();
        let got: Vec<Vec<Port>> =
            drive_batched(&mut batched, &pkts, chunk).iter().map(ports_of).collect();
        assert_eq!(got, seq_ports, "chunk size {chunk} diverged");
    }

    // The legacy single-timestamp batch API is *not* equivalent on
    // stateful streams (every packet lands in one window) — pin that
    // the indexed API is the one with global-time semantics.
    let mut legacy = base.clone();
    let legacy_ports: Vec<Vec<Port>> =
        legacy.process_batch(&pkts, 0).iter().map(ports_of).collect();
    assert_ne!(legacy_ports, seq_ports, "stateful stream must distinguish the two batch APIs");
}
