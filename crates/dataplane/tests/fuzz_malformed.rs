//! Adversarial wire-input fuzzing for the parser and the compiled
//! fast path.
//!
//! A switch must treat packet bytes as hostile: truncated frames,
//! bit-flipped headers and pure byte soup arrive on real wires. The
//! properties:
//!
//! * neither `Switch::process` (compiled fast path, [`EvalPlan`]) nor
//!   `Switch::process_reference` (interpreted parser path) ever panics
//!   or reads out of bounds on mangled input — a malformed packet is a
//!   graceful parse miss, not a crash;
//! * both paths forward the *same* ports and raise the same actions on
//!   the same mangled bytes (the fast path may not diverge just
//!   because the input is garbage);
//! * both paths count the same geometrically-malformed packets in
//!   `SwitchStats::malformed`.

use camus_core::compiler::Compiler;
use camus_core::statics::compile_static;
use camus_dataplane::packet::{Packet, PacketBuilder};
use camus_dataplane::switch::{Switch, SwitchConfig};
use camus_lang::parser::parse_rules;
use camus_lang::spec::itch_spec;
use camus_lang::value::Value;
use proptest::prelude::*;

fn fuzz_switch() -> Switch {
    let spec = itch_spec();
    let statics = compile_static(&spec).unwrap();
    let rules = parse_rules(
        "stock == GOOGL: fwd(1)\n\
         price > 500: fwd(2)\n\
         stock == MSFT and price > 100: fwd(3)\n",
    )
    .unwrap();
    let compiled = Compiler::new().with_static(statics.clone()).compile(&rules).unwrap();
    Switch::new(&statics, compiled.pipeline, SwitchConfig::default())
}

/// A well-formed multi-message ITCH packet.
fn valid_packet(msgs: &[(String, i64)]) -> Packet {
    let spec = itch_spec();
    let mut b = PacketBuilder::new(&spec);
    for (stock, price) in msgs {
        b = b.message(vec![("stock", Value::from(stock.as_str())), ("price", Value::Int(*price))]);
    }
    b.build()
}

fn arb_symbol() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("GOOGL".to_string()),
        Just("MSFT".to_string()),
        Just("A".to_string()),
        Just("ZZZZZZZZ".to_string())
    ]
}

fn arb_msgs() -> impl Strategy<Value = Vec<(String, i64)>> {
    prop::collection::vec((arb_symbol(), -1_000i64..10_000), 1..4)
}

/// Both paths, same bytes: no panics, identical forwarding decisions,
/// identical malformed accounting.
fn check_both_paths(fast: &mut Switch, reference: &mut Switch, pkt: &Packet) {
    let a = fast.process(pkt, 0, 7);
    let b = reference.process_reference(pkt, 0, 7);
    let ports_a: Vec<u16> = a.ports.iter().map(|(p, _)| *p).collect();
    let ports_b: Vec<u16> = b.ports.iter().map(|(p, _)| *p).collect();
    assert_eq!(ports_a, ports_b, "fast/reference port divergence on {:?}", &pkt.bytes[..]);
    assert_eq!(a.actions, b.actions, "fast/reference action divergence");
    assert_eq!(
        fast.stats().malformed,
        reference.stats().malformed,
        "fast/reference malformed-count divergence"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Truncation at every possible length: graceful miss, never a
    /// panic, and the two paths agree byte-for-byte.
    #[test]
    fn truncated_packets_never_panic(msgs in arb_msgs(), cut in 0usize..400) {
        let good = valid_packet(&msgs);
        let len = cut.min(good.len());
        let pkt = Packet::new(good.bytes[..len].into());
        let mut fast = fuzz_switch();
        let mut reference = fuzz_switch();
        check_both_paths(&mut fast, &mut reference, &pkt);
    }

    /// Random bit flips anywhere in the frame (header, type tags,
    /// lengths, payload): no panics, no divergence.
    #[test]
    fn bit_flipped_packets_never_panic(
        msgs in arb_msgs(),
        flips in prop::collection::vec((0usize..400, 0u8..8), 1..16),
    ) {
        let good = valid_packet(&msgs);
        let mut bytes = good.bytes.to_vec();
        for (pos, bit) in flips {
            let i = pos % bytes.len();
            bytes[i] ^= 1 << bit;
        }
        let pkt = Packet::new(bytes[..].into());
        let mut fast = fuzz_switch();
        let mut reference = fuzz_switch();
        check_both_paths(&mut fast, &mut reference, &pkt);
    }

    /// Pure byte soup — not even a mangled valid frame.
    #[test]
    fn random_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..300)) {
        let pkt = Packet::new(bytes[..].into());
        let mut fast = fuzz_switch();
        let mut reference = fuzz_switch();
        check_both_paths(&mut fast, &mut reference, &pkt);
    }
}

#[test]
fn one_byte_truncation_counts_as_malformed() {
    let good = valid_packet(&[("GOOGL".to_string(), 600)]);
    let short = Packet::new(good.bytes[..good.len() - 1].into());
    let mut sw = fuzz_switch();
    sw.process(&good, 0, 1);
    assert_eq!(sw.stats().malformed, 0, "well-formed packet flagged malformed");
    sw.process(&short, 0, 2);
    assert_eq!(sw.stats().malformed, 1, "ragged tail must be counted");
    let mut reference = fuzz_switch();
    reference.process_reference(&good, 0, 1);
    reference.process_reference(&short, 0, 2);
    assert_eq!(reference.stats().malformed, 1, "reference path counts identically");
}

#[test]
fn malformed_input_leaves_switch_usable() {
    // After a storm of garbage, a valid packet still forwards normally.
    let mut sw = fuzz_switch();
    for n in 0..64usize {
        let soup: Vec<u8> = (0..n * 5).map(|i| (i * 37 + n) as u8).collect();
        sw.process(&Packet::new(soup[..].into()), 0, 3);
    }
    let good = valid_packet(&[("GOOGL".to_string(), 10)]);
    let out = sw.process(&good, 0, 4);
    let ports: Vec<u16> = out.ports.iter().map(|(p, _)| *p).collect();
    assert_eq!(ports, vec![1], "GOOGL order must still forward to port 1");
}
