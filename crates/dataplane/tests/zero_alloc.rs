//! Steady-state allocation audit for the compiled fast path.
//!
//! A counting global allocator wraps `System`; after warming the
//! switch (scratch slots sized, string buffers grown, aggregate
//! registers created), repeated `Switch::process` calls on drop-path
//! packets must perform **zero** heap allocations, and matching-path
//! packets only the unavoidable output-assembly ones.
//!
//! This file holds exactly one `#[test]`: the allocator counter is
//! global, so a second concurrently running test would pollute it.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use camus_core::compiler::Compiler;
use camus_core::statics::compile_static;
use camus_dataplane::packet::PacketBuilder;
use camus_dataplane::switch::{Switch, SwitchConfig};
use camus_dataplane::telemetry::SwitchTelemetry;
use camus_lang::parser::parse_rules;
use camus_lang::spec::itch_spec;
use camus_lang::value::Value;
use camus_telemetry::metrics::{MetricsRegistry, SampleRate};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

#[test]
fn steady_state_process_does_not_allocate() {
    let spec = itch_spec();
    let statics = compile_static(&spec).unwrap();
    let rules = parse_rules(
        "stock == GOOGL and avg(price) > 5: fwd(1)\n\
         price > 900: fwd(2)\n\
         stock == MSFT: fwd(3)\n",
    )
    .unwrap();
    let compiled = Compiler::new().with_static(statics.clone()).compile(&rules).unwrap();
    let mut sw = Switch::new(&statics, compiled.pipeline, SwitchConfig::default());

    let order =
        |stock: &str, price: i64| vec![("stock", Value::from(stock)), ("price", Value::Int(price))];
    // No rule matches any of these messages: pure evaluation, no output.
    let drop_pkt = PacketBuilder::new(&spec)
        .message(order("ZZZZ", 10))
        .message(order("YYYY", 20))
        .message(order("XXXX", 30))
        .build();
    // Both messages match (multicast on the second): output assembly runs.
    let fwd_pkt =
        PacketBuilder::new(&spec).message(order("GOOGL", 99)).message(order("MSFT", 950)).build();

    // Warm up: size the slot scratch's string buffers, create the
    // aggregate registers, and grow the keep lists to every port seen.
    for _ in 0..32 {
        sw.process(&drop_pkt, 0, 5);
        sw.process(&fwd_pkt, 0, 5);
    }

    // Drop path: strictly zero heap traffic per packet.
    let before = allocs();
    for _ in 0..500 {
        let out = sw.process(&drop_pkt, 0, 5);
        assert!(out.ports.is_empty());
    }
    assert_eq!(allocs() - before, 0, "drop-path processing must not allocate");

    // Matching path: only output assembly (SwitchOutput's port vector;
    // the shared packet clone is a refcount bump). Budget a handful of
    // allocations per packet — evaluation itself contributes none.
    let before = allocs();
    let rounds = 500u64;
    for _ in 0..rounds {
        let out = sw.process(&fwd_pkt, 0, 5);
        let ports: Vec<u16> = out.ports.iter().map(|(p, _)| *p).collect();
        assert_eq!(ports, vec![1, 2, 3], "actions: {:?}", out.actions);
    }
    let per_packet = (allocs() - before) / rounds;
    assert!(per_packet <= 12, "matching path allocates {per_packet}/packet, want <= 12");

    // Telemetry attached but disabled: the hot path gains one sampler
    // tick and must stay strictly allocation-free.
    let registry = MetricsRegistry::new();
    sw.attach_telemetry(SwitchTelemetry::new(&registry, SampleRate::DISABLED));
    for _ in 0..32 {
        sw.process(&drop_pkt, 0, 5);
    }
    let before = allocs();
    for _ in 0..500 {
        let out = sw.process(&drop_pkt, 0, 5);
        assert!(out.ports.is_empty());
    }
    assert_eq!(allocs() - before, 0, "disabled-telemetry drop path must not allocate");

    // Telemetry at full rate: instruments are lock-free atomics, so
    // even the every-packet-sampled path allocates nothing.
    sw.detach_telemetry();
    sw.attach_telemetry(SwitchTelemetry::new(&registry, SampleRate::always()));
    for _ in 0..32 {
        sw.process(&drop_pkt, 0, 5);
    }
    let before = allocs();
    for _ in 0..500 {
        let out = sw.process(&drop_pkt, 0, 5);
        assert!(out.ports.is_empty());
    }
    assert_eq!(allocs() - before, 0, "sampled-telemetry drop path must not allocate");
    assert!(registry.snapshot().histograms["switch.eval_ns"].count >= 500);
}
