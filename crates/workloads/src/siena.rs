//! A Siena-style synthetic subscription generator.
//!
//! The paper generates its Fig. 12/13 workloads with the *Siena
//! Synthetic Benchmark Generator*; this module reproduces its knobs:
//! number of subscriptions, attributes per filter (the "selectiveness"
//! axis of Fig. 12b), the attribute universe, operator mix, and a Zipf
//! skew over both attribute choice and comparison constants (skewed
//! constants are what make workloads "similar" and blow up the naive
//! big table).

use crate::zipf::Zipf;
use camus_lang::ast::{Expr, Predicate, Rel};
use camus_lang::value::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct SienaConfig {
    /// Attribute names to draw from (`attr0..attrN` by default).
    pub n_attributes: usize,
    /// Predicates per filter (Fig. 12b sweeps this).
    pub predicates_per_filter: usize,
    /// Range of integer comparison constants `0..value_range`.
    pub value_range: i64,
    /// Zipf exponent over attributes (0 = uniform).
    pub attribute_skew: f64,
    /// Zipf exponent over constants (0 = uniform).
    pub constant_skew: f64,
    /// Fraction of equality predicates; the rest split between `<` and
    /// `>` evenly (the generator's string attributes always use `==`).
    pub eq_fraction: f64,
    /// Fraction of attributes that are string-typed (drawn from a
    /// symbol universe).
    pub string_fraction: f64,
    /// Symbols for string attributes.
    pub n_symbols: usize,
    /// Anchor every filter with an equality on its first attribute.
    /// Matches the shape of real pub/sub workloads (a selective
    /// type/topic test plus range refinements) and keeps filters
    /// *selective* — §VII-C: "in practice, subscriptions are
    /// selective, so the number of multicast groups on the switch is
    /// not a limiting factor".
    pub anchor_eq: bool,
    /// Cardinality of the anchor attribute (how many distinct
    /// types/symbols exist). Overlap — and therefore table growth —
    /// is governed by subscriptions-per-anchor, so experiments scale
    /// this with the subscription count, like ITCH's symbol universe.
    pub anchor_universe: usize,
    /// Zipf exponent over anchor values. 0 (uniform) keeps the
    /// per-anchor filter groups small and bounded; higher values
    /// concentrate subscriptions on hot types.
    pub anchor_skew: f64,
    pub seed: u64,
}

impl Default for SienaConfig {
    fn default() -> Self {
        SienaConfig {
            n_attributes: 10,
            predicates_per_filter: 3,
            value_range: 1_000,
            attribute_skew: 0.8,
            constant_skew: 0.6,
            eq_fraction: 0.4,
            string_fraction: 0.3,
            n_symbols: 100,
            anchor_eq: true,
            anchor_universe: 1_000,
            anchor_skew: 0.0,
            seed: 0xCA_05,
        }
    }
}

/// The generator: hand out filters and matching packet samples.
pub struct SienaGenerator {
    cfg: SienaConfig,
    rng: StdRng,
    attr_dist: Zipf,
    const_dist: Zipf,
    anchor_dist: Zipf,
    /// Whether attribute `i` is string-typed (fixed per generator so
    /// filters stay type-consistent). The anchor attribute (`attr0`)
    /// follows the same coin.
    is_string: Vec<bool>,
}

impl SienaGenerator {
    pub fn new(cfg: SienaConfig) -> Self {
        assert!(cfg.n_attributes > 0 && cfg.value_range > 0 && cfg.anchor_universe > 0);
        assert!(cfg.predicates_per_filter > 0);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let is_string = (0..cfg.n_attributes).map(|_| rng.gen_bool(cfg.string_fraction)).collect();
        SienaGenerator {
            attr_dist: Zipf::new(cfg.n_attributes, cfg.attribute_skew),
            const_dist: Zipf::new(cfg.value_range as usize, cfg.constant_skew),
            anchor_dist: Zipf::new(cfg.anchor_universe, cfg.anchor_skew),
            cfg,
            rng,
            is_string,
        }
    }

    fn attr_name(i: usize) -> String {
        format!("attr{i}")
    }

    fn symbol(&self, k: usize) -> String {
        format!("SYM{k}")
    }

    /// Generate one filter with the configured number of predicates
    /// over distinct attributes. With `anchor_eq` (the default), the
    /// first predicate is always an equality on `attr0` — the shared
    /// *type* attribute, mirroring how every application workload in
    /// the paper is shaped (ITCH anchors on `stock`, INT on
    /// `switch_id`, hICN on `content_id`). Without a common selective
    /// anchor, arbitrary range filters overlap combinatorially and no
    /// forwarding representation stays small.
    pub fn filter(&mut self) -> Expr {
        let k = self.cfg.predicates_per_filter.min(self.cfg.n_attributes);
        let mut attrs: Vec<usize> = Vec::with_capacity(k);
        if self.cfg.anchor_eq {
            attrs.push(0);
        }
        while attrs.len() < k {
            let a = self.attr_dist.sample(&mut self.rng);
            if !attrs.contains(&a) {
                attrs.push(a);
            }
        }
        let parts: Vec<Expr> = attrs
            .into_iter()
            .enumerate()
            .map(|(idx, a)| {
                let anchored = idx == 0 && self.cfg.anchor_eq;
                let c = if anchored {
                    self.anchor_dist.sample(&mut self.rng)
                } else {
                    self.const_dist.sample(&mut self.rng)
                };
                let pred = if self.is_string[a] {
                    let sym = if anchored {
                        self.symbol(c) // full anchor cardinality
                    } else {
                        self.symbol(c % self.cfg.n_symbols)
                    };
                    Predicate::field(&Self::attr_name(a), Rel::Eq, Value::Str(sym))
                } else {
                    let rel = if anchored || self.rng.gen_bool(self.cfg.eq_fraction) {
                        Rel::Eq
                    } else if self.rng.gen_bool(0.5) {
                        Rel::Lt
                    } else {
                        Rel::Gt
                    };
                    Predicate::field(&Self::attr_name(a), rel, Value::Int(c as i64))
                };
                Expr::Atom(pred)
            })
            .collect();
        Expr::conj(parts)
    }

    /// Generate `n` filters.
    pub fn filters(&mut self, n: usize) -> Vec<Expr> {
        (0..n).map(|_| self.filter()).collect()
    }

    /// A header spec matching this generator's attribute universe, so
    /// generated filters compile and generated packets encode (used by
    /// the network-level experiments of Fig. 13).
    pub fn spec(&self) -> camus_lang::spec::Spec {
        let mut src = String::from("header siena {\n");
        for (i, &is_str) in self.is_string.iter().enumerate() {
            if is_str {
                src.push_str(&format!("  @field_exact str<8> attr{i};\n"));
            } else {
                src.push_str(&format!("  @field bit<32> attr{i};\n"));
            }
        }
        src.push_str("}\nsequence siena\n");
        camus_lang::spec::Spec::parse(&src).expect("generated siena spec parses")
    }

    /// A packet crafted to satisfy `filter` (other attributes filled
    /// randomly). Used by traffic experiments that need publications a
    /// subscriber actually asked for.
    pub fn matching_packet(&mut self, filter: &Expr) -> Vec<(String, Value)> {
        use camus_lang::sets::IntSet;
        let mut pkt = self.packet();
        // Walk the conjunction and overwrite constrained attributes
        // with satisfying witnesses.
        fn atoms(e: &Expr, out: &mut Vec<Predicate>) {
            match e {
                Expr::Atom(p) => out.push(p.clone()),
                Expr::And(a, b) => {
                    atoms(a, out);
                    atoms(b, out);
                }
                // Disjunctions: satisfying the left branch suffices.
                Expr::Or(a, _) => atoms(a, out),
                _ => {}
            }
        }
        let mut preds = Vec::new();
        atoms(filter, &mut preds);
        // Accumulate per-attribute constraints so conjunctions like
        // `x > 3 and x < 9` get a single witness.
        let mut int_sets: std::collections::HashMap<String, IntSet> = Default::default();
        for p in &preds {
            match &p.constant {
                Value::Int(c) => {
                    let e = int_sets.entry(p.operand.key()).or_insert_with(IntSet::full);
                    *e = e.intersect(&IntSet::from_rel(p.rel, *c));
                }
                Value::Str(s) => {
                    if p.rel == Rel::Eq {
                        if let Some(slot) = pkt.iter_mut().find(|(n, _)| *n == p.operand.key()) {
                            slot.1 = Value::Str(s.clone());
                        }
                    }
                }
            }
        }
        for (key, set) in int_sets {
            // Prefer a small non-negative witness (wire fields are
            // unsigned).
            let witness = set
                .intervals()
                .iter()
                .find(|&&(_, hi)| hi >= 0)
                .map(|&(lo, _)| lo.max(0))
                .or_else(|| set.sample())
                .unwrap_or(0);
            if let Some(slot) = pkt.iter_mut().find(|(n, _)| *n == key) {
                slot.1 = Value::Int(witness);
            }
        }
        pkt
    }

    /// A random packet over the full attribute universe, with values
    /// drawn from the same skewed constant distribution (so match
    /// probabilities are realistic).
    pub fn packet(&mut self) -> Vec<(String, Value)> {
        (0..self.cfg.n_attributes)
            .map(|a| {
                let c = self.const_dist.sample(&mut self.rng);
                let v = if self.is_string[a] {
                    Value::Str(self.symbol(c % self.cfg.n_symbols))
                } else {
                    Value::Int(c as i64)
                };
                (Self::attr_name(a), v)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use camus_lang::ast::Operand;

    #[test]
    fn filters_have_requested_shape() {
        let mut g =
            SienaGenerator::new(SienaConfig { predicates_per_filter: 3, ..Default::default() });
        for _ in 0..50 {
            let f = g.filter();
            assert_eq!(f.operands().len(), 3, "distinct attributes per filter");
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let cfg = SienaConfig::default();
        let a = SienaGenerator::new(cfg.clone()).filters(20);
        let b = SienaGenerator::new(cfg.clone()).filters(20);
        assert_eq!(a, b);
        let c = SienaGenerator::new(SienaConfig { seed: 99, ..cfg }).filters(20);
        assert_ne!(a, c);
    }

    #[test]
    fn string_attributes_use_equality() {
        let mut g = SienaGenerator::new(SienaConfig { string_fraction: 1.0, ..Default::default() });
        for _ in 0..30 {
            let f = g.filter();
            fn walk(e: &Expr, ok: &mut bool) {
                match e {
                    Expr::Atom(p) if (!matches!(p.constant, Value::Str(_)) || p.rel != Rel::Eq) => {
                        *ok = false;
                    }
                    Expr::And(a, b) | Expr::Or(a, b) => {
                        walk(a, ok);
                        walk(b, ok);
                    }
                    Expr::Not(e) => walk(e, ok),
                    _ => {}
                }
            }
            let mut ok = true;
            walk(&f, &mut ok);
            assert!(ok);
        }
    }

    #[test]
    fn packets_cover_all_attributes_and_sometimes_match() {
        let mut g = SienaGenerator::new(SienaConfig {
            predicates_per_filter: 1,
            constant_skew: 1.2,
            ..Default::default()
        });
        let filters = g.filters(200);
        let mut matches = 0;
        for _ in 0..300 {
            let pkt = g.packet();
            assert_eq!(pkt.len(), 10);
            let lookup =
                |op: &Operand| pkt.iter().find(|(n, _)| *n == op.key()).map(|(_, v)| v.clone());
            if filters.iter().any(|f| f.eval_with(lookup)) {
                matches += 1;
            }
        }
        assert!(matches > 0, "skewed constants must produce some matches");
    }

    #[test]
    fn skew_concentrates_constants() {
        let mut g = SienaGenerator::new(SienaConfig {
            constant_skew: 1.5,
            string_fraction: 0.0,
            predicates_per_filter: 1,
            // Disable the (separately-skewed) anchor so the sampled
            // predicate uses the constant distribution under test.
            anchor_eq: false,
            ..Default::default()
        });
        let mut small = 0;
        let n = 500;
        for _ in 0..n {
            if let Expr::Atom(p) = g.filter() {
                if p.constant.as_int().unwrap() < 10 {
                    small += 1;
                }
            }
        }
        assert!(small > n / 3, "high skew should concentrate low constants: {small}/{n}");
    }
}
