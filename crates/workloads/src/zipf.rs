//! Zipf-distributed sampling.
//!
//! Implemented from scratch (the offline crate set has no `rand_distr`)
//! with the inverse-CDF method over a precomputed table — exact, and
//! fast enough for millions of samples over universes up to ~10⁷.

use rand::Rng;

/// A Zipf distribution over ranks `0..n` with exponent `s`:
/// `P(rank k) ∝ 1 / (k+1)^s`.
#[derive(Debug, Clone)]
pub struct Zipf {
    /// Cumulative distribution, `cdf[k] = P(rank <= k)`.
    cdf: Vec<f64>,
}

impl Zipf {
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs a non-empty universe");
        assert!(s >= 0.0, "Zipf exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Sample a rank in `0..n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self.cdf.binary_search_by(|c| c.partial_cmp(&u).unwrap()) {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// The probability of rank `k`.
    pub fn pmf(&self, k: usize) -> f64 {
        if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }

    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    pub fn is_empty(&self) -> bool {
        false // the constructor rejects empty universes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(100, 1.1);
        let sum: f64 = (0..100).map(|k| z.pmf(k)).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rank_zero_is_most_likely() {
        let z = Zipf::new(50, 1.0);
        for k in 1..50 {
            assert!(z.pmf(0) >= z.pmf(k));
        }
    }

    #[test]
    fn exponent_zero_is_uniform() {
        let z = Zipf::new(10, 0.0);
        for k in 0..10 {
            assert!((z.pmf(k) - 0.1).abs() < 1e-9);
        }
    }

    #[test]
    fn sampling_matches_pmf_roughly() {
        let z = Zipf::new(20, 1.2);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0usize; 20];
        let n = 200_000;
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for (k, &c) in counts.iter().enumerate() {
            let emp = c as f64 / n as f64;
            assert!(
                (emp - z.pmf(k)).abs() < 0.01,
                "rank {k}: empirical {emp:.4} vs pmf {:.4}",
                z.pmf(k)
            );
        }
    }

    #[test]
    fn samples_stay_in_range() {
        let z = Zipf::new(3, 2.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 3);
        }
    }

    #[test]
    #[should_panic(expected = "non-empty universe")]
    fn empty_universe_panics() {
        Zipf::new(0, 1.0);
    }
}
