//! # camus-workloads — synthetic workload generators
//!
//! Deterministic (seeded) stand-ins for the data sets the paper's
//! evaluation uses but that are not redistributable:
//!
//! * [`zipf`] — a Zipf/zeta sampler (several workloads are Zipf-skewed).
//! * [`siena`] — a generator in the spirit of the *Siena Synthetic
//!   Benchmark Generator* the paper uses for Figs. 12 and 13:
//!   subscription filters with a configurable number of attributes,
//!   predicates per filter, operator mix and constant skew.
//! * [`itch`] — a Nasdaq-like ITCH 5.0 feed: Add-Order messages over a
//!   skewed symbol universe, with the paper's two workload shapes
//!   (trace-like single-message packets with a 0.5 % match rate, and a
//!   Zipf-batched synthetic feed with a 5 % match rate, §VIII-E.1).
//! * [`int`] — in-band network telemetry reports where <1 % of packets
//!   exceed the hop-latency threshold (§VIII-E.2).
//! * [`graphs`] — preferential-attachment AS-like graphs parameterised
//!   to the SNAP data sets of Fig. 15 (CAIDA 2007: 26 475 nodes /
//!   106 762 edges; AS-733: 6 474 nodes / 13 233 edges).
//! * [`content`] — Zipf-popular content-request streams for the hICN
//!   experiment (Fig. 11).
//! * [`churn`] — seeded Poisson subscribe/unsubscribe streams for the
//!   long-running controller service experiment.

pub mod churn;
pub mod content;
pub mod graphs;
pub mod int;
pub mod itch;
pub mod siena;
pub mod zipf;

pub use zipf::Zipf;
