//! Content-request streams for the hICN experiment (Fig. 11).
//!
//! Two client behaviours from §VIII-E.3: streaming clients that request
//! the *same* hot identifier repeatedly, and a scanning client pulling
//! *many different* identifiers that are unlikely to be cached.
//! Popularity across the catalogue is Zipf (standard for CDN/ICN
//! studies).

use crate::zipf::Zipf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A content request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Content identifier (maps to the hICN name / embedded IPv6 id).
    pub content_id: u64,
    /// Issue time, ns.
    pub time_ns: u64,
}

/// Request-stream configuration.
#[derive(Debug, Clone)]
pub struct ContentConfig {
    /// Catalogue size (the paper's Table I hICN row uses 1 M ids).
    pub catalogue: usize,
    /// Zipf exponent for popularity.
    pub skew: f64,
    /// Mean inter-request gap in ns.
    pub gap_ns: u64,
    pub seed: u64,
}

impl Default for ContentConfig {
    fn default() -> Self {
        ContentConfig { catalogue: 100_000, skew: 0.9, gap_ns: 10_000, seed: 0x41C }
    }
}

/// Generates a Zipf-popular request stream.
pub struct ContentStream {
    cfg: ContentConfig,
    rng: StdRng,
    dist: Zipf,
    now_ns: u64,
}

impl ContentStream {
    pub fn new(cfg: ContentConfig) -> Self {
        assert!(cfg.catalogue > 0);
        ContentStream {
            dist: Zipf::new(cfg.catalogue, cfg.skew),
            rng: StdRng::seed_from_u64(cfg.seed),
            now_ns: 0,
            cfg,
        }
    }

    /// Next request from the popularity distribution.
    pub fn next_popular(&mut self) -> Request {
        self.now_ns += self.rng.gen_range(1..=2 * self.cfg.gap_ns.max(1));
        Request { content_id: self.dist.sample(&mut self.rng) as u64, time_ns: self.now_ns }
    }

    /// Next request from the *cold* scan: sequential unique ids beyond
    /// the hot set, modelling the client that pulls content unlikely to
    /// be cached.
    pub fn next_cold(&mut self, scan_pos: &mut u64) -> Request {
        self.now_ns += self.rng.gen_range(1..=2 * self.cfg.gap_ns.max(1));
        let id = self.cfg.catalogue as u64 + *scan_pos;
        *scan_pos += 1;
        Request { content_id: id, time_ns: self.now_ns }
    }

    pub fn popular(&mut self, n: usize) -> Vec<Request> {
        (0..n).map(|_| self.next_popular()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn popular_requests_concentrate_on_hot_ids() {
        let mut s =
            ContentStream::new(ContentConfig { catalogue: 1_000, skew: 1.1, ..Default::default() });
        let reqs = s.popular(10_000);
        let hot = reqs.iter().filter(|r| r.content_id < 10).count();
        assert!(hot > 2_000, "top-10 ids should dominate: {hot}");
    }

    #[test]
    fn cold_requests_are_unique_and_outside_catalogue() {
        let mut s = ContentStream::new(ContentConfig::default());
        let mut pos = 0u64;
        let ids: Vec<u64> = (0..100).map(|_| s.next_cold(&mut pos).content_id).collect();
        let set: std::collections::HashSet<u64> = ids.iter().copied().collect();
        assert_eq!(set.len(), 100);
        assert!(ids.iter().all(|&i| i >= 100_000));
    }

    #[test]
    fn time_advances_monotonically() {
        let mut s = ContentStream::new(ContentConfig::default());
        let reqs = s.popular(100);
        for w in reqs.windows(2) {
            assert!(w[1].time_ns > w[0].time_ns);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = ContentStream::new(ContentConfig::default()).popular(50);
        let b = ContentStream::new(ContentConfig::default()).popular(50);
        assert_eq!(a, b);
    }
}
