//! Seeded Poisson subscription churn.
//!
//! The paper evaluates reconfiguration as one-shot updates (fig. 14's
//! per-subscription cost); a long-running controller service instead
//! absorbs a *stream* of subscribe/unsubscribe requests. This module
//! generates that stream: arrivals are a Poisson process (exponential
//! inter-arrival times at a configured rate), each arrival is a
//! subscribe or an unsubscribe with a configured mix, subscribe
//! filters come from a [`SienaGenerator`], and unsubscribes always
//! name a currently-active subscription (the generator mirrors the
//! active set, so a schedule replayed against a service starting from
//! the same initial state never issues a dangling unsubscribe).
//!
//! Everything is seeded: the same config and initial state produce
//! the same schedule, byte for byte.

use crate::siena::SienaGenerator;
use camus_lang::ast::Expr;
use rand::prelude::*;

/// Parameters of a churn schedule.
#[derive(Debug, Clone, Copy)]
pub struct ChurnConfig {
    /// Mean arrival rate, requests per second of modelled time.
    pub rate_per_s: f64,
    /// Fraction of arrivals that drop an active subscription (when one
    /// exists; with an empty active set an arrival subscribes).
    pub unsubscribe_fraction: f64,
    /// RNG seed for arrival times, op mix, host and victim choice.
    pub seed: u64,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig { rate_per_s: 1_000.0, unsubscribe_fraction: 0.3, seed: 0x5EED }
    }
}

/// One churn request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChurnOp {
    Subscribe(Expr),
    /// Drop one instance of an equal filter held by the host.
    Unsubscribe(Expr),
}

/// A churn request with its Poisson arrival time.
#[derive(Debug, Clone)]
pub struct ChurnEvent {
    /// Modelled arrival time, ns from schedule start. Non-decreasing
    /// across the schedule.
    pub at_ns: u64,
    pub host: usize,
    pub op: ChurnOp,
}

/// The Poisson churn generator. Holds a mirror of the active
/// subscription set so unsubscribes always target a live filter.
#[derive(Debug)]
pub struct PoissonChurn {
    cfg: ChurnConfig,
    rng: StdRng,
    hosts: usize,
    /// Live (host, filter) pairs, in insertion order.
    active: Vec<(usize, Expr)>,
    now_ns: f64,
}

impl PoissonChurn {
    /// A generator over `hosts` hosts whose active-set mirror starts
    /// at `initial` (the per-host subscriptions the service was
    /// deployed with).
    pub fn new(cfg: ChurnConfig, hosts: usize, initial: &[Vec<Expr>]) -> Self {
        assert!(cfg.rate_per_s > 0.0, "churn needs a positive rate");
        assert!((0.0..=1.0).contains(&cfg.unsubscribe_fraction));
        let mut active = Vec::new();
        for (h, fs) in initial.iter().enumerate() {
            for f in fs {
                active.push((h, f.clone()));
            }
        }
        PoissonChurn { rng: StdRng::seed_from_u64(cfg.seed), cfg, hosts, active, now_ns: 0.0 }
    }

    /// Exponential inter-arrival draw (inverse CDF over a uniform in
    /// [0, 1), so `1 - u` is never zero).
    fn step_ns(&mut self) -> f64 {
        let u: f64 = self.rng.gen();
        -(1.0 - u).ln() / self.cfg.rate_per_s * 1e9
    }

    /// Generate the next `n` events. Can be called repeatedly; time
    /// keeps advancing.
    pub fn schedule(&mut self, gen: &mut SienaGenerator, n: usize) -> Vec<ChurnEvent> {
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let dt = self.step_ns();
            self.now_ns += dt;
            let at_ns = self.now_ns as u64;
            let unsub = !self.active.is_empty() && self.rng.gen_bool(self.cfg.unsubscribe_fraction);
            if unsub {
                let victim = self.rng.gen_range(0..self.active.len());
                let (host, filter) = self.active.swap_remove(victim);
                out.push(ChurnEvent { at_ns, host, op: ChurnOp::Unsubscribe(filter) });
            } else {
                let host = self.rng.gen_range(0..self.hosts);
                let filter = gen.filter();
                self.active.push((host, filter.clone()));
                out.push(ChurnEvent { at_ns, host, op: ChurnOp::Subscribe(filter) });
            }
        }
        out
    }

    /// Live subscriptions in the mirror (initial plus net churn).
    pub fn active_len(&self) -> usize {
        self.active.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::siena::{SienaConfig, SienaGenerator};

    fn gen() -> SienaGenerator {
        SienaGenerator::new(SienaConfig { n_attributes: 3, seed: 9, ..Default::default() })
    }

    fn initial() -> Vec<Vec<Expr>> {
        let mut g = gen();
        (0..4).map(|_| g.filters(2)).collect()
    }

    #[test]
    fn schedule_is_seeded_and_reproducible() {
        let cfg = ChurnConfig { rate_per_s: 10_000.0, unsubscribe_fraction: 0.4, seed: 7 };
        let run = || {
            let mut g = gen();
            let init = initial();
            let mut churn = PoissonChurn::new(cfg, 4, &init);
            churn.schedule(&mut g, 64)
        };
        let (a, b) = (run(), run());
        assert_eq!(a.len(), 64);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.at_ns, y.at_ns);
            assert_eq!(x.host, y.host);
            assert_eq!(x.op, y.op);
        }
        // A different seed reshuffles arrivals.
        let mut g = gen();
        let mut other = PoissonChurn::new(ChurnConfig { seed: 8, ..cfg }, 4, &initial());
        let c = other.schedule(&mut g, 64);
        assert!(a.iter().zip(&c).any(|(x, y)| x.at_ns != y.at_ns || x.host != y.host));
    }

    #[test]
    fn arrivals_advance_at_roughly_the_configured_rate() {
        let cfg = ChurnConfig { rate_per_s: 1_000.0, unsubscribe_fraction: 0.0, seed: 1 };
        let mut g = gen();
        let mut churn = PoissonChurn::new(cfg, 8, &[]);
        let ev = churn.schedule(&mut g, 2_000);
        assert!(ev.windows(2).all(|w| w[0].at_ns <= w[1].at_ns), "arrivals must be ordered");
        // 2000 arrivals at 1k/s ≈ 2 s of modelled time; the mean of
        // the exponential is tight at this sample count.
        let span_s = ev.last().unwrap().at_ns as f64 / 1e9;
        assert!((1.5..2.5).contains(&span_s), "span {span_s} s for 2000 @ 1k/s");
    }

    #[test]
    fn unsubscribes_only_name_active_filters() {
        let cfg = ChurnConfig { rate_per_s: 5_000.0, unsubscribe_fraction: 0.5, seed: 3 };
        let mut g = gen();
        let init = initial();
        let mut churn = PoissonChurn::new(cfg, 4, &init);
        // Replay the schedule against a mirror of the initial state;
        // every unsubscribe must find its filter.
        let mut state: Vec<Vec<Expr>> = init;
        for ev in churn.schedule(&mut g, 256) {
            match ev.op {
                ChurnOp::Subscribe(f) => state[ev.host].push(f),
                ChurnOp::Unsubscribe(f) => {
                    let at = state[ev.host]
                        .iter()
                        .rposition(|x| *x == f)
                        .expect("unsubscribe names an active filter");
                    state[ev.host].remove(at);
                }
            }
        }
        assert_eq!(state.iter().map(Vec::len).sum::<usize>(), churn.active_len());
    }
}
