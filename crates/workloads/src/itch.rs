//! A Nasdaq-like ITCH market-data feed.
//!
//! Stands in for the paper's proprietary Nasdaq trace of
//! 2017-08-30 (§VIII-E.1). Two workload shapes, matching the paper's:
//!
//! * **trace-like** — one Add-Order message per packet, symbol
//!   popularity Zipf-skewed, with the subscribed symbol (GOOGL)
//!   appearing in 0.5 % of messages;
//! * **synthetic batched** — multiple messages per packet with
//!   Zipf-distributed batch sizes, GOOGL in 5 % of messages.
//!
//! Messages are attribute maps ready for
//! `camus_dataplane::PacketBuilder` under [`camus_lang::spec::itch_spec`].

use crate::zipf::Zipf;
use camus_lang::value::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One Add-Order message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ItchOrder {
    pub stock: String,
    pub price: i64,
    pub shares: i64,
    /// `B`uy or `S`ell.
    pub side: char,
}

impl ItchOrder {
    /// Field/value pairs for the `itch_order` header of the built-in
    /// ITCH spec.
    pub fn fields(&self) -> Vec<(String, Value)> {
        vec![
            ("msg_type".into(), Value::Int('A' as i64)),
            ("stock".into(), Value::Str(self.stock.clone())),
            ("price".into(), Value::Int(self.price)),
            ("shares".into(), Value::Int(self.shares)),
            ("side".into(), Value::Int(self.side as i64)),
        ]
    }
}

/// Feed configuration.
#[derive(Debug, Clone)]
pub struct ItchFeedConfig {
    /// Size of the symbol universe (the paper uses 100 symbols for
    /// Table I).
    pub n_symbols: usize,
    /// Popularity skew across symbols.
    pub symbol_skew: f64,
    /// Fraction of messages about the watched symbol (`GOOGL`).
    pub match_rate: f64,
    /// Price range (integer ticks).
    pub max_price: i64,
    /// Zipf exponent for batch sizes; `None` = one message per packet.
    pub batch: Option<BatchConfig>,
    pub seed: u64,
}

/// Batched (multi-message) packets: Zipf-distributed sizes in
/// `1..=max`.
#[derive(Debug, Clone, Copy)]
pub struct BatchConfig {
    pub max_per_packet: usize,
    pub skew: f64,
}

impl ItchFeedConfig {
    /// The trace-like workload: 1 msg/packet, 0.5 % GOOGL.
    pub fn nasdaq_trace(seed: u64) -> Self {
        ItchFeedConfig {
            n_symbols: 100,
            symbol_skew: 1.0,
            match_rate: 0.005,
            max_price: 2_000,
            batch: None,
            seed,
        }
    }

    /// The synthetic workload: Zipf batches, 5 % GOOGL.
    pub fn synthetic(seed: u64) -> Self {
        ItchFeedConfig {
            n_symbols: 100,
            symbol_skew: 1.0,
            match_rate: 0.05,
            max_price: 2_000,
            batch: Some(BatchConfig { max_per_packet: 8, skew: 1.0 }),
            seed,
        }
    }
}

/// The watched symbol of the paper's experiments.
pub const WATCHED: &str = "GOOGL";

/// The feed generator: an infinite iterator of packets, each a vector
/// of orders.
pub struct ItchFeed {
    cfg: ItchFeedConfig,
    rng: StdRng,
    symbols: Vec<String>,
    symbol_dist: Zipf,
    batch_dist: Option<Zipf>,
}

impl ItchFeed {
    pub fn new(cfg: ItchFeedConfig) -> Self {
        assert!(cfg.n_symbols >= 2, "need the watched symbol plus others");
        // Symbol 0 is the watched symbol; the rest are synthetic.
        let symbols: Vec<String> = std::iter::once(WATCHED.to_string())
            .chain((1..cfg.n_symbols).map(|i| format!("S{i:04}")))
            .collect();
        ItchFeed {
            symbol_dist: Zipf::new(cfg.n_symbols - 1, cfg.symbol_skew),
            batch_dist: cfg.batch.map(|b| Zipf::new(b.max_per_packet, b.skew)),
            rng: StdRng::seed_from_u64(cfg.seed),
            symbols,
            cfg,
        }
    }

    /// Generate a single order. The watched symbol appears with
    /// exactly the configured `match_rate`.
    pub fn order(&mut self) -> ItchOrder {
        let stock = if self.rng.gen_bool(self.cfg.match_rate) {
            self.symbols[0].clone()
        } else {
            self.symbols[1 + self.symbol_dist.sample(&mut self.rng)].clone()
        };
        ItchOrder {
            stock,
            price: self.rng.gen_range(1..=self.cfg.max_price),
            shares: self.rng.gen_range(1..=1_000),
            side: if self.rng.gen_bool(0.5) { 'B' } else { 'S' },
        }
    }

    /// Generate the next packet's worth of orders.
    pub fn packet(&mut self) -> Vec<ItchOrder> {
        let n = match &self.batch_dist {
            Some(d) => d.sample(&mut self.rng) + 1,
            None => 1,
        };
        (0..n).map(|_| self.order()).collect()
    }

    /// Generate `n` packets.
    pub fn packets(&mut self, n: usize) -> Vec<Vec<ItchOrder>> {
        (0..n).map(|_| self.packet()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_workload_is_single_message() {
        let mut f = ItchFeed::new(ItchFeedConfig::nasdaq_trace(1));
        for _ in 0..100 {
            assert_eq!(f.packet().len(), 1);
        }
    }

    #[test]
    fn synthetic_workload_batches() {
        let mut f = ItchFeed::new(ItchFeedConfig::synthetic(1));
        let sizes: Vec<usize> = f.packets(500).iter().map(|p| p.len()).collect();
        assert!(sizes.iter().any(|&s| s > 1), "some batches exceed one message");
        assert!(sizes.iter().all(|&s| (1..=8).contains(&s)));
        // Zipf: singletons are the modal size.
        let mut counts = [0usize; 9];
        for &s in &sizes {
            counts[s] += 1;
        }
        assert!(counts[1] >= *counts[2..].iter().max().unwrap(), "{counts:?}");
    }

    #[test]
    fn match_rates_are_calibrated() {
        for (cfg, want, tol) in [
            (ItchFeedConfig::nasdaq_trace(7), 0.005, 0.004),
            (ItchFeedConfig::synthetic(7), 0.05, 0.02),
        ] {
            let mut f = ItchFeed::new(cfg);
            let mut total = 0usize;
            let mut watched = 0usize;
            for _ in 0..5_000 {
                for o in f.packet() {
                    total += 1;
                    if o.stock == WATCHED {
                        watched += 1;
                    }
                }
            }
            let rate = watched as f64 / total as f64;
            assert!((rate - want).abs() < tol, "rate {rate:.4} want {want}");
        }
    }

    #[test]
    fn orders_are_well_formed() {
        let mut f = ItchFeed::new(ItchFeedConfig::nasdaq_trace(3));
        for _ in 0..200 {
            let o = f.order();
            assert!(o.price >= 1 && o.price <= 2_000);
            assert!(o.shares >= 1 && o.shares <= 1_000);
            assert!(o.side == 'B' || o.side == 'S');
            assert!(o.stock.len() <= 8, "fits the 8-byte stock field");
            let fields = o.fields();
            assert_eq!(fields.len(), 5);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = ItchFeed::new(ItchFeedConfig::synthetic(5)).packets(50);
        let b = ItchFeed::new(ItchFeedConfig::synthetic(5)).packets(50);
        assert_eq!(a, b);
    }
}
