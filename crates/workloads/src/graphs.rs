//! AS-like topology generation for the Fig. 15 experiments.
//!
//! The paper routes on two SNAP graphs: **CAIDA** (AS-level, 2007:
//! 26 475 nodes, 106 762 edges) and **AS-733** (2000: 6 474 nodes,
//! 13 233 edges). The data sets are not vendored here, so we generate
//! graphs with the same node counts and closely matching edge counts
//! using preferential attachment (Barabási–Albert), which reproduces
//! the heavy-tailed degree distribution of AS graphs — the property
//! the MST vs MST++ comparison depends on.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An undirected edge list over nodes `0..n`.
#[derive(Debug, Clone)]
pub struct EdgeList {
    pub n: usize,
    pub edges: Vec<(usize, usize)>,
}

impl EdgeList {
    /// Degree of each node.
    pub fn degrees(&self) -> Vec<usize> {
        let mut d = vec![0usize; self.n];
        for &(u, v) in &self.edges {
            d[u] += 1;
            d[v] += 1;
        }
        d
    }
}

/// Barabási–Albert preferential attachment: each new node attaches `m`
/// edges to existing nodes with probability proportional to degree.
/// The result is connected and has `(n - m0) * m + m0 - 1` edges where
/// `m0 = m + 1` seed nodes start as a path.
pub fn preferential_attachment(n: usize, m: usize, seed: u64) -> EdgeList {
    assert!(m >= 1 && n > m + 1, "need n > m+1 seed nodes");
    let mut rng = StdRng::seed_from_u64(seed);
    let m0 = m + 1;
    let mut edges: Vec<(usize, usize)> = Vec::with_capacity((n - m0) * m + m0);
    // Repeated-endpoint list: sampling uniformly from it is sampling
    // proportional to degree.
    let mut endpoints: Vec<usize> = Vec::with_capacity(2 * ((n - m0) * m + m0));
    for i in 0..m0 - 1 {
        edges.push((i, i + 1));
        endpoints.push(i);
        endpoints.push(i + 1);
    }
    for v in m0..n {
        let mut targets: Vec<usize> = Vec::with_capacity(m);
        let mut guard = 0;
        while targets.len() < m {
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            if t != v && !targets.contains(&t) {
                targets.push(t);
            }
            guard += 1;
            if guard > 50 * m {
                // Degenerate corner (tiny graphs): fall back to uniform.
                let t = rng.gen_range(0..v);
                if !targets.contains(&t) {
                    targets.push(t);
                }
            }
        }
        for t in targets {
            edges.push((v, t));
            endpoints.push(v);
            endpoints.push(t);
        }
    }
    EdgeList { n, edges }
}

/// A CAIDA-2007-scale graph: 26 475 nodes, ~106 k edges (m = 4).
pub fn caida_like(seed: u64) -> EdgeList {
    preferential_attachment(26_475, 4, seed)
}

/// An AS-733-scale graph: 6 474 nodes, ~13 k edges (m = 2).
pub fn as733_like(seed: u64) -> EdgeList {
    preferential_attachment(6_474, 2, seed)
}

/// Scaled-down variants for tests and quick runs.
pub fn caida_like_scaled(scale: usize, seed: u64) -> EdgeList {
    preferential_attachment((26_475 / scale).max(10), 4, seed)
}

pub fn as733_like_scaled(scale: usize, seed: u64) -> EdgeList {
    preferential_attachment((6_474 / scale).max(10), 2, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_counts_match_targets() {
        let g = as733_like(1);
        assert_eq!(g.n, 6_474);
        // Paper's AS-733: 13 233 edges; BA with m=2 gives ~12 946.
        let e = g.edges.len() as f64;
        assert!((e - 13_233.0).abs() / 13_233.0 < 0.05, "edges {e}");
    }

    #[test]
    fn caida_scale_edges() {
        let g = caida_like_scaled(10, 1);
        // m=4: edges ≈ 4n.
        assert!((g.edges.len() as f64 / g.n as f64 - 4.0).abs() < 0.2);
    }

    #[test]
    fn degree_distribution_is_heavy_tailed() {
        let g = preferential_attachment(2_000, 2, 7);
        let mut d = g.degrees();
        d.sort_unstable_by(|a, b| b.cmp(a));
        // The hubs dominate: top node degree far above the median.
        assert!(d[0] > 8 * d[g.n / 2], "max {} median {}", d[0], d[g.n / 2]);
    }

    #[test]
    fn graph_is_connected() {
        let g = preferential_attachment(500, 3, 3);
        let mut adj = vec![Vec::new(); g.n];
        for &(u, v) in &g.edges {
            adj[u].push(v);
            adj[v].push(u);
        }
        let mut seen = vec![false; g.n];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1;
        while let Some(u) = stack.pop() {
            for &v in &adj[u] {
                if !seen[v] {
                    seen[v] = true;
                    count += 1;
                    stack.push(v);
                }
            }
        }
        assert_eq!(count, g.n);
    }

    #[test]
    fn no_self_loops() {
        let g = preferential_attachment(300, 2, 9);
        assert!(g.edges.iter().all(|&(u, v)| u != v));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = preferential_attachment(100, 2, 5).edges;
        let b = preferential_attachment(100, 2, 5).edges;
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "need n > m+1")]
    fn tiny_graph_panics() {
        preferential_attachment(3, 3, 0);
    }
}
