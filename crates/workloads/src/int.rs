//! In-band network telemetry (INT) report streams.
//!
//! The Fig. 9 experiment filters a 100 Gb/s stream of INT reports for
//! anomalous events — e.g. `switch_id == 2 and hop_latency > 100` —
//! where fewer than 1 % of reports match (§VIII-E.2). Hop latencies
//! follow a long-tailed distribution, approximated here as exponential
//! with a configurable anomaly tail.

use camus_lang::value::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One INT report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntReport {
    pub switch_id: i64,
    pub hop_latency: i64,
    pub q_occupancy: i64,
    pub flow_id: i64,
}

impl IntReport {
    /// Field/value pairs for the `int_report` header of
    /// [`camus_lang::spec::int_spec`].
    pub fn fields(&self) -> Vec<(String, Value)> {
        vec![
            ("switch_id".into(), Value::Int(self.switch_id)),
            ("hop_latency".into(), Value::Int(self.hop_latency)),
            ("q_occupancy".into(), Value::Int(self.q_occupancy)),
            ("flow_id".into(), Value::Int(self.flow_id)),
        ]
    }
}

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct IntFeedConfig {
    /// Switch-id universe (the paper's Table I workload uses 100).
    pub n_switches: usize,
    /// Mean hop latency (exponential body).
    pub mean_latency: f64,
    /// Fraction of anomalous reports (long-tail latencies).
    pub anomaly_rate: f64,
    /// Anomalous latencies are `anomaly_floor + Exp(mean)`.
    pub anomaly_floor: i64,
    pub n_flows: usize,
    pub seed: u64,
}

impl Default for IntFeedConfig {
    fn default() -> Self {
        IntFeedConfig {
            n_switches: 100,
            mean_latency: 20.0,
            anomaly_rate: 0.008, // <1 % of packets match (§VIII-E.2)
            anomaly_floor: 100,
            n_flows: 10_000,
            seed: 0x17,
        }
    }
}

/// The report generator.
pub struct IntFeed {
    cfg: IntFeedConfig,
    rng: StdRng,
}

impl IntFeed {
    pub fn new(cfg: IntFeedConfig) -> Self {
        assert!(cfg.n_switches > 0 && cfg.n_flows > 0);
        IntFeed { rng: StdRng::seed_from_u64(cfg.seed), cfg }
    }

    fn exp(&mut self, mean: f64) -> f64 {
        let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        -mean * u.ln()
    }

    pub fn report(&mut self) -> IntReport {
        let anomalous = self.rng.gen_bool(self.cfg.anomaly_rate);
        let hop_latency = if anomalous {
            self.cfg.anomaly_floor + 1 + self.exp(self.cfg.mean_latency * 4.0) as i64
        } else {
            // Body bounded below the anomaly floor.
            (self.exp(self.cfg.mean_latency) as i64).min(self.cfg.anomaly_floor - 1)
        };
        IntReport {
            switch_id: self.rng.gen_range(0..self.cfg.n_switches as i64),
            hop_latency,
            q_occupancy: self.exp(50.0) as i64,
            flow_id: self.rng.gen_range(0..self.cfg.n_flows as i64),
        }
    }

    pub fn reports(&mut self, n: usize) -> Vec<IntReport> {
        (0..n).map(|_| self.report()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anomaly_rate_is_calibrated() {
        let mut f = IntFeed::new(IntFeedConfig::default());
        let n = 50_000;
        let anomalous = f.reports(n).iter().filter(|r| r.hop_latency > 100).count();
        let rate = anomalous as f64 / n as f64;
        assert!(rate > 0.003 && rate < 0.015, "rate {rate}");
    }

    #[test]
    fn body_latencies_stay_below_floor() {
        let mut f = IntFeed::new(IntFeedConfig::default());
        for r in f.reports(5_000) {
            if r.hop_latency <= 100 {
                assert!(r.hop_latency >= 0);
            } else {
                assert!(r.hop_latency > 100);
            }
        }
    }

    #[test]
    fn switch_ids_cover_universe() {
        let mut f = IntFeed::new(IntFeedConfig { n_switches: 5, ..Default::default() });
        let ids: std::collections::HashSet<i64> =
            f.reports(1_000).iter().map(|r| r.switch_id).collect();
        assert_eq!(ids.len(), 5);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = IntFeed::new(IntFeedConfig::default()).reports(100);
        let b = IntFeed::new(IntFeedConfig::default()).reports(100);
        assert_eq!(a, b);
    }

    #[test]
    fn fields_match_int_spec() {
        let spec = camus_lang::spec::int_spec();
        let mut f = IntFeed::new(IntFeedConfig::default());
        let r = f.report();
        for (name, _) in r.fields() {
            assert!(spec.resolve(&name).is_some(), "{name} must exist in the spec");
        }
    }
}
