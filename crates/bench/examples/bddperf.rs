//! Quick scaling probe for BDD construction (not a Criterion bench).
use camus_bdd::BddBuilder;
use camus_lang::parser::parse_rule;

fn main() {
    // Identifier routing: single-field exact matches.
    for n in [1_000usize, 20_000, 100_000] {
        let t0 = std::time::Instant::now();
        let rules: Vec<_> = (0..n)
            .map(|i| parse_rule(&format!("id == {i}: fwd({})", (i % 32) + 1)).unwrap())
            .collect();
        let bdd = BddBuilder::from_rules(&rules).build();
        println!("eq n={n}: {:?}, nodes={}", t0.elapsed(), bdd.node_count());
    }
    // ITCH-style: symbol x price-threshold conjunctions.
    for n in [1_000usize, 10_000, 50_000] {
        let t0 = std::time::Instant::now();
        let rules: Vec<_> = (0..n)
            .map(|i| {
                parse_rule(&format!(
                    "stock == S{:04} and price > {}: fwd({})",
                    i % 100,
                    (i * 37) % 1000,
                    (i % 64) + 1
                ))
                .unwrap()
            })
            .collect();
        let bdd = BddBuilder::from_rules(&rules).build();
        println!("itch n={n}: {:?}, nodes={}", t0.elapsed(), bdd.node_count());
    }
    // INT-style: switch x latency-threshold, all to one collector.
    {
        let t0 = std::time::Instant::now();
        let rules: Vec<_> = (0..100)
            .flat_map(|s| {
                (0..1000).map(move |r| {
                    parse_rule(&format!("switch_id == {s} and hop_latency > {}: fwd(1)", 100 + r))
                        .unwrap()
                })
            })
            .collect();
        let bdd = BddBuilder::from_rules(&rules).build();
        println!("int n=100000: {:?}, nodes={}", t0.elapsed(), bdd.node_count());
    }
}
