//! Quick scaling probe for BDD construction and incremental
//! maintenance (not a Criterion bench).
use camus_bdd::{rule_digest, BddBuilder, IncrementalBdd, VarOrder};
use camus_lang::parser::parse_rule;

fn main() {
    // Identifier routing: single-field exact matches.
    for n in [1_000usize, 20_000, 100_000] {
        let t0 = std::time::Instant::now();
        let rules: Vec<_> = (0..n)
            .map(|i| parse_rule(&format!("id == {i}: fwd({})", (i % 32) + 1)).unwrap())
            .collect();
        let bdd = BddBuilder::from_rules(&rules).build();
        println!("eq n={n}: {:?}, nodes={}", t0.elapsed(), bdd.node_count());
    }
    // ITCH-style: symbol x price-threshold conjunctions.
    for n in [1_000usize, 10_000, 50_000] {
        let t0 = std::time::Instant::now();
        let rules: Vec<_> = (0..n)
            .map(|i| {
                parse_rule(&format!(
                    "stock == S{:04} and price > {}: fwd({})",
                    i % 100,
                    (i * 37) % 1000,
                    (i % 64) + 1
                ))
                .unwrap()
            })
            .collect();
        let bdd = BddBuilder::from_rules(&rules).build();
        println!("itch n={n}: {:?}, nodes={}", t0.elapsed(), bdd.node_count());
    }
    // INT-style: switch x latency-threshold, all to one collector.
    {
        let t0 = std::time::Instant::now();
        let rules: Vec<_> = (0..100)
            .flat_map(|s| {
                (0..1000).map(move |r| {
                    parse_rule(&format!("switch_id == {s} and hop_latency > {}: fwd(1)", 100 + r))
                        .unwrap()
                })
            })
            .collect();
        let bdd = BddBuilder::from_rules(&rules).build();
        println!("int n=100000: {:?}, nodes={}", t0.elapsed(), bdd.node_count());
    }
    // Incremental maintenance: per-op insert+remove against a live
    // store vs rebuilding it from scratch.
    for n in [10_000usize, 100_000] {
        let rules: Vec<_> = (0..n)
            .map(|i| parse_rule(&format!("id == {i}: fwd({})", (i % 32) + 1)).unwrap())
            .collect();
        let order = VarOrder::from_keys(["id", "price"]);
        let t0 = std::time::Instant::now();
        let mut inc = IncrementalBdd::from_rules(&rules, &order);
        let seed = t0.elapsed();
        let ops = 256usize;
        let t0 = std::time::Instant::now();
        for k in 0..ops {
            let fresh =
                parse_rule(&format!("id == {} and price > {}: fwd(1)", n + k, k % 997)).unwrap();
            let digest = inc.insert_rule(&fresh);
            assert!(inc.remove_by_digest(digest));
        }
        let per_op = t0.elapsed() / ops as u32;
        let victim = &rules[n / 2];
        assert!(inc.remove_by_digest(rule_digest(victim)));
        inc.insert_rule(victim);
        inc.force_gc();
        println!(
            "incremental n={n}: seed {seed:?}, per-op {per_op:?}, live={} allocated={}",
            inc.live_nodes(),
            inc.bdd().allocated_nodes()
        );
    }
}
