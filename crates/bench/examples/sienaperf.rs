//! Probe: compiler scaling on Siena-style workloads (Fig. 12/13 shape).
use camus_bench::experiments::fig12::siena_rules;

fn main() {
    for n in [1_000usize, 10_000, 100_000] {
        let rules = siena_rules(n, 3, 0xF12A);
        let t0 = std::time::Instant::now();
        let cfg = camus_core::compiler::CompilerConfig {
            multicast_limit: 1 << 20,
            validate_fields: false,
        };
        let c = camus_core::compiler::Compiler::new().with_config(cfg).compile(&rules).unwrap();
        println!(
            "n={n}: compile {:?}, nodes={}, terminals={}, entries={}, mcast={}",
            t0.elapsed(),
            c.bdd.node_count(),
            c.bdd.terminal_count(),
            c.pipeline.total_entries(),
            c.multicast.group_count()
        );
    }
}
