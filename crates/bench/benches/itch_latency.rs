//! Criterion bench behind Fig. 8: per-packet processing cost of the
//! dataplane model on the ITCH workloads — single-message packets and
//! batched packets that trigger recirculation.

use camus_apps::itch::ItchApp;
use camus_dataplane::SwitchConfig;
use camus_workloads::itch::{ItchFeed, ItchFeedConfig, WATCHED};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn bench_switch_processing(c: &mut Criterion) {
    let app = ItchApp::new();
    let mut g = c.benchmark_group("itch_switch");

    // Trace-like workload: one message per packet.
    {
        let mut sw =
            app.switch(&[ItchApp::subscription(WATCHED, 0, 1)], SwitchConfig::default()).unwrap();
        let mut feed = ItchFeed::new(ItchFeedConfig::nasdaq_trace(1));
        let packets: Vec<_> = (0..512).map(|i| app.packet(i, &feed.packet())).collect();
        g.throughput(Throughput::Elements(packets.len() as u64));
        let mut t = 0u64;
        g.bench_function("trace_1msg", |b| {
            b.iter(|| {
                let mut fwd = 0usize;
                for p in &packets {
                    t += 1;
                    fwd += sw.process(p, 0, t).ports.len();
                }
                fwd
            })
        });
    }

    // Batched workload: multiple messages, recirculation passes.
    {
        let mut sw =
            app.switch(&[ItchApp::subscription(WATCHED, 0, 1)], SwitchConfig::default()).unwrap();
        let mut feed = ItchFeed::new(ItchFeedConfig::synthetic(1));
        let packets: Vec<_> = (0..512).map(|i| app.packet(i, &feed.packet())).collect();
        let msgs: usize = packets.iter().map(|p| p.message_count(&app.spec)).sum();
        g.throughput(Throughput::Elements(msgs as u64));
        let mut t = 0u64;
        g.bench_function("batched_zipf", |b| {
            b.iter(|| {
                let mut fwd = 0usize;
                for p in &packets {
                    t += 1;
                    fwd += sw.process(p, 0, t).ports.len();
                }
                fwd
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_switch_processing
}
criterion_main!(benches);
