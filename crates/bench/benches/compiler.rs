//! Criterion benches for the compiler core: BDD construction and
//! full dynamic compilation (rules → pipeline) on the three workload
//! shapes of the evaluation, plus pipeline evaluation throughput.
//! Backs Figs. 12/14 with microbenchmark-grade numbers.

use camus_bdd::BddBuilder;
use camus_core::compiler::Compiler;
use camus_lang::ast::Rule;
use camus_lang::parser::parse_rule;
use camus_lang::value::Value;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn ident_rules(n: usize) -> Vec<Rule> {
    (0..n).map(|i| parse_rule(&format!("id == {i}: fwd({})", (i % 32) + 1)).unwrap()).collect()
}

fn itch_rules(n: usize) -> Vec<Rule> {
    (0..n)
        .map(|i| {
            parse_rule(&format!(
                "stock == S{:04} and price > {}: fwd({})",
                i % 100,
                (i * 37) % 1000,
                (i % 64) + 1
            ))
            .unwrap()
        })
        .collect()
}

fn bench_bdd_construction(c: &mut Criterion) {
    let mut g = c.benchmark_group("bdd_build");
    for n in [1_000usize, 10_000] {
        let ident = ident_rules(n);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("identifier_eq", n), &ident, |b, rules| {
            b.iter(|| BddBuilder::from_rules(rules).build().node_count())
        });
        let itch = itch_rules(n);
        g.bench_with_input(BenchmarkId::new("itch_conj", n), &itch, |b, rules| {
            b.iter(|| BddBuilder::from_rules(rules).build().node_count())
        });
    }
    g.finish();
}

fn bench_full_compile(c: &mut Criterion) {
    let mut g = c.benchmark_group("dynamic_compile");
    for n in [1_000usize, 10_000] {
        let rules = itch_rules(n);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("itch", n), &rules, |b, rules| {
            let compiler = Compiler::new();
            b.iter(|| compiler.compile(rules).unwrap().pipeline.total_entries())
        });
    }
    g.finish();
}

fn bench_pipeline_eval(c: &mut Criterion) {
    let rules = itch_rules(5_000);
    let compiled = Compiler::new().compile(&rules).unwrap();
    let mut g = c.benchmark_group("pipeline_eval");
    g.throughput(Throughput::Elements(1));
    g.bench_function("itch_5k_rules", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            let stock = format!("S{:04}", i % 128);
            let price = (i % 2_000) as i64;
            compiled.pipeline.evaluate(|op| match op.field_name() {
                "stock" => Some(Value::Str(stock.clone())),
                "price" => Some(Value::Int(price)),
                _ => None,
            })
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_bdd_construction, bench_full_compile, bench_pipeline_eval
}
criterion_main!(benches);
