//! Criterion bench behind Figs. 13/14: Algorithm 1 routing and whole-
//! network compilation on the paper's Fat Tree, for both policies and
//! with/without α-discretisation.

use camus_bench::experiments::fig14::recompile_time;
use camus_core::compiler::Compiler;
use camus_lang::ast::Expr;
use camus_routing::algorithm1::{route_hierarchical, Policy, RoutingConfig};
use camus_routing::compile::compile_network;
use camus_routing::topology::paper_fat_tree;
use camus_workloads::siena::{SienaConfig, SienaGenerator};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn subs(total: usize) -> Vec<Vec<Expr>> {
    let mut g = SienaGenerator::new(SienaConfig {
        predicates_per_filter: 3,
        n_attributes: 3,
        string_fraction: 0.25,
        anchor_universe: 400,
        anchor_skew: 0.5,
        seed: 0xBE7C,
        ..Default::default()
    });
    let mut subs: Vec<Vec<Expr>> = vec![Vec::new(); 16];
    for (i, f) in g.filters(total).into_iter().enumerate() {
        subs[i % 16].push(f);
    }
    subs
}

fn bench_routing(c: &mut Criterion) {
    let net = paper_fat_tree();
    let mut g = c.benchmark_group("algorithm1");
    for n in [256usize, 1_024] {
        let s = subs(n);
        for (name, policy) in [("mr", Policy::MemoryReduction), ("tr", Policy::TrafficReduction)] {
            g.bench_with_input(BenchmarkId::new(name, n), &s, |b, s| {
                b.iter(|| {
                    route_hierarchical(&net, s, RoutingConfig::new(policy)).switch_rules(0).len()
                })
            });
        }
    }
    g.finish();
}

fn bench_network_compile(c: &mut Criterion) {
    let net = paper_fat_tree();
    let mut g = c.benchmark_group("network_compile");
    g.sample_size(10);
    for n in [256usize, 1_024] {
        for alpha in [1i64, 10] {
            let s = subs(n);
            let routing = route_hierarchical(
                &net,
                &s,
                RoutingConfig::new(Policy::TrafficReduction).with_alpha(alpha),
            );
            g.bench_with_input(
                BenchmarkId::new(format!("tr_alpha{alpha}"), n),
                &routing,
                |b, routing| {
                    let compiler = Compiler::new();
                    b.iter(|| compile_network(routing, &compiler).unwrap().total_entries())
                },
            );
        }
    }
    g.finish();
}

fn bench_end_to_end_recompile(c: &mut Criterion) {
    // The Fig. 14 number as a single measured quantity.
    let mut g = c.benchmark_group("fig14_recompile");
    g.sample_size(10);
    g.bench_function("tr_512subs_3vars_exact", |b| {
        b.iter(|| recompile_time(512, 3, Policy::TrafficReduction, 1))
    });
    g.bench_function("tr_512subs_3vars_alpha10", |b| {
        b.iter(|| recompile_time(512, 3, Policy::TrafficReduction, 10))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_routing, bench_network_compile, bench_end_to_end_recompile
}
criterion_main!(benches);
