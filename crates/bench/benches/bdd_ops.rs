//! Criterion benches for incremental BDD maintenance: per-op
//! insert/remove against a live [`IncrementalBdd`], snapshot cost, and
//! the sharded cold build they amortise away. Backs the `scale`
//! experiment with microbenchmark-grade numbers.

use camus_bdd::{rule_digest, BddBuilder, IncrementalBdd, VarOrder};
use camus_lang::ast::Rule;
use camus_lang::parser::parse_rule;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn ident_rules(n: usize) -> Vec<Rule> {
    (0..n)
        .map(|i| {
            let text = if i.is_multiple_of(7) {
                format!("id == {i} and price > {}: fwd({})", (i * 37) % 1_000, (i % 32) + 1)
            } else {
                format!("id == {i}: fwd({})", (i % 32) + 1)
            };
            parse_rule(&text).unwrap()
        })
        .collect()
}

fn order() -> VarOrder {
    VarOrder::from_keys(["id", "price"])
}

fn bench_insert_remove(c: &mut Criterion) {
    let mut g = c.benchmark_group("bdd_incremental_op");
    g.throughput(Throughput::Elements(1));
    for n in [10_000usize, 100_000] {
        let rules = ident_rules(n);
        let mut inc = IncrementalBdd::from_rules(&rules, &order());
        g.bench_function(BenchmarkId::new("insert_remove", n), |b| {
            let mut k = 0usize;
            b.iter(|| {
                let fresh = parse_rule(&format!(
                    "id == {} and price > {}: fwd({})",
                    n + k,
                    k % 997,
                    (k % 31) + 1
                ))
                .unwrap();
                k += 1;
                let digest = inc.insert_rule(&fresh);
                assert!(inc.remove_by_digest(digest));
            })
        });
        g.bench_function(BenchmarkId::new("remove_reinsert_existing", n), |b| {
            let mut k = 0usize;
            b.iter(|| {
                let victim = &rules[(k * 131) % rules.len()];
                k += 1;
                assert!(inc.remove_by_digest(rule_digest(victim)));
                inc.insert_rule(victim);
            })
        });
    }
    g.finish();
}

fn bench_snapshot(c: &mut Criterion) {
    let mut g = c.benchmark_group("bdd_snapshot");
    let n = 10_000usize;
    let rules = ident_rules(n);
    let mut inc = IncrementalBdd::from_rules(&rules, &order());
    inc.force_gc();
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function(BenchmarkId::new("compacted", n), |b| b.iter(|| inc.snapshot().node_count()));
    g.finish();
}

fn bench_cold_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("bdd_cold_build");
    for n in [10_000usize, 100_000] {
        let rules = ident_rules(n);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("sharded", n), &rules, |b, rules| {
            b.iter(|| BddBuilder::from_rules(rules).with_order(order()).build().node_count())
        });
        g.bench_with_input(BenchmarkId::new("incremental_seed", n), &rules, |b, rules| {
            b.iter(|| IncrementalBdd::from_rules(rules, &order()).rule_count())
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_insert_remove, bench_snapshot, bench_cold_build
}
criterion_main!(benches);
