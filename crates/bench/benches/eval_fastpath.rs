//! Criterion microbench for the compiled fast path: single-message
//! evaluation (interpreted `Pipeline::evaluate` vs lowered
//! `CompiledPipeline::eval`) across filter counts, evaluator scaling
//! with pipeline depth, and whole-switch batched processing
//! (`Switch::process_batch`) on the INT workload.

use camus_core::compiled::CompiledPipeline;
use camus_core::compiler::Compiler;
use camus_core::pipeline::{
    LeafTable, MatchKind, MatchSpec, Pipeline, StageTable, TableEntry, STATE_INIT,
};
use camus_core::statics::compile_static;
use camus_dataplane::packet::{Packet, PacketBuilder};
use camus_dataplane::switch::{Switch, SwitchConfig};
use camus_dataplane::telemetry::SwitchTelemetry;
use camus_lang::ast::{Action, Operand, Port, Rule};
use camus_lang::parser::parse_expr;
use camus_lang::spec::int_spec;
use camus_lang::value::Value;
use camus_telemetry::metrics::{MetricsRegistry, SampleRate};
use camus_workloads::int::{IntFeed, IntFeedConfig};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::collections::HashMap;

fn rules(n: usize) -> Vec<Rule> {
    (0..n)
        .map(|i| Rule {
            filter: parse_expr(&format!(
                "switch_id == {} and hop_latency > {}",
                i % 100,
                100 + (i / 100) % 1000
            ))
            .unwrap(),
            action: Action::Forward(vec![(i % 64) as u16 + 1]),
        })
        .collect()
}

fn probes(compiled: &CompiledPipeline, n: usize) -> Vec<Vec<Option<Value>>> {
    let mut feed = IntFeed::new(IntFeedConfig::default());
    feed.reports(n)
        .iter()
        .map(|r| {
            let fields: HashMap<String, Value> = r.fields().into_iter().collect();
            compiled.slots().iter().map(|op| fields.get(&op.key()).cloned()).collect()
        })
        .collect()
}

fn bench_eval(c: &mut Criterion) {
    let mut g = c.benchmark_group("eval_fastpath");
    for n in [10usize, 100, 1_000] {
        let pipeline = Compiler::new().compile(&rules(n)).unwrap().pipeline;
        let compiled = CompiledPipeline::lower(&pipeline);
        let vals = probes(&compiled, 256);
        g.throughput(Throughput::Elements(vals.len() as u64));
        g.bench_with_input(BenchmarkId::new("interpreted", n), &pipeline, |b, p| {
            b.iter(|| {
                vals.iter()
                    .map(|v| {
                        p.evaluate(|op| {
                            let i = compiled.slots().iter().position(|o| o == op)?;
                            v[i].clone()
                        })
                        .ports()
                        .map_or(0, <[u16]>::len)
                    })
                    .sum::<usize>()
            })
        });
        g.bench_with_input(BenchmarkId::new("compiled", n), &compiled, |b, cp| {
            b.iter(|| vals.iter().map(|v| cp.eval(v).0 as usize).sum::<usize>())
        });
    }
    g.finish();
}

fn bench_depth(c: &mut Criterion) {
    let mut g = c.benchmark_group("eval_depth");
    for depth in [1usize, 2, 4, 8] {
        let stages = (0..depth)
            .map(|i| {
                StageTable::new(
                    Operand::Field("hop_latency".to_string()),
                    MatchKind::Range,
                    vec![
                        TableEntry {
                            state: i as u32,
                            spec: MatchSpec::IntRange(0, 1 << 20),
                            next: i as u32 + 1,
                        },
                        TableEntry { state: i as u32, spec: MatchSpec::Any, next: 0 },
                    ],
                )
            })
            .collect();
        let mut actions = HashMap::new();
        actions.insert(depth as u32, (Action::Forward(vec![1]), None));
        let pipeline = Pipeline {
            stages,
            leaf: LeafTable { actions, default: Action::Drop },
            initial: STATE_INIT,
        };
        let compiled = CompiledPipeline::lower(&pipeline);
        let vals: Vec<Vec<Option<Value>>> =
            (0..256).map(|i| vec![Some(Value::Int(i as i64))]).collect();
        g.throughput(Throughput::Elements(vals.len() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(depth), &compiled, |b, cp| {
            b.iter(|| vals.iter().map(|v| cp.eval(v).0 as usize).sum::<usize>())
        });
    }
    g.finish();
}

fn bench_switch_batch(c: &mut Criterion) {
    let spec = int_spec();
    let statics = compile_static(&spec).unwrap();
    let mut feed = IntFeed::new(IntFeedConfig::default());
    let batch: Vec<(Packet, Port)> = feed
        .reports(256)
        .iter()
        .map(|r| {
            let mut b = PacketBuilder::new(&spec);
            for (k, v) in r.fields() {
                b = b.stack_field("int_report", &k, v);
            }
            (b.build(), 0)
        })
        .collect();
    let mut g = c.benchmark_group("switch_batch");
    g.throughput(Throughput::Elements(batch.len() as u64));
    for n in [100usize, 1_000] {
        let compiled = Compiler::new().with_static(statics.clone()).compile(&rules(n)).unwrap();
        let mut sw = Switch::new(&statics, compiled.pipeline, SwitchConfig::default());
        g.bench_with_input(BenchmarkId::from_parameter(n), &batch, |b, batch| {
            b.iter(|| sw.process_batch(batch, 0).len())
        });
    }
    g.finish();
}

/// Guard: attaching *disabled* telemetry (sampling rate 0) must keep
/// whole-switch batched throughput within 3% of the bare PR-3
/// `rust-compiled` lane. Interleaved best-of-N timing so scheduler
/// noise hits both lanes alike; the assert fails the bench run.
fn bench_telemetry_overhead(c: &mut Criterion) {
    let _ = c;
    let spec = int_spec();
    let statics = compile_static(&spec).unwrap();
    let mut feed = IntFeed::new(IntFeedConfig::default());
    let batch: Vec<(Packet, Port)> = feed
        .reports(256)
        .iter()
        .map(|r| {
            let mut b = PacketBuilder::new(&spec);
            for (k, v) in r.fields() {
                b = b.stack_field("int_report", &k, v);
            }
            (b.build(), 0)
        })
        .collect();
    let compiled = Compiler::new().with_static(statics.clone()).compile(&rules(1_000)).unwrap();
    let mut bare = Switch::new(&statics, compiled.pipeline.clone(), SwitchConfig::default());
    let mut instrumented = Switch::new(&statics, compiled.pipeline, SwitchConfig::default());
    let registry = MetricsRegistry::new();
    instrumented.attach_telemetry(SwitchTelemetry::new(&registry, SampleRate::DISABLED));

    let time_batches = |sw: &mut Switch, rounds: usize| {
        let t0 = std::time::Instant::now();
        for _ in 0..rounds {
            black_box(sw.process_batch(&batch, 0).len());
        }
        t0.elapsed()
    };
    // Warm both switches (scratch sizing, allocator reuse).
    time_batches(&mut bare, 8);
    time_batches(&mut instrumented, 8);
    let (mut best_bare, mut best_dis) = (std::time::Duration::MAX, std::time::Duration::MAX);
    for _ in 0..9 {
        best_bare = best_bare.min(time_batches(&mut bare, 16));
        best_dis = best_dis.min(time_batches(&mut instrumented, 16));
    }
    let overhead = best_dis.as_secs_f64() / best_bare.as_secs_f64() - 1.0;
    println!(
        "telemetry_overhead/disabled: bare {:?} disabled {:?} overhead {:.2}%",
        best_bare,
        best_dis,
        overhead * 100.0
    );
    assert!(
        overhead <= 0.03,
        "disabled telemetry costs {:.2}% (> 3%) over the rust-compiled lane",
        overhead * 100.0
    );
}

criterion_group!(benches, bench_eval, bench_depth, bench_switch_batch, bench_telemetry_overhead);
criterion_main!(benches);
