//! Criterion bench behind Fig. 9: the *measured* software filtering
//! series — the real linear-scan engine at growing filter counts —
//! against the compiled pipeline evaluating the same workload. The
//! software engine degrades with filter count; the pipeline's lookup
//! cost is bounded by its stage count.

use camus_baselines::linear::LinearFilter;
use camus_core::compiler::Compiler;
use camus_lang::ast::{Expr, Rule};
use camus_lang::parser::parse_expr;
use camus_lang::value::Value;
use camus_workloads::int::{IntFeed, IntFeedConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::collections::HashMap;

fn filters(n: usize) -> Vec<Expr> {
    (0..n)
        .map(|i| {
            parse_expr(&format!(
                "switch_id == {} and hop_latency > {}",
                i % 100,
                100 + (i / 100) % 1000
            ))
            .unwrap()
        })
        .collect()
}

fn packets(n: usize) -> Vec<HashMap<String, Value>> {
    let mut feed = IntFeed::new(IntFeedConfig::default());
    feed.reports(n).iter().map(|r| r.fields().into_iter().collect()).collect()
}

fn bench_software_vs_pipeline(c: &mut Criterion) {
    let pkts = packets(256);
    let mut g = c.benchmark_group("int_filtering");
    g.throughput(Throughput::Elements(pkts.len() as u64));
    for n in [10usize, 100, 1_000, 10_000] {
        let lf = LinearFilter::new(&filters(n));
        g.bench_with_input(BenchmarkId::new("software_linear", n), &lf, |b, lf| {
            b.iter(|| pkts.iter().map(|p| usize::from(lf.matches_any(p))).sum::<usize>())
        });
        let rules: Vec<Rule> = filters(n)
            .into_iter()
            .map(|f| Rule { filter: f, action: camus_lang::ast::Action::Forward(vec![1]) })
            .collect();
        let compiled = Compiler::new().compile(&rules).unwrap();
        g.bench_with_input(BenchmarkId::new("camus_pipeline", n), &compiled, |b, compiled| {
            b.iter(|| {
                pkts.iter()
                    .map(|p| {
                        let a = compiled.pipeline.evaluate(|op| p.get(&op.key()).cloned());
                        usize::from(a.ports().is_some())
                    })
                    .sum::<usize>()
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_software_vs_pipeline
}
criterion_main!(benches);
