//! # camus-bench — the evaluation harness
//!
//! One module per table/figure of the paper's evaluation (§VIII); the
//! `experiments` binary runs them and prints the same rows/series the
//! paper reports, plus CSV output under `results/`. Shape — who wins,
//! by roughly what factor, where crossovers fall — is the reproduction
//! target; absolute numbers come from the simulator and cost models
//! documented in DESIGN.md, not the authors' Tofino testbed.
//!
//! | module | artifact |
//! |---|---|
//! | [`experiments::fig8`]  | Fig. 8 — ITCH end-to-end latency CDFs |
//! | [`experiments::fig9`]  | Fig. 9 — INT filtering throughput vs #filters |
//! | [`experiments::fig11`] | Fig. 11 — hICN uncached-content latency |
//! | [`experiments::fig12`] | Fig. 12 — compiler memory vs the big table |
//! | [`experiments::tab1`]  | Table I — switch resources for three apps |
//! | [`experiments::fig13`] | Fig. 13 — Fat-Tree memory/traffic, MR vs TR, α |
//! | [`experiments::fig14`] | Fig. 14 — network recompile times |
//! | [`experiments::fig15`] | Fig. 15 — MST vs MST++ FIB entries |
//! | [`experiments::churn`] | Subscription churn — incremental recompile |
//! | [`experiments::scale`] | 10k→1M subscription compiler-scaling ladder |
//! | [`experiments::faults`] | Fault injection — repair latency & blackout |

pub mod experiments;
pub mod mem;
pub mod output;
