//! Heap accounting for the scale experiments.
//!
//! [`CountingAlloc`] wraps the system allocator and keeps a global
//! current/high-water byte count. Binaries that want the numbers (the
//! `experiments` runner) install it as their `#[global_allocator]`;
//! code that merely *reads* the counters works either way — without
//! the hook the counters simply stay at zero, so reports degrade to
//! "not measured" instead of breaking.
//!
//! Resident peak comes from the kernel (`VmHWM` in
//! `/proc/self/status`) and needs no hook at all.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

static CURRENT: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

/// A system-allocator wrapper that tracks live and high-water bytes.
pub struct CountingAlloc;

fn on_alloc(size: usize) {
    let now = CURRENT.fetch_add(size, Ordering::Relaxed) + size;
    PEAK.fetch_max(now, Ordering::Relaxed);
}

fn on_dealloc(size: usize) {
    CURRENT.fetch_sub(size, Ordering::Relaxed);
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        on_dealloc(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            on_dealloc(layout.size());
            on_alloc(new_size);
        }
        p
    }
}

/// Live heap bytes right now (zero when no hook is installed).
pub fn current_bytes() -> usize {
    CURRENT.load(Ordering::Relaxed)
}

/// High-water heap bytes since the last [`reset_peak`].
pub fn peak_bytes() -> usize {
    PEAK.load(Ordering::Relaxed)
}

/// Restart the high-water mark from the current live count, so a
/// per-experiment peak is not polluted by earlier allocations.
pub fn reset_peak() {
    PEAK.store(CURRENT.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// Peak resident set size of this process in bytes (`VmHWM`), or zero
/// when `/proc` is unavailable. Monotone over the process lifetime —
/// unlike the heap counters it cannot be reset per experiment.
pub fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_rss_reads_proc_when_present() {
        // On Linux this is the live process's high-water mark; on other
        // platforms the reader degrades to zero rather than erroring.
        let rss = peak_rss_bytes();
        if std::path::Path::new("/proc/self/status").exists() {
            assert!(rss > 0, "a running process has nonzero VmHWM");
        }
    }

    #[test]
    fn counters_monotone_and_resettable() {
        // The test binary does not install the hook, so the counters
        // are driven by hand here.
        reset_peak();
        let before = peak_bytes();
        on_alloc(1 << 20);
        assert!(peak_bytes() >= before + (1 << 20));
        on_dealloc(1 << 20);
        reset_peak();
        assert_eq!(peak_bytes(), current_bytes());
    }
}
