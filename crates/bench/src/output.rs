//! Result output: aligned console tables plus CSV files under
//! `results/` for EXPERIMENTS.md.

use std::fs;
use std::io::Write as _;
use std::path::Path;

/// A simple result table: header row plus data rows.
#[derive(Debug, Clone, Default)]
pub struct Table {
    pub title: String,
    pub header: Vec<String>,
    pub rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(title: &str, header: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row<I: IntoIterator<Item = String>>(&mut self, cells: I) {
        let cells: Vec<String> = cells.into_iter().collect();
        assert_eq!(cells.len(), self.header.len(), "row arity");
        self.rows.push(cells);
    }

    /// Render as an aligned console table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = format!("== {} ==\n", self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells.iter().zip(widths).map(|(c, w)| format!("{c:>w$}")).collect::<Vec<_>>().join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Write as CSV to `results/<name>.csv`.
    pub fn write_csv(&self, name: &str) -> std::io::Result<()> {
        let dir = Path::new("results");
        fs::create_dir_all(dir)?;
        let mut f = fs::File::create(dir.join(format!("{name}.csv")))?;
        writeln!(f, "{}", self.header.join(","))?;
        for row in &self.rows {
            writeln!(f, "{}", row.join(","))?;
        }
        Ok(())
    }

    /// Print and persist.
    pub fn emit(&self, name: &str) {
        println!("{}", self.render());
        if let Err(e) = self.write_csv(name) {
            eprintln!("warning: could not write results/{name}.csv: {e}");
        }
    }
}

/// Merge one top-level `"key": value` entry into `BENCH_throughput.json`
/// without clobbering the other experiments' entries (the vendored
/// `serde_json` has no serializer, so this splices text). `value` must
/// already be valid JSON.
pub fn merge_bench_json(key: &str, value: &str) {
    let path = "BENCH_throughput.json";
    let current = fs::read_to_string(path).unwrap_or_default();
    if let Err(e) = fs::write(path, splice_json_key(&current, key, value)) {
        eprintln!("warning: could not write {path}: {e}");
    }
}

/// Replace or append a top-level key in a JSON object document.
fn splice_json_key(doc: &str, key: &str, value: &str) -> String {
    let trimmed = doc.trim();
    if !trimmed.starts_with('{') || !trimmed.ends_with('}') {
        return format!("{{\n  \"{key}\": {value}\n}}\n");
    }
    let mut body = trimmed[1..trimmed.len() - 1].trim_end().to_string();
    let needle = format!("\"{key}\":");
    if let Some(start) = body.find(&needle) {
        // Scan the entry's value, balancing nesting, to the top-level
        // comma that ends it (or the end of the body).
        let bytes = body.as_bytes();
        let mut depth = 0i32;
        let mut in_str = false;
        let mut end = body.len();
        for i in start + needle.len()..bytes.len() {
            match bytes[i] {
                b'"' if i == 0 || bytes[i - 1] != b'\\' => in_str = !in_str,
                b'{' | b'[' if !in_str => depth += 1,
                b'}' | b']' if !in_str => depth -= 1,
                b',' if !in_str && depth == 0 => {
                    end = i + 1;
                    break;
                }
                _ => {}
            }
        }
        // A last entry leaves no trailing comma; eat the one before it.
        let from = if end == body.len() { body[..start].rfind(',').unwrap_or(0) } else { start };
        body.replace_range(from..end, "");
    }
    let body = body.trim_end().trim_end_matches(',').to_string();
    if body.trim().is_empty() {
        format!("{{\n  \"{key}\": {value}\n}}\n")
    } else {
        format!("{{{body},\n  \"{key}\": {value}\n}}\n")
    }
}

/// Format a nanosecond latency human-readably.
pub fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Format packets/second as Mpps.
pub fn fmt_mpps(pps: f64) -> String {
    format!("{:.2}Mpps", pps / 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["a", "long_header"]);
        t.row(["1".into(), "2".into()]);
        t.row(["333".into(), "4".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("long_header"));
        assert_eq!(s.lines().count(), 5);
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(["only-one".into()]);
    }

    #[test]
    fn splice_appends_replaces_and_creates() {
        let fresh = splice_json_key("", "telemetry", "{\"x\": 1}");
        assert_eq!(fresh, "{\n  \"telemetry\": {\"x\": 1}\n}\n");
        // Appending keeps existing entries (including nested commas).
        let doc = "{\n  \"a\": {\"x\": 1, \"y\": [2, 3]},\n  \"b\": 4\n}\n";
        let appended = splice_json_key(doc, "telemetry", "5");
        assert!(appended.contains("\"a\": {\"x\": 1, \"y\": [2, 3]}"));
        assert!(appended.contains("\"b\": 4"));
        assert!(appended.ends_with("\"telemetry\": 5\n}\n"));
        // Re-merging replaces the old value, middle or last position.
        let replaced = splice_json_key(&appended, "telemetry", "6");
        assert!(!replaced.contains("\"telemetry\": 5"));
        assert!(replaced.ends_with("\"telemetry\": 6\n}\n"));
        let mid = splice_json_key(&replaced, "a", "0");
        assert!(mid.contains("\"b\": 4") && mid.contains("\"telemetry\": 6"));
        assert!(!mid.contains("\"y\""));
        assert!(mid.ends_with("\"a\": 0\n}\n"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_ns(500), "500ns");
        assert_eq!(fmt_ns(1_500), "1.5us");
        assert_eq!(fmt_ns(2_500_000), "2.5ms");
        assert_eq!(fmt_mpps(16_000_000.0), "16.00Mpps");
    }
}
