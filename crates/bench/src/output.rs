//! Result output: aligned console tables plus CSV files under
//! `results/` for EXPERIMENTS.md.

use std::fs;
use std::io::Write as _;
use std::path::Path;

/// A simple result table: header row plus data rows.
#[derive(Debug, Clone, Default)]
pub struct Table {
    pub title: String,
    pub header: Vec<String>,
    pub rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(title: &str, header: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row<I: IntoIterator<Item = String>>(&mut self, cells: I) {
        let cells: Vec<String> = cells.into_iter().collect();
        assert_eq!(cells.len(), self.header.len(), "row arity");
        self.rows.push(cells);
    }

    /// Render as an aligned console table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = format!("== {} ==\n", self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells.iter().zip(widths).map(|(c, w)| format!("{c:>w$}")).collect::<Vec<_>>().join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Write as CSV to `results/<name>.csv`.
    pub fn write_csv(&self, name: &str) -> std::io::Result<()> {
        let dir = Path::new("results");
        fs::create_dir_all(dir)?;
        let mut f = fs::File::create(dir.join(format!("{name}.csv")))?;
        writeln!(f, "{}", self.header.join(","))?;
        for row in &self.rows {
            writeln!(f, "{}", row.join(","))?;
        }
        Ok(())
    }

    /// Print and persist.
    pub fn emit(&self, name: &str) {
        println!("{}", self.render());
        if let Err(e) = self.write_csv(name) {
            eprintln!("warning: could not write results/{name}.csv: {e}");
        }
    }
}

/// Format a nanosecond latency human-readably.
pub fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Format packets/second as Mpps.
pub fn fmt_mpps(pps: f64) -> String {
    format!("{:.2}Mpps", pps / 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["a", "long_header"]);
        t.row(["1".into(), "2".into()]);
        t.row(["333".into(), "4".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("long_header"));
        assert_eq!(s.lines().count(), 5);
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(["only-one".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_ns(500), "500ns");
        assert_eq!(fmt_ns(1_500), "1.5us");
        assert_eq!(fmt_ns(2_500_000), "2.5ms");
        assert_eq!(fmt_mpps(16_000_000.0), "16.00Mpps");
    }
}
