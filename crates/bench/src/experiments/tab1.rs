//! Table I — switch resource usage for three applications
//! (§VIII-F.2): ITCH (100 symbols × price thresholds × 200 hosts), INT
//! (100 switches × 1000 hop-latency ranges), and hICN (many unique
//! content identifiers; the paper uses 1 M).
//!
//! The claim to reproduce: all three applications fit comfortably
//! within a Tofino-class switch's budget, and only ITCH uses multicast
//! groups (overlapping per-host filters).

use super::Scale;
use crate::output::Table;
use camus_apps::itch::ItchApp;
use camus_apps::telemetry::IntApp;
use camus_core::compiler::Compiler;
use camus_core::resources::ResourceReport;
use camus_core::statics::compile_static;
use camus_lang::ast::Rule;
use camus_lang::parser::parse_rule;

fn itch_report(hosts: u16) -> (usize, ResourceReport) {
    let app = ItchApp::new();
    // stock == S ∧ price > P: fwd(H) with overlapping host interests:
    // several hosts per symbol, distinct thresholds.
    let mut rules = Vec::new();
    for s in 0..100usize {
        let stock = if s == 0 { "GOOGL".to_string() } else { format!("S{s:04}") };
        for h in 0..4u16 {
            let host = (s as u16 * 7 + h * 53) % hosts + 1;
            let price = (s * 13 + h as usize * 251) % 1000;
            rules.push(ItchApp::subscription(&stock, price as i64, host));
        }
    }
    let compiled = Compiler::new().with_static(app.statics).compile(&rules).unwrap();
    (rules.len(), compiled.report)
}

fn int_report(switches: usize, ranges: usize) -> (usize, ResourceReport) {
    let app = IntApp::new();
    let rules = IntApp::table1_rules(switches, ranges, 1);
    let compiled = Compiler::new().with_static(app.statics).compile(&rules).unwrap();
    (rules.len(), compiled.report)
}

fn hicn_report(ids: usize) -> (usize, ResourceReport) {
    let spec = camus_apps::hicn::hicn_spec();
    let statics = compile_static(&spec).unwrap();
    let mut rules: Vec<Rule> = (0..ids)
        .map(|i| parse_rule(&format!("content_id == {i}: fwd({})", (i % 31) + 1)).unwrap())
        .collect();
    rules.push(parse_rule("true: fwd(32)").unwrap());
    let compiled = Compiler::new().with_static(statics).compile(&rules).unwrap();
    (rules.len(), compiled.report)
}

pub fn run(scale: Scale) -> Vec<Table> {
    let mut t = Table::new(
        "Table I: switch resource usage for three applications",
        &["app", "filters", "tables", "entries", "sram KB", "tcam KB", "mcast", "state bits"],
    );
    let hicn_ids = scale.pick(50_000, 1_000_000);
    let (int_sw, int_rg) = scale.pick((100, 200), (100, 1_000));
    for (name, (filters, r)) in [
        ("ITCH", itch_report(200)),
        ("INT", int_report(int_sw, int_rg)),
        ("hICN", hicn_report(hicn_ids)),
    ] {
        t.row([
            name.to_string(),
            filters.to_string(),
            r.tables.to_string(),
            r.total_entries.to_string(),
            format!("{:.1}", r.sram_bits as f64 / 8.0 / 1024.0),
            format!("{:.1}", r.tcam_bits as f64 / 8.0 / 1024.0),
            r.multicast_groups.to_string(),
            r.state_bits.to_string(),
        ]);
    }
    t.emit("tab1");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn itch_uses_multicast_groups_heavily() {
        // "ITCH is the only application that makes heavy use of
        // multicast groups, because many end-hosts have overlapping
        // filters."
        let (_, itch) = itch_report(200);
        let (_, int) = int_report(20, 50);
        let (_, hicn) = hicn_report(2_000);
        // INT: one collector, no overlap. hICN: only the hot/default
        // overlap, bounded by port diversity. ITCH: per-host filter
        // overlap -> many groups.
        assert_eq!(int.multicast_groups, 0);
        assert!(hicn.multicast_groups <= 32, "{}", hicn.multicast_groups);
        assert!(
            itch.multicast_groups > 2 * hicn.multicast_groups,
            "itch {} vs hicn {}",
            itch.multicast_groups,
            hicn.multicast_groups
        );
    }

    #[test]
    fn applications_fit_switch_budgets() {
        // Tofino-class budgets: tens of MB SRAM, a few MB TCAM.
        for (name, (_, r)) in [
            ("itch", itch_report(200)),
            ("int", int_report(50, 100)),
            ("hicn", hicn_report(10_000)),
        ] {
            assert!(r.sram_bits / 8 < 50 << 20, "{name} SRAM {}B", r.sram_bits / 8);
            assert!(r.tcam_bits / 8 < 10 << 20, "{name} TCAM {}B", r.tcam_bits / 8);
        }
    }

    #[test]
    fn int_collapses_same_collector_rules() {
        // 100 x 200 rules to one collector compress massively.
        let (n, r) = int_report(100, 200);
        assert_eq!(n, 20_000);
        assert!(r.total_entries < 2_000, "entries {}", r.total_entries);
    }

    #[test]
    fn hicn_identifiers_stay_linear_sram() {
        let (n, r) = hicn_report(20_000);
        assert_eq!(r.tcam_entries, 0);
        assert!(r.total_entries <= 2 * n + 16, "{} vs {n}", r.total_entries);
    }
}
