//! Fig. 12 — compiler BDD memory efficiency vs the naive one-big-table
//! baseline (§VIII-F.2).
//!
//! Workloads come from the Siena-style generator. Two sweeps, matching
//! the paper's two panels:
//!
//! * **(a)** total table entries vs the number of subscriptions,
//! * **(b)** total table entries vs the selectiveness (predicates per
//!   filter) at a fixed subscription count — more selective filters
//!   need *fewer* entries because they produce fewer BDD paths.

use super::Scale;
use crate::output::Table;
use camus_core::bigtable::big_table_entries;
use camus_core::compiler::Compiler;
use camus_lang::ast::{Action, Rule};
use camus_workloads::siena::{SienaConfig, SienaGenerator};

const BIGTABLE_CAP: u64 = 1_000_000;

/// Generate `n` subscription rules with `k` predicates each; ports
/// cycle so terminals stay diverse (the hard case for the compiler).
pub fn siena_rules(n: usize, k: usize, seed: u64) -> Vec<Rule> {
    let mut generator = SienaGenerator::new(SienaConfig {
        predicates_per_filter: k,
        // Filters live on a universe of exactly k variables (the
        // Fig. 14 notion of "variables") with Zipf-hot anchors:
        // "workloads with similar queries" are precisely what blows up
        // the naive big table while the BDD keeps sharing structure.
        n_attributes: k.max(2),
        anchor_universe: (n / 10).max(100),
        anchor_skew: 0.6,
        seed,
        ..Default::default()
    });
    generator
        .filters(n)
        .into_iter()
        .enumerate()
        .map(|(i, filter)| Rule { filter, action: Action::Forward(vec![(i % 48) as u16 + 1]) })
        .collect()
}

fn camus_entries(rules: &[Rule]) -> usize {
    Compiler::new().compile(rules).expect("siena rules compile").pipeline.total_entries()
}

pub fn run(scale: Scale) -> Vec<Table> {
    // Panel (a): sweep subscriptions at 3 predicates per filter.
    let counts: &[usize] = match scale {
        Scale::Quick => &[10, 100, 1_000],
        Scale::Full => &[10, 100, 1_000, 10_000, 30_000],
    };
    let mut a = Table::new(
        "Fig. 12a: table entries vs #subscriptions (3 predicates/filter)",
        &["subscriptions", "camus", "big-table"],
    );
    for &n in counts {
        let rules = siena_rules(n, 3, 0xF12A);
        let big = big_table_entries(&rules, BIGTABLE_CAP);
        a.row([
            n.to_string(),
            camus_entries(&rules).to_string(),
            if big.capped { format!(">{}", big.entries) } else { big.entries.to_string() },
        ]);
    }
    a.emit("fig12a");

    // Panel (b): sweep predicates per filter at a fixed count.
    let n = scale.pick(300, 1_000);
    let mut b = Table::new(
        &format!("Fig. 12b: table entries vs predicates/filter ({n} subscriptions)"),
        &["predicates", "camus", "big-table"],
    );
    for k in 1..=6usize {
        let rules = siena_rules(n, k, 0xF12B);
        let big = big_table_entries(&rules, BIGTABLE_CAP);
        b.row([
            k.to_string(),
            camus_entries(&rules).to_string(),
            if big.capped { format!(">{}", big.entries) } else { big.entries.to_string() },
        ]);
    }
    b.emit("fig12b");
    vec![a, b]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn camus_entries_grow_slowly_vs_bigtable() {
        // The paper's point: the naive table explodes with overlap, the
        // BDD does not.
        let small = siena_rules(50, 2, 1);
        let large = siena_rules(500, 2, 1);
        let camus_small = camus_entries(&small);
        let camus_large = camus_entries(&large);
        let big_small = big_table_entries(&small, 200_000).entries;
        let big_large = big_table_entries(&large, 200_000);
        // Camus growth is ~linear.
        assert!(camus_large < camus_small * 40, "{camus_small} -> {camus_large}");
        // The big table grows much faster than its rule count.
        assert!(
            big_large.capped || big_large.entries > 4 * big_small,
            "{big_small} -> {:?}",
            big_large
        );
        // And Camus is smaller than the big table at scale.
        assert!((camus_large as u64) < big_large.entries);
    }

    #[test]
    fn selectiveness_tames_the_big_table() {
        // Fig. 12b's mechanism: loose single-predicate workloads make
        // the naive table explode (every pair overlaps) while the BDD
        // stays compact; selective filters shrink the big table to
        // ~linear. (See EXPERIMENTS.md for why per-field pipeline
        // entries grow mildly with the number of stages.)
        let loose_rules = siena_rules(300, 1, 2);
        let tight_rules = siena_rules(300, 5, 2);
        let big_loose = big_table_entries(&loose_rules, 500_000);
        let big_tight = big_table_entries(&tight_rules, 500_000);
        assert!(
            big_loose.capped || big_loose.entries > 50_000,
            "loose big table must explode: {:?}",
            big_loose
        );
        assert!(!big_tight.capped && big_tight.entries < 1_000, "{:?}", big_tight);
        // Camus stays far below the exploding big table.
        let camus_loose = camus_entries(&loose_rules) as u64;
        assert!(camus_loose * 10 < big_loose.entries, "{camus_loose} vs {:?}", big_loose);
    }

    #[test]
    fn quick_run_emits_two_tables() {
        let tables = run(Scale::Quick);
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].rows.len(), 3);
        assert_eq!(tables[1].rows.len(), 6);
    }
}
