//! Fig. 15 — routing on general topologies: maximum per-switch FIB
//! size under MST vs MST++ spanning trees, on AS-like graphs at the
//! scale of the paper's SNAP data sets (§VIII-G.2).
//!
//! Graphs are preferential-attachment stand-ins for CAIDA-2007
//! (26 475 nodes) and AS-733 (6 474 nodes) — see DESIGN.md for the
//! substitution rationale. Rules (two variables each) are assigned to
//! randomly selected nodes, 1 or 10 per selected node; for each tree we
//! compute the per-edge FIB partition, compile every switch, and
//! report the **maximum** table entries over switches — median over
//! trials, as in the paper.

use super::Scale;
use crate::output::Table;
use camus_core::compiler::Compiler;
use camus_lang::ast::Expr;
use camus_lang::parser::parse_expr;
use camus_routing::spanning::{spanning_tree, tree_fib_for, tree_fib_sizes, Graph, TreeAlgo};
use camus_workloads::graphs::EdgeList;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn to_graph(e: &EdgeList) -> Graph {
    let mut g = Graph::new(e.n);
    for &(u, v) in &e.edges {
        g.add_edge(u, v);
    }
    g
}

/// Assign `rules_per_node` two-variable rules to `selected` random
/// nodes.
fn assign_subs(
    n: usize,
    selected: usize,
    rules_per_node: usize,
    rng: &mut StdRng,
) -> Vec<Vec<Expr>> {
    let mut subs: Vec<Vec<Expr>> = vec![Vec::new(); n];
    for _ in 0..selected {
        let v = rng.gen_range(0..n);
        for _ in 0..rules_per_node {
            let a = rng.gen_range(0..1_000);
            let b = rng.gen_range(0..100);
            subs[v].push(parse_expr(&format!("attr0 > {a} and attr1 == {b}")).unwrap());
        }
    }
    subs
}

/// Max per-switch compiled entries for one graph/tree/workload.
/// Computes FIB *sizes* first (O(n)) and materialises + compiles only
/// the largest candidates — at CAIDA scale building every FIB would
/// take gigabytes.
pub fn max_fib_entries(graph: &Graph, algo: TreeAlgo, subs: &[Vec<Expr>]) -> usize {
    let tree = spanning_tree(graph, algo);
    let sizes = tree_fib_sizes(&tree, subs);
    let mut idx: Vec<usize> = (0..sizes.len()).collect();
    idx.sort_by_key(|&i| std::cmp::Reverse(sizes[i]));
    let compiler = Compiler::new();
    idx.into_iter()
        .take(8)
        .map(|i| {
            let fib = tree_fib_for(&tree, subs, i);
            compiler.compile(&fib).expect("fig15 FIB compiles").pipeline.total_entries()
        })
        .max()
        .unwrap_or(0)
}

fn median(mut xs: Vec<usize>) -> usize {
    xs.sort_unstable();
    xs[xs.len() / 2]
}

pub fn run(scale: Scale) -> Vec<Table> {
    // Full scale runs AS-733 at its true size (6 474 nodes) and the
    // CAIDA-like graph at 1/4 (single-core runtime budget; the shape
    // comparison is scale-free — see EXPERIMENTS.md).
    let (caida_scale, as_scale, trials) = scale.pick((20, 20, 3), (4, 1, 5));
    let graphs = [
        ("CAIDA-like", camus_workloads::graphs::caida_like_scaled(caida_scale, 15)),
        ("AS733-like", camus_workloads::graphs::as733_like_scaled(as_scale, 15)),
    ];
    let selected_fracs = [0.02f64, 0.05, 0.10];
    let mut tables = Vec::new();
    for (name, edges) in &graphs {
        let g = to_graph(edges);
        for rules_per_node in [1usize, 10] {
            let mut t = Table::new(
                &format!(
                    "Fig. 15 ({name}, {} nodes, {rules_per_node} rule(s)/node): max FIB entries",
                    g.node_count()
                ),
                &["total subscriptions", "MST", "MST++"],
            );
            for &frac in &selected_fracs {
                let selected = ((g.node_count() as f64 * frac) as usize).max(2);
                let mut mst_runs = Vec::new();
                let mut mstpp_runs = Vec::new();
                for trial in 0..trials {
                    let mut rng = StdRng::seed_from_u64(0xF15 + trial as u64);
                    let subs = assign_subs(g.node_count(), selected, rules_per_node, &mut rng);
                    mst_runs.push(max_fib_entries(&g, TreeAlgo::Mst, &subs));
                    mstpp_runs.push(max_fib_entries(&g, TreeAlgo::MstPlusPlus, &subs));
                }
                t.row([
                    (selected * rules_per_node).to_string(),
                    median(mst_runs).to_string(),
                    median(mstpp_runs).to_string(),
                ]);
            }
            t.emit(&format!("fig15_{}_{}", name.to_lowercase().replace('-', "_"), rules_per_node));
            tables.push(t);
        }
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mstpp_reduces_max_fib_entries() {
        // The MST++ claim on a hub-heavy graph.
        let edges = camus_workloads::graphs::preferential_attachment(400, 3, 5);
        let g = to_graph(&edges);
        let mut rng = StdRng::seed_from_u64(1);
        let subs = assign_subs(g.node_count(), 40, 10, &mut rng);
        let mst = max_fib_entries(&g, TreeAlgo::Mst, &subs);
        let mstpp = max_fib_entries(&g, TreeAlgo::MstPlusPlus, &subs);
        assert!(mstpp <= mst, "MST++ max entries {mstpp} must not exceed MST {mst}");
    }

    #[test]
    fn more_rules_more_entries() {
        let edges = camus_workloads::graphs::preferential_attachment(200, 2, 9);
        let g = to_graph(&edges);
        let mut rng1 = StdRng::seed_from_u64(2);
        let mut rng2 = StdRng::seed_from_u64(2);
        let small = assign_subs(g.node_count(), 5, 1, &mut rng1);
        let large = assign_subs(g.node_count(), 20, 10, &mut rng2);
        assert!(
            max_fib_entries(&g, TreeAlgo::Mst, &large) > max_fib_entries(&g, TreeAlgo::Mst, &small)
        );
    }

    #[test]
    fn quick_run_emits_tables() {
        assert_eq!(run(Scale::Quick).len(), 4);
    }
}
