//! Fig. 13 — switch memory per Fat-Tree layer under the two routing
//! policies, the effect of α-discretisation, and the traffic cost of
//! the approximation (§VIII-G.1).
//!
//! Topology: the paper's Mininet testbed — 20 switches (8 ToR, 8 agg,
//! 4 core), 16 hosts — with Siena-generated filters of three variables
//! each.
//!
//! * **(a/b)** per-layer compiled table entries vs #filters, MR vs TR,
//! * **(c)** the same under α = 10 (aggregation shrinks upper layers),
//! * **(d)** % extra messages crossing the core layer vs α (the false
//!   positives the widened filters admit).

use super::Scale;
use crate::output::Table;
use camus_core::compiler::Compiler;
use camus_core::statics::compile_static;
use camus_dataplane::PacketBuilder;
use camus_lang::ast::Expr;
use camus_net::controller::Controller;
use camus_routing::algorithm1::{route_hierarchical, Policy, RoutingConfig};
use camus_routing::compile::compile_network;
use camus_routing::topology::paper_fat_tree;
use camus_workloads::siena::{SienaConfig, SienaGenerator};

fn generator(seed: u64) -> SienaGenerator {
    SienaGenerator::new(SienaConfig {
        // "each filter checks three variables" over a three-variable
        // universe (Fig. 14 sweeps that universe from 1 to 3).
        predicates_per_filter: 3,
        n_attributes: 3,
        string_fraction: 0.25,
        anchor_universe: 400,
        anchor_skew: 0.5,
        seed,
        ..Default::default()
    })
}

/// Distribute `total` filters round-robin over the 16 hosts.
fn host_subscriptions(total: usize, seed: u64) -> (Vec<Vec<Expr>>, SienaGenerator) {
    let mut generator = generator(seed);
    let mut subs: Vec<Vec<Expr>> = vec![Vec::new(); 16];
    for (i, f) in generator.filters(total).into_iter().enumerate() {
        subs[i % 16].push(f);
    }
    (subs, generator)
}

/// Per-layer entries for a policy/α combination.
fn layer_entries(total: usize, policy: Policy, alpha: i64) -> [usize; 3] {
    let net = paper_fat_tree();
    let (subs, _) = host_subscriptions(total, 0xF13);
    let routing = route_hierarchical(&net, &subs, RoutingConfig::new(policy).with_alpha(alpha));
    let compiled = compile_network(&routing, &Compiler::new()).expect("fig13 compiles");
    let per = compiled.entries_per_layer(&net);
    [
        per.get(&0).copied().unwrap_or(0),
        per.get(&1).copied().unwrap_or(0),
        per.get(&2).copied().unwrap_or(0),
    ]
}

pub fn run(scale: Scale) -> Vec<Table> {
    let counts: &[usize] = match scale {
        Scale::Quick => &[64, 256],
        Scale::Full => &[64, 256, 1_024, 4_096],
    };
    let mut tables = Vec::new();

    // Panels a-c: per-layer memory.
    for (panel, policy, alpha) in [
        ("a (MR, exact)", Policy::MemoryReduction, 1),
        ("b (TR, exact)", Policy::TrafficReduction, 1),
        ("c (MR, α=10)", Policy::MemoryReduction, 10),
    ] {
        let mut t = Table::new(
            &format!("Fig. 13{panel}: table entries per layer"),
            &["filters", "ToR", "Agg", "Core"],
        );
        for &n in counts {
            let [tor, agg, core] = layer_entries(n, policy, alpha);
            t.row([n.to_string(), tor.to_string(), agg.to_string(), core.to_string()]);
        }
        t.emit(&format!("fig13{}", &panel[..1]));
        tables.push(t);
    }

    // Panel d: extra core traffic vs α, measured by actually running
    // the network.
    let mut d = Table::new(
        "Fig. 13d: extra core-layer traffic vs discretisation unit α (TR)",
        &["alpha", "core messages", "extra %"],
    );
    let n_filters = scale.pick(128, 512);
    let packets = scale.pick(300, 2_000);
    let mut baseline_core = None;
    for alpha in [1i64, 5, 10, 50, 100] {
        let core = core_traffic(n_filters, packets, alpha);
        let base = *baseline_core.get_or_insert(core);
        let extra = if base == 0 { 0.0 } else { 100.0 * (core as f64 - base as f64) / base as f64 };
        d.row([alpha.to_string(), core.to_string(), format!("{extra:.1}")]);
    }
    d.emit("fig13d");
    tables.push(d);
    tables
}

/// Deploy the network with TR/α, replay a publisher feed, count
/// messages crossing core-layer links.
fn core_traffic(n_filters: usize, packets: usize, alpha: i64) -> u64 {
    let net = paper_fat_tree();
    let (subs, mut generator) = host_subscriptions(n_filters, 0xD13);
    let statics = compile_static(&generator.spec()).expect("siena spec compiles");
    let controller =
        Controller::new(statics, RoutingConfig::new(Policy::TrafficReduction).with_alpha(alpha));
    let mut d = controller.deploy(net.clone(), &subs).expect("fig13d deploys");
    let spec = generator.spec();
    // Publications correlate with subscriptions (publishers produce
    // what someone asked for): half exact matches, half *near-misses*
    // crafted against the maximally-widened (α=100) filters — the
    // packets that exact routing stops at the ToR but α-approximated
    // routing carries to the core. The stream is identical across α
    // runs so the traffic comparison is apples-to-apples.
    use camus_lang::approx::{approximate_expr, ApproxConfig};
    let all_filters: Vec<_> = subs.iter().flatten().cloned().collect();
    let widened: Vec<_> =
        all_filters.iter().map(|f| approximate_expr(f, ApproxConfig::new(100)).0).collect();
    for i in 0..packets {
        let vals = if i % 4 == 0 || all_filters.is_empty() {
            generator.packet()
        } else if i % 2 == 0 {
            let f = &all_filters[(i * 31) % all_filters.len()];
            generator.matching_packet(f)
        } else {
            let f = &widened[(i * 31) % widened.len()];
            generator.matching_packet(f)
        };
        let mut b = PacketBuilder::new(&spec);
        for (field, value) in vals {
            b = b.stack_field("siena", &field, value);
        }
        d.network.publish(i % 16, b.build(), i as u64 * 10_000);
    }
    d.network.run(None);
    d.network.stats().layer_messages(&net, 2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mr_upper_layers_are_smaller_than_tr() {
        let mr = layer_entries(128, Policy::MemoryReduction, 1);
        let tr = layer_entries(128, Policy::TrafficReduction, 1);
        assert!(mr[1] < tr[1], "agg: MR {} < TR {}", mr[1], tr[1]);
        // ToR layers are comparable (both store the original subs).
        assert!(mr[0] > 0 && tr[0] > 0);
    }

    #[test]
    fn discretisation_reduces_memory() {
        let exact = layer_entries(256, Policy::MemoryReduction, 1);
        let approx = layer_entries(256, Policy::MemoryReduction, 100);
        let sum = |x: [usize; 3]| x.iter().sum::<usize>();
        assert!(sum(approx) < sum(exact), "α=100 must shrink: {exact:?} -> {approx:?}");
    }

    #[test]
    fn alpha_never_loses_core_traffic() {
        // Wider filters can only add traffic.
        let base = core_traffic(64, 150, 1);
        let wide = core_traffic(64, 150, 100);
        assert!(wide >= base, "α=100 core {wide} >= exact {base}");
    }

    #[test]
    fn quick_run_emits_four_tables() {
        assert_eq!(run(Scale::Quick).len(), 4);
    }
}
