//! Fig. 8 — ITCH end-to-end latency, switch filtering vs subscriber
//! filtering, on the two workloads of §VIII-E.1.
//!
//! Setup mirrored from the paper: the publisher streams the feed at
//! 8.25 Mpps — 90 % of the subscriber's maximum software filtering
//! throughput — and we measure publication→delivery latency of the
//! messages of interest (`stock == GOOGL`).
//!
//! * **baseline** — the switch forwards everything; the subscriber
//!   filters in software. Every message (interesting or not) queues at
//!   the subscriber core, so at 90 % load the tail explodes.
//! * **camus** — the switch (the real [`camus_dataplane`] model,
//!   including recirculation for the batched workload) forwards only
//!   matching messages; the subscriber is nearly idle.
//!
//! NIC microbursts (packets arrive back-to-back at wire speed in
//! groups) provide the burstiness that drives the baseline's tail,
//! matching the paper's DPDK pacing.

use super::Scale;
use crate::output::Table;
use camus_apps::itch::ItchApp;
use camus_baselines::queue::{simulate_fifo, Job, QueueResult};
use camus_dataplane::SwitchConfig;
use camus_workloads::itch::{ItchFeed, ItchFeedConfig, WATCHED};

/// Fixed path costs (ns).
const LINK_NS: f64 = 500.0;
const HOST_RX_NS: f64 = 2_000.0;
const PLAIN_SWITCH_NS: f64 = 600.0;
/// Subscriber filtering capacity (the paper's 8.25 Mpps is 90 % of it).
const SUBSCRIBER_MPPS: f64 = 9.17e6;
const FEED_PPS: f64 = 8.25e6;
/// DPDK burst-train size: the feed replayer transmits packets in
/// back-to-back trains at wire speed (what makes the 90%-load baseline
/// tail explode, as in the paper's 300 µs figure).
const BURST: usize = 1024;

struct WorkloadResult {
    baseline: QueueResult,
    camus: QueueResult,
}

fn arrival_s(packet_idx: usize, pps: f64) -> f64 {
    // Microbursts: groups of BURST packets back-to-back at ~100G wire
    // speed (~7 ns for a small frame), groups spaced for the average
    // rate.
    let group = packet_idx / BURST;
    let within = packet_idx % BURST;
    group as f64 * (BURST as f64 / pps) + within as f64 * 7e-9
}

fn run_workload(cfg: ItchFeedConfig, packets: usize) -> WorkloadResult {
    let app = ItchApp::new();
    let mut switch = app
        .switch(&[ItchApp::subscription(WATCHED, 0, 1)], SwitchConfig::default())
        .expect("fig8 rules compile");
    let mut feed = ItchFeed::new(cfg.clone());
    let service_s = 1.0 / SUBSCRIBER_MPPS;
    // The paper feeds at 90% of the subscriber's *message* filtering
    // capacity; for batched workloads the packet rate scales down by
    // the mean batch size.
    let avg_batch = {
        let mut probe = ItchFeed::new(cfg);
        let sample: usize = probe.packets(2_000).iter().map(Vec::len).sum();
        (sample as f64 / 2_000.0).max(1.0)
    };
    let pps = FEED_PPS / avg_batch;

    // Baseline: every message reaches the subscriber queue; we record
    // the sojourn of the *interesting* ones.
    let mut base_jobs: Vec<Job> = Vec::new();
    let mut base_interesting: Vec<usize> = Vec::new();
    // Camus: the real switch processes each packet; matching messages
    // go to the (idle) subscriber queue.
    let mut camus_jobs: Vec<Job> = Vec::new();

    for i in 0..packets {
        let orders = feed.packet();
        let t_pub = arrival_s(i, pps);
        let plain_path = t_pub + (2.0 * LINK_NS + PLAIN_SWITCH_NS + HOST_RX_NS) * 1e-9;
        for o in &orders {
            if o.stock == WATCHED {
                base_interesting.push(base_jobs.len());
            }
            base_jobs.push(Job { arrival_s: plain_path, service_s });
        }
        // Camus side: real dataplane processing.
        let pkt = app.packet(i as i64, &orders);
        let out = switch.process(&pkt, 0, (t_pub * 1e6) as u64);
        let camus_path = t_pub + (2.0 * LINK_NS + out.latency_ns as f64 + HOST_RX_NS) * 1e-9;
        for (_, copy) in &out.ports {
            for _ in 0..copy.message_count(&app.spec) {
                camus_jobs.push(Job { arrival_s: camus_path, service_s });
            }
        }
    }

    // End-to-end latency = queue sojourn + the path cost folded into
    // the job's arrival time (publish → subscriber ingress).
    let path_s = (2.0 * LINK_NS + PLAIN_SWITCH_NS + HOST_RX_NS) * 1e-9;
    let base_all = simulate_fifo(&base_jobs);
    let baseline = QueueResult {
        sojourn_s: base_interesting.iter().map(|&j| base_all.sojourn_s[j] + path_s).collect(),
    };
    let camus_q = simulate_fifo(&camus_jobs);
    let camus = QueueResult { sojourn_s: camus_q.sojourn_s.iter().map(|s| s + path_s).collect() };
    WorkloadResult { baseline, camus }
}

/// Run the experiment; returns the latency-quantile tables.
pub fn run(scale: Scale) -> Vec<Table> {
    let packets = scale.pick(20_000, 150_000);
    let mut tables = Vec::new();
    for (name, cfg) in [
        ("nasdaq-trace", ItchFeedConfig::nasdaq_trace(8)),
        ("synthetic-batched", ItchFeedConfig::synthetic(8)),
    ] {
        let r = run_workload(cfg, packets);
        let mut t = Table::new(
            &format!("Fig. 8 ({name}): ITCH publication→delivery latency (µs)"),
            &["system", "p50", "p90", "p99", "p99.9", "max", "messages"],
        );
        for (sys, q) in [("baseline", &r.baseline), ("camus", &r.camus)] {
            let us = |quant: f64| format!("{:.1}", q.quantile(quant) * 1e6);
            t.row([
                sys.to_string(),
                us(0.50),
                us(0.90),
                us(0.99),
                us(0.999),
                us(1.0),
                q.sojourn_s.len().to_string(),
            ]);
        }
        t.emit(&format!("fig8_{name}"));
        tables.push(t);
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn camus_beats_baseline_tail_on_both_workloads() {
        for cfg in [ItchFeedConfig::nasdaq_trace(1), ItchFeedConfig::synthetic(1)] {
            let r = run_workload(cfg.clone(), 30_000);
            assert!(!r.baseline.sojourn_s.is_empty());
            assert!(!r.camus.sojourn_s.is_empty());
            // Same number of interesting messages on both sides.
            assert_eq!(r.baseline.sojourn_s.len(), r.camus.sojourn_s.len());
            let b99 = r.baseline.quantile(0.99);
            let c99 = r.camus.quantile(0.99);
            assert!(c99 < b99, "camus p99 {c99:e} must beat baseline p99 {b99:e} ({:?})", cfg);
        }
    }

    #[test]
    fn quick_run_produces_tables() {
        let tables = run(Scale::Quick);
        assert_eq!(tables.len(), 2);
        for t in &tables {
            assert_eq!(t.rows.len(), 2);
        }
    }
}
