//! Controller-service throughput: batched/coalesced/overlapped vs
//! one-op-at-a-time.
//!
//! A seeded Poisson churn stream (subscribe/unsubscribe against the
//! 72-switch churn testbed) is fed to [`camus_service::CamusService`]
//! twice with identical events:
//!
//! * **naive** — singleton batches, installs serialized behind
//!   compiles, no backlog merging: the PR-4 controller called once per
//!   op, as a pre-service caller would;
//! * **batched** — the adaptive window batches bursts, net-zero churn
//!   cancels before it costs a compile, backlog merges when the
//!   compile stage falls behind, and transaction N+1 compiles while
//!   transaction N installs.
//!
//! Both runs carry audit probes, so every commit re-proves the
//! zero-mis-delivery invariant while transactions overlap. Measured
//! per mode: sustained accepted-ops/second on the modelled timeline,
//! p50/p99 time-to-traffic per request, batches/compiles/coalescing
//! ratio, and peak compile-queue depth. Per-request spans of the
//! batched run land in `results/service_trace.csv`.
//!
//! The in-run assertions double as the CI smoke: audits clean in both
//! modes, coalescing ratio > 1, and batched sustained throughput at
//! least 2× naive.

use super::churn::{churn_net, spread_subscriptions};
use super::Scale;
use crate::output::{merge_bench_json, Table};
use camus_core::statics::compile_static;
use camus_dataplane::PacketBuilder;
use camus_lang::ast::Expr;
use camus_net::controller::Controller;
use camus_net::PerfectChannel;
use camus_routing::algorithm1::{Policy, RoutingConfig};
use camus_service::{AuditProbe, CamusService, RequestOp, ServiceConfig, ServiceOutcome};
use camus_workloads::churn::{ChurnConfig, ChurnOp, PoissonChurn};
use camus_workloads::siena::{SienaConfig, SienaGenerator};

/// Same workload shape as the `churn` experiment (Zipf-skewed anchor
/// universe), so the two tentpoles measure the same churn.
pub(super) fn generator(seed: u64) -> SienaGenerator {
    SienaGenerator::new(SienaConfig {
        predicates_per_filter: 2,
        n_attributes: 3,
        string_fraction: 0.25,
        anchor_universe: 400,
        anchor_skew: 0.5,
        seed,
        ..Default::default()
    })
}

/// Audit probes crafted against live initial subscriptions: packets a
/// correct deployment must keep delivering to exactly the matching
/// hosts after every transaction.
fn audit_probes(g: &mut SienaGenerator, subs: &[Vec<Expr>], n: usize) -> Vec<AuditProbe> {
    let spec = g.spec();
    let mut probes = Vec::new();
    let mut host = 0usize;
    while probes.len() < n && host < subs.len() {
        if let Some(f) = subs[host].first() {
            let values = g.matching_packet(f);
            let mut b = PacketBuilder::new(&spec);
            for (field, value) in &values {
                b = b.stack_field("siena", field, value.clone());
            }
            // Publish from the far end of the host range so the probe
            // has to cross the tree.
            let publisher = (host + subs.len() / 2) % subs.len();
            probes.push(AuditProbe { publisher, packet: b.build(), values });
        }
        host += 1;
    }
    probes
}

struct ModeRun {
    out: ServiceOutcome,
    sustained_per_s: f64,
    p50_ttt_ns: u64,
    p99_ttt_ns: u64,
    peak_compile_queue: u64,
    wall_ms: f64,
}

fn run_mode(naive: bool, scale: Scale, ops: usize) -> ModeRun {
    let net = churn_net();
    let mut g = generator(0xC4A2);
    let initial = spread_subscriptions(&mut g, &net, scale.pick(256, 1_000));
    let statics = compile_static(&g.spec()).expect("siena spec compiles");
    let ctrl = Controller::new(statics, RoutingConfig::new(Policy::MemoryReduction));
    let deployment = ctrl.deploy(net.clone(), &initial).expect("initial deploy");

    let probes = audit_probes(&mut g, &initial, scale.pick(2, 4));
    assert!(!probes.is_empty(), "initial subscriptions must yield audit probes");

    // Identical seeded churn for both modes: 4k ops/s Poisson, 30%
    // unsubscribes drawn from the live set.
    let mut churn = PoissonChurn::new(
        ChurnConfig { rate_per_s: 4_000.0, unsubscribe_fraction: 0.3, seed: 0x5EED },
        net.host_count(),
        &initial,
    );
    let events = churn.schedule(&mut g, ops);

    let cfg = if naive {
        ServiceConfig { probes, ..ServiceConfig::naive() }
    } else {
        ServiceConfig { probes, ..ServiceConfig::default() }
    };

    let wall = std::time::Instant::now();
    let mut svc = CamusService::start(ctrl, deployment, initial, Box::new(PerfectChannel), cfg);
    let first_arrival = events.first().map(|e| e.at_ns).unwrap_or(0);
    for ev in events {
        let op = match ev.op {
            ChurnOp::Subscribe(f) => RequestOp::Subscribe(f),
            ChurnOp::Unsubscribe(f) => RequestOp::Unsubscribe(f),
        };
        svc.request(ev.host, op, ev.at_ns);
    }
    let out = svc.shutdown();
    let wall_ms = wall.elapsed().as_secs_f64() * 1e3;
    assert!(out.errors.is_empty(), "service run failed: {:?}", out.errors);

    // Exact percentiles from the spans themselves (the registry
    // histogram is log-bucketed; the CSV wants exact numbers).
    let mut ttts: Vec<u64> = out
        .reports
        .iter()
        .filter(|r| r.committed)
        .flat_map(|r| r.requests.iter().map(|s| s.time_to_traffic_ns()))
        .collect();
    ttts.sort_unstable();
    let pct = |q: f64| -> u64 {
        if ttts.is_empty() {
            return 0;
        }
        ttts[((ttts.len() - 1) as f64 * q).round() as usize]
    };
    let last_deployed =
        out.reports.iter().map(|r| r.deployed_ns).max().unwrap_or(first_arrival + 1);
    let span_ns = last_deployed.saturating_sub(first_arrival).max(1);
    let sustained_per_s = out.stats.accepted as f64 / span_ns as f64 * 1e9;
    let peak_compile_queue = out.registry.histogram("service.queue.compile.depth").snapshot().max;

    ModeRun {
        sustained_per_s,
        p50_ttt_ns: pct(0.50),
        p99_ttt_ns: pct(0.99),
        peak_compile_queue,
        wall_ms,
        out,
    }
}

pub fn run(scale: Scale) -> Vec<Table> {
    let ops = scale.pick(120, 600);
    let naive = run_mode(true, scale, ops);
    let batched = run_mode(false, scale, ops);

    let mut t = Table::new(
        "Controller service: batched/coalesced vs one-op-at-a-time (modelled time)",
        &[
            "mode",
            "ops",
            "accepted",
            "batches",
            "merged",
            "compiles",
            "noops",
            "cancelled_ops",
            "coalesce_ratio",
            "committed_txns",
            "sustained_per_s",
            "p50_ttt_ms",
            "p99_ttt_ms",
            "peak_queue",
            "audit_probes",
            "misdelivered",
            "wall_ms",
        ],
    );
    for (mode, r) in [("naive", &naive), ("batched", &batched)] {
        let s = &r.out.stats;
        t.row([
            mode.to_string(),
            ops.to_string(),
            s.accepted.to_string(),
            s.batches.to_string(),
            s.merged_batches.to_string(),
            s.compiles.to_string(),
            s.noops.to_string(),
            s.cancelled_ops.to_string(),
            format!("{:.2}", s.coalescing_ratio()),
            s.committed_txns.to_string(),
            format!("{:.0}", r.sustained_per_s),
            format!("{:.3}", r.p50_ttt_ns as f64 / 1e6),
            format!("{:.3}", r.p99_ttt_ns as f64 / 1e6),
            r.peak_compile_queue.to_string(),
            s.audit.probes.to_string(),
            s.audit.misdelivered.to_string(),
            format!("{:.0}", r.wall_ms),
        ]);
    }
    t.emit("service");

    // Per-request spans of the batched run: the raw material for the
    // time-to-traffic distribution.
    let mut spans = Table::new(
        "Batched run: per-request spans (ns, modelled)",
        &["request", "host", "arrival_ns", "batched_ns", "compiled_ns", "deployed_ns", "ttt_ns"],
    );
    for r in batched.out.reports.iter().filter(|r| r.committed) {
        for s in &r.requests {
            spans.row([
                s.request.to_string(),
                s.host.to_string(),
                s.arrival_ns.to_string(),
                s.batched_ns.to_string(),
                s.compiled_ns.to_string(),
                s.deployed_ns.to_string(),
                s.time_to_traffic_ns().to_string(),
            ]);
        }
    }
    spans.write_csv("service_trace").ok();

    let speedup = batched.sustained_per_s / naive.sustained_per_s.max(1e-9);
    merge_bench_json(
        "service",
        &format!(
            "{{\"naive_subs_per_s\": {:.0}, \"batched_subs_per_s\": {:.0}, \
             \"speedup\": {:.2}, \"coalescing_ratio\": {:.2}, \
             \"batched_p99_ttt_ms\": {:.3}, \"audit_probes\": {}, \"misdelivered\": {}}}",
            naive.sustained_per_s,
            batched.sustained_per_s,
            speedup,
            batched.out.stats.coalescing_ratio(),
            batched.p99_ttt_ns as f64 / 1e6,
            batched.out.stats.audit.probes + naive.out.stats.audit.probes,
            batched.out.stats.audit.misdelivered + naive.out.stats.audit.misdelivered,
        ),
    );

    // The CI smoke rides these (quick scale included): the audit must
    // stay clean in both modes, coalescing must actually coalesce, and
    // batching must beat the naive baseline by the ISSUE's 2× floor.
    for (mode, r) in [("naive", &naive), ("batched", &batched)] {
        assert!(r.out.stats.audit.clean(), "{mode}: audit violation: {:?}", r.out.stats.audit);
        assert!(r.out.stats.audit.probes > 0, "{mode}: audit never ran");
    }
    assert!(
        batched.out.stats.coalescing_ratio() > 1.0,
        "coalescing ratio {:.2} must exceed 1",
        batched.out.stats.coalescing_ratio()
    );
    assert!(
        speedup >= 2.0,
        "batched ({:.0}/s) must sustain at least 2x naive ({:.0}/s)",
        batched.sustained_per_s,
        naive.sustained_per_s
    );

    vec![t, spans]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_meets_the_issue_floors() {
        // run() asserts the floors internally: clean audits, ratio > 1,
        // batched >= 2x naive.
        let tables = run(Scale::Quick);
        assert_eq!(tables.len(), 2);
        assert!(!tables[0].rows.is_empty());
        assert!(!tables[1].rows.is_empty(), "trace spans must be captured");
    }
}
