//! The 10k→1M subscription `scale` ladder — compiler scaling evidence.
//!
//! The control-plane tentpole claims the compiler holds up at a
//! million subscriptions: cold builds stay sharded-parallel and
//! memory-bounded, and a subscription change costs time proportional
//! to the *delta*, not the table. This experiment measures both ends
//! on the churn testbed (8 pods × 4 ToRs × 4 hosts, 72 switches) with
//! an identifier-heavy workload (`id == K`, ~15% carrying an extra
//! `price > t` conjunct — the shape of §VIII-C's big-table runs):
//!
//! * **cold compile**: Algorithm 1 routing plus a full network
//!   compile. Content-addressing collapses the symmetric agg/core
//!   slots, so the distinct units are the 32 ToR lists (~N/32 rules),
//!   one agg list per pod (~N/8) and one shared core list (all N).
//! * **per-op reconfigure**: on the hottest switch's live
//!   [`IncrementalBdd`] (the core: all N rules), one op = insert a
//!   fresh rule + remove it again. The full-recompile baseline is a
//!   scratch `from_rules` of the same list — what a dirty-list
//!   recompile pays for that switch on every op.
//! * **memory**: live vs allocated nodes after GC (the mark-and-sweep
//!   bound), the store's allocated-node high-water, plus process-level
//!   heap high-water (counting allocator, when the running binary
//!   installs the hook) and kernel `VmHWM`.
//!
//! Results land in `results/scale.csv` and under the `"scale_ladder"`
//! key of `BENCH_throughput.json`.

use super::churn::churn_net;
use super::Scale;
use crate::mem;
use crate::output::{merge_bench_json, Table};
use camus_bdd::{IncrementalBdd, VarOrder, DEEP_STACK};
use camus_core::compiler::Compiler;
use camus_lang::ast::{Expr, Rule};
use camus_lang::parser::{parse_expr, parse_rule};
use camus_routing::algorithm1::{route_hierarchical, Policy, RoutingConfig, RoutingResult};
use camus_routing::compile::compile_network;
use camus_routing::topology::HierNet;

/// One subscription of the identifier-heavy workload: a unique `id`
/// equality, with a price-threshold conjunct on roughly 15% of them.
fn subscription(i: usize) -> Expr {
    let text = if i.is_multiple_of(7) {
        format!("id == {i} and price > {}", (i * 37) % 1_000)
    } else {
        format!("id == {i}")
    };
    parse_expr(&text).expect("workload filter parses")
}

/// `n` identifier subscriptions dealt round-robin over the hosts.
pub fn subscriptions(net: &HierNet, n: usize) -> Vec<Vec<Expr>> {
    let hosts = net.host_count();
    let mut subs: Vec<Vec<Expr>> = vec![Vec::new(); hosts];
    for i in 0..n {
        subs[i % hosts].push(subscription(i));
    }
    subs
}

/// The routed rule list of the most loaded switch (the shared core
/// list — every subscription in the network).
fn hottest_rules(routing: &RoutingResult) -> Vec<Rule> {
    let hottest = (0..routing.filters.len())
        .max_by_key(|&s| routing.filters[s].values().map(|fs| fs.len()).sum::<usize>())
        .expect("network has switches");
    routing.switch_rules(hottest)
}

/// One rung of the ladder.
#[derive(Debug, Clone)]
pub struct ScalePoint {
    pub subs: usize,
    /// Full-network cold compile (routing excluded), wall-clock ms.
    pub cold_ms: f64,
    /// Total table entries across the network after the cold compile.
    pub entries: usize,
    /// Mean per-op incremental maintenance latency on the hottest
    /// switch (insert + remove), µs.
    pub inc_op_us: f64,
    /// Scratch rebuild of the hottest switch's diagram, ms — the
    /// dirty-list recompile baseline for one op.
    pub full_op_ms: f64,
    /// Reachable nodes of the hottest diagram after a forced GC.
    pub live_nodes: usize,
    /// Node slots still allocated in the store after that GC.
    pub allocated_nodes: usize,
    /// Allocated-node high-water across the maintenance run.
    pub peak_alloc_nodes: usize,
    /// Capacity-triggered GC runs during the maintenance run.
    pub gc_runs: u64,
    /// Process heap high-water for this rung, MB (0 without the
    /// counting-allocator hook).
    pub peak_heap_mb: f64,
    /// Kernel `VmHWM` at the end of the rung, MB (monotone across
    /// rungs).
    pub peak_rss_mb: f64,
}

impl ScalePoint {
    /// Full-recompile cost over incremental per-op cost.
    pub fn speedup(&self) -> f64 {
        self.full_op_ms * 1e3 / self.inc_op_us.max(1e-9)
    }
}

/// Measure one rung: cold network compile, then `ops` incremental
/// insert+remove pairs against the hottest switch's live diagram, and
/// one scratch rebuild as the dirty-list baseline. Runs on a
/// deep-stack thread — BDD construction recursion is proportional to
/// the rule count.
pub fn measure(net: &HierNet, n: usize, ops: usize) -> ScalePoint {
    let net = net.clone();
    std::thread::Builder::new()
        .name("camus-scale".into())
        .stack_size(DEEP_STACK)
        .spawn(move || measure_inner(&net, n, ops))
        .expect("spawn scale thread")
        .join()
        .expect("scale thread panicked")
}

fn measure_inner(net: &HierNet, n: usize, ops: usize) -> ScalePoint {
    mem::reset_peak();
    let subs = subscriptions(net, n);
    let routing = route_hierarchical(net, &subs, RoutingConfig::new(Policy::MemoryReduction));

    let compiler = Compiler::new();
    let t0 = std::time::Instant::now();
    let cold = compile_network(&routing, &compiler).expect("cold compile");
    let cold_ms = t0.elapsed().as_secs_f64() * 1e3;
    let entries = cold.total_entries();
    drop(cold);

    // Per-op maintenance on the hottest switch's diagram. The field
    // order is pinned so every rung reduces over the same layering.
    let rules = hottest_rules(&routing);
    drop(routing);
    let order = VarOrder::from_keys(["id", "price"]);

    let t0 = std::time::Instant::now();
    let mut inc = IncrementalBdd::from_rules(&rules, &order);
    let full_op_ms = t0.elapsed().as_secs_f64() * 1e3;

    let t0 = std::time::Instant::now();
    for k in 0..ops {
        // One reconfiguration op: a brand-new subscriber arrives and
        // leaves again — an insert plus a remove, both O(delta).
        let fresh =
            parse_rule(&format!("id == {} and price > {}: fwd({})", n + k, k % 997, (k % 31) + 1))
                .expect("fresh rule parses");
        let digest = inc.insert_rule(&fresh);
        assert!(inc.remove_by_digest(digest), "freshly inserted rule must remove");
    }
    let inc_op_us = t0.elapsed().as_secs_f64() * 1e6 / ops.max(1) as f64;

    inc.force_gc();
    let live_nodes = inc.live_nodes();
    let stats = inc.bdd().gc_stats();
    let allocated_nodes = inc.bdd().allocated_nodes();

    ScalePoint {
        subs: n,
        cold_ms,
        entries,
        inc_op_us,
        full_op_ms,
        live_nodes,
        allocated_nodes,
        peak_alloc_nodes: stats.peak_allocated.max(allocated_nodes),
        gc_runs: stats.runs,
        peak_heap_mb: mem::peak_bytes() as f64 / (1 << 20) as f64,
        peak_rss_mb: mem::peak_rss_bytes() as f64 / (1 << 20) as f64,
    }
}

pub fn run(scale: Scale) -> Vec<Table> {
    let ladder: &[usize] = scale.pick(&[2_000][..], &[10_000, 100_000, 1_000_000][..]);
    let ops = scale.pick(64, 256);
    let net = churn_net();
    let mut t = Table::new(
        "Scale: cold compile and per-op reconfigure, 10k -> 1M subscriptions",
        &[
            "subs",
            "cold_ms",
            "entries",
            "inc_op_us",
            "full_op_ms",
            "speedup",
            "live_nodes",
            "alloc_nodes",
            "peak_alloc_nodes",
            "gc_runs",
            "peak_heap_mb",
            "peak_rss_mb",
        ],
    );
    let mut json = Vec::new();
    for &n in ladder {
        let p = measure(&net, n, ops);
        if scale == Scale::Quick {
            // The CI smoke contract: even at the smoke size, per-op
            // incremental maintenance beats a scratch rebuild of the
            // hottest switch by 10x, and GC keeps the store within 2x
            // of the reachable nodes.
            assert!(
                p.speedup() >= 10.0,
                "incremental {:.2}us vs full {:.2}ms: speedup {:.1}x below 10x",
                p.inc_op_us,
                p.full_op_ms,
                p.speedup()
            );
            assert!(
                p.allocated_nodes <= 2 * p.live_nodes.max(1),
                "GC must bound allocation: {} allocated vs {} live",
                p.allocated_nodes,
                p.live_nodes
            );
        }
        t.row([
            p.subs.to_string(),
            format!("{:.1}", p.cold_ms),
            p.entries.to_string(),
            format!("{:.2}", p.inc_op_us),
            format!("{:.2}", p.full_op_ms),
            format!("{:.0}", p.speedup()),
            p.live_nodes.to_string(),
            p.allocated_nodes.to_string(),
            p.peak_alloc_nodes.to_string(),
            p.gc_runs.to_string(),
            format!("{:.1}", p.peak_heap_mb),
            format!("{:.1}", p.peak_rss_mb),
        ]);
        json.push(format!(
            "{{\"subs\": {}, \"cold_ms\": {:.1}, \"entries\": {}, \"inc_op_us\": {:.2}, \
             \"full_op_ms\": {:.2}, \"speedup\": {:.0}, \"live_nodes\": {}, \
             \"peak_alloc_nodes\": {}, \"gc_runs\": {}, \"peak_heap_mb\": {:.1}, \
             \"peak_rss_mb\": {:.1}}}",
            p.subs,
            p.cold_ms,
            p.entries,
            p.inc_op_us,
            p.full_op_ms,
            p.speedup(),
            p.live_nodes,
            p.peak_alloc_nodes,
            p.gc_runs,
            p.peak_heap_mb,
            p.peak_rss_mb,
        ));
    }
    t.emit("scale");
    // Not under a plain `"scale"` key: the throughput lane already
    // writes `"scale": "quick|full"` (run-mode metadata) at top level.
    merge_bench_json("scale_ladder", &format!("{{\"points\": [{}]}}", json.join(", ")));
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scale_smoke() {
        // The seeded smoke the CI lane runs: at even the Quick rung,
        // per-op incremental maintenance must beat a scratch rebuild
        // of the hottest switch by 10×, and after GC the store may
        // hold at most 2× the reachable nodes.
        let net = churn_net();
        let p = measure(&net, 2_000, 32);
        assert!(p.cold_ms > 0.0 && p.entries > 0);
        assert!(
            p.speedup() >= 10.0,
            "incremental {:.2}us vs full {:.2}ms: speedup {:.1}x below 10x",
            p.inc_op_us,
            p.full_op_ms,
            p.speedup()
        );
        assert!(
            p.allocated_nodes <= 2 * p.live_nodes.max(1),
            "GC must bound allocation: {} allocated vs {} live",
            p.allocated_nodes,
            p.live_nodes
        );
        assert!(p.peak_alloc_nodes >= p.allocated_nodes);
        assert!(p.peak_rss_mb > 0.0, "VmHWM must be readable on the CI host");
    }

    #[test]
    fn quick_run_emits_table() {
        let tables = run(Scale::Quick);
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].rows.len(), 1);
    }
}
