//! Fault injection — self-healing routing and convergence cost.
//!
//! The paper's evaluation reconfigures on *subscription* changes
//! (§VIII-G.3); this experiment measures the same controller surviving
//! *network* changes. On the 72-switch churn fat tree carrying N Siena
//! subscriptions, it injects each failure type of
//! [`camus_faults::FaultKind`] onto a subscriber's designated
//! distribution chain — the worst case: the designated path is exactly
//! where the filters live — and reports, per event:
//!
//! * repair latency (degraded Algorithm 1 + incremental recompile) and
//!   the recompiled/reused/reinstalled split, showing the PR-1
//!   fingerprint cache also pays off for failures,
//! * the subscriber-observed blackout window, bounded by the modelled
//!   detection/control/install delay of [`RepairModel`],
//! * exact probe accounting: dropped, duplicated and mis-delivered
//!   counts (the last two must be zero — repair may lose traffic during
//!   the outage but must never corrupt delivery).
//!
//! Everything is seeded: the same command regenerates the same CSV.

use super::churn::{churn_net, spread_subscriptions};
use super::Scale;
use crate::output::Table;
use camus_core::statics::compile_static;
use camus_dataplane::PacketBuilder;
use camus_faults::{run_fault, FaultKind, ProbeConfig, RepairModel};
use camus_lang::ast::{Expr, Operand, Port};
use camus_lang::value::Value;
use camus_net::controller::Controller;
use camus_routing::algorithm1::{Policy, RoutingConfig};
use camus_routing::topology::{DownTarget, HierNet, SwitchId};
use camus_telemetry::SampleRate;
use camus_workloads::siena::{SienaConfig, SienaGenerator};
use std::collections::HashMap;

/// Same workload shape as the churn experiment (the point is to compare
/// repair against subscription churn on identical state). Shared with
/// the chaos soak, which interleaves both kinds of change.
pub(crate) fn generator(seed: u64) -> SienaGenerator {
    SienaGenerator::new(SienaConfig {
        predicates_per_filter: 2,
        n_attributes: 3,
        string_fraction: 0.25,
        anchor_universe: 400,
        anchor_skew: 0.5,
        seed,
        ..Default::default()
    })
}

/// The agg→ToR edge of `host`'s designated chain: cutting it blacks the
/// host out until the controller re-routes through a sibling agg.
pub(crate) fn chain_link(net: &HierNet, host: usize) -> (SwitchId, Port) {
    let chain = net.designated_chain(host);
    let (tor, agg) = (chain[0], chain[1]);
    let port = net.switches[agg]
        .down
        .iter()
        .position(|t| matches!(t, DownTarget::Switch(c, _) if *c == tor))
        .expect("designated agg has a port to its ToR");
    (agg, port as Port)
}

pub fn run(scale: Scale) -> Vec<Table> {
    let counts: &[usize] = scale.pick(&[64][..], &[256, 1_024][..]);
    let (warmup, after) = scale.pick((3, 30), (5, 40));
    let interval_ns = 20_000u64;
    let model = RepairModel::default();
    let net = churn_net();

    let mut t = Table::new(
        "Faults: repair latency and convergence per failure type",
        &[
            "failure",
            "subscriptions",
            "repair_ms",
            "compile_ms",
            "recompiled",
            "reused",
            "reinstalled",
            "blackout_us",
            "dropped",
            "duplicated",
            "misdelivered",
            "blackholes",
            "loops",
            "recovered",
        ],
    );

    for &n in counts {
        let mut g = generator(0xFA17);
        let subs = spread_subscriptions(&mut g, &net, n);
        let spec = g.spec();
        let statics = compile_static(&spec).expect("siena statics compile");
        let ctrl = Controller::new(statics, RoutingConfig::new(Policy::MemoryReduction));

        // Probe = a witness packet for some subscriber's first filter;
        // expected receivers are computed analytically by evaluating
        // every host's filters against the witness values.
        let target = (0..net.host_count()).find(|&h| !subs[h].is_empty()).expect("a subscriber");
        let witness: HashMap<String, Value> =
            g.matching_packet(&subs[target][0]).into_iter().collect();
        let lookup = |op: &Operand| match op {
            Operand::Field(name) => witness.get(name).cloned(),
            Operand::Aggregate { .. } => None,
        };
        let matches = |fs: &[Expr]| fs.iter().any(|f| f.eval_with(lookup));
        // Publish from a non-matching host on a different ToR, so the
        // probe always crosses the fabric and the publisher is never an
        // expected receiver.
        let publisher = (0..net.host_count())
            .find(|&h| net.access[h].0 != net.access[target].0 && !matches(&subs[h]))
            .expect("a non-matching publisher on another ToR");
        let expected: Vec<usize> =
            (0..net.host_count()).filter(|&h| h != publisher && matches(&subs[h])).collect();
        assert!(expected.contains(&target));

        let mut b = PacketBuilder::new(&spec);
        for (field, value) in &witness {
            b = b.stack_field("siena", field, value.clone());
        }
        let probe =
            ProbeConfig { publisher, packet: b.build(), expected, interval_ns, warmup, after };

        let mut d = ctrl.deploy(net.clone(), &subs).expect("deploy compiles");
        // Postcard telemetry on every probe: the blackout and delivery
        // columns below come from the collector, cross-checked against
        // the legacy delivery-log accounting.
        d.network.attach_telemetry(SampleRate::always());
        let (agg, port) = chain_link(&net, target);
        let events = [
            FaultKind::LinkDown { switch: agg, port },
            FaultKind::LinkUp { switch: agg, port },
            FaultKind::SwitchCrash { switch: agg },
            FaultKind::SwitchRestore { switch: agg },
        ];
        for kind in events {
            let r =
                run_fault(&ctrl, &mut d, &subs, kind, &probe, &model, 0).expect("repair compiles");
            // Correctness invariants, enforced even in smoke runs:
            // repair may lose probes during the outage, never corrupt.
            assert_eq!(r.misdelivered, 0, "{}: mis-delivery", r.label);
            assert_eq!(r.duplicated, 0, "{}: duplicate delivery", r.label);
            assert!(r.recovered, "{}: subscribers still dark after repair", r.label);
            // Telemetry equivalence: every accounting column below is
            // the collector's number, and it must equal the probe-based
            // one (1/1 sampling traces every probe).
            let tel = r.telemetry.as_ref().expect("telemetry attached");
            assert_eq!(tel.traced, r.probes, "{}: sampler missed probes", r.label);
            assert_eq!(tel.dropped, r.dropped, "{}: telemetry dropped", r.label);
            assert_eq!(tel.blackout_ns, r.blackout_ns, "{}: telemetry blackout", r.label);
            assert_eq!(tel.misdelivered, r.misdelivered, "{}: telemetry misdelivery", r.label);
            assert_eq!(tel.duplicated, r.duplicated, "{}: telemetry duplicates", r.label);
            // Detection: a dropped probe is a blackhole anomaly, a
            // clean probe is not, and loop-free forwarding never trips
            // the loop detector.
            assert_eq!(tel.blackholes > 0, tel.dropped > 0, "{}: blackhole detection", r.label);
            assert_eq!(tel.loops, 0, "{}: false loop report", r.label);
            assert!(r.repair.reused > 0, "{}: repair must reuse off-path pipelines", r.label);
            if kind.is_degrading() {
                assert!(
                    r.blackout_ns <= model.window_ns(0) + 4 * interval_ns,
                    "{}: blackout {}ns exceeds the repair window",
                    r.label,
                    r.blackout_ns
                );
            } else {
                assert_eq!(r.dropped, 0, "{}: restores are make-before-break", r.label);
            }
            t.row([
                r.label.to_string(),
                n.to_string(),
                format!("{:.2}", r.repair.elapsed.as_secs_f64() * 1e3),
                format!("{:.2}", r.repair.compile_elapsed.as_secs_f64() * 1e3),
                r.repair.recompiled.to_string(),
                r.repair.reused.to_string(),
                r.repair.reinstalled.to_string(),
                format!("{:.1}", tel.blackout_ns as f64 / 1e3),
                tel.dropped.to_string(),
                tel.duplicated.to_string(),
                tel.misdelivered.to_string(),
                tel.blackholes.to_string(),
                tel.loops.to_string(),
                r.recovered.to_string(),
            ]);
        }
        assert!(d.network.fault_mask().is_healthy(), "every fault was healed");
    }
    t.emit("faults");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_emits_all_failure_types() {
        let tables = run(Scale::Quick);
        assert_eq!(tables.len(), 1);
        let labels: Vec<&str> = tables[0].rows.iter().map(|r| r[0].as_str()).collect();
        assert_eq!(labels, vec!["link-down", "link-up", "switch-crash", "switch-restore"]);
    }

    #[test]
    fn quick_run_is_deterministic() {
        let a = run(Scale::Quick);
        let b = run(Scale::Quick);
        // Timing columns (2, 3) vary run to run; everything the fault
        // model controls must not.
        for (ra, rb) in a[0].rows.iter().zip(b[0].rows.iter()) {
            for i in [0usize, 1, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13] {
                assert_eq!(ra[i], rb[i], "column {i}");
            }
        }
    }
}
