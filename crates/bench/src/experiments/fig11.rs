//! Fig. 11 — hICN video streaming: latency for *uncached* content with
//! and without the meter-gated forwarder bypass (§VIII-E.3).
//!
//! Two streaming clients request hot content; a third scans many cold
//! identifiers. Baseline routes everything through the software
//! forwarder; Camus sends only likely-hot requests there. The paper
//! reports a 21 % reduction in 95th-percentile latency for uncached
//! content and ~3 % more forwarder throughput for the hot streams.

use super::Scale;
use crate::output::{fmt_ns, Table};
use camus_apps::hicn::{latency_quantile, run as run_hicn, HicnConfig, Mode, Served};
use camus_workloads::content::{ContentConfig, ContentStream, Request};

/// Build the three-client mix: two hot streams + one cold scanner.
fn workload(total: usize, seed: u64) -> (Vec<Request>, u64) {
    let catalogue = 64;
    let mut s = ContentStream::new(ContentConfig { catalogue, skew: 1.2, gap_ns: 2_500, seed });
    let mut reqs = Vec::with_capacity(total);
    let mut cold_pos = 0u64;
    for i in 0..total {
        if i % 5 == 4 {
            reqs.push(s.next_cold(&mut cold_pos)); // the scanning client
        } else {
            reqs.push(s.next_popular()); // the streaming clients
        }
    }
    (reqs, catalogue as u64)
}

fn split_cold(
    served: &[Served],
    requests: &[Request],
    catalogue: u64,
) -> (Vec<Served>, Vec<Served>) {
    let mut cold = Vec::new();
    let mut hot = Vec::new();
    for (s, r) in served.iter().zip(requests) {
        if r.content_id >= catalogue {
            cold.push(*s);
        } else {
            hot.push(*s);
        }
    }
    (cold, hot)
}

pub fn run(scale: Scale) -> Vec<Table> {
    let total = scale.pick(20_000, 200_000);
    let (reqs, catalogue) = workload(total, 0x11CC);
    let cfg = HicnConfig::default();
    let base = run_hicn(&reqs, Mode::Baseline, cfg.clone());
    let camus = run_hicn(&reqs, Mode::Camus, cfg);

    let mut t = Table::new(
        "Fig. 11: hICN latency for uncached (cold) content",
        &["system", "cold p50", "cold p95", "cold p99", "forwarder load", "hot hit-rate"],
    );
    for (name, served) in [("baseline", &base), ("camus", &camus)] {
        let (cold, hot) = split_cold(served, &reqs, catalogue);
        let fwd_load = served.iter().filter(|s| s.via_forwarder).count();
        let hot_via: Vec<&Served> = hot.iter().filter(|s| s.via_forwarder).collect();
        let hit_rate = if hot_via.is_empty() {
            0.0
        } else {
            hot_via.iter().filter(|s| s.cache_hit).count() as f64 / hot_via.len() as f64
        };
        t.row([
            name.to_string(),
            fmt_ns(latency_quantile(&cold, 0.50)),
            fmt_ns(latency_quantile(&cold, 0.95)),
            fmt_ns(latency_quantile(&cold, 0.99)),
            format!("{:.1}%", 100.0 * fwd_load as f64 / served.len() as f64),
            format!("{:.1}%", 100.0 * hit_rate),
        ]);
    }
    // The headline number: p95 improvement for cold content.
    let (cold_b, _) = split_cold(&base, &reqs, catalogue);
    let (cold_c, _) = split_cold(&camus, &reqs, catalogue);
    let p95_b = latency_quantile(&cold_b, 0.95) as f64;
    let p95_c = latency_quantile(&cold_c, 0.95) as f64;
    let mut headline = Table::new("Fig. 11 headline", &["metric", "value", "paper"]);
    headline.row([
        "cold p95 reduction".into(),
        format!("{:.0}%", 100.0 * (1.0 - p95_c / p95_b)),
        "21%".into(),
    ]);
    t.emit("fig11");
    headline.emit("fig11_headline");
    vec![t, headline]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_p95_improves_meaningfully() {
        let (reqs, catalogue) = workload(30_000, 7);
        let cfg = HicnConfig::default();
        let base = run_hicn(&reqs, Mode::Baseline, cfg.clone());
        let camus = run_hicn(&reqs, Mode::Camus, cfg);
        let (cold_b, _) = split_cold(&base, &reqs, catalogue);
        let (cold_c, _) = split_cold(&camus, &reqs, catalogue);
        let p95_b = latency_quantile(&cold_b, 0.95) as f64;
        let p95_c = latency_quantile(&cold_c, 0.95) as f64;
        let reduction = 1.0 - p95_c / p95_b;
        assert!(reduction > 0.0, "cold p95 must improve: {p95_b} -> {p95_c} ({reduction:.2})");
    }

    #[test]
    fn hot_streams_still_hit_the_cache_under_camus() {
        let (reqs, catalogue) = workload(30_000, 7);
        let camus = run_hicn(&reqs, Mode::Camus, HicnConfig::default());
        let (_, hot) = split_cold(&camus, &reqs, catalogue);
        let via: Vec<_> = hot.iter().filter(|s| s.via_forwarder).collect();
        assert!(!via.is_empty(), "hot requests route to the forwarder");
        let hits = via.iter().filter(|s| s.cache_hit).count();
        assert!(hits * 2 > via.len(), "hot content mostly hits: {hits}/{}", via.len());
    }

    #[test]
    fn quick_run_emits_tables() {
        assert_eq!(run(Scale::Quick).len(), 2);
    }
}
