//! Crash recovery: what a controller restart costs, and what the WAL
//! costs while nothing is crashing.
//!
//! **Recovery cost** (`results/recovery.csv`): a seeded Poisson churn
//! stream runs against the 72-switch churn testbed with the WAL on,
//! the controller is killed mid-stream (no drain, no flush), and
//! [`CamusService::recover`] rebuilds it from the log. Measured per
//! (snapshot cadence × ops) cell: log length, replayed tail, host
//! wall-clock recovery time and modelled control-plane time of the
//! reconcile + reinstall transaction. The cadence sweep is the point:
//! snapshots bound the replay tail, so recovery time flattens as the
//! cadence tightens while the never-snapshot column degrades with log
//! length. Every recovered controller must converge — its recompiled
//! fingerprints are checked against a fresh deploy of the same
//! subscription state.
//!
//! **WAL overhead** (`"recovery"` in `BENCH_throughput.json`): the
//! same churn stream is fed to the batched service lane (PR-7's
//! configuration) twice — volatile vs write-ahead logged — and the
//! sustained accepted-ops/second must stay within 10% of the volatile
//! lane. The log is append-only text with no sync barrier, so the
//! cost is one formatted line per accepted request plus a snapshot
//! per cadence; the assertion pins that it stays noise-level.

use super::churn::{churn_net, spread_subscriptions};
use super::service::generator;
use super::Scale;
use crate::output::{merge_bench_json, Table};
use camus_core::statics::compile_static;
use camus_net::controller::Controller;
use camus_net::PerfectChannel;
use camus_routing::algorithm1::{Policy, RoutingConfig};
use camus_service::{CamusService, RequestOp, ServiceConfig, ServiceOutcome, Wal};
use camus_workloads::churn::{ChurnConfig, ChurnOp, PoissonChurn};

struct Harness {
    ctrl: Controller,
    events: Vec<(usize, RequestOp, u64)>,
    initial: Vec<Vec<camus_lang::ast::Expr>>,
}

/// One seeded workload shared by every lane and cell: same initial
/// spread, same churn schedule, so rows differ only in durability
/// settings.
fn harness(scale: Scale, ops: usize) -> Harness {
    let net = churn_net();
    let mut g = generator(0xC4A2);
    let initial = spread_subscriptions(&mut g, &net, scale.pick(256, 1_000));
    let statics = compile_static(&g.spec()).expect("siena spec compiles");
    let ctrl = Controller::new(statics, RoutingConfig::new(Policy::MemoryReduction));
    let mut churn = PoissonChurn::new(
        ChurnConfig { rate_per_s: 4_000.0, unsubscribe_fraction: 0.3, seed: 0x5EED },
        net.host_count(),
        &initial,
    );
    let events = churn
        .schedule(&mut g, ops)
        .into_iter()
        .map(|ev| {
            let op = match ev.op {
                ChurnOp::Subscribe(f) => RequestOp::Subscribe(f),
                ChurnOp::Unsubscribe(f) => RequestOp::Unsubscribe(f),
            };
            (ev.host, op, ev.at_ns)
        })
        .collect();
    Harness { ctrl, events, initial }
}

fn start(h: &Harness, cfg: ServiceConfig) -> CamusService {
    let ctrl = h.ctrl.clone();
    let deployment = ctrl.deploy(churn_net(), &h.initial).expect("initial deploy");
    CamusService::start(ctrl, deployment, h.initial.clone(), Box::new(PerfectChannel), cfg)
}

fn feed(svc: &mut CamusService, events: &[(usize, RequestOp, u64)]) {
    for (host, op, at_ns) in events {
        svc.request(*host, op.clone(), *at_ns);
    }
}

/// Feed in chunks with a drain between each, so the run commits many
/// transactions instead of coalescing the whole stream into one or
/// two — the snapshot cadence only has something to count against a
/// multi-transaction history. The last chunk stays undrained: the
/// kill lands with work in flight.
fn feed_chunked(svc: &mut CamusService, events: &[(usize, RequestOp, u64)], chunks: usize) {
    let size = events.len().div_ceil(chunks).max(1);
    let mut it = events.chunks(size).peekable();
    while let Some(chunk) = it.next() {
        feed(svc, chunk);
        if it.peek().is_some() {
            svc.drain();
        }
    }
}

/// Modelled sustained accepted-ops/second, as the `service` experiment
/// computes it.
fn sustained_per_s(out: &ServiceOutcome, first_arrival: u64) -> f64 {
    let last_deployed =
        out.reports.iter().map(|r| r.deployed_ns).max().unwrap_or(first_arrival + 1);
    let span_ns = last_deployed.saturating_sub(first_arrival).max(1);
    out.stats.accepted as f64 / span_ns as f64 * 1e9
}

pub fn run(scale: Scale) -> Vec<Table> {
    // --- Recovery cost vs log length × snapshot cadence ---
    let mut t = Table::new(
        "Controller recovery: WAL replay + staged reconciliation cost",
        &[
            "snapshot_every",
            "ops",
            "wal_lines",
            "snapshots",
            "tail_replayed",
            "recover_ms",
            "control_ms",
            "rolled_forward",
            "aborted",
            "finalized",
            "reverted",
            "reinstalled",
        ],
    );

    let op_sizes = scale.pick(vec![60, 120], vec![200, 600]);
    let cadences: &[u64] = &[0, 1, 4, 16];
    for &ops in &op_sizes {
        let h = harness(scale, ops);
        for &cadence in cadences {
            let wal = Wal::in_memory();
            let cfg = ServiceConfig {
                wal: Some(wal.clone()),
                snapshot_every: cadence,
                ..ServiceConfig::default()
            };
            let mut svc = start(&h, cfg);
            feed_chunked(&mut svc, &h.events, 8);
            let wreck = svc.kill();
            assert!(wreck.errors.is_empty(), "churn run failed: {:?}", wreck.errors);

            let t0 = std::time::Instant::now();
            let (svc, rec) = CamusService::recover(
                h.ctrl.clone(),
                wreck.deployment.network,
                wal.clone(),
                Box::new(PerfectChannel),
                ServiceConfig::default(),
            )
            .expect("recovery over a perfect channel must commit");
            let recover_ms = t0.elapsed().as_secs_f64() * 1e3;
            let out = svc.shutdown();
            assert!(out.errors.is_empty(), "recovered service failed: {:?}", out.errors);

            // Convergence rider: the recovered controller's compiled
            // fingerprints match a fresh deploy of the same state.
            let fresh = h.ctrl.deploy(churn_net(), &out.subs).expect("reference deploy");
            let fp = |o: &camus_net::controller::Deployment| -> Vec<(usize, u64)> {
                o.compile.switches.iter().map(|s| (s.switch, s.fingerprint)).collect()
            };
            assert_eq!(
                fp(&out.deployment),
                fp(&fresh),
                "recovered state diverged (cadence {cadence})"
            );

            t.row([
                cadence.to_string(),
                ops.to_string(),
                rec.wal_lines.to_string(),
                wreck.stats.snapshots.to_string(),
                rec.tail_replayed.to_string(),
                format!("{recover_ms:.2}"),
                format!("{:.3}", rec.control_ns as f64 / 1e6),
                rec.reconcile.rolled_forward.to_string(),
                rec.reconcile.aborted.to_string(),
                rec.reconcile.finalized.to_string(),
                rec.reconcile.reverted.to_string(),
                rec.reconcile.reinstalled.to_string(),
            ]);
        }
    }
    t.emit("recovery");

    // --- WAL overhead vs the volatile batched lane ---
    let ops = scale.pick(120, 600);
    let h = harness(scale, ops);
    let first_arrival = h.events.first().map(|e| e.2).unwrap_or(0);

    let lane = |wal: Option<Wal>| -> (ServiceOutcome, f64, f64) {
        let cfg = ServiceConfig { wal, snapshot_every: 8, ..ServiceConfig::default() };
        let wall = std::time::Instant::now();
        let mut svc = start(&h, cfg);
        feed(&mut svc, &h.events);
        let out = svc.shutdown();
        let wall_ms = wall.elapsed().as_secs_f64() * 1e3;
        assert!(out.errors.is_empty(), "lane failed: {:?}", out.errors);
        let per_s = sustained_per_s(&out, first_arrival);
        (out, per_s, wall_ms)
    };
    let (volatile_out, volatile_per_s, volatile_wall) = lane(None);
    let logged_wal = Wal::in_memory();
    let (logged_out, logged_per_s, logged_wall) = lane(Some(logged_wal.clone()));

    // Identical churn, identical batching: the logged lane must accept
    // and commit exactly what the volatile lane did.
    assert_eq!(logged_out.stats.accepted, volatile_out.stats.accepted);
    let overhead_pct = (1.0 - logged_per_s / volatile_per_s.max(1e-9)) * 100.0;
    assert!(
        overhead_pct <= 10.0,
        "WAL overhead {overhead_pct:.1}% exceeds the 10% budget \
         (volatile {volatile_per_s:.0}/s, logged {logged_per_s:.0}/s)"
    );

    let mut o = Table::new(
        "WAL overhead: batched churn lane, volatile vs write-ahead logged",
        &["mode", "ops", "accepted", "wal_lines", "snapshots", "sustained_per_s", "wall_ms"],
    );
    for (mode, out, per_s, wall_ms, lines) in [
        ("volatile", &volatile_out, volatile_per_s, volatile_wall, 0usize),
        ("wal", &logged_out, logged_per_s, logged_wall, logged_wal.len()),
    ] {
        o.row([
            mode.to_string(),
            ops.to_string(),
            out.stats.accepted.to_string(),
            lines.to_string(),
            out.stats.snapshots.to_string(),
            format!("{per_s:.0}"),
            format!("{wall_ms:.0}"),
        ]);
    }
    o.emit("recovery_overhead");

    merge_bench_json(
        "recovery",
        &format!(
            "{{\"volatile_subs_per_s\": {volatile_per_s:.0}, \
             \"wal_subs_per_s\": {logged_per_s:.0}, \
             \"wal_overhead_pct\": {overhead_pct:.2}, \
             \"snapshots\": {}, \"wal_lines\": {}}}",
            logged_out.stats.snapshots,
            logged_wal.len(),
        ),
    );

    vec![t, o]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_recovers_and_stays_under_the_wal_budget() {
        // run() asserts internally: every recovered controller's
        // fingerprints match a fresh deploy, and WAL overhead <= 10%.
        let tables = run(Scale::Quick);
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].rows.len(), 8, "2 op sizes x 4 cadences");
        assert_eq!(tables[1].rows.len(), 2);
    }
}
