//! One module per reproduced table/figure. Each exposes
//! `run(scale) -> Vec<Table>`: `Scale::Quick` shrinks workload sizes
//! for CI; `Scale::Full` matches the paper's parameters.

pub mod chaos;
pub mod churn;
pub mod faults;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig8;
pub mod fig9;
pub mod recovery;
pub mod scale;
pub mod service;
pub mod tab1;
pub mod telemetry;
pub mod throughput;

/// Workload sizing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-scale runs for tests and smoke checks.
    Quick,
    /// The paper's parameters (minutes-scale).
    Full,
}

impl Scale {
    pub fn pick<T>(&self, quick: T, full: T) -> T {
        match self {
            Scale::Quick => quick,
            Scale::Full => full,
        }
    }
}
