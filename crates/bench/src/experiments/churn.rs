//! Subscription churn — incremental vs full recompilation.
//!
//! The Fig. 14 experiment recompiles the whole network from scratch on
//! every subscription change. Real subscription workloads churn one
//! subscriber at a time, and fingerprint-based incremental
//! recompilation ([`camus_routing::compile::compile_network_incremental`])
//! only recompiles the switches whose routed rule list actually
//! changed. This experiment quantifies that: starting from N Siena
//! subscriptions spread over the hosts of a (wider-than-paper) fat
//! tree, each step replaces one host's newest subscription and measures
//! the compile-stage wall-clock of a full recompile vs an incremental
//! one, plus the recompiled/reused switch split.
//!
//! MR policy is used (up-filters are constant `True`), so a change at
//! one host dirties its access ToR, its designated agg, and the core
//! layer. The incremental path still wins big because its compile
//! cache is content-addressed: the full-mesh core layer carries one
//! shared rule list and costs one compile instead of one per core,
//! and every off-path ToR/agg is a fingerprint hit. (Under TR a
//! single change can legitimately dirty almost every up-filter in the
//! network, and incremental compilation honestly degrades to a full
//! one.)

use super::Scale;
use crate::output::Table;
use camus_core::compiler::Compiler;
use camus_lang::ast::Expr;
use camus_routing::algorithm1::{route_hierarchical, Policy, RoutingConfig, RoutingResult};
use camus_routing::compile::{compile_network, compile_network_incremental, NetworkCompile};
use camus_routing::topology::{three_layer, HierNet};
use camus_workloads::siena::{SienaConfig, SienaGenerator};
use rand::prelude::*;

/// The churn testbed: 8 pods × 4 ToRs × 4 hosts = 128 hosts,
/// 72 switches — wide enough that one host's distribution path is a
/// small fraction of the network.
pub fn churn_net() -> HierNet {
    three_layer(8, 4, 4, 8, 4)
}

fn routing_config() -> RoutingConfig {
    RoutingConfig::new(Policy::MemoryReduction)
}

/// The churn workload generator: a Zipf-skewed anchor universe — the
/// shape of the ITCH workload, where subscription mass concentrates on
/// popular symbols. One generator instance serves both the initial
/// population and the churned-in filters so attribute typing stays
/// consistent.
fn generator(seed: u64) -> SienaGenerator {
    SienaGenerator::new(SienaConfig {
        predicates_per_filter: 2,
        n_attributes: 3,
        string_fraction: 0.25,
        anchor_universe: 400,
        anchor_skew: 0.5,
        seed,
        ..Default::default()
    })
}

/// N Siena filters dealt round-robin over the hosts.
pub fn spread_subscriptions(g: &mut SienaGenerator, net: &HierNet, total: usize) -> Vec<Vec<Expr>> {
    let hosts = net.host_count();
    let mut subs: Vec<Vec<Expr>> = vec![Vec::new(); hosts];
    for (i, f) in g.filters(total).into_iter().enumerate() {
        subs[i % hosts].push(f);
    }
    subs
}

/// One churn step's measurements.
#[derive(Debug, Clone)]
pub struct ChurnStep {
    pub full_ms: f64,
    pub incremental_ms: f64,
    pub recompiled: usize,
    pub reused: usize,
}

impl ChurnStep {
    pub fn speedup(&self) -> f64 {
        self.full_ms / self.incremental_ms.max(1e-6)
    }
}

fn route(net: &HierNet, subs: &[Vec<Expr>]) -> RoutingResult {
    route_hierarchical(net, subs, routing_config())
}

/// Run `steps` single-host churn steps against `subs`, measuring a full
/// and an incremental compile per step. Routing (Algorithm 1) is run
/// outside the timed regions: the controller pays it identically either
/// way, and the tentpole under test is the compile stage.
pub fn measure_churn(
    net: &HierNet,
    mut subs: Vec<Vec<Expr>>,
    mut fresh: SienaGenerator,
    steps: usize,
    seed: u64,
) -> Vec<ChurnStep> {
    let compiler = Compiler::new();
    let mut rng = StdRng::seed_from_u64(seed);

    let routing = route(net, &subs);
    let mut previous: NetworkCompile =
        compile_network(&routing, &compiler).expect("baseline compiles");

    let mut out = Vec::with_capacity(steps);
    for _ in 0..steps {
        // Churn: one host swaps its newest subscription for a fresh one
        // (an unsubscribe followed by a subscribe).
        let host = rng.gen_range(0..net.host_count());
        subs[host].pop();
        subs[host].push(fresh.filter());
        let routing = route(net, &subs);

        let t0 = std::time::Instant::now();
        let full = compile_network(&routing, &compiler).expect("full recompile");
        let full_ms = t0.elapsed().as_secs_f64() * 1e3;
        std::hint::black_box(full.total_entries());

        let t0 = std::time::Instant::now();
        let incremental = compile_network_incremental(&routing, &compiler, Some(&previous))
            .expect("incremental recompile");
        let incremental_ms = t0.elapsed().as_secs_f64() * 1e3;
        std::hint::black_box(incremental.total_entries());

        out.push(ChurnStep {
            full_ms,
            incremental_ms,
            recompiled: incremental.recompiled,
            reused: incremental.reused,
        });
        previous = incremental;
    }
    out
}

pub fn run(scale: Scale) -> Vec<Table> {
    let counts: &[usize] = scale.pick(&[256][..], &[1_024, 4_096][..]);
    let steps = scale.pick(6, 12);
    let net = churn_net();
    let mut t = Table::new(
        "Churn: full vs incremental recompile per subscription change (ms)",
        &["subscriptions", "step", "full_ms", "incremental_ms", "speedup", "recompiled", "reused"],
    );
    for &n in counts {
        let mut g = generator(0xC4A2);
        let subs = spread_subscriptions(&mut g, &net, n);
        let steps = measure_churn(&net, subs, g, steps, 0x5EED);
        for (i, s) in steps.into_iter().enumerate() {
            t.row([
                n.to_string(),
                i.to_string(),
                format!("{:.2}", s.full_ms),
                format!("{:.2}", s.incremental_ms),
                format!("{:.1}", s.speedup()),
                s.recompiled.to_string(),
                s.reused.to_string(),
            ]);
        }
    }
    t.emit("churn");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn incremental_is_5x_faster_at_1k_subscriptions() {
        // The headline claim: at 1k+ subscriptions, single-host churn
        // leaves most switches fingerprint-identical and beats a full
        // recompile by at least 5× on average.
        let net = churn_net();
        let mut g = generator(7);
        let subs = spread_subscriptions(&mut g, &net, 1_024);
        let steps = measure_churn(&net, subs, g, 4, 7);
        let mean_speedup: f64 =
            steps.iter().map(ChurnStep::speedup).sum::<f64>() / steps.len() as f64;
        assert!(mean_speedup >= 5.0, "mean speedup {mean_speedup:.1}x below 5x: {steps:?}");
        for s in &steps {
            assert!(s.recompiled > 0, "churn must dirty the subscriber's ToR");
            assert!(
                s.reused > net.switch_count() / 2,
                "most switches should be reused, got {} of {}",
                s.reused,
                net.switch_count()
            );
            assert_eq!(s.recompiled + s.reused, net.switch_count());
        }
    }

    #[test]
    fn quick_run_emits_table() {
        let tables = run(Scale::Quick);
        assert_eq!(tables.len(), 1);
        assert!(!tables[0].rows.is_empty());
    }
}
