//! Telemetry — observability overhead and anomaly-detection coverage.
//!
//! Three tables, all seeded:
//!
//! * **Overhead** (`results/telemetry_overhead.csv`) — the PR-3
//!   compiled batch lane re-measured with [`SwitchTelemetry`] attached
//!   at sampling rates off, 1/256, 1/16 and 1/1, against the bare
//!   (unattached) switch. Disabled sampling must sit within noise of
//!   bare: the fast path pays one counter increment and a mask test.
//!   The measured overhead also lands under a `"telemetry"` key in
//!   `BENCH_throughput.json` (merged, not clobbered).
//! * **Anomaly** (`results/telemetry_anomaly.csv`) — the faults
//!   experiment's failure schedule on the 72-switch churn fat tree with
//!   every probe postcard-traced: per event, the collector-derived
//!   missing-delivery count must equal the delivery-log count (100%
//!   blackhole detection) with zero loop reports.
//! * **Trace** (`results/telemetry_trace.csv`) — the controller's
//!   [`DeployTrace`] for the initial deploy: per-phase latency split
//!   into wall-clock (route, compile) and modelled control time
//!   (stage, commit).

use super::churn::{churn_net, spread_subscriptions};
use super::faults::{chain_link, generator};
use super::throughput::{build_switch, int_packets};
use super::Scale;
use crate::output::{fmt_mpps, merge_bench_json, Table};
use camus_core::statics::compile_static;
use camus_dataplane::packet::{Packet, PacketBuilder};
use camus_dataplane::{Switch, SwitchTelemetry};
use camus_faults::{run_fault, FaultKind, ProbeConfig, RepairModel};
use camus_lang::ast::{Expr, Operand, Port};
use camus_lang::value::Value;
use camus_net::controller::Controller;
use camus_routing::algorithm1::{Policy, RoutingConfig};
use camus_telemetry::{MetricsRegistry, SampleRate};
use std::collections::HashMap;
use std::time::Instant;

/// Per-packet cost of one full pass over `packets` through the batched
/// fast path (global packet indices, reusable output allocation).
fn one_pass_ns(sw: &mut Switch, packets: &[(Packet, Port)]) -> f64 {
    let mut out = Vec::with_capacity(64);
    let t0 = Instant::now();
    let mut idx = 0u64;
    for chunk in packets.chunks(64) {
        sw.process_batch_indexed(chunk, idx, &mut out);
        std::hint::black_box(&mut out);
        idx += chunk.len() as u64;
    }
    t0.elapsed().as_nanos() as f64 / packets.len() as f64
}

struct OverheadLane {
    label: &'static str,
    ns_per_pkt: f64,
    overhead_pct: f64,
    sampled: u64,
}

/// Measure bare vs telemetry-attached throughput at each sampling rate.
///
/// All lanes are built and warmed before any timing, then repetitions
/// are *interleaved* round-robin with a per-lane best-of (the same
/// discipline as the `eval_fastpath` bench guard). An earlier revision
/// timed the bare lane first, start to finish: it absorbed the
/// process-wide warmup alone and the experiment reported *negative*
/// telemetry overhead. Interleaving spreads drift evenly, so the bare
/// lane is a fair baseline; residual negative differences are asserted
/// to sit within a small epsilon and clamped to zero in the report.
fn overhead_lanes(scale: Scale) -> (Vec<OverheadLane>, f64) {
    let n_filters = 1_000;
    let n_packets = scale.pick(4_000, 50_000);
    let reps = scale.pick(5, 9);
    let packets: Vec<(Packet, Port)> = int_packets(n_packets).into_iter().map(|p| (p, 0)).collect();
    let base = build_switch(n_filters);

    let rates = [
        ("off", SampleRate::DISABLED),
        ("1/256", SampleRate::every(256)),
        ("1/16", SampleRate::every(16)),
        ("1/1", SampleRate::always()),
    ];
    // Build every lane before any clock starts.
    let mut built: Vec<(&'static str, Switch, Option<MetricsRegistry>)> =
        vec![("bare", base.clone(), None)];
    for (label, rate) in rates {
        let registry = MetricsRegistry::new();
        let mut sw = base.clone();
        sw.attach_telemetry(SwitchTelemetry::new(&registry, rate));
        built.push((label, sw, Some(registry)));
    }
    // Warm caches and the branch predictor of every lane off the clock.
    for (_, sw, _) in built.iter_mut() {
        for chunk in packets.chunks(64).take(4) {
            std::hint::black_box(sw.process_batch(chunk, 0));
        }
    }
    // Interleaved best-of-N: one pass per lane per round. A lane
    // measuring *faster* than bare beyond eps means the bare minimum
    // has not hit a quiet window yet (e.g. the test harness runs
    // other suites concurrently), so keep adding rounds — best-of is
    // monotone, extra rounds only tighten both sides — and only treat
    // a persistent violation as a broken harness.
    let eps = scale.pick(15.0, 3.0);
    let mut best = vec![f64::INFINITY; built.len()];
    let mut rounds = 0;
    loop {
        for (i, (_, sw, _)) in built.iter_mut().enumerate() {
            best[i] = best[i].min(one_pass_ns(sw, &packets));
        }
        rounds += 1;
        let settled = best[1..].iter().all(|&ns| (ns - best[0]) / best[0] * 100.0 >= -eps);
        if (rounds >= reps && settled) || rounds >= reps * 5 {
            break;
        }
    }

    let bare_ns = best[0];
    // Negative overhead beyond measurement noise means the harness is
    // broken again (quick CI timings jitter more than the effect).
    let mut lanes =
        vec![OverheadLane { label: "bare", ns_per_pkt: bare_ns, overhead_pct: 0.0, sampled: 0 }];
    let mut disabled_overhead = 0.0;
    for (i, (label, _, registry)) in built.iter().enumerate().skip(1) {
        let ns = best[i];
        let raw = (ns - bare_ns) / bare_ns * 100.0;
        assert!(
            raw >= -eps,
            "{label}: telemetry measured {raw:.2}% *faster* than bare (eps {eps}%) — \
             the baseline absorbed warmup or drift"
        );
        let overhead = raw.max(0.0);
        let sampled = registry.as_ref().expect("instrumented lane").snapshot().counters
            ["switch.sampled_packets"];
        if *label == "off" {
            disabled_overhead = overhead;
            assert_eq!(sampled, 0, "disabled sampler must select nothing");
        }
        if *label == "1/1" {
            assert!(sampled as usize >= packets.len(), "1/1 sampler must select every packet");
        }
        lanes.push(OverheadLane { label, ns_per_pkt: ns, overhead_pct: overhead, sampled });
    }
    (lanes, disabled_overhead)
}

/// The faults schedule with every probe traced: log-derived and
/// postcard-derived accounting must agree pair-for-pair.
fn anomaly_table(scale: Scale) -> Table {
    let (warmup, after) = scale.pick((3, 30), (5, 40));
    let interval_ns = 20_000u64;
    let model = RepairModel::default();
    let net = churn_net();
    let n_subs = scale.pick(64, 256);

    let mut g = generator(0xFA17);
    let subs = spread_subscriptions(&mut g, &net, n_subs);
    let spec = g.spec();
    let statics = compile_static(&spec).expect("siena statics compile");
    let ctrl = Controller::new(statics, RoutingConfig::new(Policy::MemoryReduction));

    let target = (0..net.host_count()).find(|&h| !subs[h].is_empty()).expect("a subscriber");
    let witness: HashMap<String, Value> = g.matching_packet(&subs[target][0]).into_iter().collect();
    let lookup = |op: &Operand| match op {
        Operand::Field(name) => witness.get(name).cloned(),
        Operand::Aggregate { .. } => None,
    };
    let matches = |fs: &[Expr]| fs.iter().any(|f| f.eval_with(lookup));
    let publisher = (0..net.host_count())
        .find(|&h| net.access[h].0 != net.access[target].0 && !matches(&subs[h]))
        .expect("a non-matching publisher on another ToR");
    let expected: Vec<usize> =
        (0..net.host_count()).filter(|&h| h != publisher && matches(&subs[h])).collect();

    let mut b = PacketBuilder::new(&spec);
    for (field, value) in &witness {
        b = b.stack_field("siena", field, value.clone());
    }
    let probe = ProbeConfig { publisher, packet: b.build(), expected, interval_ns, warmup, after };

    let mut d = ctrl.deploy(net.clone(), &subs).expect("deploy compiles");
    d.network.attach_telemetry(SampleRate::always());
    let (agg, port) = chain_link(&net, target);

    let mut t = Table::new(
        "Telemetry: blackhole detection vs delivery-log ground truth",
        &[
            "failure",
            "probes",
            "measured_hosts",
            "injected_missing",
            "detected_missing",
            "blackholes",
            "hit_rate_pct",
            "loops",
            "blackout_us",
        ],
    );
    for kind in [
        FaultKind::LinkDown { switch: agg, port },
        FaultKind::LinkUp { switch: agg, port },
        FaultKind::SwitchCrash { switch: agg },
        FaultKind::SwitchRestore { switch: agg },
    ] {
        let r = run_fault(&ctrl, &mut d, &subs, kind, &probe, &model, 0).expect("repair compiles");
        let tel = r.telemetry.as_ref().expect("telemetry attached");
        // 100% detection: every (host, probe) pair the delivery logs
        // say went missing is named by a blackhole anomaly.
        assert_eq!(
            tel.dropped,
            r.dropped,
            "{}: collector missed {} of {} injected blackhole pairs",
            r.label,
            r.dropped.saturating_sub(tel.dropped),
            r.dropped
        );
        assert_eq!(tel.loops, 0, "{}: false loop report", r.label);
        assert_eq!(tel.blackholes > 0, r.dropped > 0, "{}: blackhole flagging", r.label);
        let hit_rate =
            if r.dropped == 0 { 100.0 } else { tel.dropped as f64 / r.dropped as f64 * 100.0 };
        t.row([
            r.label.to_string(),
            r.probes.to_string(),
            r.measured_hosts.to_string(),
            r.dropped.to_string(),
            tel.dropped.to_string(),
            tel.blackholes.to_string(),
            format!("{hit_rate:.1}"),
            tel.loops.to_string(),
            format!("{:.1}", tel.blackout_ns as f64 / 1e3),
        ]);
    }
    assert!(d.network.fault_mask().is_healthy(), "every fault was healed");
    t
}

/// The per-phase latency breakdown of a deploy on the churn tree.
fn trace_table(scale: Scale) -> Table {
    let net = churn_net();
    let n_subs = scale.pick(64, 256);
    let mut g = generator(0xFA17);
    let subs = spread_subscriptions(&mut g, &net, n_subs);
    let statics = compile_static(&g.spec()).expect("siena statics compile");
    let ctrl = Controller::new(statics, RoutingConfig::new(Policy::MemoryReduction));
    let d = ctrl.deploy(net, &subs).expect("deploy compiles");

    let ledger: u64 = d.report.switches.iter().map(|e| e.control_ns).sum();
    assert_eq!(d.trace.modelled_control_ns(), ledger, "trace must tile the ledger");

    let mut t = Table::new(
        "Telemetry: deploy span trace (wall vs modelled control time)",
        &["phase", "clock", "duration_ns"],
    );
    for s in &d.trace.spans {
        t.row([
            s.phase.label().to_string(),
            if s.modelled { "modelled".to_string() } else { "wall".to_string() },
            s.duration_ns.to_string(),
        ]);
    }
    t
}

pub fn run(scale: Scale) -> Vec<Table> {
    let (lanes, disabled_overhead) = overhead_lanes(scale);
    let mut overhead = Table::new(
        "Telemetry: fast-path overhead by sampling rate (1k filters, batched)",
        &["rate", "ns_per_pkt", "mpps", "overhead_pct", "sampled_packets"],
    );
    for l in &lanes {
        overhead.row([
            l.label.to_string(),
            format!("{:.1}", l.ns_per_pkt),
            fmt_mpps(1e9 / l.ns_per_pkt),
            format!("{:+.2}", l.overhead_pct),
            l.sampled.to_string(),
        ]);
    }
    overhead.emit("telemetry_overhead");
    // The acceptance bound: disabled telemetry within 3% of the bare
    // PR-3 lane. Quick (CI) runs keep a looser bound — short timings on
    // shared runners jitter more than the effect being measured; the
    // `eval_fastpath` bench guard enforces 3% with interleaved timing.
    let bound = scale.pick(25.0, 3.0);
    assert!(
        disabled_overhead <= bound,
        "disabled telemetry costs {disabled_overhead:.2}% (> {bound}%)"
    );
    merge_bench_json(
        "telemetry",
        &format!(
            "{{\"disabled_overhead_pct\": {:.2}, \"ns_per_pkt\": {{{}}}}}",
            disabled_overhead,
            lanes
                .iter()
                .map(|l| format!("\"{}\": {:.1}", l.label, l.ns_per_pkt))
                .collect::<Vec<_>>()
                .join(", ")
        ),
    );

    let anomaly = anomaly_table(scale);
    anomaly.emit("telemetry_anomaly");
    let trace = trace_table(scale);
    trace.emit("telemetry_trace");
    vec![overhead, anomaly, trace]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_emits_overhead_anomaly_and_trace() {
        let tables = run(Scale::Quick);
        assert_eq!(tables.len(), 3);
        // Overhead: bare + four rates.
        assert_eq!(tables[0].rows.len(), 5);
        assert_eq!(tables[0].rows[0][0], "bare");
        // Anomaly: all four failure kinds, all at 100% detection.
        assert_eq!(tables[1].rows.len(), 4);
        for row in &tables[1].rows {
            assert_eq!(row[6], "100.0", "{}: hit rate", row[0]);
            assert_eq!(row[7], "0", "{}: loops", row[0]);
        }
        // The cut must actually have injected something to detect.
        assert_ne!(tables[1].rows[0][3], "0", "link-down dropped nothing");
        // Trace: all six phases in order.
        let phases: Vec<&str> = tables[2].rows.iter().map(|r| r[0].as_str()).collect();
        assert_eq!(phases, vec!["route", "compile", "admit", "stage", "commit", "finalize"]);
        let json = std::fs::read_to_string("BENCH_throughput.json").unwrap();
        assert!(json.contains("\"telemetry\""));
        assert!(json.contains("\"disabled_overhead_pct\""));
    }

    #[test]
    fn anomaly_accounting_is_deterministic() {
        let a = anomaly_table(Scale::Quick);
        let b = anomaly_table(Scale::Quick);
        assert_eq!(a.rows, b.rows);
    }
}
