//! Fig. 14 — dynamic-reconfiguration compile time (§VIII-G.3): how
//! long the controller takes to recompile every switch's runtime table
//! entries when subscriptions change, as a function of subscription
//! count and variables per subscription, for both policies, with and
//! without α = 10 discretisation.
//!
//! The paper's observations to reproduce: α = 10 is about two orders
//! of magnitude faster than exact compilation at scale; TR recompiles
//! all 20 switches while MR effectively recompiles only the lower
//! layers; and 1–2-variable filters compile in negligible time.

use super::Scale;
use crate::output::Table;
use camus_core::compiler::Compiler;
use camus_lang::ast::Expr;
use camus_routing::algorithm1::{route_hierarchical, Policy, RoutingConfig};
use camus_routing::compile::compile_network;
use camus_routing::topology::paper_fat_tree;
use camus_workloads::siena::{SienaConfig, SienaGenerator};
use std::time::Duration;

fn subscriptions(total: usize, vars: usize, seed: u64) -> Vec<Vec<Expr>> {
    let mut g = SienaGenerator::new(SienaConfig {
        // The Fig. 14 x-axis: filters over a universe of `vars`
        // variables, each filter constraining all of them.
        predicates_per_filter: vars,
        n_attributes: vars,
        string_fraction: 0.25,
        anchor_universe: 400,
        anchor_skew: 0.5,
        seed,
        ..Default::default()
    });
    let mut subs: Vec<Vec<Expr>> = vec![Vec::new(); 16];
    for (i, f) in g.filters(total).into_iter().enumerate() {
        subs[i % 16].push(f);
    }
    subs
}

/// Wall-clock time to route + compile the whole network.
pub fn recompile_time(total: usize, vars: usize, policy: Policy, alpha: i64) -> Duration {
    let net = paper_fat_tree();
    let subs = subscriptions(total, vars, 0xF14);
    let t0 = std::time::Instant::now();
    let routing = route_hierarchical(&net, &subs, RoutingConfig::new(policy).with_alpha(alpha));
    let compiled = compile_network(&routing, &Compiler::new()).expect("fig14 compiles");
    std::hint::black_box(compiled.total_entries());
    t0.elapsed()
}

pub fn run(scale: Scale) -> Vec<Table> {
    let counts: &[usize] = match scale {
        Scale::Quick => &[64, 256],
        Scale::Full => &[64, 256, 1_024, 4_096],
    };
    let mut tables = Vec::new();
    for (panel, policy) in
        [("a (MR)", Policy::MemoryReduction), ("b (TR)", Policy::TrafficReduction)]
    {
        let mut t = Table::new(
            &format!("Fig. 14{panel}: network recompile time (ms)"),
            &["subscriptions", "1 var", "2 vars", "3 vars", "3 vars, α=10"],
        );
        for &n in counts {
            let ms = |vars: usize, alpha: i64| {
                format!("{:.1}", recompile_time(n, vars, policy, alpha).as_secs_f64() * 1e3)
            };
            t.row([n.to_string(), ms(1, 1), ms(2, 1), ms(3, 1), ms(3, 10)]);
        }
        t.emit(&format!("fig14{}", &panel[..1]));
        tables.push(t);
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discretisation_speeds_up_compilation() {
        // α=10 collapses similar constants, shrinking the BDDs — the
        // paper reports ~two orders of magnitude at its largest scale;
        // at our test size we just require a real speedup.
        let exact = recompile_time(512, 3, Policy::TrafficReduction, 1);
        let approx = recompile_time(512, 3, Policy::TrafficReduction, 10);
        assert!(approx < exact, "α=10 {approx:?} must be faster than exact {exact:?}");
    }

    #[test]
    fn fewer_variables_compile_faster() {
        let one = recompile_time(256, 1, Policy::TrafficReduction, 1);
        let three = recompile_time(256, 3, Policy::TrafficReduction, 1);
        assert!(one < three * 2, "1-var {one:?} vs 3-var {three:?}");
    }

    #[test]
    fn quick_run_emits_two_tables() {
        assert_eq!(run(Scale::Quick).len(), 2);
    }
}
