//! Measured fast-path throughput: the compiled evaluator vs the
//! interpreted reference, across filter counts, shard counts, and
//! pipeline depths.
//!
//! Five lanes:
//!
//! * **Table A** (`results/throughput.csv`) — the INT filtering
//!   workload end-to-end through [`Switch`]: per-packet eval latency of
//!   the interpreted reference path vs the compiled fast path, then
//!   batched ([`Switch::process_batch_indexed`]) and sharded-parallel
//!   throughput in Mpps.
//! * **Table B** — evaluator scaling with pipeline depth, isolated
//!   from parsing: hand-built state-chain pipelines of depth 1–8 timed
//!   through [`CompiledPipeline::eval`] directly.
//! * **Table C** — the per-switch [`SwitchStats`] eval counters
//!   (stage hits/misses, entries scanned, batch sizes, copy sharing)
//!   observed during the compiled runs.
//! * **Table D** — per-switch resource utilization vs the default
//!   Tofino-class budget.
//! * **Table E** (`results/throughput_scaling.csv`) — the shard
//!   scaling ladder: aggregate Mpps at 1/2/4/8 shards per filter
//!   count, with the speedup over one shard.
//!
//! ## How the sharded lane measures
//!
//! Each shard owns a fully private [`Switch`] **constructed before the
//! clock starts** (an earlier revision cloned the compiled pipeline
//! inside the timed region, burying the real scaling behind clone
//! cost) and drives its contiguous slice of the packet stream through
//! `process_batch_indexed` with *global* packet indices, so shards
//! agree with the sequential lanes on timestamp-keyed window
//! semantics. Each shard's busy time is measured individually and the
//! aggregate is `total packets / slowest shard's busy time` — the
//! throughput of the shard array with one core per shard. When the
//! host actually has a core per shard the shards run concurrently
//! (`parallel_mode: "concurrent"`, per-shard wall time); on smaller
//! hosts they run back-to-back in isolation (`parallel_mode:
//! "isolated"`), which measures the same quantity without cores
//! fighting over time slices. The driver asserts the per-shard
//! counters sum exactly to the single-core lane's, so the sharded run
//! provably did the same forwarding work.
//!
//! A machine-readable summary lands in `BENCH_throughput.json` at the
//! repo root: eval-ns, Mpps, and the shard ladder keyed by filter
//! count.

use super::Scale;
use crate::output::{fmt_mpps, fmt_ns, Table};
use camus_core::compiled::{CompiledPipeline, EvalCounters};
use camus_core::compiler::Compiler;
use camus_core::pipeline::{
    LeafTable, MatchKind, MatchSpec, Pipeline, StageTable, TableEntry, STATE_INIT,
};
use camus_core::resources::{self, ResourceBudget, ResourceReport};
use camus_core::statics::compile_static;
use camus_dataplane::packet::{Packet, PacketBuilder};
use camus_dataplane::switch::{Switch, SwitchConfig, SwitchOutput, SwitchStats};
use camus_lang::ast::{Action, Operand, Port, Rule};
use camus_lang::parser::parse_expr;
use camus_lang::spec::int_spec;
use camus_lang::value::Value;
use camus_workloads::int::{IntFeed, IntFeedConfig};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Shard counts of the scaling ladder (Table E / `parallel_scaling`).
pub(crate) const SHARD_LADDER: [usize; 4] = [1, 2, 4, 8];

/// Packets per `process_batch_indexed` call in the driving loops.
const BATCH: usize = 64;

/// The fig. 9 filter family: 100 switch ids × rotating latency bounds.
pub(crate) fn rules(n: usize) -> Vec<Rule> {
    (0..n)
        .map(|i| Rule {
            filter: parse_expr(&format!(
                "switch_id == {} and hop_latency > {}",
                i % 100,
                100 + (i / 100) % 1000
            ))
            .unwrap(),
            action: Action::Forward(vec![(i % 64) as u16 + 1]),
        })
        .collect()
}

pub(crate) fn build_switch(n_filters: usize) -> Switch {
    let statics = compile_static(&int_spec()).expect("int spec compiles");
    let compiled =
        Compiler::new().with_static(statics.clone()).compile(&rules(n_filters)).expect("compiles");
    Switch::new(&statics, compiled.pipeline, SwitchConfig::default())
}

/// INT reports encoded as stack-only wire packets.
pub(crate) fn int_packets(n: usize) -> Vec<Packet> {
    let spec = int_spec();
    let mut feed = IntFeed::new(IntFeedConfig::default());
    feed.reports(n)
        .iter()
        .map(|r| {
            let mut b = PacketBuilder::new(&spec);
            for (k, v) in r.fields() {
                b = b.stack_field("int_report", &k, v);
            }
            b.build()
        })
        .collect()
}

/// One rung of the shard scaling ladder.
struct ShardRun {
    shards: usize,
    mpps: f64,
    mode: &'static str,
}

/// One filter-count measurement: eval latencies plus batched and
/// sharded throughput, and the compiled switch's counters.
struct Lane {
    filters: usize,
    interp_ns: f64,
    compiled_ns: f64,
    batch_mpps: f64,
    /// Aggregate Mpps at the top of the shard ladder.
    parallel_mpps: f64,
    parallel_mode: &'static str,
    scaling: Vec<ShardRun>,
    stats: SwitchStats,
}

/// Drive one switch over `pkts` in `BATCH`-sized chunks with global
/// packet indices starting at `first_index`, reusing one output
/// allocation, and return its busy time.
fn drive(sw: &mut Switch, pkts: &[(Packet, Port)], first_index: u64) -> Duration {
    let mut out: Vec<SwitchOutput> = Vec::with_capacity(BATCH);
    let t0 = Instant::now();
    let mut idx = first_index;
    for chunk in pkts.chunks(BATCH) {
        sw.process_batch_indexed(chunk, idx, &mut out);
        std::hint::black_box(&mut out);
        idx += chunk.len() as u64;
    }
    t0.elapsed()
}

/// The sharded lane: `shards` private switches built off-clock, each
/// driving its contiguous slice with global indices. Returns the
/// aggregate Mpps (`total packets / slowest shard's busy time`), how
/// the shards ran, and the merged per-shard stats.
fn measure_parallel(
    base: &Switch,
    packets: &[(Packet, Port)],
    shards: usize,
) -> (f64, &'static str, SwitchStats) {
    // Off-clock setup: the clone cost of the compiled pipeline is
    // install-time work, not forwarding work.
    let mut switches: Vec<Switch> = (0..shards).map(|_| base.clone()).collect();
    let chunk = packets.len().div_ceil(shards.max(1)).max(1);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let concurrent = shards > 1 && cores >= shards;
    let mut times = vec![Duration::ZERO; shards];
    if concurrent {
        std::thread::scope(|scope| {
            let handles: Vec<_> = switches
                .iter_mut()
                .zip(packets.chunks(chunk))
                .enumerate()
                .map(|(u, (sw, pkts))| scope.spawn(move || drive(sw, pkts, (u * chunk) as u64)))
                .collect();
            for (u, h) in handles.into_iter().enumerate() {
                times[u] = h.join().expect("shard thread");
            }
        });
    } else {
        for (u, (sw, pkts)) in switches.iter_mut().zip(packets.chunks(chunk)).enumerate() {
            times[u] = drive(sw, pkts, (u * chunk) as u64);
        }
    }
    let slowest = times.iter().max().copied().unwrap_or_default().as_secs_f64();
    let mut merged = SwitchStats::default();
    for sw in &switches {
        merged.merge(&sw.stats());
    }
    assert_eq!(merged.packets, packets.len() as u64, "every packet processed exactly once");
    let mode = if concurrent { "concurrent" } else { "isolated" };
    (packets.len() as f64 / slowest.max(1e-12), mode, merged)
}

fn measure_lane(n_filters: usize, packets: &[Packet], ladder: &[usize]) -> Lane {
    let base = build_switch(n_filters);

    let mut interp = base.clone();
    let t0 = Instant::now();
    for (i, p) in packets.iter().enumerate() {
        std::hint::black_box(interp.process_reference(p, 0, i as u64));
    }
    let interp_ns = t0.elapsed().as_nanos() as f64 / packets.len() as f64;

    let mut fast = base.clone();
    let t0 = Instant::now();
    for (i, p) in packets.iter().enumerate() {
        std::hint::black_box(fast.process(p, 0, i as u64));
    }
    let compiled_ns = t0.elapsed().as_nanos() as f64 / packets.len() as f64;

    let batch: Vec<(Packet, Port)> = packets.iter().map(|p| (p.clone(), 0)).collect();
    let mut batcher = base.clone();
    let batch_mpps = packets.len() as f64 / drive(&mut batcher, &batch, 0).as_secs_f64();

    // The shard ladder. The INT workload is stateless, so every rung's
    // merged per-shard counters must match the single-core batch lane
    // exactly (modulo batching shape) — the sharded run provably did
    // the same forwarding work it claims to have scaled.
    let scaling: Vec<ShardRun> = ladder
        .iter()
        .map(|&shards| {
            let (mpps, mode, merged) = measure_parallel(&base, &batch, shards);
            assert_eq!(
                merged.forwarding_stats(),
                batcher.stats().forwarding_stats(),
                "{shards}-shard run diverged from the single-core lane"
            );
            ShardRun { shards, mpps, mode }
        })
        .collect();
    let top = scaling.last().expect("ladder is non-empty");
    let (parallel_mpps, parallel_mode) = (top.mpps, top.mode);

    // Fold the batch run's counters in too (batch sizes live there).
    let mut stats = fast.stats();
    stats.batches = batcher.stats().batches;
    stats.batched_packets = batcher.stats().batched_packets;
    Lane {
        filters: n_filters,
        interp_ns,
        compiled_ns,
        batch_mpps,
        parallel_mpps,
        parallel_mode,
        scaling,
        stats,
    }
}

/// The resource report a switch's admission control would see for this
/// filter count, plus whether it fits the default Tofino-class budget.
fn resource_lane(n_filters: usize) -> (ResourceReport, bool) {
    let statics = compile_static(&int_spec()).expect("int spec compiles");
    let compiled =
        Compiler::new().with_static(statics.clone()).compile(&rules(n_filters)).expect("compiles");
    let report = resources::report(
        &compiled.pipeline,
        compiled.pipeline.multicast_group_count(),
        &statics.widths(),
    );
    let fits = ResourceBudget::default().admit(&report).is_ok();
    (report, fits)
}

/// A depth-`d` state chain over one operand: stage `i` advances state
/// `i → i+1` when the value is in range, and the leaf forwards from
/// state `d`. Isolates per-stage dispatch cost.
fn chain_pipeline(depth: usize) -> Pipeline {
    let stages = (0..depth)
        .map(|i| {
            StageTable::new(
                Operand::Field("hop_latency".to_string()),
                MatchKind::Range,
                vec![
                    TableEntry {
                        state: i as u32,
                        spec: MatchSpec::IntRange(0, 1 << 20),
                        next: i as u32 + 1,
                    },
                    TableEntry { state: i as u32, spec: MatchSpec::Any, next: 0 },
                ],
            )
        })
        .collect();
    let mut actions = HashMap::new();
    actions.insert(depth as u32, (Action::Forward(vec![1]), None));
    Pipeline { stages, leaf: LeafTable { actions, default: Action::Drop }, initial: STATE_INIT }
}

fn measure_depth_ns(depth: usize, probes: usize) -> f64 {
    let compiled = CompiledPipeline::lower(&chain_pipeline(depth));
    let values: Vec<Vec<Option<Value>>> =
        (0..probes).map(|i| vec![Some(Value::Int((i % 4096) as i64))]).collect();
    // Drive `eval_counted` with a reused scratch — exactly how the
    // switch fast path calls it. Warm the caches, then time many short
    // slices and keep the fastest: the minimum over ~10 ms windows
    // estimates dispatch cost with preemption and noisy-neighbor
    // bursts excluded, where one long timed pass would average them
    // in.
    let mut scratch = EvalCounters::default();
    for v in values.iter().take(probes / 8) {
        std::hint::black_box(compiled.eval_counted(v, &mut scratch));
    }
    let slice = (probes / 8).max(1);
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        for chunk in values.chunks(slice) {
            let t0 = Instant::now();
            for v in chunk {
                std::hint::black_box(compiled.eval_counted(v, &mut scratch));
            }
            best = best.min(t0.elapsed().as_nanos() as f64 / chunk.len() as f64);
        }
    }
    std::hint::black_box(scratch);
    best
}

/// Hand-formatted JSON (the vendored `serde_json` stub has no
/// serializer): eval-ns, Mpps, and the shard ladder keyed by filter
/// count.
fn write_json(scale: Scale, lanes: &[Lane], depths: &[(usize, f64)]) {
    let series = lanes
        .iter()
        .map(|l| {
            let ladder = l
                .scaling
                .iter()
                .map(|r| format!("\"{}\": {:.4}", r.shards, r.mpps / 1e6))
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "    \"{}\": {{\"interp_eval_ns\": {:.1}, \"compiled_eval_ns\": {:.1}, \
                 \"batch_mpps\": {:.4}, \"parallel_mpps\": {:.4}, \
                 \"parallel_scaling\": {{{}}}}}",
                l.filters,
                l.interp_ns,
                l.compiled_ns,
                l.batch_mpps / 1e6,
                l.parallel_mpps / 1e6,
                ladder,
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let depth_ns = depths
        .iter()
        .map(|(d, ns)| format!("    \"{d}\": {ns:.1}"))
        .collect::<Vec<_>>()
        .join(",\n");
    let mode = lanes.last().map_or("isolated", |l| l.parallel_mode);
    let json = format!(
        "{{\n  \"experiment\": \"throughput\",\n  \"scale\": \"{}\",\n  \
         \"shards\": {},\n  \"parallel_mode\": \"{}\",\n  \
         \"filters\": [{}],\n  \"by_filter_count\": {{\n{}\n  }},\n  \
         \"eval_ns_by_depth\": {{\n{}\n  }}\n}}\n",
        if scale == Scale::Quick { "quick" } else { "full" },
        SHARD_LADDER.last().unwrap(),
        mode,
        lanes.iter().map(|l| l.filters.to_string()).collect::<Vec<_>>().join(", "),
        series,
        depth_ns,
    );
    if let Err(e) = std::fs::write("BENCH_throughput.json", json) {
        eprintln!("warning: could not write BENCH_throughput.json: {e}");
    }
}

pub fn run(scale: Scale) -> Vec<Table> {
    let counts: &[usize] = match scale {
        Scale::Quick => &[10, 100, 1_000],
        Scale::Full => &[10, 100, 1_000, 10_000],
    };
    let n_packets = scale.pick(4_000, 100_000);
    let packets = int_packets(n_packets);

    let lanes: Vec<Lane> =
        counts.iter().map(|&n| measure_lane(n, &packets, &SHARD_LADDER)).collect();

    // Scaling-regression guard (runs in the CI `--quick` smoke too):
    // at the top of the ladder the sharded lane must clearly beat the
    // single-core batch lane. The threshold is generous — the expected
    // ratio approaches the shard count — to tolerate CI jitter.
    if let Some(l) = lanes.iter().find(|l| l.filters == 1_000) {
        assert!(
            l.parallel_mpps >= 2.0 * l.batch_mpps,
            "scaling wall is back: {} shards ({}) reached {:.2} Mpps vs {:.2} Mpps batched",
            SHARD_LADDER.last().unwrap(),
            l.parallel_mode,
            l.parallel_mpps / 1e6,
            l.batch_mpps / 1e6,
        );
    }

    let mut a = Table::new(
        "Throughput: compiled fast path vs interpreted reference (INT workload)",
        &["filters", "interp-eval", "compiled-eval", "speedup", "batch", "parallel", "par-mode"],
    );
    for l in &lanes {
        a.row([
            l.filters.to_string(),
            fmt_ns(l.interp_ns as u64),
            fmt_ns(l.compiled_ns as u64),
            format!("{:.1}x", l.interp_ns / l.compiled_ns),
            fmt_mpps(l.batch_mpps),
            fmt_mpps(l.parallel_mpps),
            l.parallel_mode.to_string(),
        ]);
    }
    a.emit("throughput");

    let depth_probes = scale.pick(200_000, 2_000_000);
    let depths: Vec<(usize, f64)> =
        [1usize, 2, 4, 8].iter().map(|&d| (d, measure_depth_ns(d, depth_probes))).collect();
    let mut b = Table::new(
        "Throughput: compiled eval ns vs pipeline depth (state chain)",
        &["depth", "eval-ns"],
    );
    for &(d, ns) in &depths {
        b.row([d.to_string(), format!("{ns:.1}")]);
    }
    b.emit("throughput_depth");

    let mut c = Table::new(
        "Eval counters (compiled runs)",
        &[
            "filters",
            "stage_hits",
            "stage_misses",
            "entries_scanned",
            "batches",
            "batched_pkts",
            "shared_copies",
            "deep_copies",
        ],
    );
    for l in &lanes {
        let s = &l.stats;
        c.row([
            l.filters.to_string(),
            s.stage_hits.to_string(),
            s.stage_misses.to_string(),
            s.entries_scanned.to_string(),
            s.batches.to_string(),
            s.batched_packets.to_string(),
            s.shared_copies.to_string(),
            s.deep_copies.to_string(),
        ]);
    }
    c.emit("throughput_counters");

    let mut d = Table::new(
        "Per-switch resource utilization vs the default Tofino-class budget",
        &[
            "filters",
            "tables",
            "entries",
            "sram_kb",
            "tcam_entries",
            "mcast",
            "state_bits",
            "max_util_pct",
            "fits_budget",
        ],
    );
    let budget = ResourceBudget::default();
    for &n in counts {
        let (r, fits) = resource_lane(n);
        let max_util = budget.utilization(&r).into_iter().map(|(_, f)| f).fold(0.0f64, f64::max);
        d.row([
            n.to_string(),
            r.tables.to_string(),
            r.total_entries.to_string(),
            format!("{:.1}", r.sram_bits as f64 / 8.0 / 1024.0),
            r.tcam_entries.to_string(),
            r.multicast_groups.to_string(),
            r.state_bits.to_string(),
            format!("{:.2}", max_util * 100.0),
            fits.to_string(),
        ]);
    }
    d.emit("throughput_resources");

    let mut e = Table::new(
        "Throughput scaling ladder: aggregate Mpps by shard count",
        &["filters", "shards", "mode", "mpps", "speedup-vs-1"],
    );
    for l in &lanes {
        let one = l.scaling.first().map_or(1.0, |r| r.mpps);
        for r in &l.scaling {
            e.row([
                l.filters.to_string(),
                r.shards.to_string(),
                r.mode.to_string(),
                fmt_mpps(r.mpps),
                format!("{:.2}x", r.mpps / one),
            ]);
        }
    }
    e.emit("throughput_scaling");

    write_json(scale, &lanes, &depths);
    vec![a, b, c, d, e]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_measures_consistently() {
        let packets = int_packets(400);
        let lane = measure_lane(100, &packets, &[1, 2]);
        assert!(lane.interp_ns > 0.0 && lane.compiled_ns > 0.0);
        assert!(lane.batch_mpps > 0.0 && lane.parallel_mpps > 0.0);
        assert_eq!(lane.scaling.len(), 2);
        // The compiled switch actually evaluated every packet.
        let s = &lane.stats;
        assert_eq!(s.stage_hits + s.stage_misses, 400 * 2, "2 stages x 400 stack evals");
        assert_eq!(s.batched_packets, 400);
        assert!(s.batches >= 7, "400 packets in chunks of 64");
    }

    #[test]
    fn sharded_lane_stats_sum_to_single_core() {
        // measure_parallel asserts forwarding-stat equality internally;
        // this pins the merge arithmetic itself against a hand-driven
        // single switch.
        let packets: Vec<(Packet, Port)> = int_packets(300).into_iter().map(|p| (p, 0)).collect();
        let base = build_switch(50);
        let mut single = base.clone();
        drive(&mut single, &packets, 0);
        let (_, _, merged) = measure_parallel(&base, &packets, 4);
        assert_eq!(merged.forwarding_stats(), single.stats().forwarding_stats());
        assert_eq!(merged.packets, 300);
    }

    #[test]
    fn shard_timestamps_are_global() {
        // A shard starting mid-stream must process its packets at the
        // global indices, not restart at zero — pinned by driving the
        // second half explicitly.
        let packets: Vec<(Packet, Port)> = int_packets(100).into_iter().map(|p| (p, 0)).collect();
        let base = build_switch(10);
        let mut whole = base.clone();
        drive(&mut whole, &packets, 0);
        let mut front = base.clone();
        let mut back = base.clone();
        drive(&mut front, &packets[..50], 0);
        drive(&mut back, &packets[50..], 50);
        let mut merged = front.stats();
        merged.merge(&back.stats());
        assert_eq!(merged.forwarding_stats(), whole.stats().forwarding_stats());
    }

    #[test]
    fn depth_chain_evaluates_to_forward() {
        let compiled = CompiledPipeline::lower(&chain_pipeline(4));
        let id = compiled.eval(&[Some(Value::Int(42))]);
        assert_eq!(compiled.action(id), &Action::Forward(vec![1]));
        assert!(measure_depth_ns(4, 1_000) > 0.0);
    }

    #[test]
    fn quick_run_emits_tables_and_json() {
        let tables = run(Scale::Quick);
        assert_eq!(tables.len(), 5);
        assert_eq!(tables[0].rows.len(), 3);
        // Ladder table: one row per (filter count, shard count).
        assert_eq!(tables[4].rows.len(), 3 * SHARD_LADDER.len());
        let json = std::fs::read_to_string("BENCH_throughput.json").unwrap();
        assert!(json.contains("\"by_filter_count\""));
        assert!(json.contains("\"eval_ns_by_depth\""));
        assert!(json.contains("\"parallel_scaling\""));
        assert!(json.contains("\"parallel_mode\""));
    }

    #[test]
    fn thousand_filter_workload_fits_default_budget() {
        // The paper installs ~1 K filters on one Tofino (§VIII-E); the
        // modelled default budget must admit that pipeline with head
        // room to spare.
        let (report, fits) = resource_lane(1_000);
        assert!(fits, "1k-filter pipeline over budget: {}", report.summary());
        let worst = ResourceBudget::default()
            .utilization(&report)
            .into_iter()
            .fold(("", 0.0f64), |acc, (k, f)| if f > acc.1 { (k, f) } else { acc });
        assert!(
            worst.1 < 0.5,
            "dimension {} at {:.0}% leaves no head room",
            worst.0,
            worst.1 * 100.0
        );
    }
}
