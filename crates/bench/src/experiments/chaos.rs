//! Chaos soak — transactional deployment under combined churn, faults
//! and control-channel loss.
//!
//! Runs [`camus_faults::run_chaos`] on the 72-switch churn fat tree
//! carrying N Siena subscriptions: every step draws one chaos operation
//! (subscription churn, link cut/splice, switch crash/restore, channel
//! loss re-dial, control partition, controller crash/restart), attempts
//! a two-phase repair over the lossy channel — or, with the controller
//! dead, rides out the outage until the schedule restarts it and
//! WAL-ledger reconciliation recovers — then audits a witness-probe
//! burst. The harness
//! itself panics on any invariant violation (mis-delivery, duplicate,
//! missed delivery after a committed repair, unbounded blackout,
//! failure to converge once healed), so a row in the CSV *is* a
//! certificate that the step was audited clean.
//!
//! Everything is seeded and the modelled control-plane time is
//! deterministic, so every column reproduces exactly — the determinism
//! test below compares complete runs.

use super::churn::{churn_net, spread_subscriptions};
use super::faults::generator;
use super::Scale;
use crate::output::Table;
use camus_core::statics::compile_static;
use camus_dataplane::PacketBuilder;
use camus_faults::{run_chaos, ChaosConfig, ChaosInput, ChaosReport};
use camus_lang::ast::{Expr, Operand};
use camus_lang::value::Value;
use camus_net::controller::Controller;
use camus_routing::algorithm1::{Policy, RoutingConfig};
use camus_telemetry::SampleRate;

fn soak(n_subs: usize, pool_size: usize, cfg: &ChaosConfig) -> ChaosReport {
    let net = churn_net();
    let mut g = generator(0xFA17);
    let subs = spread_subscriptions(&mut g, &net, n_subs);
    let pool = g.filters(pool_size);
    let spec = g.spec();
    let statics = compile_static(&spec).expect("siena statics compile");
    let ctrl = Controller::new(statics, RoutingConfig::new(Policy::MemoryReduction));

    // Witness: a packet matching some subscriber's first filter, from a
    // publisher on a different ToR whose own filters do not match (the
    // soak never churns the publisher, so this stays true).
    let target = (0..net.host_count()).find(|&h| !subs[h].is_empty()).expect("a subscriber");
    let witness_values: Vec<(String, Value)> = g.matching_packet(&subs[target][0]);
    let lookup = |op: &Operand| match op {
        Operand::Field(name) => {
            witness_values.iter().find(|(n, _)| n == name).map(|(_, v)| v.clone())
        }
        Operand::Aggregate { .. } => None,
    };
    let matches = |fs: &[Expr]| fs.iter().any(|f| f.eval_with(lookup));
    let publisher = (0..net.host_count())
        .find(|&h| net.access[h].0 != net.access[target].0 && !matches(&subs[h]))
        .expect("a non-matching publisher on another ToR");

    let mut b = PacketBuilder::new(&spec);
    for (field, value) in &witness_values {
        b = b.stack_field("siena", field, value.clone());
    }
    let input = ChaosInput {
        ctrl: &ctrl,
        net: &net,
        subs,
        pool,
        witness: b.build(),
        witness_values,
        publisher,
    };
    run_chaos(input, cfg)
}

pub fn run(scale: Scale) -> Vec<Table> {
    let n_subs = scale.pick(64, 512);
    let cfg = ChaosConfig {
        seed: 0xC4A05,
        steps: scale.pick(10, 40),
        probes_per_step: scale.pick(2, 3),
        // Trace every witness: the soak then audits its dark windows
        // from the postcard collector and cross-checks the logs.
        sample: SampleRate::always(),
        ..Default::default()
    };
    let r = soak(n_subs, 16, &cfg);

    let mut t = Table::new(
        "Chaos soak: per-step transactional repair audit",
        &[
            "step",
            "op",
            "outcome",
            "attempts",
            "retries",
            "reinstalled",
            "degraded",
            "expected",
            "delivered",
            "missed",
            "misdelivered",
            "duplicated",
            "drop_pct",
            "fail_pct",
            "partitions",
            "blackholes",
            "loops",
        ],
    );
    for s in &r.steps {
        // The harness already asserted these; restating them here makes
        // the experiment self-checking even if the harness relaxes.
        assert_eq!(s.misdelivered, 0, "step {}: mis-delivery", s.step);
        assert_eq!(s.duplicated, 0, "step {}: duplicate", s.step);
        if s.outcome != "rolled-back" && s.outcome != "controller-down" {
            assert_eq!(s.missed, 0, "step {}: committed repair must deliver", s.step);
        }
        // Telemetry detection: every missed delivery surfaces as a
        // blackhole anomaly, and nothing ever loops.
        assert_eq!(s.traced, cfg.probes_per_step, "step {}: sampler missed probes", s.step);
        assert_eq!(s.blackholes > 0, s.missed > 0, "step {}: blackhole detection", s.step);
        assert_eq!(s.loops, 0, "step {}: false loop report", s.step);
        t.row([
            s.step.to_string(),
            s.label.clone(),
            s.outcome.to_string(),
            s.attempts.to_string(),
            s.retries.to_string(),
            s.reinstalled.to_string(),
            s.degraded.to_string(),
            s.expected.to_string(),
            s.delivered.to_string(),
            s.missed.to_string(),
            s.misdelivered.to_string(),
            s.duplicated.to_string(),
            s.drop_pct.to_string(),
            s.fail_pct.to_string(),
            s.partitions.to_string(),
            s.blackholes.to_string(),
            s.loops.to_string(),
        ]);
    }
    t.emit("chaos");

    let mut summary = Table::new(
        "Chaos soak: summary",
        &[
            "subscriptions",
            "steps",
            "committed",
            "rolled_back",
            "crashes",
            "recoveries",
            "down_steps",
            "max_rollback_streak",
            "max_outage_streak",
            "max_dark_streak",
            "final_delivered",
            "converged",
        ],
    );
    assert!(r.converged, "healed soak must converge to a fresh deploy");
    summary.row([
        n_subs.to_string(),
        cfg.steps.to_string(),
        r.committed_steps.to_string(),
        r.rolled_back_steps.to_string(),
        r.crashes.to_string(),
        r.recoveries.to_string(),
        r.down_steps.to_string(),
        r.max_rollback_streak.to_string(),
        r.max_outage_streak.to_string(),
        r.max_dark_streak.to_string(),
        r.final_delivered.to_string(),
        r.converged.to_string(),
    ]);
    summary.emit("chaos_summary");
    vec![t, summary]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_audits_every_step() {
        let tables = run(Scale::Quick);
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].rows.len(), 10);
        let outcomes: Vec<&str> = tables[0].rows.iter().map(|r| r[2].as_str()).collect();
        assert!(outcomes.iter().all(|o| {
            ["committed", "rolled-back", "noop", "controller-down", "recovered"].contains(o)
        }));
        // Summary row says the soak converged.
        assert_eq!(tables[1].rows[0][11], "true");
    }

    #[test]
    fn quick_run_is_deterministic() {
        // No timing columns anywhere: complete runs must be identical.
        let a = run(Scale::Quick);
        let b = run(Scale::Quick);
        assert_eq!(a[0].rows, b[0].rows);
        assert_eq!(a[1].rows, b[1].rows);
    }
}
