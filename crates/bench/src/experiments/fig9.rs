//! Fig. 9 — filtering INT packets from a 100 G link: achievable
//! throughput vs number of installed filters (§VIII-E.2).
//!
//! Series:
//! * **c** and **dpdk** — the calibrated software cost models of
//!   [`camus_baselines::cost`] (plain C is syscall-bound; DPDK is
//!   CPU-bound at ~16 Mpps and falls off the cache cliff past 10 K
//!   filters),
//! * **camus** — line rate, independent of filter count,
//! * **rust-measured** — an honest measured point: the real
//!   [`LinearFilter`] engine timed on this machine, to show the
//!   software series' *shape* is not an artifact of the model,
//! * **rust-compiled** — the same filters compiled to a
//!   [`CompiledPipeline`]: per-packet cost is a fixed number of stage
//!   lookups, independent of filter count — the software analogue of
//!   the camus series (capped at 1 K filters on Quick / 10 K on Full
//!   to bound BDD compile time; "-" beyond).

use super::Scale;
use crate::output::{fmt_mpps, Table};
use camus_baselines::cost::CostModel;
use camus_baselines::linear::LinearFilter;
use camus_core::compiled::{ActionId, CompiledPipeline};
use camus_core::compiler::Compiler;
use camus_core::resources::{self, ResourceBudget};
use camus_core::statics::compile_static;
use camus_lang::ast::{Action, Expr, Rule};
use camus_lang::parser::parse_expr;
use camus_lang::spec::int_spec;
use camus_lang::value::Value;
use camus_workloads::int::{IntFeed, IntFeedConfig};
use std::collections::HashMap;
use std::time::Instant;

fn filters(n: usize) -> Vec<Expr> {
    (0..n)
        .map(|i| {
            parse_expr(&format!(
                "switch_id == {} and hop_latency > {}",
                i % 100,
                100 + (i / 100) % 1000
            ))
            .unwrap()
        })
        .collect()
}

/// Measure the real linear-scan engine: packets filtered per second.
fn measure_rust_pps(n_filters: usize, sample_packets: usize) -> f64 {
    let lf = LinearFilter::new(&filters(n_filters));
    let mut feed = IntFeed::new(IntFeedConfig::default());
    let packets: Vec<HashMap<String, Value>> =
        feed.reports(sample_packets).iter().map(|r| r.fields().into_iter().collect()).collect();
    let t0 = Instant::now();
    let mut hits = 0usize;
    for p in &packets {
        hits += usize::from(lf.matches_any(p));
    }
    let dt = t0.elapsed().as_secs_f64();
    std::hint::black_box(hits);
    packets.len() as f64 / dt
}

/// Measure the compiled fast path on the same workload: filters →
/// BDD → pipeline → `CompiledPipeline`, slot arrays resolved outside
/// the timer (the switch resolves them once at install time too).
pub fn measure_compiled_pps(n_filters: usize, sample_packets: usize) -> f64 {
    let rules: Vec<Rule> = filters(n_filters)
        .into_iter()
        .enumerate()
        .map(|(i, filter)| Rule { filter, action: Action::Forward(vec![(i % 64) as u16 + 1]) })
        .collect();
    let pipeline = Compiler::new().compile(&rules).expect("fig9 filters compile").pipeline;
    let compiled = CompiledPipeline::lower(&pipeline);
    let mut feed = IntFeed::new(IntFeedConfig::default());
    let probes: Vec<Vec<Option<Value>>> = feed
        .reports(sample_packets)
        .iter()
        .map(|r| {
            let fields: HashMap<String, Value> = r.fields().into_iter().collect();
            compiled.slots().iter().map(|op| fields.get(&op.key()).cloned()).collect()
        })
        .collect();
    let t0 = Instant::now();
    let mut hits = 0usize;
    for v in &probes {
        hits += usize::from(compiled.eval(v) != ActionId::DEFAULT);
    }
    let dt = t0.elapsed().as_secs_f64();
    std::hint::black_box(hits);
    probes.len() as f64 / dt
}

/// Worst-dimension hardware utilization of the compiled pipeline
/// against the default per-switch budget, as a percentage.
fn hw_util_pct(n_filters: usize) -> f64 {
    let statics = compile_static(&int_spec()).expect("int spec compiles");
    let rules: Vec<Rule> = filters(n_filters)
        .into_iter()
        .enumerate()
        .map(|(i, filter)| Rule { filter, action: Action::Forward(vec![(i % 64) as u16 + 1]) })
        .collect();
    let pipeline = Compiler::new()
        .with_static(statics.clone())
        .compile(&rules)
        .expect("fig9 filters compile")
        .pipeline;
    let report = resources::report(&pipeline, pipeline.multicast_group_count(), &statics.widths());
    ResourceBudget::default().utilization(&report).into_iter().map(|(_, f)| f).fold(0.0, f64::max)
        * 100.0
}

pub fn run(scale: Scale) -> Vec<Table> {
    let model = CostModel::default();
    let counts: &[usize] = match scale {
        Scale::Quick => &[1, 10, 100, 1_000, 10_000],
        Scale::Full => &[1, 10, 100, 1_000, 10_000, 50_000, 100_000],
    };
    let sample = scale.pick(2_000, 20_000);
    let compiled_cap = scale.pick(1_000, 10_000);
    let mut t = Table::new(
        "Fig. 9: INT filtering throughput vs #filters",
        &["filters", "c", "dpdk", "camus", "rust-measured", "rust-compiled", "hw-util"],
    );
    for &n in counts {
        let (compiled, util) = if n <= compiled_cap {
            (fmt_mpps(measure_compiled_pps(n, sample)), format!("{:.2}%", hw_util_pct(n)))
        } else {
            ("-".to_string(), "-".to_string())
        };
        t.row([
            n.to_string(),
            fmt_mpps(model.c_pps(n)),
            fmt_mpps(model.dpdk_pps(n)),
            fmt_mpps(model.camus_pps(n)),
            fmt_mpps(measure_rust_pps(n, sample)),
            compiled,
            util,
        ]);
    }
    t.emit("fig9");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_paper() {
        let m = CostModel::default();
        // DPDK starts near 16 Mpps (the bare 100-instruction fast
        // path), Camus is line rate and flat.
        assert!((m.dpdk_pps(0) - 16e6).abs() / 16e6 < 0.01);
        assert!(m.dpdk_pps(1) > 15e6);
        assert_eq!(m.camus_pps(1), m.camus_pps(100_000));
        // Software degrades drastically past 10K filters.
        assert!(m.dpdk_pps(100_000) < m.dpdk_pps(10_000) / 5.0);
        // Camus wins everywhere.
        for n in [1usize, 100, 10_000, 100_000] {
            assert!(m.camus_pps(n) > m.dpdk_pps(n));
        }
    }

    #[test]
    fn measured_rust_engine_degrades_with_filters() {
        let fast = measure_rust_pps(1, 300);
        let slow = measure_rust_pps(2_000, 300);
        assert!(slow < fast / 3.0, "linear scan must slow with filters: {fast:.0} vs {slow:.0}");
    }

    #[test]
    fn quick_run_emits_table() {
        let tables = run(Scale::Quick);
        assert_eq!(tables[0].rows.len(), 5);
    }

    #[test]
    fn compiled_path_beats_linear_scan_at_1k_filters() {
        // The ISSUE acceptance bar: >= 5x over the interpreted linear
        // scan at 1 K filters. In practice the gap is orders of
        // magnitude (fixed stage count vs 1 000 filter evaluations).
        let linear = measure_rust_pps(1_000, 300);
        let compiled = measure_compiled_pps(1_000, 300);
        assert!(
            compiled >= 5.0 * linear,
            "compiled {compiled:.0} pps must be >= 5x linear {linear:.0} pps"
        );
    }
}
