//! The experiment runner: regenerates every table and figure of the
//! paper's evaluation.
//!
//! ```text
//! cargo run --release -p camus-bench --bin experiments -- all
//! cargo run --release -p camus-bench --bin experiments -- fig12 fig13
//! cargo run --release -p camus-bench --bin experiments -- --quick all
//! ```
//!
//! Results print as aligned tables and are persisted as CSV under
//! `results/`.

use camus_bench::experiments::{self, Scale};

/// Heap accounting for the `scale` experiment's memory columns: the
/// runner pays the (tiny) atomic-counter overhead so every experiment
/// can report allocation high-water marks.
#[global_allocator]
static ALLOC: camus_bench::mem::CountingAlloc = camus_bench::mem::CountingAlloc;

const IDS: &[&str] = &[
    "fig8",
    "fig9",
    "fig11",
    "fig12",
    "tab1",
    "fig13",
    "fig14",
    "fig15",
    "churn",
    "scale",
    "service",
    "faults",
    "chaos",
    "throughput",
    "telemetry",
    "recovery",
];

fn run_one(id: &str, scale: Scale) -> bool {
    let t0 = std::time::Instant::now();
    let ran = match id {
        "fig8" => !experiments::fig8::run(scale).is_empty(),
        "fig9" => !experiments::fig9::run(scale).is_empty(),
        "fig11" => !experiments::fig11::run(scale).is_empty(),
        "fig12" => !experiments::fig12::run(scale).is_empty(),
        "tab1" => !experiments::tab1::run(scale).is_empty(),
        "fig13" => !experiments::fig13::run(scale).is_empty(),
        "fig14" => !experiments::fig14::run(scale).is_empty(),
        "fig15" => !experiments::fig15::run(scale).is_empty(),
        "churn" => !experiments::churn::run(scale).is_empty(),
        "scale" => !experiments::scale::run(scale).is_empty(),
        "service" => !experiments::service::run(scale).is_empty(),
        "faults" => !experiments::faults::run(scale).is_empty(),
        "chaos" => !experiments::chaos::run(scale).is_empty(),
        "throughput" => !experiments::throughput::run(scale).is_empty(),
        "telemetry" => !experiments::telemetry::run(scale).is_empty(),
        "recovery" => !experiments::recovery::run(scale).is_empty(),
        _ => return false,
    };
    eprintln!("[{id}] done in {:.1?}\n", t0.elapsed());
    ran
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick" || a == "-q");
    let scale = if quick { Scale::Quick } else { Scale::Full };
    let targets: Vec<&str> =
        args.iter().filter(|a| !a.starts_with('-')).map(|s| s.as_str()).collect();
    if targets.is_empty() {
        eprintln!("usage: experiments [--quick] <all|{}>", IDS.join("|"));
        std::process::exit(2);
    }
    let list: Vec<&str> = if targets.contains(&"all") { IDS.to_vec() } else { targets };
    for id in list {
        if !run_one(id, scale) {
            eprintln!("unknown experiment `{id}`; available: all {}", IDS.join(" "));
            std::process::exit(2);
        }
    }
}
