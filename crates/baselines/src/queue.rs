//! Single-server FIFO queue simulation for subscriber-side filtering.
//!
//! Fig. 8's baseline puts the filter on the subscriber host: every
//! message of the feed traverses the NIC and the filtering loop whether
//! or not it is interesting, so at 90 % load the queueing delay
//! dominates tail latency. With Camus the switch forwards only the
//! ~0.5–5 % of matching messages, so the subscriber runs at a few
//! percent load and the tail collapses — exactly what the latency CDFs
//! show.
//!
//! The simulator is a deterministic event loop: arrivals at given
//! times, one server, FIFO discipline, per-message service times.

/// One simulated message: arrival time and service demand.
#[derive(Debug, Clone, Copy)]
pub struct Job {
    pub arrival_s: f64,
    pub service_s: f64,
}

/// Result: per-job sojourn (queue + service) times, in seconds.
#[derive(Debug, Clone, Default)]
pub struct QueueResult {
    pub sojourn_s: Vec<f64>,
}

impl QueueResult {
    /// The `q`-quantile of the latency distribution (e.g. 0.99).
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q));
        if self.sojourn_s.is_empty() {
            return 0.0;
        }
        let mut sorted = self.sojourn_s.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
        sorted[idx]
    }

    pub fn mean(&self) -> f64 {
        if self.sojourn_s.is_empty() {
            return 0.0;
        }
        self.sojourn_s.iter().sum::<f64>() / self.sojourn_s.len() as f64
    }

    /// Empirical CDF as (latency, fraction ≤ latency) points.
    pub fn cdf(&self, points: usize) -> Vec<(f64, f64)> {
        let mut sorted = self.sojourn_s.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        if sorted.is_empty() {
            return vec![];
        }
        (0..points)
            .map(|i| {
                let frac = (i + 1) as f64 / points as f64;
                let idx = ((sorted.len() - 1) as f64 * frac).round() as usize;
                (sorted[idx], frac)
            })
            .collect()
    }
}

/// Run jobs through a single FIFO server. Jobs must be sorted by
/// arrival time.
pub fn simulate_fifo(jobs: &[Job]) -> QueueResult {
    let mut server_free_at = 0.0f64;
    let mut sojourn = Vec::with_capacity(jobs.len());
    for j in jobs {
        debug_assert!(j.service_s >= 0.0);
        let start = server_free_at.max(j.arrival_s);
        let done = start + j.service_s;
        server_free_at = done;
        sojourn.push(done - j.arrival_s);
    }
    QueueResult { sojourn_s: sojourn }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_jobs(n: usize, gap_s: f64, service_s: f64) -> Vec<Job> {
        (0..n).map(|i| Job { arrival_s: i as f64 * gap_s, service_s }).collect()
    }

    #[test]
    fn underloaded_queue_has_no_waiting() {
        // Service takes half the inter-arrival gap: no queueing.
        let r = simulate_fifo(&uniform_jobs(1_000, 2e-6, 1e-6));
        for &s in &r.sojourn_s {
            assert!((s - 1e-6).abs() < 1e-12);
        }
        assert!((r.quantile(0.99) - 1e-6).abs() < 1e-12);
    }

    #[test]
    fn overloaded_queue_grows_linearly() {
        // Service takes twice the gap: each job waits ~i * gap longer.
        let r = simulate_fifo(&uniform_jobs(100, 1e-6, 2e-6));
        assert!(r.sojourn_s[99] > 90e-6);
        assert!(r.sojourn_s[99] > r.sojourn_s[50]);
    }

    #[test]
    fn high_load_inflates_tail_not_floor() {
        // 90% load with bursty arrivals: p99 >> p10.
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        let service = 1e-6;
        let mut t = 0.0;
        let jobs: Vec<Job> = (0..20_000)
            .map(|_| {
                // Exponential inter-arrivals at 0.9 load.
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                t += -(service / 0.9) * u.ln();
                Job { arrival_s: t, service_s: service }
            })
            .collect();
        let r = simulate_fifo(&jobs);
        assert!(r.quantile(0.99) > 3.0 * r.quantile(0.10));
        assert!(r.mean() > service);
    }

    #[test]
    fn cdf_is_monotone() {
        let r = simulate_fifo(&uniform_jobs(500, 1e-6, 3e-6));
        let cdf = r.cdf(20);
        assert_eq!(cdf.len(), 20);
        for w in cdf.windows(2) {
            assert!(w[1].0 >= w[0].0);
            assert!(w[1].1 > w[0].1);
        }
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_input() {
        let r = simulate_fifo(&[]);
        assert_eq!(r.quantile(0.5), 0.0);
        assert_eq!(r.mean(), 0.0);
        assert!(r.cdf(5).is_empty());
    }
}
