//! The software filtering engine: linear scan over all filters.
//!
//! This is what a subscriber process (or a DPDK filtering appliance)
//! actually does per packet: test each filter until the verdict is
//! known. For the "does anything match" question it can exit early; for
//! the full pub/sub question (who gets this message) it must touch
//! every filter — the reason software latency degrades with filter
//! count in Fig. 9 while the switch stays flat.

use camus_lang::ast::{Expr, Operand};
use camus_lang::dnf::{to_dnf, Dnf};
use camus_lang::value::Value;
use std::collections::HashMap;

/// A compiled-for-software filter set.
#[derive(Debug, Clone)]
pub struct LinearFilter {
    dnfs: Vec<Dnf>,
}

impl LinearFilter {
    /// Pre-normalise filters to DNF once (software engines do this kind
    /// of preprocessing too; the per-packet loop is what we measure).
    pub fn new(filters: &[Expr]) -> Self {
        LinearFilter { dnfs: filters.iter().map(to_dnf).collect() }
    }

    pub fn len(&self) -> usize {
        self.dnfs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.dnfs.is_empty()
    }

    /// Does any filter match? Early-exits on the first hit.
    pub fn matches_any(&self, pkt: &HashMap<String, Value>) -> bool {
        let lookup = |op: &Operand| pkt.get(&op.key()).cloned();
        self.dnfs.iter().any(|d| d.eval_with(lookup))
    }

    /// Indices of all matching filters (the full pub/sub question).
    pub fn matching(&self, pkt: &HashMap<String, Value>) -> Vec<usize> {
        let lookup = |op: &Operand| pkt.get(&op.key()).cloned();
        self.dnfs.iter().enumerate().filter(|(_, d)| d.eval_with(lookup)).map(|(i, _)| i).collect()
    }

    /// Count matches without allocating (benchmark-friendly).
    pub fn match_count(&self, pkt: &HashMap<String, Value>) -> usize {
        let lookup = |op: &Operand| pkt.get(&op.key()).cloned();
        self.dnfs.iter().filter(|d| d.eval_with(lookup)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use camus_lang::parser::parse_expr;

    fn pkt(vals: &[(&str, Value)]) -> HashMap<String, Value> {
        vals.iter().map(|(k, v)| (k.to_string(), v.clone())).collect()
    }

    #[test]
    fn matching_returns_all_hits() {
        let filters = vec![
            parse_expr("price > 10").unwrap(),
            parse_expr("price > 100").unwrap(),
            parse_expr("stock == GOOGL").unwrap(),
        ];
        let lf = LinearFilter::new(&filters);
        let p = pkt(&[("price", Value::Int(50)), ("stock", Value::from("GOOGL"))]);
        assert_eq!(lf.matching(&p), vec![0, 2]);
        assert_eq!(lf.match_count(&p), 2);
        assert!(lf.matches_any(&p));
        let none = pkt(&[("price", Value::Int(1)), ("stock", Value::from("FB"))]);
        assert!(lf.matching(&none).is_empty());
        assert!(!lf.matches_any(&none));
    }

    #[test]
    fn agrees_with_direct_expression_evaluation() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        let filters: Vec<Expr> = (0..50)
            .map(|i| {
                parse_expr(&format!(
                    "a {} {} and b {} {}",
                    ["<", ">", "=="][i % 3],
                    rng.gen_range(0..20),
                    [">=", "<=", "!="][i % 3],
                    rng.gen_range(0..20)
                ))
                .unwrap()
            })
            .collect();
        let lf = LinearFilter::new(&filters);
        for _ in 0..200 {
            let p = pkt(&[
                ("a", Value::Int(rng.gen_range(-2..22))),
                ("b", Value::Int(rng.gen_range(-2..22))),
            ]);
            let lookup = |op: &Operand| p.get(&op.key()).cloned();
            let want: Vec<usize> = filters
                .iter()
                .enumerate()
                .filter(|(_, f)| f.eval_with(lookup))
                .map(|(i, _)| i)
                .collect();
            assert_eq!(lf.matching(&p), want);
        }
    }

    #[test]
    fn empty_filter_set() {
        let lf = LinearFilter::new(&[]);
        assert!(lf.is_empty());
        assert!(!lf.matches_any(&pkt(&[("a", Value::Int(1))])));
    }
}
