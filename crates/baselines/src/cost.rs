//! Throughput cost models for Fig. 9.
//!
//! Calibrated to the paper's testbed (§VIII-B: dual-socket Xeon
//! E5-2603 at 1.6 GHz) and its reported numbers (§VIII-E.2):
//!
//! * **DPDK** is "fundamentally limited by the CPU clock speed: at
//!   1.6 GHz, spending about 100 instructions per packet, DPDK can
//!   process 16 Mpps" — and "latency for DPDK drastically increases
//!   after 10 K filters" (working set falls out of cache, per-filter
//!   touch cost jumps).
//! * **plain C** (userspace sockets) pays kernel/syscall overhead per
//!   packet on top of the same filtering loop.
//! * **Camus/Tofino** runs at line rate regardless of filter count:
//!   filters live in hardware tables; the 100 G link (≈ 149 Mpps at
//!   84 B minimum frames, ≈ 8.4 Mpps at 1.5 kB) is the only limit.

/// Model parameters, defaulting to the paper's testbed.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// CPU clock in Hz.
    pub clock_hz: f64,
    /// Fixed instructions per packet for the DPDK fast path.
    pub dpdk_fixed_instr: f64,
    /// Instructions per *filter* per packet while filters fit in cache.
    pub instr_per_filter_cached: f64,
    /// Instructions per filter once the working set spills (>10 K).
    pub instr_per_filter_spilled: f64,
    /// Filter count where the cache cliff starts.
    pub cache_cliff: usize,
    /// Extra fixed per-packet cost for plain C (syscall + skb), in
    /// instructions-equivalent.
    pub c_kernel_overhead_instr: f64,
    /// Link capacity in packets/s (100 GbE at the experiment's packet
    /// size).
    pub line_rate_pps: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            clock_hz: 1.6e9,
            dpdk_fixed_instr: 100.0,
            instr_per_filter_cached: 4.0,
            instr_per_filter_spilled: 40.0,
            cache_cliff: 10_000,
            c_kernel_overhead_instr: 2_500.0,
            // 100G at ~256 B packets ≈ 45 Mpps; the INT experiment
            // streams small telemetry reports.
            line_rate_pps: 45.0e6,
        }
    }
}

impl CostModel {
    fn filter_instr(&self, n_filters: usize) -> f64 {
        let cached = n_filters.min(self.cache_cliff) as f64 * self.instr_per_filter_cached;
        let spilled =
            n_filters.saturating_sub(self.cache_cliff) as f64 * self.instr_per_filter_spilled;
        cached + spilled
    }

    /// Achievable throughput of the DPDK filter, packets/s.
    pub fn dpdk_pps(&self, n_filters: usize) -> f64 {
        let instr = self.dpdk_fixed_instr + self.filter_instr(n_filters);
        (self.clock_hz / instr).min(self.line_rate_pps)
    }

    /// Achievable throughput of the plain C (userspace socket) filter.
    pub fn c_pps(&self, n_filters: usize) -> f64 {
        let instr =
            self.dpdk_fixed_instr + self.c_kernel_overhead_instr + self.filter_instr(n_filters);
        (self.clock_hz / instr).min(self.line_rate_pps)
    }

    /// Camus on the switch: filters are table entries; line rate.
    pub fn camus_pps(&self, _n_filters: usize) -> f64 {
        self.line_rate_pps
    }

    /// Mean per-packet service time of the DPDK filter, seconds.
    pub fn dpdk_service_s(&self, n_filters: usize) -> f64 {
        1.0 / self.dpdk_pps(n_filters)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dpdk_matches_paper_headline() {
        // ~100 instructions/packet at 1.6 GHz -> 16 Mpps (with no
        // filters).
        let m = CostModel::default();
        let pps = m.dpdk_pps(0);
        assert!((pps - 16.0e6).abs() / 16.0e6 < 0.01, "{pps}");
    }

    #[test]
    fn c_is_slower_than_dpdk() {
        let m = CostModel::default();
        for n in [0usize, 10, 1_000, 100_000] {
            assert!(m.c_pps(n) < m.dpdk_pps(n), "n={n}");
        }
    }

    #[test]
    fn throughput_decreases_with_filters() {
        let m = CostModel::default();
        assert!(m.dpdk_pps(10) < m.dpdk_pps(0));
        assert!(m.dpdk_pps(1_000) < m.dpdk_pps(10));
        assert!(m.dpdk_pps(100_000) < m.dpdk_pps(1_000));
    }

    #[test]
    fn cache_cliff_kicks_in_past_10k() {
        let m = CostModel::default();
        // Marginal cost per filter below vs above the cliff.
        let below = m.dpdk_service_s(10_000) - m.dpdk_service_s(9_000);
        let above = m.dpdk_service_s(21_000) - m.dpdk_service_s(20_000);
        assert!(above > 5.0 * below, "below {below:e} above {above:e}");
    }

    #[test]
    fn camus_is_flat_at_line_rate() {
        let m = CostModel::default();
        assert_eq!(m.camus_pps(0), m.camus_pps(1_000_000));
        assert_eq!(m.camus_pps(0), m.line_rate_pps);
        // And faster than software everywhere.
        assert!(m.camus_pps(100) > m.dpdk_pps(100));
    }
}
