//! A minimal Kafka-broker model (§VIII-C.7, §VIII-D.2).
//!
//! The paper's pub/sub application replaces a Kafka broker with the
//! switch. For the comparison we model the broker as a store-and-
//! forward server: each published message costs a per-message service
//! time (network + log append + fan-out), bounded by a broker
//! throughput ceiling; subscribers then receive it one broker-hop
//! later. The paper's own caveat (§VIII-C.9) applies: the shim offers
//! no persistence or replication, so the comparison is about the
//! forwarding path only.

/// Broker parameters, defaulting to a single well-tuned broker node
/// (~1 M msg/s for small messages, per the benchmarking reference the
/// paper cites for 512 B messages).
#[derive(Debug, Clone)]
pub struct KafkaModel {
    /// Sustained broker throughput ceiling, messages/s.
    pub max_msgs_per_s: f64,
    /// Base one-way latency through the broker (client → broker →
    /// client), seconds.
    pub base_latency_s: f64,
    /// Per-subscriber fan-out cost, seconds per extra copy.
    pub fanout_cost_s: f64,
}

impl Default for KafkaModel {
    fn default() -> Self {
        KafkaModel { max_msgs_per_s: 1.0e6, base_latency_s: 250e-6, fanout_cost_s: 1e-6 }
    }
}

impl KafkaModel {
    /// Mean delivery latency at a given offered load and subscriber
    /// count; grows hyperbolically as load approaches the ceiling
    /// (M/M/1 approximation) and is unbounded past it.
    pub fn latency_s(&self, offered_msgs_per_s: f64, subscribers: usize) -> Option<f64> {
        if offered_msgs_per_s >= self.max_msgs_per_s {
            return None; // saturated
        }
        let rho = offered_msgs_per_s / self.max_msgs_per_s;
        let service = 1.0 / self.max_msgs_per_s;
        let queueing = service * rho / (1.0 - rho);
        Some(
            self.base_latency_s
                + queueing
                + self.fanout_cost_s * subscribers.saturating_sub(1) as f64,
        )
    }

    /// Achievable goodput for a target: min(offered, ceiling).
    pub fn goodput(&self, offered_msgs_per_s: f64) -> f64 {
        offered_msgs_per_s.min(self.max_msgs_per_s)
    }

    /// Brokers needed to absorb an offered load with headroom.
    pub fn brokers_needed(&self, offered_msgs_per_s: f64, max_util: f64) -> usize {
        assert!(max_util > 0.0 && max_util <= 1.0);
        (offered_msgs_per_s / (self.max_msgs_per_s * max_util)).ceil().max(1.0) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_grows_with_load() {
        let m = KafkaModel::default();
        let low = m.latency_s(1e5, 1).unwrap();
        let high = m.latency_s(9e5, 1).unwrap();
        assert!(high > low);
        assert!(m.latency_s(1.1e6, 1).is_none(), "saturated broker");
    }

    #[test]
    fn fanout_adds_cost() {
        let m = KafkaModel::default();
        assert!(m.latency_s(1e5, 10).unwrap() > m.latency_s(1e5, 1).unwrap());
    }

    #[test]
    fn goodput_saturates() {
        let m = KafkaModel::default();
        assert_eq!(m.goodput(5e5), 5e5);
        assert_eq!(m.goodput(5e6), 1e6);
    }

    #[test]
    fn broker_scaling() {
        let m = KafkaModel::default();
        assert_eq!(m.brokers_needed(5e5, 0.7), 1);
        assert_eq!(m.brokers_needed(5e6, 0.7), 8);
        // A 6.5 Tbps switch at 512 B messages moves ~1.6 G msgs/s; the
        // broker fleet to match is enormous — the paper's point.
        assert!(m.brokers_needed(1.6e9, 0.7) > 2_000);
    }
}
