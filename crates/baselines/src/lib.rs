//! # camus-baselines — the software systems Camus is compared against
//!
//! The paper's evaluation pits in-network filtering against software:
//! a plain C userspace filter, a DPDK filter (Fig. 9), subscriber-side
//! filtering of the ITCH feed (Fig. 8), and a Kafka broker (§VIII-D).
//! None of those artefacts run here, so each is replaced by (a) a real,
//! timeable Rust implementation of the same algorithm, and (b) a
//! calibrated analytical cost model reproducing the paper's hardware
//! numbers (1.6 GHz Xeon, ~100 instructions/packet for DPDK, kernel
//! stack overhead for plain C).
//!
//! * [`linear`] — the linear-scan filter engine software subscribers
//!   run: evaluate every filter against every message. Really executes;
//!   used by Criterion benches and by the queue simulator.
//! * [`cost`] — throughput models for Fig. 9: plain C (syscall-bound),
//!   DPDK (CPU-bound, with the >10 K-filter cache cliff the paper
//!   observed), and the Tofino line-rate constant.
//! * [`queue`] — an M/G/1-style FIFO service simulation producing
//!   latency distributions for subscriber-side filtering (Fig. 8's
//!   baseline): messages arrive from the feed, a single core filters
//!   them at a measured/modelled service rate, latency = queueing +
//!   service.
//! * [`kafka`] — a minimal broker throughput/latency model for the
//!   §VIII-D co-existence experiments and the pub/sub application.

pub mod cost;
pub mod kafka;
pub mod linear;
pub mod queue;

pub use linear::LinearFilter;
