//! INT-style packet postcards.
//!
//! A sampled packet carries a bounded per-hop record through the
//! fabric — like in-band network telemetry, the switch appends what
//! it knows (ports, table activity, modelled evaluation time) and the
//! collector at the edge reconstructs paths. Unlike real INT the
//! record rides next to the packet rather than inside it, so it never
//! perturbs parsing or the PHV budget; the sampling decision is the
//! only thing the data plane pays for.
//!
//! The controller-side [`Collector`] aggregates finished postcards
//! into per-link utilization, path-length distributions, and two
//! anomaly detectors:
//!
//! * **blackhole** — a postcard group with a known expected
//!   subscriber that never produced a delivery (the card ended at a
//!   drop, a filter, or nowhere at all);
//! * **loop** — a single card visiting the same switch twice, which
//!   the never-re-ascend rule makes impossible in a healthy fabric,
//!   so any report is a routing bug.

use camus_lang::ast::Port;
use std::collections::{BTreeMap, BTreeSet};

/// Identifies all copies of one sampled publication.
pub type PostcardId = u64;

/// Hard cap on recorded hops; deeper paths end in
/// [`PostcardEnd::HopLimit`] (the packet itself keeps forwarding).
pub const MAX_HOPS: usize = 16;

/// What one switch appended to a postcard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HopRecord {
    pub switch: usize,
    pub ingress: Port,
    /// The port this copy left on; `None` for a terminal hop (the
    /// card ended at this switch).
    pub egress: Option<Port>,
    pub stage_hits: u64,
    pub stage_misses: u64,
    pub entries_scanned: u64,
    /// Modelled evaluation latency of this switch's pipeline pass.
    pub eval_ns: u64,
    /// Recirculation passes beyond the first.
    pub recirculations: u64,
}

/// How a postcard's journey ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PostcardEnd {
    /// Reached a host.
    Delivered { host: usize, time_ns: u64 },
    /// The data plane forwarded it nowhere (legitimate filtering).
    Filtered { switch: usize, time_ns: u64 },
    /// The simulator discarded it because of an injected fault.
    FaultDropped { switch: usize, time_ns: u64 },
    /// The hop record filled up; the packet went on untracked.
    HopLimit { switch: usize, time_ns: u64 },
}

impl PostcardEnd {
    pub fn time_ns(&self) -> u64 {
        match *self {
            PostcardEnd::Delivered { time_ns, .. }
            | PostcardEnd::Filtered { time_ns, .. }
            | PostcardEnd::FaultDropped { time_ns, .. }
            | PostcardEnd::HopLimit { time_ns, .. } => time_ns,
        }
    }

    pub fn delivered_host(&self) -> Option<usize> {
        match *self {
            PostcardEnd::Delivered { host, .. } => Some(host),
            _ => None,
        }
    }

    /// The switch the card ended at, if it ended inside the fabric.
    pub fn last_switch(&self) -> Option<usize> {
        match *self {
            PostcardEnd::Delivered { .. } => None,
            PostcardEnd::Filtered { switch, .. }
            | PostcardEnd::FaultDropped { switch, .. }
            | PostcardEnd::HopLimit { switch, .. } => Some(switch),
        }
    }

    pub fn label(&self) -> &'static str {
        match self {
            PostcardEnd::Delivered { .. } => "delivered",
            PostcardEnd::Filtered { .. } => "filtered",
            PostcardEnd::FaultDropped { .. } => "fault-dropped",
            PostcardEnd::HopLimit { .. } => "hop-limit",
        }
    }
}

/// The in-flight record one packet copy accumulates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Postcard {
    pub id: PostcardId,
    pub published_ns: u64,
    pub hops: Vec<HopRecord>,
}

impl Postcard {
    pub fn new(id: PostcardId, published_ns: u64) -> Self {
        Postcard { id, published_ns, hops: Vec::new() }
    }

    /// Append a hop; returns `false` (and records nothing) once the
    /// bound is reached.
    pub fn record_hop(&mut self, hop: HopRecord) -> bool {
        if self.hops.len() >= MAX_HOPS {
            return false;
        }
        self.hops.push(hop);
        true
    }

    /// The first switch id visited twice, if any.
    pub fn find_loop(&self) -> Option<usize> {
        let mut seen = BTreeSet::new();
        self.hops.iter().map(|h| h.switch).find(|s| !seen.insert(*s))
    }

    pub fn path_len(&self) -> usize {
        self.hops.len()
    }
}

/// Something the collector believes is wrong with the fabric.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Anomaly {
    /// An expected subscriber never saw the publication.
    Blackhole {
        id: PostcardId,
        published_ns: u64,
        /// Expected hosts with no delivery.
        missing: Vec<usize>,
        /// Where a non-delivered copy last was, if any copy finished
        /// inside the fabric.
        last_switch: Option<usize>,
    },
    /// A card visited `switch` twice.
    Loop { id: PostcardId, switch: usize },
}

/// Everything the collector knows about one sampled publication.
#[derive(Debug, Clone, Default)]
pub struct PostcardGroup {
    pub published_ns: u64,
    /// Hosts the control plane says should receive this publication.
    pub expected: BTreeSet<usize>,
    /// `(host, delivery time)` per delivered copy.
    pub deliveries: Vec<(usize, u64)>,
    /// Every finished copy with its full hop record.
    pub completed: Vec<(Postcard, PostcardEnd)>,
}

impl PostcardGroup {
    pub fn delivered_hosts(&self) -> BTreeSet<usize> {
        self.deliveries.iter().map(|&(h, _)| h).collect()
    }

    /// Earliest delivery to `host`, if any.
    pub fn delivery_ns(&self, host: usize) -> Option<u64> {
        self.deliveries.iter().filter(|&&(h, _)| h == host).map(|&(_, t)| t).min()
    }

    /// Expected hosts that never got a copy.
    pub fn missing_hosts(&self) -> Vec<usize> {
        let got = self.delivered_hosts();
        self.expected.iter().filter(|h| !got.contains(h)).copied().collect()
    }

    /// Deliveries beyond the first per host.
    pub fn duplicates(&self) -> u64 {
        let hosts = self.delivered_hosts();
        self.deliveries.len() as u64 - hosts.len() as u64
    }

    /// Deliveries to hosts outside the expected set (only meaningful
    /// once an expectation is registered).
    pub fn misdeliveries(&self) -> u64 {
        if self.expected.is_empty() {
            return 0;
        }
        self.deliveries.iter().filter(|(h, _)| !self.expected.contains(h)).count() as u64
    }
}

/// The controller-side aggregation point for finished postcards.
#[derive(Debug, Clone, Default)]
pub struct Collector {
    groups: BTreeMap<PostcardId, PostcardGroup>,
    /// Sampled messages crossing each directed egress `(switch, port)`.
    link_util: BTreeMap<(usize, Port), u64>,
    /// Delivered-path-length tally, indexed by hop count.
    path_len: Vec<u64>,
}

impl Collector {
    pub fn new() -> Self {
        Collector::default()
    }

    /// Register which hosts should see publication `id`. May be
    /// called before or after the card finishes.
    pub fn expect(&mut self, id: PostcardId, published_ns: u64, hosts: &[usize]) {
        let g = self.groups.entry(id).or_default();
        g.published_ns = published_ns;
        g.expected.extend(hosts.iter().copied());
    }

    /// A traced copy crossed egress `(switch, port)` carrying `msgs`
    /// messages. Called by the simulator at forward time so shared
    /// path prefixes of multicast copies are counted exactly once.
    pub fn record_link(&mut self, switch: usize, port: Port, msgs: u64) {
        *self.link_util.entry((switch, port)).or_insert(0) += msgs;
    }

    /// A copy finished its journey.
    pub fn ingest(&mut self, card: Postcard, end: PostcardEnd) {
        let g = self.groups.entry(card.id).or_default();
        if g.published_ns == 0 {
            g.published_ns = card.published_ns;
        }
        if let PostcardEnd::Delivered { host, time_ns } = end {
            g.deliveries.push((host, time_ns));
            let len = card.path_len();
            if self.path_len.len() <= len {
                self.path_len.resize(len + 1, 0);
            }
            self.path_len[len] += 1;
        }
        g.completed.push((card, end));
    }

    pub fn group(&self, id: PostcardId) -> Option<&PostcardGroup> {
        self.groups.get(&id)
    }

    pub fn groups(&self) -> impl Iterator<Item = (&PostcardId, &PostcardGroup)> {
        self.groups.iter()
    }

    pub fn len(&self) -> usize {
        self.groups.len()
    }

    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Sampled messages per directed egress link.
    pub fn link_utilization(&self) -> &BTreeMap<(usize, Port), u64> {
        &self.link_util
    }

    /// Delivered-path-length tally, indexed by hop count.
    pub fn path_lengths(&self) -> &[u64] {
        &self.path_len
    }

    /// The `q`-quantile of delivered path lengths.
    pub fn path_percentile(&self, q: f64) -> usize {
        let total: u64 = self.path_len.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (len, n) in self.path_len.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return len;
            }
        }
        self.path_len.len() - 1
    }

    /// Run both detectors over everything collected so far. Groups
    /// whose expectation was satisfied, and cards with strictly
    /// increasing switch paths, report nothing.
    pub fn anomalies(&self) -> Vec<Anomaly> {
        let mut out = Vec::new();
        for (&id, g) in &self.groups {
            let missing = g.missing_hosts();
            if !missing.is_empty() {
                let last_switch = g
                    .completed
                    .iter()
                    .filter(|(_, end)| end.delivered_host().is_none())
                    .filter_map(|(card, end)| {
                        end.last_switch().or_else(|| card.hops.last().map(|h| h.switch))
                    })
                    .next();
                out.push(Anomaly::Blackhole {
                    id,
                    published_ns: g.published_ns,
                    missing,
                    last_switch,
                });
            }
            let mut looped: BTreeSet<usize> = BTreeSet::new();
            for (card, _) in &g.completed {
                if let Some(s) = card.find_loop() {
                    if looped.insert(s) {
                        out.push(Anomaly::Loop { id, switch: s });
                    }
                }
            }
        }
        out
    }

    /// Count of [`Anomaly::Blackhole`] reports.
    pub fn blackholes(&self) -> usize {
        self.anomalies().iter().filter(|a| matches!(a, Anomaly::Blackhole { .. })).count()
    }

    /// Count of [`Anomaly::Loop`] reports.
    pub fn loops(&self) -> usize {
        self.anomalies().iter().filter(|a| matches!(a, Anomaly::Loop { .. })).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hop(switch: usize, egress: Option<Port>) -> HopRecord {
        HopRecord { switch, egress, ..HopRecord::default() }
    }

    #[test]
    fn delivered_group_with_met_expectation_is_clean() {
        let mut c = Collector::new();
        c.expect(1, 100, &[7]);
        let mut card = Postcard::new(1, 100);
        card.record_hop(hop(0, Some(1)));
        card.record_hop(hop(3, Some(0)));
        c.ingest(card, PostcardEnd::Delivered { host: 7, time_ns: 4_100 });
        assert!(c.anomalies().is_empty());
        assert_eq!(c.path_percentile(0.5), 2);
        assert_eq!(c.group(1).unwrap().delivery_ns(7), Some(4_100));
    }

    #[test]
    fn missing_expected_host_is_a_blackhole() {
        let mut c = Collector::new();
        c.expect(9, 50, &[2, 3]);
        let mut card = Postcard::new(9, 50);
        card.record_hop(hop(0, Some(1)));
        c.ingest(card.clone(), PostcardEnd::Delivered { host: 2, time_ns: 99 });
        c.ingest(card, PostcardEnd::FaultDropped { switch: 5, time_ns: 80 });
        match &c.anomalies()[..] {
            [Anomaly::Blackhole { id: 9, missing, last_switch, .. }] => {
                assert_eq!(missing, &[3]);
                assert_eq!(*last_switch, Some(5));
            }
            other => panic!("expected one blackhole, got {other:?}"),
        }
        assert_eq!(c.blackholes(), 1);
        assert_eq!(c.loops(), 0);
    }

    #[test]
    fn repeated_switch_is_a_loop() {
        let mut c = Collector::new();
        let mut card = Postcard::new(4, 0);
        card.record_hop(hop(1, Some(9)));
        card.record_hop(hop(2, Some(9)));
        card.record_hop(hop(1, None));
        c.ingest(card, PostcardEnd::Filtered { switch: 1, time_ns: 10 });
        assert_eq!(c.anomalies(), vec![Anomaly::Loop { id: 4, switch: 1 }]);
    }

    #[test]
    fn hop_bound_is_enforced() {
        let mut card = Postcard::new(0, 0);
        for i in 0..MAX_HOPS {
            assert!(card.record_hop(hop(i, Some(0))));
        }
        assert!(!card.record_hop(hop(99, None)));
        assert_eq!(card.path_len(), MAX_HOPS);
    }

    #[test]
    fn duplicates_and_misdeliveries() {
        let mut c = Collector::new();
        c.expect(1, 0, &[4]);
        let card = Postcard::new(1, 0);
        c.ingest(card.clone(), PostcardEnd::Delivered { host: 4, time_ns: 10 });
        c.ingest(card.clone(), PostcardEnd::Delivered { host: 4, time_ns: 12 });
        c.ingest(card, PostcardEnd::Delivered { host: 8, time_ns: 11 });
        let g = c.group(1).unwrap();
        assert_eq!(g.duplicates(), 1);
        assert_eq!(g.misdeliveries(), 1);
        assert!(g.missing_hosts().is_empty());
    }
}
