//! The lock-free metrics core.
//!
//! Instruments are cheap enough to live on the data-plane fast path:
//! counters are sharded over cache-line-padded atomics, histograms use
//! log-scaled buckets (4 linear sub-buckets per power of two, so any
//! recorded value lands in a bucket whose width is at most 25% of its
//! lower bound), and the only coordination anywhere is a relaxed
//! atomic add. Reading happens through [`MetricsRegistry::snapshot`],
//! which is allowed to be (mildly) expensive.
//!
//! Sampling is a power-of-two mask ([`Sampler`]): deciding whether a
//! packet is observed costs one increment and one mask test, with no
//! data-dependent branches, so disabling telemetry keeps the PR-3
//! fast path within noise.

use std::cell::Cell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Shards per [`Counter`]; must be a power of two.
const SHARDS: usize = 8;

/// Sub-buckets per power of two in a [`Histogram`].
const SUB_BITS: u32 = 2;
const SUB: usize = 1 << SUB_BITS;
/// Total histogram buckets (enough for the full `u64` range).
pub const BUCKETS: usize = 64 * SUB;

/// One cache line per shard so concurrent writers do not false-share.
#[repr(align(64))]
#[derive(Debug, Default)]
struct Shard(AtomicU64);

static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static SHARD_HINT: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// The calling thread's stable shard index.
fn shard_hint() -> usize {
    SHARD_HINT.with(|c| {
        let mut v = c.get();
        if v == usize::MAX {
            v = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) & (SHARDS - 1);
            c.set(v);
        }
        v
    })
}

/// A monotonically increasing, wait-free counter. Writers add to a
/// per-thread shard; readers sum the shards.
#[derive(Debug, Default)]
pub struct Counter {
    shards: [Shard; SHARDS],
}

impl Counter {
    pub fn new() -> Self {
        Counter::default()
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.shards[shard_hint()].0.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    pub fn get(&self) -> u64 {
        self.shards.iter().map(|s| s.0.load(Ordering::Relaxed)).sum()
    }
}

/// A last-value instrument (signed, so it can model levels that go
/// down as well as up).
///
/// Cache-line aligned: per-shard instruments allocated back-to-back
/// must not share a line, or concurrent shards serialise on it.
#[repr(align(64))]
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    pub fn new() -> Self {
        Gauge::default()
    }

    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, d: i64) {
        self.value.fetch_add(d, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// The bucket a value lands in: log-scaled with [`SUB`] linear
/// sub-buckets per octave. Monotone in `v`, total over `u64`.
pub fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros();
        let sub = ((v >> (msb - SUB_BITS)) & (SUB as u64 - 1)) as usize;
        ((msb - SUB_BITS) as usize + 1) * SUB + sub
    }
}

/// Inclusive value range `[lo, hi]` covered by bucket `idx`.
pub fn bucket_bounds(idx: usize) -> (u64, u64) {
    if idx < SUB {
        (idx as u64, idx as u64)
    } else {
        let shift = (idx / SUB - 1) as u32;
        let lo = ((SUB + idx % SUB) as u64) << shift;
        let width = 1u64 << shift;
        (lo, lo + (width - 1))
    }
}

/// A lock-free log-bucketed histogram of `u64` samples.
///
/// Recording is five relaxed atomic RMWs (bucket, count, sum, min,
/// max) and never allocates, so the data plane can call it directly.
/// Cache-line aligned so the count/sum/min/max header words of
/// adjacent per-shard histograms never false-share.
#[repr(align(64))]
pub struct Histogram {
    buckets: Box<[AtomicU64; BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: Box::new([0u64; BUCKETS].map(AtomicU64::new)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.snapshot();
        f.debug_struct("Histogram")
            .field("count", &s.count)
            .field("p50", &s.percentile(0.50))
            .field("p99", &s.percentile(0.99))
            .field("max", &s.max)
            .finish()
    }
}

impl Histogram {
    pub fn new() -> Self {
        Histogram::default()
    }

    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Fold another live histogram into this one, bucket by bucket.
    /// Equivalent to having recorded the concatenation of both sample
    /// streams into `self`.
    pub fn merge_from(&self, other: &Histogram) {
        for (b, o) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = o.load(Ordering::Relaxed);
            if n > 0 {
                b.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum.fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.min.fetch_min(other.min.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max.fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let count = self.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            buckets,
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 { 0 } else { self.min.load(Ordering::Relaxed) },
            max: self.max.load(Ordering::Relaxed),
        }
    }

    /// Convenience percentile straight off the live buckets.
    pub fn percentile(&self, q: f64) -> u64 {
        self.snapshot().percentile(q)
    }
}

/// An immutable copy of a [`Histogram`]'s state.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
}

impl HistogramSnapshot {
    /// The `q`-quantile estimate (`0.0 ..= 1.0`): the upper bound of
    /// the bucket containing the exact order statistic, so the
    /// estimate is always within one log-bucket of the true value.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_bounds(i).1.min(self.max);
            }
        }
        self.max
    }

    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }

    pub fn p90(&self) -> u64 {
        self.percentile(0.90)
    }

    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }

    pub fn p999(&self) -> u64 {
        self.percentile(0.999)
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Merge another snapshot in; equivalent to a snapshot of the
    /// concatenated sample streams.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if self.buckets.is_empty() {
            self.buckets = vec![0; BUCKETS];
        }
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        // Matches the live histogram's relaxed fetch_add, which wraps.
        self.sum = self.sum.wrapping_add(other.sum);
        if other.count > 0 {
            self.min = if self.count == 0 { other.min } else { self.min.min(other.min) };
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
    }

    /// Bucket-wise difference against an earlier snapshot (saturating,
    /// so a reset instrument never underflows). `min`/`max` cannot be
    /// differenced and keep their current values.
    pub fn delta(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut buckets = self.buckets.clone();
        for (b, e) in buckets.iter_mut().zip(earlier.buckets.iter()) {
            *b = b.saturating_sub(*e);
        }
        HistogramSnapshot {
            buckets,
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            min: self.min,
            max: self.max,
        }
    }
}

/// How often the data plane observes a packet.
///
/// Rates are powers of two so the per-packet decision is a single
/// mask test. [`SampleRate::DISABLED`] uses an all-ones mask: the
/// test only passes when the tick counter wraps to zero, i.e. once
/// every 2^64 packets — never, for any practical run — while keeping
/// the disabled path byte-identical to the enabled one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampleRate {
    mask: u64,
}

impl SampleRate {
    /// Sampling off (rate 0).
    pub const DISABLED: SampleRate = SampleRate { mask: u64::MAX };

    /// Sample one packet in `n`; `n` must be a power of two.
    pub fn every(n: u64) -> SampleRate {
        assert!(n.is_power_of_two(), "sample rate must be a power of two, got {n}");
        SampleRate { mask: n - 1 }
    }

    /// Sample every packet (rate 1/1).
    pub fn always() -> SampleRate {
        SampleRate::every(1)
    }

    pub fn is_disabled(&self) -> bool {
        self.mask == u64::MAX
    }

    /// Human-readable rate for table output: `off`, `1/1`, `1/256`, …
    pub fn label(&self) -> String {
        if self.is_disabled() {
            "off".to_string()
        } else {
            format!("1/{}", self.mask + 1)
        }
    }
}

/// The per-packet sampling decision: one increment plus one mask test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sampler {
    mask: u64,
    ticks: u64,
}

impl Sampler {
    pub fn new(rate: SampleRate) -> Sampler {
        Sampler { mask: rate.mask, ticks: 0 }
    }

    pub fn rate(&self) -> SampleRate {
        SampleRate { mask: self.mask }
    }

    /// Advance and report whether this packet is sampled.
    #[inline]
    pub fn tick(&mut self) -> bool {
        self.ticks = self.ticks.wrapping_add(1);
        self.ticks & self.mask == 0
    }
}

/// Named instruments, created on first use and shared via `Arc`.
///
/// The registry itself takes a mutex, but only on instrument creation
/// and snapshotting — the handles it returns are lock-free.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<String, Arc<Counter>>,
    gauges: BTreeMap<String, Arc<Gauge>>,
    histograms: BTreeMap<String, Arc<Histogram>>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut inner = self.inner.lock().unwrap();
        inner.counters.entry(name.to_string()).or_default().clone()
    }

    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut inner = self.inner.lock().unwrap();
        inner.gauges.entry(name.to_string()).or_default().clone()
    }

    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut inner = self.inner.lock().unwrap();
        inner.histograms.entry(name.to_string()).or_default().clone()
    }

    /// A point-in-time copy of every instrument.
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.inner.lock().unwrap();
        Snapshot {
            counters: inner.counters.iter().map(|(k, c)| (k.clone(), c.get())).collect(),
            gauges: inner.gauges.iter().map(|(k, g)| (k.clone(), g.get())).collect(),
            histograms: inner.histograms.iter().map(|(k, h)| (k.clone(), h.snapshot())).collect(),
        }
    }
}

/// A point-in-time copy of a [`MetricsRegistry`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, i64>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Snapshot {
    /// What happened since `earlier`: counters and histogram buckets
    /// are differenced (saturating), gauges keep their current value.
    pub fn delta(&self, earlier: &Snapshot) -> Snapshot {
        let counters = self
            .counters
            .iter()
            .map(|(k, v)| {
                (k.clone(), v.saturating_sub(earlier.counters.get(k).copied().unwrap_or(0)))
            })
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(k, h)| match earlier.histograms.get(k) {
                Some(e) => (k.clone(), h.delta(e)),
                None => (k.clone(), h.clone()),
            })
            .collect();
        Snapshot { counters, gauges: self.gauges.clone(), histograms }
    }

    /// CSV export: `kind,name,field,value` rows, one per scalar.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("kind,name,field,value\n");
        for (k, v) in &self.counters {
            let _ = writeln!(out, "counter,{k},value,{v}");
        }
        for (k, v) in &self.gauges {
            let _ = writeln!(out, "gauge,{k},value,{v}");
        }
        for (k, h) in &self.histograms {
            let _ = writeln!(out, "histogram,{k},count,{}", h.count);
            let _ = writeln!(out, "histogram,{k},sum,{}", h.sum);
            let _ = writeln!(out, "histogram,{k},min,{}", h.min);
            let _ = writeln!(out, "histogram,{k},max,{}", h.max);
            for (label, q) in [("p50", 0.50), ("p90", 0.90), ("p99", 0.99), ("p999", 0.999)] {
                let _ = writeln!(out, "histogram,{k},{label},{}", h.percentile(q));
            }
        }
        out
    }

    /// JSON export (hand-rolled: the vendored serde_json stub has no
    /// serializer, matching the rest of the workspace).
    pub fn to_json(&self) -> String {
        fn join<T: std::fmt::Display>(items: impl Iterator<Item = (String, T)>) -> String {
            items.map(|(k, v)| format!("    \"{k}\": {v}")).collect::<Vec<_>>().join(",\n")
        }
        let hists = self
            .histograms
            .iter()
            .map(|(k, h)| {
                format!(
                    "    \"{k}\": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
                     \"p50\": {}, \"p90\": {}, \"p99\": {}, \"p999\": {}}}",
                    h.count,
                    h.sum,
                    h.min,
                    h.max,
                    h.p50(),
                    h.p90(),
                    h.p99(),
                    h.p999()
                )
            })
            .collect::<Vec<_>>()
            .join(",\n");
        format!(
            "{{\n  \"counters\": {{\n{}\n  }},\n  \"gauges\": {{\n{}\n  }},\n  \
             \"histograms\": {{\n{}\n  }}\n}}\n",
            join(self.counters.iter().map(|(k, v)| (k.clone(), *v))),
            join(self.gauges.iter().map(|(k, v)| (k.clone(), *v))),
            hists
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_consistent_with_bounds() {
        let mut prev = 0;
        for v in [0u64, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 100, 1 << 20, u64::MAX / 2, u64::MAX] {
            let i = bucket_index(v);
            assert!(i >= prev, "bucket_index must be monotone at {v}");
            prev = i;
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= v && v <= hi, "value {v} outside its bucket [{lo}, {hi}]");
        }
        // Adjacent buckets tile the range with no gaps.
        for i in 0..BUCKETS - 1 {
            let (_, hi) = bucket_bounds(i);
            if hi == u64::MAX {
                break;
            }
            let (lo_next, _) = bucket_bounds(i + 1);
            assert_eq!(hi + 1, lo_next, "gap after bucket {i}");
        }
    }

    #[test]
    fn counter_shards_sum() {
        let c = Counter::new();
        for _ in 0..100 {
            c.inc();
        }
        c.add(17);
        assert_eq!(c.get(), 117);
    }

    #[test]
    fn histogram_percentiles_track_known_distribution() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 1000);
        // The p50 bucket must contain 500; upper bound is within 25%.
        let p50 = s.p50();
        assert!((500..=640).contains(&p50), "p50 {p50}");
        let p999 = s.p999();
        assert!((999..=1000).contains(&p999), "p999 {p999}");
    }

    #[test]
    fn sampler_mask_rates() {
        let mut s = Sampler::new(SampleRate::every(4));
        let hits = (0..16).filter(|_| s.tick()).count();
        assert_eq!(hits, 4);
        let mut always = Sampler::new(SampleRate::always());
        assert!((0..10).all(|_| always.tick()));
        let mut off = Sampler::new(SampleRate::DISABLED);
        assert!((0..10_000).filter(|_| off.tick()).count() == 0);
        assert_eq!(SampleRate::every(256).label(), "1/256");
        assert_eq!(SampleRate::DISABLED.label(), "off");
    }

    #[test]
    fn registry_snapshot_and_delta() {
        let r = MetricsRegistry::new();
        let c = r.counter("pkts");
        let g = r.gauge("depth");
        let h = r.histogram("lat");
        c.add(5);
        g.set(3);
        h.record(10);
        let s1 = r.snapshot();
        c.add(7);
        h.record(20);
        let s2 = r.snapshot();
        let d = s2.delta(&s1);
        assert_eq!(d.counters["pkts"], 7);
        assert_eq!(d.gauges["depth"], 3);
        assert_eq!(d.histograms["lat"].count, 1);
        assert!(s2.to_csv().contains("counter,pkts,value,12"));
        assert!(s2.to_json().contains("\"pkts\": 12"));
    }

    #[test]
    fn histogram_merge_matches_concatenated_stream() {
        let a = Histogram::new();
        let b = Histogram::new();
        let c = Histogram::new();
        for v in [1u64, 5, 9, 100] {
            a.record(v);
            c.record(v);
        }
        for v in [2u64, 500, 1 << 30] {
            b.record(v);
            c.record(v);
        }
        a.merge_from(&b);
        assert_eq!(a.snapshot(), c.snapshot());
    }
}
