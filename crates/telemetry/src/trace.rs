//! Controller span tracing.
//!
//! A deploy or repair transaction decomposes into phases — route,
//! compile, admit, stage, commit, finalize — and the PR-4 transaction
//! ledger already accounts the modelled control-plane nanoseconds per
//! switch. [`DeployTrace`] turns both into a per-phase latency
//! breakdown. Control-plane spans use the *modelled* clock (op,
//! timeout and backoff costs from the retry policy), so traces are
//! deterministic under a seed; route and compile spans are the
//! controller's real wall-clock and are flagged as such.

use std::fmt::Write as _;

/// One phase of a deploy/repair transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DeployPhase {
    /// Algorithm 1 routing.
    Route,
    /// Per-switch rule compilation.
    Compile,
    /// Admission: resource check of the staged pipeline. Rides the
    /// stage RPC, so its span carries verdict counts, not time.
    Admit,
    /// Phase one of the transaction: shadow-side staging.
    Stage,
    /// Phase two: atomically swap in the staged programs.
    Commit,
    /// Retire displaced programs once the transaction is safe.
    Finalize,
}

impl DeployPhase {
    pub fn label(&self) -> &'static str {
        match self {
            DeployPhase::Route => "route",
            DeployPhase::Compile => "compile",
            DeployPhase::Admit => "admit",
            DeployPhase::Stage => "stage",
            DeployPhase::Commit => "commit",
            DeployPhase::Finalize => "finalize",
        }
    }
}

/// A contiguous phase span. `start_ns` is the offset from transaction
/// start on the span's own clock: modelled control time for
/// stage/commit/finalize, wall-clock for route/compile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseSpan {
    pub phase: DeployPhase,
    pub start_ns: u64,
    pub duration_ns: u64,
    /// `true` when `duration_ns` is modelled (deterministic) time.
    pub modelled: bool,
}

/// The per-switch slice of the stage/commit phases, lifted from the
/// transaction ledger.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwitchSpan {
    pub switch: usize,
    /// Modelled control time spent staging (ops, timeouts, backoff).
    pub stage_ns: u64,
    /// Modelled control time spent committing.
    pub commit_ns: u64,
    pub attempts: u32,
    pub retries: u32,
    pub committed: bool,
    pub rolled_back: bool,
}

/// The life of one subscription request through the controller
/// service: accepted into a batch window, compiled, and finally
/// deployed (traffic-affecting). All stamps are on the service's
/// modelled clock, so spans are reproducible under a seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestSpan {
    /// Service-assigned request id.
    pub request: u64,
    /// The subscribing (or unsubscribing) host.
    pub host: usize,
    /// When the request entered intake.
    pub arrival_ns: u64,
    /// When its batch window closed.
    pub batched_ns: u64,
    /// When its transaction's compile finished.
    pub compiled_ns: u64,
    /// When its transaction's install committed — the moment the
    /// request affects traffic.
    pub deployed_ns: u64,
}

impl RequestSpan {
    /// Request → first packet deliverable: the service experiment's
    /// p99 metric.
    pub fn time_to_traffic_ns(&self) -> u64 {
        self.deployed_ns.saturating_sub(self.arrival_ns)
    }
}

/// A rendered deploy/repair transaction: phase spans plus the
/// per-switch ledger, and — when the transaction came through the
/// controller service — the per-request intake→deployed spans it
/// carried.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeployTrace {
    pub spans: Vec<PhaseSpan>,
    pub switches: Vec<SwitchSpan>,
    pub requests: Vec<RequestSpan>,
}

impl DeployTrace {
    /// Assemble a trace from the controller's measured route/compile
    /// wall times and the ledger-derived per-switch spans. The
    /// controller drives switches sequentially over the control
    /// channel, so phase durations are sums of per-switch times.
    pub fn build(route_ns: u64, compile_ns: u64, switches: Vec<SwitchSpan>) -> Self {
        let stage_ns: u64 = switches.iter().map(|s| s.stage_ns).sum();
        let commit_ns: u64 = switches.iter().map(|s| s.commit_ns).sum();
        let spans = vec![
            PhaseSpan {
                phase: DeployPhase::Route,
                start_ns: 0,
                duration_ns: route_ns,
                modelled: false,
            },
            PhaseSpan {
                phase: DeployPhase::Compile,
                start_ns: route_ns,
                duration_ns: compile_ns,
                modelled: false,
            },
            // Admission is decided inside the stage RPC; the span
            // exists so the phase sequence is complete, its time is
            // accounted under Stage.
            PhaseSpan { phase: DeployPhase::Admit, start_ns: 0, duration_ns: 0, modelled: true },
            PhaseSpan {
                phase: DeployPhase::Stage,
                start_ns: 0,
                duration_ns: stage_ns,
                modelled: true,
            },
            PhaseSpan {
                phase: DeployPhase::Commit,
                start_ns: stage_ns,
                duration_ns: commit_ns,
                modelled: true,
            },
            PhaseSpan {
                phase: DeployPhase::Finalize,
                start_ns: stage_ns + commit_ns,
                duration_ns: 0,
                modelled: true,
            },
        ];
        DeployTrace { spans, switches, requests: Vec::new() }
    }

    /// Attach the per-request spans of the service transaction this
    /// trace belongs to.
    pub fn with_requests(mut self, requests: Vec<RequestSpan>) -> Self {
        self.requests = requests;
        self
    }

    pub fn phase_ns(&self, phase: DeployPhase) -> u64 {
        self.spans.iter().filter(|s| s.phase == phase).map(|s| s.duration_ns).sum()
    }

    /// Total modelled control-plane time (stage + commit + finalize).
    pub fn modelled_control_ns(&self) -> u64 {
        self.spans.iter().filter(|s| s.modelled).map(|s| s.duration_ns).sum()
    }

    /// Switches that needed at least one retry.
    pub fn retried_switches(&self) -> usize {
        self.switches.iter().filter(|s| s.retries > 0).count()
    }

    /// Render the per-phase latency breakdown as a small text table.
    pub fn render(&self) -> String {
        let mut out = String::from("phase      clock     duration_ns\n");
        for s in &self.spans {
            let clock = if s.modelled { "modelled" } else { "wall" };
            let _ = writeln!(out, "{:<10} {:<9} {}", s.phase.label(), clock, s.duration_ns);
        }
        let _ = writeln!(
            out,
            "-- {} switches, {} committed, {} retried --",
            self.switches.len(),
            self.switches.iter().filter(|s| s.committed).count(),
            self.retried_switches()
        );
        if !self.requests.is_empty() {
            let worst = self.requests.iter().map(RequestSpan::time_to_traffic_ns).max().unwrap();
            let _ = writeln!(
                out,
                "-- {} requests, worst time-to-traffic {} ns --",
                self.requests.len(),
                worst
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_builds_phase_breakdown_from_ledger() {
        let switches = vec![
            SwitchSpan {
                switch: 0,
                stage_ns: 20_000,
                commit_ns: 20_000,
                attempts: 2,
                retries: 0,
                committed: true,
                rolled_back: false,
            },
            SwitchSpan {
                switch: 1,
                stage_ns: 170_000,
                commit_ns: 20_000,
                attempts: 3,
                retries: 1,
                committed: true,
                rolled_back: false,
            },
        ];
        let t = DeployTrace::build(1_000, 2_000, switches);
        assert_eq!(t.phase_ns(DeployPhase::Route), 1_000);
        assert_eq!(t.phase_ns(DeployPhase::Compile), 2_000);
        assert_eq!(t.phase_ns(DeployPhase::Stage), 190_000);
        assert_eq!(t.phase_ns(DeployPhase::Commit), 40_000);
        assert_eq!(t.modelled_control_ns(), 230_000);
        assert_eq!(t.retried_switches(), 1);
        let text = t.render();
        assert!(text.contains("stage"));
        assert!(text.contains("modelled"));
        assert!(text.contains("2 committed"));
    }

    #[test]
    fn request_spans_ride_the_trace() {
        let span = RequestSpan {
            request: 7,
            host: 3,
            arrival_ns: 100,
            batched_ns: 300,
            compiled_ns: 900,
            deployed_ns: 1_500,
        };
        assert_eq!(span.time_to_traffic_ns(), 1_400);
        let t = DeployTrace::build(1, 2, Vec::new()).with_requests(vec![span]);
        assert_eq!(t.requests.len(), 1);
        assert!(t.render().contains("worst time-to-traffic 1400 ns"));
        // A clock-skewed stamp must not panic the metric.
        let skew = RequestSpan { deployed_ns: 50, ..span };
        assert_eq!(skew.time_to_traffic_ns(), 0);
    }
}
