//! Observability for the Camus reproduction.
//!
//! Three pillars, one crate:
//!
//! * [`metrics`] — a lock-free metrics core (sharded counters,
//!   gauges, log-bucketed histograms) behind a [`MetricsRegistry`],
//!   with power-of-two [`Sampler`] masks so the data-plane fast path
//!   pays one mask test when telemetry is disabled;
//! * [`postcard`] — INT-style packet postcards: sampled packets
//!   accumulate a bounded per-hop record that a controller-side
//!   [`Collector`] aggregates into link utilization, path-length
//!   distributions, and blackhole/loop anomaly reports;
//! * [`trace`] — deterministic (modelled-time) span tracing around
//!   the controller's deploy phases, rendering the transaction ledger
//!   as a per-phase latency breakdown.
//!
//! The crate deliberately depends only on `camus-lang` (for the
//! `Port` type), so every other layer — dataplane, simulator,
//! controller, harnesses — can depend on it without cycles.

pub mod metrics;
pub mod postcard;
pub mod trace;

pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, SampleRate, Sampler, Snapshot,
};
pub use postcard::{
    Anomaly, Collector, HopRecord, Postcard, PostcardEnd, PostcardGroup, PostcardId, MAX_HOPS,
};
pub use trace::{DeployPhase, DeployTrace, PhaseSpan, RequestSpan, SwitchSpan};
