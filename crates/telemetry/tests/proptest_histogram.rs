//! Property tests for the log-bucketed histogram: percentile
//! estimates stay within one bucket of the exact order statistics,
//! and merging is indistinguishable from recording the concatenated
//! sample stream.

use camus_telemetry::metrics::{bucket_index, Histogram};
use proptest::collection::vec;
use proptest::prelude::*;

/// Exact `q`-quantile: the order statistic at rank `ceil(q * n)`.
fn exact_percentile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Samples spanning the whole `u64` range: small counts, mid-range
/// latencies, and huge outliers all exercise different octaves.
fn arb_samples() -> impl Strategy<Value = Vec<u64>> {
    let sample = prop_oneof![0u64..64, 0u64..100_000, any::<u64>(),];
    vec(sample, 1..200)
}

proptest! {
    #[test]
    fn percentiles_within_one_bucket_of_exact(xs in arb_samples()) {
        let h = Histogram::new();
        for &v in &xs {
            h.record(v);
        }
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        let snap = h.snapshot();
        prop_assert_eq!(snap.count, xs.len() as u64);
        for q in [0.5, 0.9, 0.99, 0.999] {
            let exact = exact_percentile(&sorted, q);
            let est = snap.percentile(q);
            let db = (bucket_index(est) as i64 - bucket_index(exact) as i64).abs();
            prop_assert!(
                db <= 1,
                "q={} exact={} (bucket {}) est={} (bucket {})",
                q, exact, bucket_index(exact), est, bucket_index(est)
            );
            // The estimate never undershoots the exact value's bucket
            // lower bound and never exceeds the observed max.
            prop_assert!(est <= snap.max);
        }
    }

    #[test]
    fn merge_equals_concatenated_stream(xs in arb_samples(), ys in arb_samples()) {
        let a = Histogram::new();
        let b = Histogram::new();
        let c = Histogram::new();
        for &v in &xs {
            a.record(v);
            c.record(v);
        }
        for &v in &ys {
            b.record(v);
            c.record(v);
        }
        // Live merge.
        a.merge_from(&b);
        prop_assert_eq!(a.snapshot(), c.snapshot());
        // Snapshot-level merge agrees too.
        let a2 = Histogram::new();
        for &v in &xs {
            a2.record(v);
        }
        let mut snap = a2.snapshot();
        snap.merge(&b.snapshot());
        prop_assert_eq!(snap, c.snapshot());
    }

    #[test]
    fn every_value_lands_in_its_bucket(v in any::<u64>()) {
        let i = bucket_index(v);
        let (lo, hi) = camus_telemetry::metrics::bucket_bounds(i);
        prop_assert!(lo <= v && v <= hi);
    }
}
