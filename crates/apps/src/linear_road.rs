//! Application 6: IoT motor-highway monitoring (§VIII-C.6).
//!
//! Inspired by the Linear Road stream-processing benchmark: cars emit
//! ten position reports per second; the network forwards to the
//! monitoring server only the reports of cars speeding inside a
//! configured lat/long box. The paper's example rule —
//! `x > 10 ∧ x < 20 ∧ y > 30 ∧ y < 40 ∧ spd > 55: fwd(1)` — predicates
//! on five fields yet evaluates in a single pipeline pass.

use camus_core::compiler::{CompileError, Compiler};
use camus_core::statics::{compile_static, StaticPipeline};
use camus_dataplane::{Packet, PacketBuilder, Switch, SwitchConfig};
use camus_lang::ast::Rule;
use camus_lang::parser::parse_rule;
use camus_lang::spec::Spec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Position-report header: car id, coordinates, speed.
pub fn linear_road_spec() -> Spec {
    Spec::parse(
        r#"
        header position_report {
            bit<32> car_id;
            @field bit<16> x;
            @field bit<16> y;
            @field bit<16> spd;
            bit<32> ts;
        }
        sequence position_report
        "#,
    )
    .expect("Linear-Road spec parses")
}

/// A rectangular monitoring region with a speed limit.
#[derive(Debug, Clone, Copy)]
pub struct Region {
    pub x: (i64, i64),
    pub y: (i64, i64),
    pub speed_limit: i64,
}

impl Region {
    /// The paper's example region.
    pub fn paper_example() -> Region {
        Region { x: (10, 20), y: (30, 40), speed_limit: 55 }
    }

    /// The subscription rule for this region.
    pub fn rule(&self, port: u16) -> Rule {
        parse_rule(&format!(
            "x > {} and x < {} and y > {} and y < {} and spd > {}: fwd({port})",
            self.x.0, self.x.1, self.y.0, self.y.1, self.speed_limit
        ))
        .expect("well-formed region rule")
    }

    pub fn contains_speeding(&self, x: i64, y: i64, spd: i64) -> bool {
        x > self.x.0 && x < self.x.1 && y > self.y.0 && y < self.y.1 && spd > self.speed_limit
    }
}

/// The monitoring application.
pub struct LinearRoadApp {
    pub spec: Spec,
    pub statics: StaticPipeline,
}

impl LinearRoadApp {
    pub fn new() -> Self {
        let spec = linear_road_spec();
        let statics = compile_static(&spec).expect("Linear-Road spec compiles");
        LinearRoadApp { spec, statics }
    }

    pub fn switch(
        &self,
        regions: &[(Region, u16)],
        config: SwitchConfig,
    ) -> Result<Switch, CompileError> {
        let rules: Vec<Rule> = regions.iter().map(|(r, p)| r.rule(*p)).collect();
        let compiled = Compiler::new().with_static(self.statics.clone()).compile(&rules)?;
        Ok(Switch::new(&self.statics, compiled.pipeline, config))
    }

    /// A position-report packet.
    pub fn report(&self, car_id: i64, x: i64, y: i64, spd: i64, ts: i64) -> Packet {
        PacketBuilder::new(&self.spec)
            .stack_field("position_report", "car_id", car_id)
            .stack_field("position_report", "x", x)
            .stack_field("position_report", "y", y)
            .stack_field("position_report", "spd", spd)
            .stack_field("position_report", "ts", ts)
            .build()
    }
}

impl Default for LinearRoadApp {
    fn default() -> Self {
        Self::new()
    }
}

/// Generate `cars` cars random-walking for `steps` ticks (10 reports/s
/// per car in the paper), as `(car_id, x, y, spd)` tuples.
pub fn drive(cars: usize, steps: usize, seed: u64) -> Vec<(i64, i64, i64, i64)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut state: Vec<(i64, i64, i64)> = (0..cars)
        .map(|_| (rng.gen_range(0..50), rng.gen_range(0..50), rng.gen_range(30..70)))
        .collect();
    let mut out = Vec::with_capacity(cars * steps);
    for _ in 0..steps {
        for (car, s) in state.iter_mut().enumerate() {
            s.0 = (s.0 + rng.gen_range(-2..=2)).clamp(0, 50);
            s.1 = (s.1 + rng.gen_range(-2..=2)).clamp(0, 50);
            s.2 = (s.2 + rng.gen_range(-5..=5)).clamp(20, 90);
            out.push((car as i64, s.0, s.1, s.2));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_rule_evaluates_in_one_pass() {
        let app = LinearRoadApp::new();
        let mut sw = app.switch(&[(Region::paper_example(), 1)], SwitchConfig::default()).unwrap();
        // Speeding inside the box.
        let out = sw.process(&app.report(7, 15, 35, 60, 0), 0, 0);
        assert_eq!(out.ports.len(), 1);
        assert_eq!(out.passes, 1, "five predicates, single pipeline pass");
        // Inside the box but lawful.
        assert!(sw.process(&app.report(7, 15, 35, 50, 1), 0, 1).ports.is_empty());
        // Speeding outside the box.
        assert!(sw.process(&app.report(7, 5, 35, 80, 2), 0, 2).ports.is_empty());
        // Boundary is exclusive.
        assert!(sw.process(&app.report(7, 10, 35, 80, 3), 0, 3).ports.is_empty());
    }

    #[test]
    fn detection_matches_ground_truth_over_a_drive() {
        let app = LinearRoadApp::new();
        let region = Region::paper_example();
        let mut sw = app.switch(&[(region, 1)], SwitchConfig::default()).unwrap();
        let mut expected = 0usize;
        let mut detected = 0usize;
        // Seed chosen so the walk actually crosses the region (52
        // ground-truth reports) — asserted below, so a change to the
        // generator's sampling stream fails loudly instead of silently
        // testing nothing.
        for (i, (car, x, y, spd)) in drive(20, 50, 2).into_iter().enumerate() {
            if region.contains_speeding(x, y, spd) {
                expected += 1;
            }
            detected += sw.process(&app.report(car, x, y, spd, i as i64), 0, i as u64).ports.len();
        }
        assert_eq!(detected, expected);
        assert!(expected > 0, "the random walk crosses the region");
    }

    #[test]
    fn multiple_regions_to_multiple_monitors() {
        let app = LinearRoadApp::new();
        let north = Region { x: (0, 50), y: (25, 50), speed_limit: 55 };
        let south = Region { x: (0, 50), y: (0, 28), speed_limit: 55 };
        let mut sw = app.switch(&[(north, 1), (south, 2)], SwitchConfig::default()).unwrap();
        let out = sw.process(&app.report(1, 25, 40, 70, 0), 0, 0);
        assert_eq!(out.ports.iter().map(|(p, _)| *p).collect::<Vec<_>>(), vec![1]);
        let out = sw.process(&app.report(1, 25, 10, 70, 1), 0, 1);
        assert_eq!(out.ports.iter().map(|(p, _)| *p).collect::<Vec<_>>(), vec![2]);
        // The overlap band (25 < y < 28) multicasts to both monitors.
        let out = sw.process(&app.report(1, 25, 26, 70, 2), 0, 2);
        let ports: Vec<u16> = out.ports.iter().map(|(p, _)| *p).collect();
        assert_eq!(ports, vec![1, 2]);
    }
}
