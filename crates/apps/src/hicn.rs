//! Application 4: hybrid-ICN video streaming (§VIII-C.4, §VIII-E.3).
//!
//! hICN embeds a content identifier in the IPv6 address so content can
//! be served by in-network software forwarders acting as caches. The
//! forwarder helps for *hot* content but is a bottleneck for cold
//! content: a miss pays the forwarder's queue **and** the upstream
//! fetch. The Camus improvement routes a request to the forwarder only
//! when the meter state says a cache hit is likely; cold requests
//! bypass straight upstream.
//!
//! This module models the full path: an LRU content store, a
//! single-server forwarder queue, the upstream producer, and the
//! meter-driven Camus subscriptions (`content_id == HOT: fwd(FWD)` with
//! a `true: fwd(UP)` default) recompiled when the hot set changes.

use camus_core::compiler::Compiler;
use camus_core::pipeline::Pipeline;
use camus_core::statics::{compile_static, StaticPipeline};
use camus_lang::ast::{Action, Operand, Rule};
use camus_lang::parser::parse_rule;
use camus_lang::spec::Spec;
use camus_lang::value::Value;
use camus_workloads::content::Request;
use std::collections::HashMap;

/// The hICN header spec: the content identifier inside the IPv6
/// destination (hICN's trick for brownfield deployment).
pub fn hicn_spec() -> Spec {
    Spec::parse(
        r#"
        header hicn {
            bit<64> dst_prefix;
            @field bit<64> content_id;
            @field bit<8>  is_request;
        }
        sequence hicn
        "#,
    )
    .expect("hICN spec parses")
}

// ---------------------------------------------------------------------------
// LRU content store
// ---------------------------------------------------------------------------

/// A fixed-capacity LRU set of content identifiers (the forwarder's
/// content store).
#[derive(Debug)]
pub struct LruCache {
    capacity: usize,
    /// id → tick of last use.
    last_use: HashMap<u64, u64>,
    tick: u64,
}

impl LruCache {
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        LruCache { capacity, last_use: HashMap::new(), tick: 0 }
    }

    /// Look up and touch; returns whether it was a hit. On a miss the
    /// content is fetched and inserted (evicting the LRU entry).
    pub fn access(&mut self, id: u64) -> bool {
        self.tick += 1;
        let hit = self.last_use.contains_key(&id);
        self.last_use.insert(id, self.tick);
        if self.last_use.len() > self.capacity {
            // Evict the least recently used entry.
            if let Some((&victim, _)) = self.last_use.iter().min_by_key(|(_, &t)| t) {
                self.last_use.remove(&victim);
            }
        }
        hit
    }

    pub fn contains(&self, id: u64) -> bool {
        self.last_use.contains_key(&id)
    }

    pub fn len(&self) -> usize {
        self.last_use.len()
    }

    pub fn is_empty(&self) -> bool {
        self.last_use.is_empty()
    }
}

// ---------------------------------------------------------------------------
// Path model
// ---------------------------------------------------------------------------

/// Routing modes compared in Fig. 11.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Every request goes through the software forwarder (the hICN
    /// deployment the paper starts from).
    Baseline,
    /// Camus: meter-gated — only likely-hot requests visit the
    /// forwarder, the rest go straight upstream.
    Camus,
}

/// Timing and sizing parameters.
#[derive(Debug, Clone)]
pub struct HicnConfig {
    pub cache_capacity: usize,
    /// Forwarder per-request service time (the VPP forwarder tops out
    /// around 3.5 Gbps in the paper; for ~1 kB objects that is ~2.4 μs
    /// per request, putting it near saturation under the hot streams).
    pub forwarder_service_ns: u64,
    /// One-way-ish cost of fetching from the upstream producer.
    pub upstream_ns: u64,
    /// Hardware-switch hop latency.
    pub switch_ns: u64,
    /// Meter: requests per id within a window to count as hot.
    pub hot_threshold: u32,
    /// Meter window length (requests, tumbling).
    pub meter_window: usize,
}

impl Default for HicnConfig {
    fn default() -> Self {
        HicnConfig {
            cache_capacity: 64,
            forwarder_service_ns: 2_400,
            upstream_ns: 200_000,
            switch_ns: 1_000,
            hot_threshold: 3,
            meter_window: 512,
        }
    }
}

/// Per-request outcome.
#[derive(Debug, Clone, Copy)]
pub struct Served {
    pub content_id: u64,
    pub latency_ns: u64,
    pub via_forwarder: bool,
    pub cache_hit: bool,
}

/// The simulation: forwarder queue + cache + meter + (for Camus mode)
/// an actually compiled subscription pipeline.
pub struct HicnSim {
    cfg: HicnConfig,
    statics: StaticPipeline,
    cache: LruCache,
    forwarder_busy_until_ns: u64,
    meter: HashMap<u64, u32>,
    meter_seen: usize,
    hot: Vec<u64>,
    pipeline: Option<Pipeline>,
    /// Count of pipeline recompilations (hot-set changes).
    pub recompiles: usize,
}

/// Port names used by the compiled rules.
pub const PORT_FORWARDER: u16 = 1;
pub const PORT_UPSTREAM: u16 = 2;

impl HicnSim {
    pub fn new(cfg: HicnConfig) -> Self {
        let statics_src = hicn_spec();
        let spec = statics_src;
        let statics = compile_static(&spec).expect("hICN spec compiles");
        let mut sim = HicnSim {
            cache: LruCache::new(cfg.cache_capacity),
            cfg,
            statics,
            forwarder_busy_until_ns: 0,
            meter: HashMap::new(),
            meter_seen: 0,
            hot: Vec::new(),
            pipeline: None,
            recompiles: 0,
        };
        sim.recompile();
        sim
    }

    /// The Camus subscription set for the current hot set: one exact
    /// rule per hot id routing to the forwarder, plus the default
    /// upstream route. This is the paper's "filters refer to meter
    /// state and content identifier" realised as controller-driven
    /// resubscription.
    pub fn rules(&self) -> Vec<Rule> {
        let mut rules: Vec<Rule> = self
            .hot
            .iter()
            .map(|id| {
                parse_rule(&format!("content_id == {id}: fwd({PORT_FORWARDER})"))
                    .expect("well-formed hot rule")
            })
            .collect();
        rules.push(parse_rule(&format!("true: fwd({PORT_UPSTREAM})")).unwrap());
        rules
    }

    fn recompile(&mut self) {
        let compiled = Compiler::new()
            .with_static(self.statics.clone())
            .compile(&self.rules())
            .expect("hICN rules compile");
        self.pipeline = Some(compiled.pipeline);
        self.recompiles += 1;
    }

    fn meter_update(&mut self, id: u64) {
        *self.meter.entry(id).or_insert(0) += 1;
        self.meter_seen += 1;
        if self.meter_seen >= self.cfg.meter_window {
            // Tumble: refresh the hot set, recompile if it changed.
            let mut hot: Vec<u64> = self
                .meter
                .iter()
                .filter(|(_, &c)| c >= self.cfg.hot_threshold)
                .map(|(&id, _)| id)
                .collect();
            hot.sort_unstable();
            self.meter.clear();
            self.meter_seen = 0;
            if hot != self.hot {
                self.hot = hot;
                self.recompile();
            }
        }
    }

    /// Route one request through the compiled pipeline (Camus mode).
    fn camus_route(&self, id: u64) -> u16 {
        let pipeline = self.pipeline.as_ref().expect("pipeline compiled");
        let action = pipeline.evaluate(|op: &Operand| match op.key().as_str() {
            "content_id" => Some(Value::Int(id as i64)),
            "is_request" => Some(Value::Int(1)),
            _ => None,
        });
        match action {
            Action::Forward(ports) => ports[0],
            _ => PORT_UPSTREAM,
        }
    }

    /// Serve one request under a mode.
    pub fn serve(&mut self, req: &Request, mode: Mode) -> Served {
        let via_forwarder = match mode {
            Mode::Baseline => true,
            Mode::Camus => {
                self.meter_update(req.content_id);
                self.camus_route(req.content_id) == PORT_FORWARDER
            }
        };
        if via_forwarder {
            // Queue at the single-server forwarder.
            let start = self.forwarder_busy_until_ns.max(req.time_ns);
            let done = start + self.cfg.forwarder_service_ns;
            self.forwarder_busy_until_ns = done;
            let hit = self.cache.access(req.content_id);
            let fetch = if hit { 0 } else { self.cfg.upstream_ns };
            Served {
                content_id: req.content_id,
                latency_ns: (done - req.time_ns) + fetch + self.cfg.switch_ns,
                via_forwarder: true,
                cache_hit: hit,
            }
        } else {
            // Bypass: switch hop + upstream fetch; no queueing, no
            // cache pollution.
            Served {
                content_id: req.content_id,
                latency_ns: self.cfg.switch_ns + self.cfg.upstream_ns,
                via_forwarder: false,
                cache_hit: false,
            }
        }
    }

    pub fn hot_set(&self) -> &[u64] {
        &self.hot
    }
}

/// Run a request mix and return per-request outcomes.
pub fn run(requests: &[Request], mode: Mode, cfg: HicnConfig) -> Vec<Served> {
    let mut sim = HicnSim::new(cfg);
    requests.iter().map(|r| sim.serve(r, mode)).collect()
}

/// The `q`-quantile of served latencies, ns.
pub fn latency_quantile(served: &[Served], q: f64) -> u64 {
    if served.is_empty() {
        return 0;
    }
    let mut lat: Vec<u64> = served.iter().map(|s| s.latency_ns).collect();
    lat.sort_unstable();
    lat[((lat.len() - 1) as f64 * q).round() as usize]
}

#[cfg(test)]
mod tests {
    use super::*;
    use camus_workloads::content::{ContentConfig, ContentStream};

    fn mixed_workload(n_hot: usize, n_cold: usize) -> Vec<Request> {
        let mut s =
            ContentStream::new(ContentConfig { catalogue: 50, skew: 1.3, gap_ns: 3_000, seed: 9 });
        let mut reqs = Vec::new();
        let mut cold_pos = 0u64;
        for i in 0..(n_hot + n_cold) {
            if i % (1 + n_hot / n_cold.max(1)) == 0 && cold_pos < n_cold as u64 {
                reqs.push(s.next_cold(&mut cold_pos));
            } else {
                reqs.push(s.next_popular());
            }
        }
        reqs
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = LruCache::new(2);
        assert!(!c.access(1));
        assert!(!c.access(2));
        assert!(c.access(1)); // hit, refreshes 1
        assert!(!c.access(3)); // evicts 2
        assert!(c.contains(1));
        assert!(!c.contains(2));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn meter_promotes_hot_content() {
        let mut sim =
            HicnSim::new(HicnConfig { hot_threshold: 2, meter_window: 8, ..Default::default() });
        let mut t = 0;
        let req = |id: u64, t: &mut u64| {
            *t += 1_000;
            Request { content_id: id, time_ns: *t }
        };
        // 8 requests: id 1 appears 4 times -> hot after the window.
        for id in [1u64, 2, 1, 3, 1, 4, 1, 5] {
            sim.serve(&req(id, &mut t), Mode::Camus);
        }
        assert_eq!(sim.hot_set(), &[1]);
        // Hot id now routes via the forwarder; a cold one bypasses.
        let hot = sim.serve(&req(1, &mut t), Mode::Camus);
        assert!(hot.via_forwarder);
        let cold = sim.serve(&req(999, &mut t), Mode::Camus);
        assert!(!cold.via_forwarder);
        assert!(sim.recompiles >= 2);
    }

    #[test]
    fn baseline_sends_everything_through_forwarder() {
        let reqs = mixed_workload(200, 50);
        let served = run(&reqs, Mode::Baseline, HicnConfig::default());
        assert!(served.iter().all(|s| s.via_forwarder));
        // Popular content eventually hits the cache.
        assert!(served.iter().any(|s| s.cache_hit));
    }

    #[test]
    fn camus_reduces_cold_content_tail_latency() {
        // The Fig. 11 claim: p95 latency for uncached content drops.
        let reqs = mixed_workload(4_000, 1_000);
        let cfg = HicnConfig::default();
        let base = run(&reqs, Mode::Baseline, cfg.clone());
        let camus = run(&reqs, Mode::Camus, cfg);
        let cold = |served: &[Served]| -> Vec<Served> {
            served
                .iter()
                .zip(&reqs)
                .filter(|(_, r)| r.content_id >= 50) // the cold scan ids
                .map(|(s, _)| *s)
                .collect()
        };
        let base_p95 = latency_quantile(&cold(&base), 0.95);
        let camus_p95 = latency_quantile(&cold(&camus), 0.95);
        assert!(
            camus_p95 < base_p95,
            "cold p95 must drop: camus {camus_p95} vs baseline {base_p95}"
        );
    }

    #[test]
    fn camus_reduces_forwarder_load() {
        let reqs = mixed_workload(4_000, 1_000);
        let cfg = HicnConfig::default();
        let base = run(&reqs, Mode::Baseline, cfg.clone());
        let camus = run(&reqs, Mode::Camus, cfg);
        let load = |s: &[Served]| s.iter().filter(|x| x.via_forwarder).count();
        assert!(load(&camus) < load(&base));
    }

    #[test]
    fn rules_include_default_upstream() {
        let sim = HicnSim::new(HicnConfig::default());
        let rules = sim.rules();
        assert_eq!(rules.last().unwrap().filter, camus_lang::ast::Expr::True);
    }
}
