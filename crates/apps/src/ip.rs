//! Application 8: traditional IP forwarding (§VIII-C.8, §VIII-D.3).
//!
//! Packet subscriptions *generalise* forwarding rules: assigning each
//! host an IP address and subscribing it to `ip.dst == <addr>`
//! reproduces classic destination-based unicast — except that here the
//! application assigns the addresses, not the network (§II). This is
//! the "Generalizing IP" experiment of the architecture-practicality
//! section: an unmodified address-based workload runs over Camus rules.

use camus_core::statics::{compile_static, StaticPipeline};
use camus_dataplane::{Packet, PacketBuilder};
use camus_lang::ast::Expr;
use camus_lang::parser::parse_expr;
use camus_lang::spec::Spec;
use camus_lang::value::format_ipv4;
use camus_net::controller::{Controller, Deployment};
use camus_routing::algorithm1::{Policy, RoutingConfig};
use camus_routing::topology::HierNet;

/// A minimal IPv4 header spec (only the routed fields are
/// subscribable).
pub fn ip_spec() -> Spec {
    Spec::parse(
        r#"
        header ipv4 {
            bit<8>  ver_ihl;
            bit<8>  tos;
            bit<16> total_len;
            bit<32> id_flags;
            bit<8>  ttl;
            @field bit<8>  proto;
            bit<16> checksum;
            @field bit<32> src;
            @field bit<32> dst;
        }
        sequence ipv4
        "#,
    )
    .expect("IPv4 spec parses")
}

/// An IP network over a hierarchical topology: host `h` owns address
/// `10.0.0.h+1` and subscribes to packets destined to it.
pub struct IpNetwork {
    pub spec: Spec,
    pub statics: StaticPipeline,
    pub deployment: Deployment,
}

impl IpNetwork {
    /// Address of host `h`.
    pub fn addr(host: usize) -> u32 {
        0x0A00_0000 + host as u32 + 1
    }

    /// Deploy: one `ip.dst == addr(h)` subscription per host.
    pub fn deploy(topology: HierNet, policy: Policy) -> Self {
        let spec = ip_spec();
        let statics = compile_static(&spec).expect("IPv4 spec compiles");
        let controller = Controller::new(statics.clone(), RoutingConfig::new(policy));
        let filters: Vec<Vec<Expr>> = (0..topology.host_count())
            .map(|h| vec![parse_expr(&format!("dst == {}", format_ipv4(Self::addr(h)))).unwrap()])
            .collect();
        let deployment = controller.deploy(topology, &filters).expect("IP rules compile");
        IpNetwork { spec, statics, deployment }
    }

    /// Build an IPv4 packet from `src` host to `dst` host.
    pub fn packet(&self, src: usize, dst: usize) -> Packet {
        PacketBuilder::new(&self.spec)
            .stack_field("ipv4", "ver_ihl", 0x45i64)
            .stack_field("ipv4", "ttl", 64i64)
            .stack_field("ipv4", "proto", 17i64)
            .stack_field("ipv4", "src", i64::from(Self::addr(src)))
            .stack_field("ipv4", "dst", i64::from(Self::addr(dst)))
            .build()
    }

    /// Send a packet and run the network to quiescence.
    pub fn send(&mut self, src: usize, dst: usize, time_ns: u64) {
        let pkt = self.packet(src, dst);
        self.deployment.network.publish(src, pkt, time_ns);
        self.deployment.network.run(None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use camus_lang::value::Value;
    use camus_routing::topology::paper_fat_tree;

    #[test]
    fn unicast_reaches_exactly_the_destination() {
        for policy in [Policy::MemoryReduction, Policy::TrafficReduction] {
            let mut net = IpNetwork::deploy(paper_fat_tree(), policy);
            net.send(0, 13, 0);
            for h in 0..16 {
                let want = usize::from(h == 13);
                assert_eq!(net.deployment.network.deliveries(h).len(), want, "{policy:?} h{h}");
            }
            let d = &net.deployment.network.deliveries(13)[0];
            assert_eq!(d.values["dst"], Value::Int(i64::from(IpNetwork::addr(13))));
            assert_eq!(d.values["src"], Value::Int(i64::from(IpNetwork::addr(0))));
        }
    }

    #[test]
    fn all_pairs_connectivity() {
        let mut net = IpNetwork::deploy(paper_fat_tree(), Policy::TrafficReduction);
        let mut t = 0u64;
        for src in 0..16 {
            for dst in 0..16 {
                if src == dst {
                    continue;
                }
                t += 1_000_000;
                net.send(src, dst, t);
            }
        }
        // Every host received exactly 15 packets (one from each peer).
        for h in 0..16 {
            assert_eq!(net.deployment.network.deliveries(h).len(), 15, "host {h}");
        }
    }

    #[test]
    fn ip_rules_compile_to_exact_sram_entries() {
        let net = IpNetwork::deploy(paper_fat_tree(), Policy::TrafficReduction);
        for sc in &net.deployment.compile.switches {
            assert_eq!(sc.compiled.report.tcam_entries, 0, "destination matching is pure SRAM");
        }
    }
}
