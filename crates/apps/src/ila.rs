//! Application 3: identifier-based routing à la ILA (§VIII-C.3).
//!
//! ILA (Identifier-Locator Addressing) separates *who* a service is
//! from *where* it runs: the 64-bit identifier lives in the low half of
//! the IPv6 destination address. With packet subscriptions, the server
//! currently hosting a service subscribes to its identifier; migration
//! is a resubscription — clients keep addressing the identifier and
//! never learn about the move.

use camus_core::compiler::{CompileError, Compiler};
use camus_core::statics::{compile_static, StaticPipeline};
use camus_dataplane::{Packet, PacketBuilder, Switch, SwitchConfig};
use camus_lang::ast::Rule;
use camus_lang::parser::parse_rule;
use camus_lang::spec::Spec;

/// The ILA header spec: the IPv6 destination split into locator
/// (high 64) and identifier (low 64), as ILA defines.
pub fn ila_spec() -> Spec {
    Spec::parse(
        r#"
        header ipv6 {
            bit<32> ver_tc_flow;
            bit<16> payload_len;
            bit<8>  next_hdr;
            bit<8>  hop_limit;
            bit<64> src_hi;
            bit<64> src_lo;
            @field bit<64> dst_locator;
            @field bit<64> dst_identifier;
        }
        sequence ipv6
        "#,
    )
    .expect("ILA spec parses")
}

/// The ILA application: a directory of service-identifier
/// subscriptions that can migrate between ports.
pub struct IlaApp {
    pub spec: Spec,
    pub statics: StaticPipeline,
    /// Current identifier → port bindings.
    bindings: Vec<(u64, u16)>,
}

impl IlaApp {
    pub fn new() -> Self {
        let spec = ila_spec();
        let statics = compile_static(&spec).expect("ILA spec compiles");
        IlaApp { spec, statics, bindings: Vec::new() }
    }

    /// Subscribe a service identifier at a port (service placement).
    pub fn bind(&mut self, identifier: u64, port: u16) {
        self.bindings.retain(|(id, _)| *id != identifier);
        self.bindings.push((identifier, port));
    }

    /// Migrate a service: rebind its identifier to a new port.
    pub fn migrate(&mut self, identifier: u64, new_port: u16) {
        self.bind(identifier, new_port);
    }

    /// The current rule set.
    pub fn rules(&self) -> Vec<Rule> {
        self.bindings
            .iter()
            .map(|(id, port)| {
                parse_rule(&format!("dst_identifier == {id}: fwd({port})"))
                    .expect("well-formed ILA rule")
            })
            .collect()
    }

    /// Compile the current bindings into a switch (or reinstall on an
    /// existing one with [`Switch::install`]).
    pub fn switch(&self, config: SwitchConfig) -> Result<Switch, CompileError> {
        let compiled = Compiler::new().with_static(self.statics.clone()).compile(&self.rules())?;
        Ok(Switch::new(&self.statics, compiled.pipeline, config))
    }

    /// Recompile after bindings changed and install onto a switch.
    pub fn reinstall(&self, sw: &mut Switch) -> Result<(), CompileError> {
        let compiled = Compiler::new().with_static(self.statics.clone()).compile(&self.rules())?;
        sw.install(compiled.pipeline);
        Ok(())
    }

    /// A client packet addressed to an identifier.
    pub fn request(&self, identifier: u64) -> Packet {
        PacketBuilder::new(&self.spec)
            .stack_field("ipv6", "dst_identifier", identifier as i64)
            .stack_field("ipv6", "hop_limit", 64i64)
            .build()
    }
}

impl Default for IlaApp {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes_by_identifier_not_locator() {
        let mut app = IlaApp::new();
        app.bind(0xCAFE, 3);
        app.bind(0xBEEF, 4);
        let mut sw = app.switch(SwitchConfig::default()).unwrap();
        let out = sw.process(&app.request(0xCAFE), 0, 0);
        assert_eq!(out.ports.len(), 1);
        assert_eq!(out.ports[0].0, 3);
        let out = sw.process(&app.request(0xBEEF), 0, 1);
        assert_eq!(out.ports[0].0, 4);
        // Unknown identifiers are dropped (no default route bound).
        let out = sw.process(&app.request(0xDEAD), 0, 2);
        assert!(out.ports.is_empty());
    }

    #[test]
    fn migration_is_a_resubscription() {
        let mut app = IlaApp::new();
        app.bind(0xCAFE, 3);
        let mut sw = app.switch(SwitchConfig::default()).unwrap();
        assert_eq!(sw.process(&app.request(0xCAFE), 0, 0).ports[0].0, 3);
        // The service moves; the client keeps using the identifier.
        app.migrate(0xCAFE, 7);
        app.reinstall(&mut sw).unwrap();
        assert_eq!(sw.process(&app.request(0xCAFE), 0, 1).ports[0].0, 7);
        // And only one binding remains.
        assert_eq!(app.rules().len(), 1);
    }

    #[test]
    fn many_identifiers_compile_compactly() {
        let mut app = IlaApp::new();
        for id in 0..1_000u64 {
            app.bind(id, (id % 32) as u16 + 1);
        }
        let compiled =
            Compiler::new().with_static(app.statics.clone()).compile(&app.rules()).unwrap();
        // Exact-match identifiers: entries stay linear in bindings.
        assert!(compiled.report.total_entries <= 2 * 1_000 + 10);
        assert_eq!(compiled.report.tcam_entries, 0, "identifier matching is SRAM-only");
    }
}
