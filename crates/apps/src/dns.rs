//! Application 5: an in-network DNS resolver (§VIII-C.5).
//!
//! Extends the action vocabulary with `answerDNS(ip)`: a subscription
//! like `name == h105: answerDNS(10.0.0.105)` makes the switch craft an
//! authoritative answer and send it back to the querier; unknown names
//! fall through to the real DNS server. Packet subscriptions act as a
//! caching layer in front of the resolver fleet.

use camus_core::compiler::{CompileError, Compiler};
use camus_core::statics::{compile_static, StaticPipeline};
use camus_dataplane::{Packet, PacketBuilder, Switch, SwitchConfig};
use camus_lang::ast::{Action, Rule};
use camus_lang::parser::parse_rule;
use camus_lang::spec::Spec;
use camus_lang::value::format_ipv4;

/// A simplified DNS query header: a fixed-width name plus query type.
pub fn dns_spec() -> Spec {
    Spec::parse(
        r#"
        header dns_query {
            bit<16> txid;
            bit<16> qtype;
            @field_exact str<16> name;
        }
        sequence dns_query
        "#,
    )
    .expect("DNS spec parses")
}

/// Outcome of resolving one query at the switch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Resolution {
    /// Authoritative answer crafted by the switch.
    Answered { name: String, ip: u32, txid: i64 },
    /// Forwarded to the real DNS server on a port.
    Forwarded(u16),
    /// Dropped (no entry, no default route configured).
    Dropped,
}

/// The resolver: a set of name → address entries plus a fallback port.
pub struct DnsApp {
    pub spec: Spec,
    pub statics: StaticPipeline,
    entries: Vec<(String, u32)>,
    fallback_port: u16,
}

impl DnsApp {
    pub fn new(fallback_port: u16) -> Self {
        let spec = dns_spec();
        let statics = compile_static(&spec).expect("DNS spec compiles");
        DnsApp { spec, statics, entries: Vec::new(), fallback_port }
    }

    /// Add (or replace) a DNS entry — "a DNS entry can be added with a
    /// single subscription rule".
    pub fn add_entry(&mut self, name: &str, ip: u32) {
        self.entries.retain(|(n, _)| n != name);
        self.entries.push((name.to_string(), ip));
    }

    pub fn rules(&self) -> Vec<Rule> {
        let mut rules: Vec<Rule> = self
            .entries
            .iter()
            .map(|(name, ip)| {
                parse_rule(&format!("name == {name}: answerDNS({})", format_ipv4(*ip)))
                    .expect("well-formed DNS rule")
            })
            .collect();
        // Default: forward unknown names to the resolver fleet.
        rules.push(parse_rule(&format!("true: fwd({})", self.fallback_port)).unwrap());
        rules
    }

    pub fn switch(&self, config: SwitchConfig) -> Result<Switch, CompileError> {
        let compiled = Compiler::new().with_static(self.statics.clone()).compile(&self.rules())?;
        Ok(Switch::new(&self.statics, compiled.pipeline, config))
    }

    /// Build a query packet.
    pub fn query(&self, txid: i64, name: &str) -> Packet {
        PacketBuilder::new(&self.spec)
            .stack_field("dns_query", "txid", txid)
            .stack_field("dns_query", "qtype", 1i64) // A record
            .stack_field("dns_query", "name", name)
            .build()
    }

    /// Run one query through the switch and interpret the outcome.
    pub fn resolve(&self, sw: &mut Switch, pkt: &Packet, now_us: u64) -> Resolution {
        let out = sw.process(pkt, 0, now_us);
        // An answerDNS action wins: the switch crafts the response.
        for (_, action) in &out.actions {
            if let Action::AnswerDns(ip) = action {
                let hdr = pkt.stack_header(&self.spec, "dns_query").unwrap_or_default();
                let name = hdr.get("name").and_then(|v| v.as_str().map(String::from));
                let txid = hdr.get("txid").and_then(|v| v.as_int()).unwrap_or(0);
                return Resolution::Answered { name: name.unwrap_or_default(), ip: *ip, txid };
            }
        }
        match out.ports.first() {
            Some((port, _)) => Resolution::Forwarded(*port),
            None => Resolution::Dropped,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use camus_lang::value::parse_ipv4;

    #[test]
    fn cached_name_is_answered_at_the_switch() {
        let mut app = DnsApp::new(9);
        app.add_entry("h105", parse_ipv4("10.0.0.105").unwrap());
        let mut sw = app.switch(SwitchConfig::default()).unwrap();
        let q = app.query(42, "h105");
        let r = app.resolve(&mut sw, &q, 0);
        assert_eq!(
            r,
            Resolution::Answered {
                name: "h105".into(),
                ip: parse_ipv4("10.0.0.105").unwrap(),
                txid: 42
            }
        );
    }

    #[test]
    fn unknown_name_falls_through_to_server() {
        let mut app = DnsApp::new(9);
        app.add_entry("h105", parse_ipv4("10.0.0.105").unwrap());
        let mut sw = app.switch(SwitchConfig::default()).unwrap();
        let r = app.resolve(&mut sw, &app.query(1, "unknown"), 0);
        assert_eq!(r, Resolution::Forwarded(9));
    }

    #[test]
    fn entries_can_be_updated() {
        let mut app = DnsApp::new(9);
        app.add_entry("svc", parse_ipv4("10.0.0.1").unwrap());
        app.add_entry("svc", parse_ipv4("10.0.0.2").unwrap());
        assert_eq!(app.rules().len(), 2); // one entry + default
        let mut sw = app.switch(SwitchConfig::default()).unwrap();
        match app.resolve(&mut sw, &app.query(7, "svc"), 0) {
            Resolution::Answered { ip, .. } => {
                assert_eq!(ip, parse_ipv4("10.0.0.2").unwrap())
            }
            other => panic!("expected answer, got {other:?}"),
        }
    }

    #[test]
    fn many_entries_resolve_exactly() {
        let mut app = DnsApp::new(9);
        for i in 0..200u32 {
            app.add_entry(&format!("h{i}"), 0x0A00_0000 + i);
        }
        let mut sw = app.switch(SwitchConfig::default()).unwrap();
        for i in (0..200u32).step_by(17) {
            match app.resolve(&mut sw, &app.query(i as i64, &format!("h{i}")), u64::from(i)) {
                Resolution::Answered { ip, txid, .. } => {
                    assert_eq!(ip, 0x0A00_0000 + i);
                    assert_eq!(txid, i as i64);
                }
                other => panic!("h{i}: {other:?}"),
            }
        }
    }
}
