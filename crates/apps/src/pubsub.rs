//! Application 7: a Kafka-style publish/subscribe shim (§VIII-C.7).
//!
//! Instead of sending messages to a broker, producers send them to the
//! network; the switches route each message to the consumers whose
//! topic subscriptions match. Like the paper's shim it supports topics
//! and key-based filtering, handles messages up to 512 B, and offers no
//! persistence (§VIII-C.9 — timely delivery over replay).
//!
//! The API is shaped after a minimal Kafka client: [`Producer::send`]
//! and [`Consumer::poll`], with the whole Fat-Tree network of
//! [`camus_net`] standing where the broker fleet would be.

use camus_core::statics::{compile_static, StaticPipeline};
use camus_dataplane::{Packet, PacketBuilder};
use camus_lang::ast::Expr;
use camus_lang::parser::parse_expr;
use camus_lang::spec::Spec;
use camus_net::controller::{Controller, Deployment};
use camus_routing::algorithm1::{Policy, RoutingConfig};
use camus_routing::topology::HierNet;

/// Maximum message payload (the paper's shim handles 512 B, a typical
/// JSON message size, within the MTU).
pub const MAX_PAYLOAD: usize = 512;

/// The pub/sub message header: topic, optional key, payload length.
/// The payload itself rides behind the header as a fixed 512 B field.
pub fn pubsub_spec() -> Spec {
    Spec::parse(
        r#"
        header message {
            @field_exact str<32>  topic;
            @field       bit<64>  key;
            bit<16> payload_len;
            str<512> payload;
        }
        sequence message
        "#,
    )
    .expect("pub/sub spec parses")
}

/// A topic subscription, optionally narrowed by a key predicate —
/// richer than Kafka's topic-only model, since subscriptions are
/// arbitrary filters.
#[derive(Debug, Clone)]
pub struct Subscription {
    pub topic: String,
    /// Extra filter over `key` (e.g. `key > 100`), `None` = whole topic.
    pub key_filter: Option<String>,
}

impl Subscription {
    pub fn topic(topic: &str) -> Self {
        Subscription { topic: topic.to_string(), key_filter: None }
    }

    pub fn with_key_filter(topic: &str, filter: &str) -> Self {
        Subscription { topic: topic.to_string(), key_filter: Some(filter.to_string()) }
    }

    fn filter(&self) -> Expr {
        let base = parse_expr(&format!("topic == \"{}\"", self.topic)).unwrap();
        match &self.key_filter {
            Some(f) => base.and(parse_expr(f).expect("well-formed key filter")),
            None => base,
        }
    }
}

/// A deployed pub/sub fabric over a hierarchical topology.
pub struct PubSub {
    pub spec: Spec,
    pub statics: StaticPipeline,
    pub deployment: Deployment,
    /// One subscription list per host.
    subs: Vec<Vec<Subscription>>,
    controller: Controller,
    clock_ns: u64,
}

impl PubSub {
    /// Deploy with every host unsubscribed.
    pub fn deploy(topology: HierNet, policy: Policy) -> Self {
        let spec = pubsub_spec();
        let statics = compile_static(&spec).expect("pub/sub spec compiles");
        let controller = Controller::new(statics.clone(), RoutingConfig::new(policy));
        let subs: Vec<Vec<Subscription>> = vec![Vec::new(); topology.host_count()];
        let filters: Vec<Vec<Expr>> = vec![Vec::new(); topology.host_count()];
        let deployment = controller.deploy(topology, &filters).expect("empty deployment compiles");
        PubSub { spec, statics, deployment, subs, controller, clock_ns: 0 }
    }

    /// Subscribe a host; triggers controller reconfiguration.
    pub fn subscribe(&mut self, host: usize, sub: Subscription) {
        self.subs[host].push(sub);
        self.reconfigure();
    }

    /// Drop every subscription of a host to a topic.
    pub fn unsubscribe(&mut self, host: usize, topic: &str) {
        self.subs[host].retain(|s| s.topic != topic);
        self.reconfigure();
    }

    fn reconfigure(&mut self) {
        let filters: Vec<Vec<Expr>> =
            self.subs.iter().map(|v| v.iter().map(|s| s.filter()).collect()).collect();
        self.controller
            .reconfigure(&mut self.deployment, &filters)
            .expect("reconfiguration compiles");
    }

    /// A producer handle bound to a host.
    pub fn producer(&mut self, host: usize) -> Producer<'_> {
        Producer { fabric: self, host }
    }

    /// Deliveries a consumer host has received so far (its "poll").
    pub fn poll(&mut self, host: usize) -> Vec<(String, i64, String)> {
        self.deployment.network.run(None);
        self.deployment
            .network
            .deliveries(host)
            .iter()
            .map(|d| {
                let topic = d.values["topic"].as_str().unwrap_or_default().to_string();
                let key = d.values["key"].as_int().unwrap_or(0);
                let payload = d.values["payload"].as_str().unwrap_or_default().to_string();
                (topic, key, payload)
            })
            .collect()
    }
}

/// Producer handle: builds and publishes messages.
pub struct Producer<'a> {
    fabric: &'a mut PubSub,
    host: usize,
}

impl Producer<'_> {
    /// Publish one message. Panics if the payload exceeds
    /// [`MAX_PAYLOAD`] (the paper's shim has the same limit).
    pub fn send(&mut self, topic: &str, key: i64, payload: &str) {
        assert!(payload.len() <= MAX_PAYLOAD, "payload exceeds 512 B");
        let pkt: Packet = PacketBuilder::new(&self.fabric.spec)
            .stack_field("message", "topic", topic)
            .stack_field("message", "key", key)
            .stack_field("message", "payload_len", payload.len() as i64)
            .stack_field("message", "payload", payload)
            .build();
        self.fabric.clock_ns += 1_000;
        let t = self.fabric.clock_ns;
        self.fabric.deployment.network.publish(self.host, pkt, t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use camus_routing::topology::paper_fat_tree;

    #[test]
    fn topic_routing_end_to_end() {
        let mut ps = PubSub::deploy(paper_fat_tree(), Policy::TrafficReduction);
        ps.subscribe(5, Subscription::topic("trades"));
        ps.subscribe(12, Subscription::topic("quotes"));
        ps.producer(0).send("trades", 1, "AAPL@101");
        ps.producer(0).send("quotes", 2, "GOOGL 140/141");
        let got5 = ps.poll(5);
        assert_eq!(got5, vec![("trades".to_string(), 1, "AAPL@101".to_string())]);
        let got12 = ps.poll(12);
        assert_eq!(got12.len(), 1);
        assert_eq!(got12[0].0, "quotes");
        // Host 3 subscribed to nothing.
        assert!(ps.poll(3).is_empty());
    }

    #[test]
    fn key_filters_narrow_topics() {
        let mut ps = PubSub::deploy(paper_fat_tree(), Policy::TrafficReduction);
        ps.subscribe(4, Subscription::with_key_filter("orders", "key > 100"));
        ps.producer(1).send("orders", 50, "small");
        ps.producer(1).send("orders", 200, "big");
        let got = ps.poll(4);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].2, "big");
    }

    #[test]
    fn fanout_to_multiple_consumers() {
        let mut ps = PubSub::deploy(paper_fat_tree(), Policy::MemoryReduction);
        for h in [2usize, 7, 11, 14] {
            ps.subscribe(h, Subscription::topic("alerts"));
        }
        ps.producer(0).send("alerts", 0, "fire");
        for h in [2usize, 7, 11, 14] {
            assert_eq!(ps.poll(h).len(), 1, "host {h}");
        }
        // Exactly four deliveries in total (no duplicates).
        let total: usize = (0..16).map(|h| ps.poll(h).len()).sum();
        assert_eq!(total, 4);
    }

    #[test]
    fn unsubscribe_stops_delivery() {
        let mut ps = PubSub::deploy(paper_fat_tree(), Policy::TrafficReduction);
        ps.subscribe(6, Subscription::topic("t"));
        ps.producer(0).send("t", 0, "one");
        assert_eq!(ps.poll(6).len(), 1);
        ps.unsubscribe(6, "t");
        ps.producer(0).send("t", 0, "two");
        assert_eq!(ps.poll(6).len(), 1, "no new delivery after unsubscribe");
    }

    #[test]
    #[should_panic(expected = "payload exceeds 512 B")]
    fn oversized_payload_is_rejected() {
        let mut ps = PubSub::deploy(paper_fat_tree(), Policy::TrafficReduction);
        let big = "x".repeat(513);
        ps.producer(0).send("t", 0, &big);
    }
}
