//! Application 1: the Nasdaq ITCH market-data filter (§VIII-C.1).
//!
//! The feed arrives as MoldUDP packets carrying batched Add-Order
//! messages; the switch splits packets into messages and forwards each
//! to the back-end servers whose subscriptions match. Subscriptions
//! are of the paper's Table I shape: `stock == S and price > P:
//! fwd(H)`.

use camus_core::compiler::{CompileError, Compiler};
use camus_core::statics::{compile_static, StaticPipeline};
use camus_dataplane::{Packet, PacketBuilder, Switch, SwitchConfig};
use camus_lang::ast::Rule;
use camus_lang::parser::parse_rule;
use camus_lang::spec::{itch_spec, Spec};
use camus_workloads::itch::ItchOrder;

/// The ITCH application bundle: spec + static pipeline.
pub struct ItchApp {
    pub spec: Spec,
    pub statics: StaticPipeline,
}

impl ItchApp {
    pub fn new() -> Self {
        let spec = itch_spec();
        let statics = compile_static(&spec).expect("built-in ITCH spec compiles");
        ItchApp { spec, statics }
    }

    /// A `stock == S ∧ price > P → fwd(port)` subscription.
    pub fn subscription(stock: &str, min_price: i64, port: u16) -> Rule {
        parse_rule(&format!("stock == {stock} and price > {min_price}: fwd({port})"))
            .expect("well-formed ITCH subscription")
    }

    /// The Table I workload: `symbols × price thresholds` filters fanned
    /// out over `hosts` ports.
    pub fn table1_rules(symbols: usize, max_price: i64, hosts: u16) -> Vec<Rule> {
        let mut rules = Vec::new();
        for s in 0..symbols {
            let stock = if s == 0 { "GOOGL".to_string() } else { format!("S{s:04}") };
            let price = (s as i64 * 37) % max_price.max(1);
            let host = (s as u16) % hosts.max(1);
            rules.push(Self::subscription(&stock, price, host + 1));
        }
        rules
    }

    /// Build a MoldUDP packet from generated orders.
    pub fn packet(&self, seq: i64, orders: &[ItchOrder]) -> Packet {
        let mut b = PacketBuilder::new(&self.spec).stack_field("moldudp", "seq", seq).stack_field(
            "moldudp",
            "msg_count",
            orders.len() as i64,
        );
        for o in orders {
            b = b.message(o.fields());
        }
        b.build()
    }

    /// Compile rules and load a single switch (the §VIII-E.1 testbed is
    /// one Tofino between publisher and subscriber).
    pub fn switch(&self, rules: &[Rule], config: SwitchConfig) -> Result<Switch, CompileError> {
        let compiled = Compiler::new().with_static(self.statics.clone()).compile(rules)?;
        Ok(Switch::new(&self.statics, compiled.pipeline, config))
    }
}

impl Default for ItchApp {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use camus_lang::value::Value;
    use camus_workloads::itch::{ItchFeed, ItchFeedConfig, WATCHED};

    #[test]
    fn filters_feed_for_watched_symbol() {
        let app = ItchApp::new();
        let mut sw =
            app.switch(&[ItchApp::subscription(WATCHED, 0, 1)], SwitchConfig::default()).unwrap();
        let mut feed = ItchFeed::new(ItchFeedConfig::synthetic(42));
        let mut sent = 0usize;
        let mut received = 0usize;
        for (i, orders) in feed.packets(300).iter().enumerate() {
            let pkt = app.packet(i as i64, orders);
            sent += orders.iter().filter(|o| o.stock == WATCHED && o.price > 0).count();
            let out = sw.process(&pkt, 0, i as u64);
            for (port, copy) in out.ports {
                assert_eq!(port, 1);
                received += copy.message_count(&app.spec);
                // Every delivered message is for the watched symbol.
                for m in 0..copy.message_count(&app.spec) {
                    assert_eq!(copy.message(&app.spec, m).unwrap()["stock"], Value::from(WATCHED));
                }
            }
        }
        assert_eq!(sent, received, "exactly the matching messages are delivered");
        assert!(received > 0, "the 5% workload produces matches in 300 packets");
    }

    #[test]
    fn price_threshold_is_enforced() {
        let app = ItchApp::new();
        let mut sw =
            app.switch(&[ItchApp::subscription("GOOGL", 500, 1)], SwitchConfig::default()).unwrap();
        let lo = ItchOrder { stock: "GOOGL".into(), price: 400, shares: 1, side: 'B' };
        let hi = ItchOrder { stock: "GOOGL".into(), price: 600, shares: 1, side: 'B' };
        let out = sw.process(&app.packet(0, &[lo, hi]), 0, 0);
        assert_eq!(out.ports.len(), 1);
        assert_eq!(out.ports[0].1.message_count(&app.spec), 1);
        assert_eq!(out.ports[0].1.message(&app.spec, 0).unwrap()["price"], Value::Int(600));
    }

    #[test]
    fn table1_workload_compiles_within_resources() {
        let app = ItchApp::new();
        let rules = ItchApp::table1_rules(100, 1_000, 200);
        assert_eq!(rules.len(), 100);
        let compiled = Compiler::new().with_static(app.statics.clone()).compile(&rules).unwrap();
        let r = &compiled.report;
        assert!(r.total_entries > 0);
        // Well within a Tofino-class budget (Table I's point).
        assert!(r.sram_entries < 100_000);
        assert!(r.tcam_entries < 100_000);
    }

    #[test]
    fn moldudp_header_is_preserved() {
        let app = ItchApp::new();
        let o = ItchOrder { stock: "GOOGL".into(), price: 1, shares: 1, side: 'S' };
        let pkt = app.packet(777, &[o]);
        let mold = pkt.stack_header(&app.spec, "moldudp").unwrap();
        assert_eq!(mold["seq"], Value::Int(777));
        assert_eq!(mold["msg_count"], Value::Int(1));
    }
}
