//! Application 2: network-telemetry analytics over INT (§VIII-C.2).
//!
//! Switches emit per-packet INT reports; an analytics stack (Kafka for
//! transport, Spark for anomaly detection in the paper's strawman)
//! scales out to absorb them. With packet subscriptions the *network*
//! filters the stream: subscriptions select anomalous events — e.g.
//! `switch_id == 2 and hop_latency > 100` (§VIII-E.2) — and only those
//! reach the collector.

use camus_core::compiler::{CompileError, Compiler};
use camus_core::statics::{compile_static, StaticPipeline};
use camus_dataplane::{Packet, PacketBuilder, Switch, SwitchConfig};
use camus_lang::ast::Rule;
use camus_lang::parser::parse_rule;
use camus_lang::spec::{int_spec, Spec};
use camus_workloads::int::IntReport;

/// The INT analytics application bundle.
pub struct IntApp {
    pub spec: Spec,
    pub statics: StaticPipeline,
}

impl IntApp {
    pub fn new() -> Self {
        let spec = int_spec();
        let statics = compile_static(&spec).expect("built-in INT spec compiles");
        IntApp { spec, statics }
    }

    /// The paper's example filter: high-latency events at one switch.
    pub fn latency_filter(switch_id: i64, threshold: i64, port: u16) -> Rule {
        parse_rule(&format!("switch_id == {switch_id} and hop_latency > {threshold}: fwd({port})"))
            .expect("well-formed INT filter")
    }

    /// The Table I workload: `switches × latency-range` filters.
    pub fn table1_rules(switches: usize, ranges: usize, port: u16) -> Vec<Rule> {
        let mut rules = Vec::with_capacity(switches * ranges);
        for s in 0..switches {
            for r in 0..ranges {
                rules.push(Self::latency_filter(s as i64, 100 + r as i64, port));
            }
        }
        rules
    }

    /// Build an INT report packet.
    pub fn packet(&self, r: &IntReport) -> Packet {
        let mut b = PacketBuilder::new(&self.spec);
        for (f, v) in r.fields() {
            b = b.stack_field("int_report", &f, v);
        }
        b.build()
    }

    pub fn switch(&self, rules: &[Rule], config: SwitchConfig) -> Result<Switch, CompileError> {
        let compiled = Compiler::new().with_static(self.statics.clone()).compile(rules)?;
        Ok(Switch::new(&self.statics, compiled.pipeline, config))
    }
}

impl Default for IntApp {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use camus_workloads::int::{IntFeed, IntFeedConfig};

    #[test]
    fn filters_anomalous_reports_only() {
        let app = IntApp::new();
        let mut sw =
            app.switch(&[IntApp::latency_filter(2, 100, 1)], SwitchConfig::default()).unwrap();
        let mut feed = IntFeed::new(IntFeedConfig { n_switches: 4, ..Default::default() });
        let reports = feed.reports(5_000);
        let expected = reports.iter().filter(|r| r.switch_id == 2 && r.hop_latency > 100).count();
        let mut forwarded = 0usize;
        for (i, r) in reports.iter().enumerate() {
            let out = sw.process(&app.packet(r), 0, i as u64);
            forwarded += out.ports.len();
        }
        assert_eq!(forwarded, expected);
        assert!(expected > 0, "the workload produces anomalies");
        // Selectivity: far less than 1% of 5000 per switch id.
        assert!(forwarded < 50, "filter is selective: {forwarded}");
    }

    #[test]
    fn multiple_filters_from_different_subscribers() {
        let app = IntApp::new();
        let rules = vec![
            IntApp::latency_filter(0, 100, 1),
            IntApp::latency_filter(1, 100, 2),
            parse_rule("q_occupancy > 400: fwd(3)").unwrap(),
        ];
        let mut sw = app.switch(&rules, SwitchConfig::default()).unwrap();
        let r = IntReport { switch_id: 0, hop_latency: 500, q_occupancy: 500, flow_id: 1 };
        let out = sw.process(&app.packet(&r), 0, 0);
        let ports: Vec<u16> = out.ports.iter().map(|(p, _)| *p).collect();
        assert_eq!(ports, vec![1, 3]);
    }

    #[test]
    fn table1_scale_compiles_and_compresses() {
        let app = IntApp::new();
        // Scaled-down Table I shape (full 100×1000 runs in the bench
        // harness). All rules forward to the same collector, so the
        // nested thresholds collapse: `∪ₖ (lat > 100+k)` = `lat > 100`.
        let rules = IntApp::table1_rules(20, 50, 1);
        assert_eq!(rules.len(), 1_000);
        let compiled = Compiler::new().with_static(app.statics.clone()).compile(&rules).unwrap();
        assert!(
            compiled.report.total_entries < 200,
            "1000 same-collector rules must compress: {}",
            compiled.report.total_entries
        );
        // And semantics hold at the boundary.
        for (lat, hit) in [(100i64, false), (101, true), (500, true)] {
            let act = compiled.pipeline.evaluate(|op| match op.field_name() {
                "switch_id" => Some(camus_lang::value::Value::Int(3)),
                "hop_latency" => Some(camus_lang::value::Value::Int(lat)),
                _ => None,
            });
            assert_eq!(act.ports().is_some(), hit, "lat {lat}");
        }
    }
}
