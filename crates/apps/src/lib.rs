//! # camus-apps — the eight applications of the paper's evaluation
//!
//! §VIII-C builds eight diverse applications on packet subscriptions to
//! demonstrate expressiveness (evaluation question Q1). Each module
//! provides the application's header spec, its subscription rules, its
//! packet builders wired to [`camus_workloads`], and an end-to-end
//! harness over the dataplane/network simulators:
//!
//! 1. [`itch`] — Nasdaq ITCH market-data filter (the running example).
//! 2. [`telemetry`] — INT network-telemetry analytics: in-network
//!    anomaly filtering replacing the Kafka+Spark pipeline.
//! 3. [`ila`] — identifier-based routing (ILA): services subscribe to
//!    their identifier and can migrate by resubscribing.
//! 4. [`hicn`] — hybrid-ICN video streaming: meter-gated routing that
//!    sends only likely-cached requests to the software forwarder.
//! 5. [`dns`] — an in-network DNS resolver using the custom
//!    `answerDNS` action.
//! 6. [`linear_road`] — IoT motor-highway monitoring (speeding
//!    detection in lat/long boxes).
//! 7. [`pubsub`] — a Kafka-style topic pub/sub shim with producer and
//!    consumer handles over the simulated network.
//! 8. [`ip`] — traditional IP forwarding expressed as packet
//!    subscriptions (subscriptions generalise forwarding rules).

pub mod dns;
pub mod hicn;
pub mod ila;
pub mod ip;
pub mod itch;
pub mod linear_road;
pub mod pubsub;
pub mod telemetry;
