//! The message-passing service core.
//!
//! A running controller is a small graph of single-threaded services
//! connected by channels: each stage owns its state, consumes typed
//! input messages, and emits typed output messages downstream. The
//! harness here is deliberately minimal — std threads and `mpsc`, no
//! executor — because every stage is CPU-bound (routing, compiling,
//! driving the modelled control channel), one thread per stage is the
//! natural parallelism, and the vendored-deps build has no tokio.
//!
//! Three ideas live here:
//!
//! * [`Pipe`]/[`StageRx`] — a channel whose occupancy is tracked in a
//!   shared [`Gauge`] (and a depth [`Histogram`]), so queue depth per
//!   stage is observable while the service runs;
//! * [`Ctl`] — the control envelope. Besides payload messages, a pipe
//!   carries `Drain` (flush buffered work and pass the marker on, so a
//!   caller can wait for everything in flight to land) and `Stop`
//!   (drain, then terminate). Markers propagate stage to stage, which
//!   makes the shutdown protocol a single forward pass;
//! * [`Service`] + [`spawn`] — the stage trait and its thread
//!   harness. The harness offers queued input back to the service
//!   through [`Service::coalesce`] before each `handle` call, which is
//!   how the compile stage merges a backlog of churn batches into one
//!   transaction when it falls behind.

use camus_telemetry::{Counter, Gauge, Histogram, MetricsRegistry};
use std::fmt;
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::Arc;
use std::thread::{self, JoinHandle};

/// The control envelope every inter-stage pipe carries.
#[derive(Debug)]
pub enum Ctl<T> {
    Msg(T),
    /// Flush buffered work and forward the marker.
    Drain,
    /// Flush, forward the marker, and terminate the stage.
    Stop,
    /// Fault injection: the controller process "dies" — the stage
    /// forwards the marker and terminates *without flushing*, so
    /// buffered work (open batch windows, queued transactions) is lost
    /// exactly the way a real crash loses it.
    Crash,
}

/// The downstream stage hung up: its thread exited (fatal error) and
/// dropped the receiver. The sender's own stage should stop too.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipeClosed;

impl fmt::Display for PipeClosed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "downstream stage hung up")
    }
}

impl std::error::Error for PipeClosed {}

/// The sending half of a stage pipe. Cloneable; every payload send
/// bumps the stage's queue-depth gauge (the matching receive
/// decrements it) and records the depth into a histogram.
pub struct Pipe<T> {
    tx: Sender<Ctl<T>>,
    depth: Arc<Gauge>,
    depths: Arc<Histogram>,
}

impl<T> Clone for Pipe<T> {
    fn clone(&self) -> Self {
        Pipe { tx: self.tx.clone(), depth: self.depth.clone(), depths: self.depths.clone() }
    }
}

impl<T> Pipe<T> {
    pub fn send(&self, msg: T) -> Result<(), PipeClosed> {
        self.depth.add(1);
        self.depths.record(self.depth.get().max(0) as u64);
        self.tx.send(Ctl::Msg(msg)).map_err(|_| {
            self.depth.add(-1);
            PipeClosed
        })
    }

    /// Send a control marker (does not count as queue payload).
    pub fn ctl(&self, c: Ctl<T>) -> Result<(), PipeClosed> {
        self.tx.send(c).map_err(|_| PipeClosed)
    }
}

/// The receiving half of a stage pipe.
pub struct StageRx<T> {
    rx: Receiver<Ctl<T>>,
    depth: Arc<Gauge>,
}

impl<T> StageRx<T> {
    fn note(&self, c: Ctl<T>) -> Ctl<T> {
        if matches!(c, Ctl::Msg(_)) {
            self.depth.add(-1);
        }
        c
    }

    /// Block for the next envelope; `None` when every sender dropped.
    pub fn recv(&self) -> Option<Ctl<T>> {
        self.rx.recv().ok().map(|c| self.note(c))
    }

    /// Non-blocking receive (the coalescing peek).
    pub fn try_recv(&self) -> Option<Ctl<T>> {
        self.rx.try_recv().ok().map(|c| self.note(c))
    }
}

/// Create a gauge-tracked pipe for `stage`, registering
/// `service.queue.<stage>` (live depth) and
/// `service.queue.<stage>.depth` (depth-at-enqueue histogram) in
/// `registry`.
pub fn pipe<T>(registry: &MetricsRegistry, stage: &str) -> (Pipe<T>, StageRx<T>) {
    let (tx, rx) = mpsc::channel();
    let depth = registry.gauge(&format!("service.queue.{stage}"));
    let depths = registry.histogram(&format!("service.queue.{stage}.depth"));
    (Pipe { tx, depth: depth.clone(), depths }, StageRx { rx, depth })
}

/// One long-running pipeline stage.
pub trait Service: Send {
    type In: Send;
    type Out: Send;
    type Error: std::error::Error + Send;

    /// Stage name (also the thread name).
    fn name(&self) -> &'static str;

    /// Process one input, emitting any number of outputs into `out`.
    /// An `Err` is fatal for the stage: the harness forwards `Stop`
    /// downstream and exits, returning the error to `join`.
    fn handle(&mut self, msg: Self::In, out: &Pipe<Self::Out>) -> Result<(), Self::Error>;

    /// Offer a queued input for merging into `pending` before
    /// `handle` runs. Return `Ok(())` if `next` was absorbed,
    /// `Err(next)` to leave it queued. Default: never merge.
    fn coalesce(&mut self, pending: &mut Self::In, next: Self::In) -> Result<(), Self::In> {
        let _ = pending;
        Err(next)
    }

    /// Emit buffered work (open batch windows, etc.) on drain/stop.
    fn flush(&mut self, out: &Pipe<Self::Out>) -> Result<(), Self::Error> {
        let _ = out;
        Ok(())
    }
}

/// How a supervised stage ultimately failed: its own fatal error, or
/// repeated panics that exhausted the restart budget.
#[derive(Debug)]
pub enum StageFailure<E> {
    Service(E),
    /// `handle` panicked `panics` times in a row; the supervisor gave
    /// up restarting the stage loop.
    Panicked {
        panics: u32,
    },
}

impl<E: fmt::Display> fmt::Display for StageFailure<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StageFailure::Service(e) => write!(f, "{e}"),
            StageFailure::Panicked { panics } => {
                write!(f, "stage panicked {panics} consecutive times; supervisor gave up")
            }
        }
    }
}

impl<E: std::error::Error + 'static> std::error::Error for StageFailure<E> {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StageFailure::Service(e) => Some(e),
            StageFailure::Panicked { .. } => None,
        }
    }
}

/// Restart policy for a supervised stage.
#[derive(Debug, Clone, Copy)]
pub struct Supervision {
    /// Consecutive `handle` panics tolerated before the stage is
    /// declared dead (the message that triggered each panic is lost —
    /// poison — and counted in the restarts counter).
    pub max_restarts: u32,
    /// Base backoff slept (wall-clock) before re-entering the loop
    /// after a panic; doubles per consecutive panic, capped at 64×.
    pub backoff: std::time::Duration,
}

impl Default for Supervision {
    fn default() -> Self {
        Supervision { max_restarts: 3, backoff: std::time::Duration::from_micros(200) }
    }
}

/// Run `svc` on its own thread until `Stop` (or sender hang-up).
/// Returns the service back (with its accumulated state) plus how it
/// ended, so the caller can collect stats — and, for the deploy
/// stage, take the [`Deployment`](camus_net::Deployment) home.
///
/// The harness is a supervisor: a panic inside [`Service::handle`] is
/// caught, counted into `restarts` (the `service.stage.restarts`
/// counter), and the loop re-enters after a doubling backoff — the
/// poison message is dropped, downstream keeps its pipe. Only
/// `sup.max_restarts` *consecutive* panics kill the stage (with a
/// [`StageFailure::Panicked`]), so one bad message cannot hang the
/// pipeline and a deterministically-crashing one cannot spin it
/// forever.
#[allow(clippy::type_complexity)]
pub fn spawn<S>(
    mut svc: S,
    rx: StageRx<S::In>,
    out: Pipe<S::Out>,
    sup: Supervision,
    restarts: Arc<Counter>,
) -> JoinHandle<(S, Result<(), StageFailure<S::Error>>)>
where
    S: Service + 'static,
{
    thread::Builder::new()
        .name(svc.name().to_string())
        .spawn(move || {
            // An envelope pulled off the queue during a coalescing
            // scan that the service refused to merge.
            let mut stash: Option<Ctl<S::In>> = None;
            let mut consecutive_panics: u32 = 0;
            loop {
                let ctl = match stash.take().or_else(|| rx.recv()) {
                    Some(c) => c,
                    // Upstream died without a Stop marker: treat it as
                    // one so the shutdown wave keeps moving.
                    None => {
                        let r = svc.flush(&out).map_err(StageFailure::Service);
                        let _ = out.ctl(Ctl::Stop);
                        return (svc, r);
                    }
                };
                match ctl {
                    Ctl::Msg(mut m) => {
                        // Opportunistically offer the backlog for
                        // merging; stop at the first refusal or
                        // control marker to preserve ordering.
                        while stash.is_none() {
                            match rx.try_recv() {
                                Some(Ctl::Msg(n)) => {
                                    if let Err(n) = svc.coalesce(&mut m, n) {
                                        stash = Some(Ctl::Msg(n));
                                    }
                                }
                                Some(c) => stash = Some(c),
                                None => break,
                            }
                        }
                        let handled =
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                svc.handle(m, &out)
                            }));
                        match handled {
                            Ok(Ok(())) => consecutive_panics = 0,
                            Ok(Err(e)) => {
                                let _ = out.ctl(Ctl::Stop);
                                return (svc, Err(StageFailure::Service(e)));
                            }
                            Err(_panic) => {
                                consecutive_panics += 1;
                                restarts.inc();
                                if consecutive_panics >= sup.max_restarts {
                                    let _ = out.ctl(Ctl::Stop);
                                    return (
                                        svc,
                                        Err(StageFailure::Panicked { panics: consecutive_panics }),
                                    );
                                }
                                // Supervised restart: back off, then
                                // re-enter the loop with the same
                                // service state (the poison message is
                                // gone; everything else survives).
                                let exp = (consecutive_panics - 1).min(6);
                                thread::sleep(sup.backoff * (1u32 << exp));
                            }
                        }
                    }
                    Ctl::Drain => {
                        if let Err(e) = svc.flush(&out) {
                            let _ = out.ctl(Ctl::Stop);
                            return (svc, Err(StageFailure::Service(e)));
                        }
                        let _ = out.ctl(Ctl::Drain);
                    }
                    Ctl::Stop => {
                        let r = svc.flush(&out).map_err(StageFailure::Service);
                        let _ = out.ctl(Ctl::Stop);
                        return (svc, r);
                    }
                    Ctl::Crash => {
                        // Abrupt death: no flush, forward the marker so
                        // the whole pipeline dies, hand the wreckage
                        // back to whoever joins us.
                        let _ = out.ctl(Ctl::Crash);
                        return (svc, Ok(()));
                    }
                }
            }
        })
        .expect("spawn service stage thread")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sup() -> (Supervision, Arc<Counter>) {
        (Supervision::default(), Arc::new(Counter::new()))
    }

    /// Doubles numbers; merges queued inputs by addition when asked.
    struct Doubler {
        merge: bool,
        merged: usize,
        flushed: bool,
    }

    impl Service for Doubler {
        type In = u64;
        type Out = u64;
        type Error = PipeClosed;

        fn name(&self) -> &'static str {
            "doubler"
        }

        fn handle(&mut self, msg: u64, out: &Pipe<u64>) -> Result<(), PipeClosed> {
            out.send(msg * 2)
        }

        fn coalesce(&mut self, pending: &mut u64, next: u64) -> Result<(), u64> {
            if self.merge {
                *pending += next;
                self.merged += 1;
                Ok(())
            } else {
                Err(next)
            }
        }

        fn flush(&mut self, _out: &Pipe<u64>) -> Result<(), PipeClosed> {
            self.flushed = true;
            Ok(())
        }
    }

    #[test]
    fn stage_processes_and_stops_on_marker() {
        let reg = MetricsRegistry::new();
        let (tx, rx) = pipe(&reg, "a");
        let (out_tx, out_rx) = pipe::<u64>(&reg, "b");
        let (s, c) = sup();
        let h = spawn(Doubler { merge: false, merged: 0, flushed: false }, rx, out_tx, s, c);
        tx.send(3).unwrap();
        tx.send(4).unwrap();
        tx.ctl(Ctl::Drain).unwrap();
        tx.ctl(Ctl::Stop).unwrap();
        let mut got = Vec::new();
        let mut drained = false;
        loop {
            match out_rx.recv().expect("stage forwards markers") {
                Ctl::Msg(v) => got.push(v),
                Ctl::Drain => drained = true,
                Ctl::Stop | Ctl::Crash => break,
            }
        }
        assert_eq!(got, vec![6, 8]);
        assert!(drained, "drain marker must propagate");
        let (svc, res) = h.join().unwrap();
        assert!(res.is_ok());
        assert!(svc.flushed, "stop must flush");
        assert_eq!(reg.gauge("service.queue.a").get(), 0, "queue drained");
    }

    #[test]
    fn backlog_coalesces_when_the_service_accepts() {
        let reg = MetricsRegistry::new();
        let (tx, rx) = pipe(&reg, "in");
        let (out_tx, out_rx) = pipe::<u64>(&reg, "out");
        // Queue everything *before* the stage starts, so the whole
        // backlog is visible to the first coalescing scan.
        for v in [1u64, 2, 3, 4] {
            tx.send(v).unwrap();
        }
        tx.ctl(Ctl::Stop).unwrap();
        let (s, c) = sup();
        let h = spawn(Doubler { merge: true, merged: 0, flushed: false }, rx, out_tx, s, c);
        let mut got = Vec::new();
        while let Some(c) = out_rx.recv() {
            match c {
                Ctl::Msg(v) => got.push(v),
                Ctl::Stop | Ctl::Crash => break,
                Ctl::Drain => {}
            }
        }
        assert_eq!(got, vec![20], "1+2+3+4 merged, then doubled");
        let (svc, res) = h.join().unwrap();
        assert!(res.is_ok());
        assert_eq!(svc.merged, 3);
    }

    #[test]
    fn upstream_hangup_acts_as_stop() {
        let reg = MetricsRegistry::new();
        let (tx, rx) = pipe::<u64>(&reg, "x");
        let (out_tx, out_rx) = pipe::<u64>(&reg, "y");
        let (s, c) = sup();
        let h = spawn(Doubler { merge: false, merged: 0, flushed: false }, rx, out_tx, s, c);
        tx.send(5).unwrap();
        drop(tx);
        let mut got = Vec::new();
        while let Some(c) = out_rx.recv() {
            match c {
                Ctl::Msg(v) => got.push(v),
                Ctl::Stop | Ctl::Crash => break,
                Ctl::Drain => {}
            }
        }
        assert_eq!(got, vec![10]);
        let (svc, res) = h.join().unwrap();
        assert!(res.is_ok());
        assert!(svc.flushed);
    }

    /// Panics on any input equal to `poison`; forwards the rest.
    struct Fussy {
        poison: u64,
        handled: u64,
    }

    impl Service for Fussy {
        type In = u64;
        type Out = u64;
        type Error = PipeClosed;

        fn name(&self) -> &'static str {
            "fussy"
        }

        fn handle(&mut self, msg: u64, out: &Pipe<u64>) -> Result<(), PipeClosed> {
            if msg == self.poison {
                panic!("injected stage panic");
            }
            self.handled += 1;
            out.send(msg)
        }
    }

    #[test]
    fn supervisor_restarts_a_panicked_stage_and_counts_it() {
        let reg = MetricsRegistry::new();
        let (tx, rx) = pipe(&reg, "p");
        let (out_tx, out_rx) = pipe::<u64>(&reg, "q");
        let restarts = reg.counter("service.stage.restarts");
        let h = spawn(
            Fussy { poison: 13, handled: 0 },
            rx,
            out_tx,
            Supervision::default(),
            restarts.clone(),
        );
        tx.send(1).unwrap();
        tx.send(13).unwrap(); // poison: dropped, stage restarts
        tx.send(2).unwrap();
        tx.ctl(Ctl::Stop).unwrap();
        let mut got = Vec::new();
        while let Some(c) = out_rx.recv() {
            match c {
                Ctl::Msg(v) => got.push(v),
                Ctl::Stop | Ctl::Crash => break,
                Ctl::Drain => {}
            }
        }
        assert_eq!(got, vec![1, 2], "poison message dropped, pipe survives");
        let (svc, res) = h.join().unwrap();
        assert!(res.is_ok(), "{res:?}");
        assert_eq!(svc.handled, 2);
        assert_eq!(restarts.get(), 1);
        assert_eq!(reg.gauge("service.queue.p").get(), 0, "queue fully drained despite the panic");
    }

    #[test]
    fn repeated_panics_exhaust_the_restart_budget() {
        let reg = MetricsRegistry::new();
        let (tx, rx) = pipe(&reg, "p2");
        let (out_tx, out_rx) = pipe::<u64>(&reg, "q2");
        let restarts = reg.counter("service.stage.restarts");
        let sup = Supervision { max_restarts: 3, ..Supervision::default() };
        let h = spawn(Fussy { poison: 13, handled: 0 }, rx, out_tx, sup, restarts.clone());
        for _ in 0..5 {
            tx.send(13).unwrap();
        }
        // The dead stage forwards Stop so downstream never hangs.
        let mut saw_stop = false;
        while let Some(c) = out_rx.recv() {
            if matches!(c, Ctl::Stop | Ctl::Crash) {
                saw_stop = true;
                break;
            }
        }
        assert!(saw_stop, "a dead stage must still propagate shutdown");
        let (_, res) = h.join().unwrap();
        assert!(matches!(res, Err(StageFailure::Panicked { panics: 3 })), "{res:?}");
        assert_eq!(restarts.get(), 3, "each panic counted before giving up");
    }

    #[test]
    fn crash_marker_skips_flush_and_propagates() {
        let reg = MetricsRegistry::new();
        let (tx, rx) = pipe::<u64>(&reg, "c1");
        let (out_tx, out_rx) = pipe::<u64>(&reg, "c2");
        let (s, c) = sup();
        let h = spawn(Doubler { merge: false, merged: 0, flushed: false }, rx, out_tx, s, c);
        tx.send(21).unwrap();
        tx.ctl(Ctl::Crash).unwrap();
        let mut got = Vec::new();
        let mut crashed = false;
        while let Some(c) = out_rx.recv() {
            match c {
                Ctl::Msg(v) => got.push(v),
                Ctl::Crash => {
                    crashed = true;
                    break;
                }
                Ctl::Stop | Ctl::Drain => break,
            }
        }
        assert!(crashed, "crash marker must propagate downstream");
        assert_eq!(got, vec![42], "work before the crash still flowed");
        let (svc, res) = h.join().unwrap();
        assert!(res.is_ok());
        assert!(!svc.flushed, "a crash must not flush buffered work");
    }
}
