//! Controller durability: the write-ahead log and snapshots.
//!
//! Everything the controller cannot recompute after a crash is written
//! here *before* it is acted on:
//!
//! * every accepted intake operation ([`SubRequest`]) is appended
//!   before it mutates the target subscription state, so a crashed
//!   controller can rebuild intake by replay;
//! * every install transaction's **commit decision** is appended at
//!   the two-phase commit point (see
//!   [`ControlChannel::commit_point`](camus_net::ControlChannel::commit_point)),
//!   before the first commit op goes on the wire — the presumed-abort
//!   rule: a staged epoch with a logged decision rolls forward, one
//!   without rolls back;
//! * periodic **snapshots** of the committed subscription set,
//!   per-switch pipeline fingerprints and the epoch watermark bound
//!   replay to the tail since the last snapshot.
//!
//! The encoding is line-based text. Filters serialise through
//! [`Expr`]'s `Display` (the fully parenthesised form that is
//! guaranteed to reparse), so a log survives process boundaries
//! without any binary framing. Both backends are deliberately
//! fsync-free and deterministic: the in-memory one keeps tests
//! hermetic, the file one demonstrates the format is genuinely
//! durable on disk. Appends of one record are atomic under the WAL's
//! lock; a crash between the records of a snapshot leaves a
//! *incomplete* snapshot, which replay detects and ignores (the
//! previous snapshot plus a longer tail still reconstructs the same
//! state).

use crate::intake::{RequestId, RequestOp, SubRequest};
use camus_lang::ast::Expr;
use camus_lang::parser::parse_expr;
use std::collections::BTreeSet;
use std::io::{BufRead, Write as _};
use std::sync::{Arc, Mutex};

/// Storage behind a [`Wal`]: an append-only sequence of text lines.
pub trait WalBackend: Send {
    /// Append one record (no trailing newline). Must be visible to
    /// [`read_all`](Self::read_all) immediately — there is no sync
    /// barrier in the model.
    fn append(&mut self, line: &str);
    /// Every record, in append order.
    fn read_all(&self) -> Vec<String>;
}

/// The hermetic in-memory backend tests and experiments use.
#[derive(Debug, Default)]
pub struct MemoryWal {
    lines: Vec<String>,
}

impl MemoryWal {
    pub fn new() -> Self {
        MemoryWal::default()
    }
}

impl WalBackend for MemoryWal {
    fn append(&mut self, line: &str) {
        self.lines.push(line.to_string());
    }

    fn read_all(&self) -> Vec<String> {
        self.lines.clone()
    }
}

/// The on-disk backend: one record per line, appended without fsync
/// (durability here means "survives a process restart", which is what
/// the recovery model needs; battery-backed write caches are somebody
/// else's paper).
#[derive(Debug)]
pub struct FileWal {
    path: std::path::PathBuf,
    file: std::fs::File,
}

impl FileWal {
    /// Open (or create) the log at `path`, appending to any existing
    /// records — reopening after a crash *is* the recovery story.
    pub fn open(path: impl Into<std::path::PathBuf>) -> std::io::Result<Self> {
        let path = path.into();
        let file = std::fs::OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(FileWal { path, file })
    }
}

impl WalBackend for FileWal {
    fn append(&mut self, line: &str) {
        // Infallible by contract: the modelled control plane has no
        // I/O error arm, and a full disk should stop the world anyway.
        writeln!(self.file, "{line}").expect("WAL append");
    }

    fn read_all(&self) -> Vec<String> {
        match std::fs::File::open(&self.path) {
            Ok(f) => std::io::BufReader::new(f).lines().map_while(Result::ok).collect(),
            Err(_) => Vec::new(),
        }
    }
}

/// The shared write-ahead log handle. Clones share one backend; every
/// record append is atomic under the internal lock, so the intake
/// thread (request records), the deploy thread (snapshots) and the
/// channel wrapper (commit decisions) can interleave safely.
#[derive(Clone)]
pub struct Wal {
    inner: Arc<Mutex<Box<dyn WalBackend>>>,
}

impl Wal {
    pub fn new(backend: Box<dyn WalBackend>) -> Self {
        Wal { inner: Arc::new(Mutex::new(backend)) }
    }

    /// The hermetic default.
    pub fn in_memory() -> Self {
        Wal::new(Box::new(MemoryWal::new()))
    }

    /// File-backed log at `path`.
    pub fn file(path: impl Into<std::path::PathBuf>) -> std::io::Result<Self> {
        Ok(Wal::new(Box::new(FileWal::open(path)?)))
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Box<dyn WalBackend>> {
        self.inner.lock().expect("WAL lock poisoned")
    }

    /// Log one accepted intake operation. Called *before* the request
    /// mutates the target state.
    pub fn append_request(&self, req: &SubRequest) {
        let (kind, filter) = match &req.op {
            RequestOp::Subscribe(f) => ("sub", f),
            RequestOp::Unsubscribe(f) => ("unsub", f),
        };
        self.lock()
            .append(&format!("req {} {} {} {kind} {filter}", req.id, req.host, req.arrival_ns));
    }

    /// Log an install transaction's commit decision (the two-phase
    /// commit point).
    pub fn append_commit(&self, epoch: u64) {
        self.lock().append(&format!("commit {epoch}"));
    }

    /// Log a snapshot: the full committed subscription state,
    /// per-switch pipeline fingerprints, the epoch watermark, and the
    /// highest request id the state reflects. All records go out under
    /// one lock acquisition.
    pub fn append_snapshot(
        &self,
        subs: &[Vec<Expr>],
        fingerprints: &[(usize, u64)],
        next_epoch: u64,
        last_request: Option<RequestId>,
    ) {
        let mut w = self.lock();
        let watermark = match last_request {
            Some(id) => id.to_string(),
            None => "-".to_string(),
        };
        w.append(&format!("snap begin {next_epoch} {watermark} {}", subs.len()));
        for (s, fp) in fingerprints {
            w.append(&format!("snap fp {s} {fp}"));
        }
        for (h, fs) in subs.iter().enumerate() {
            for f in fs {
                w.append(&format!("snap sub {h} {f}"));
            }
        }
        w.append("snap end");
    }

    /// Total records in the log (experiments report recovery time
    /// against this).
    pub fn len(&self) -> usize {
        self.lock().read_all().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Rebuild controller state from the log: the last *complete*
    /// snapshot, plus every request record above its watermark —
    /// regardless of file position, because the intake thread may
    /// append newer requests before the deploy thread's (older)
    /// snapshot reaches the log. Replay is a pure function of the
    /// log's content — replaying the same log any number of times
    /// yields the same state.
    pub fn replay(&self) -> WalState {
        replay_lines(&self.lock().read_all())
    }
}

/// Everything recovery reconstructs from the log.
#[derive(Debug, Clone, Default)]
pub struct WalState {
    /// The rebuilt target subscription state (snapshot + tail).
    pub subs: Vec<Vec<Expr>>,
    /// Every epoch whose commit decision was logged.
    pub committed_epochs: BTreeSet<u64>,
    /// The epoch the next (recovery) transaction must stage under:
    /// strictly above everything the log has seen.
    pub next_epoch: u64,
    /// Per-switch pipeline fingerprints from the last snapshot (what
    /// the pre-crash controller believed was installed).
    pub fingerprints: Vec<(usize, u64)>,
    /// Highest request id the rebuilt state reflects.
    pub last_request: Option<RequestId>,
    /// Request records replayed from the tail (after the snapshot).
    pub replayed_requests: u64,
    /// Total records scanned.
    pub lines: usize,
    /// Records after the last complete snapshot (the replay tail the
    /// `recovery` experiment plots recovery time against).
    pub tail_len: usize,
}

/// A snapshot being accumulated during the replay scan.
struct PendingSnap {
    next_epoch: u64,
    watermark: Option<RequestId>,
    subs: Vec<Vec<Expr>>,
    fingerprints: Vec<(usize, u64)>,
}

fn replay_lines(lines: &[String]) -> WalState {
    let mut st = WalState { next_epoch: 1, ..WalState::default() };
    st.lines = lines.len();
    let mut pending: Option<PendingSnap> = None;
    let mut since_snapshot = 0usize;

    // Pass 1: find the last complete snapshot and collect every
    // request record in append order. Requests cannot be applied
    // inline, because the deploy thread's snapshot (watermark `w`)
    // may be *appended after* intake has already logged requests with
    // ids above `w` — file order and state order genuinely differ
    // across the two writers. Ids are monotonic, so the watermark
    // alone decides what the snapshot already reflects.
    let mut last_snap: Option<PendingSnap> = None;
    let mut reqs: Vec<(RequestId, usize, bool, Expr)> = Vec::new();

    for line in lines {
        let mut parts = line.splitn(2, ' ');
        let tag = parts.next().unwrap_or("");
        let rest = parts.next().unwrap_or("");
        match tag {
            "snap" => {
                let mut p = rest.splitn(2, ' ');
                let sub = p.next().unwrap_or("");
                let body = p.next().unwrap_or("");
                match sub {
                    "begin" => {
                        let mut f = body.split(' ');
                        let next_epoch = f.next().and_then(|x| x.parse().ok()).unwrap_or(1);
                        let watermark = f.next().and_then(|x| x.parse().ok());
                        let hosts: usize = f.next().and_then(|x| x.parse().ok()).unwrap_or(0);
                        pending = Some(PendingSnap {
                            next_epoch,
                            watermark,
                            subs: vec![Vec::new(); hosts],
                            fingerprints: Vec::new(),
                        });
                    }
                    "fp" => {
                        if let Some(p) = &mut pending {
                            let mut f = body.split(' ');
                            if let (Some(s), Some(fp)) = (
                                f.next().and_then(|x| x.parse().ok()),
                                f.next().and_then(|x| x.parse().ok()),
                            ) {
                                p.fingerprints.push((s, fp));
                            }
                        }
                    }
                    "sub" => {
                        if let Some(p) = &mut pending {
                            let mut f = body.splitn(2, ' ');
                            let host: Option<usize> = f.next().and_then(|x| x.parse().ok());
                            let filter = f.next().and_then(|x| parse_expr(x).ok());
                            if let (Some(h), Some(e)) = (host, filter) {
                                if h < p.subs.len() {
                                    p.subs[h].push(e);
                                }
                            }
                        }
                    }
                    "end" => {
                        if let Some(p) = pending.take() {
                            // A complete snapshot: remember it (only
                            // the last one wins) and apply its epoch
                            // hint — that part is position-independent.
                            st.next_epoch = st.next_epoch.max(p.next_epoch);
                            last_snap = Some(p);
                            since_snapshot = 0;
                            continue;
                        }
                    }
                    _ => {}
                }
                // snap records do not count toward the tail unless the
                // snapshot never completes — handled by `continue`
                // above only for `end`; an eventually-abandoned
                // snapshot's records are dead weight counted below.
                since_snapshot += 1;
            }
            "commit" => {
                // A record other than `snap *` aborts any snapshot in
                // progress (the writer died mid-snapshot).
                pending = None;
                if let Ok(e) = rest.parse::<u64>() {
                    st.committed_epochs.insert(e);
                    st.next_epoch = st.next_epoch.max(e + 1);
                }
                since_snapshot += 1;
            }
            "req" => {
                pending = None;
                since_snapshot += 1;
                // req <id> <host> <arrival_ns> <sub|unsub> <filter>
                let mut f = rest.splitn(4, ' ');
                let id: Option<RequestId> = f.next().and_then(|x| x.parse().ok());
                let host: Option<usize> = f.next().and_then(|x| x.parse().ok());
                let _arrival: Option<u64> = f.next().and_then(|x| x.parse().ok());
                let tail = f.next().unwrap_or("");
                let (kind, filter_text) = match tail.split_once(' ') {
                    Some((k, t)) => (k, t),
                    None => continue,
                };
                let (Some(id), Some(host), Ok(filter)) = (id, host, parse_expr(filter_text)) else {
                    continue;
                };
                reqs.push((id, host, kind == "sub", filter));
            }
            _ => {
                pending = None;
                since_snapshot += 1;
            }
        }
    }
    st.tail_len = since_snapshot;

    // Pass 2: start from the winning snapshot and apply every request
    // above its watermark, in id order (intake is a single writer, so
    // file order among `req` records *is* id order). The watermark
    // skip is also what makes double replay idempotent.
    if let Some(p) = last_snap {
        st.subs = p.subs;
        st.fingerprints = p.fingerprints;
        st.last_request = p.watermark;
    }
    for (id, host, is_sub, filter) in reqs {
        if Some(id) <= st.last_request {
            // Already reflected in the snapshot (or a duplicate).
            continue;
        }
        st.last_request = Some(id);
        st.replayed_requests += 1;
        if host >= st.subs.len() {
            continue; // soft reject, same as intake
        }
        if is_sub {
            st.subs[host].push(filter);
        } else if let Some(i) = st.subs[host].iter().rposition(|x| *x == filter) {
            st.subs[host].remove(i);
        }
    }
    st
}

/// A [`ControlChannel`](camus_net::ControlChannel) wrapper that makes
/// the two-phase install durable: the commit decision for each epoch
/// is appended to the WAL at the commit point, *before* the first
/// commit op reaches any switch.
pub struct WalChannel {
    inner: Box<dyn camus_net::ControlChannel + Send>,
    wal: Wal,
}

impl WalChannel {
    pub fn new(inner: Box<dyn camus_net::ControlChannel + Send>, wal: Wal) -> Self {
        WalChannel { inner, wal }
    }
}

impl camus_net::ControlChannel for WalChannel {
    fn attempt(
        &mut self,
        switch: usize,
        op: camus_net::ControlOp,
        attempt: u32,
    ) -> camus_net::ChannelOutcome {
        self.inner.attempt(switch, op, attempt)
    }

    fn commit_point(&mut self, epoch: u64) {
        self.wal.append_commit(epoch);
        self.inner.commit_point(epoch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(s: &str) -> Expr {
        parse_expr(s).unwrap()
    }

    fn req(id: u64, host: usize, op: RequestOp, at: u64) -> SubRequest {
        SubRequest { id, host, op, arrival_ns: at }
    }

    #[test]
    fn requests_replay_into_the_subscription_state() {
        let wal = Wal::in_memory();
        wal.append_snapshot(&vec![Vec::new(); 3], &[], 1, None);
        wal.append_request(&req(0, 0, RequestOp::Subscribe(f("price > 10")), 5));
        wal.append_request(&req(1, 2, RequestOp::Subscribe(f("stock == GOOGL")), 9));
        wal.append_request(&req(2, 0, RequestOp::Unsubscribe(f("price > 10")), 12));
        let st = wal.replay();
        assert_eq!(st.subs.len(), 3);
        assert!(st.subs[0].is_empty(), "sub+unsub cancel");
        assert_eq!(st.subs[2], vec![f("stock == GOOGL")]);
        assert_eq!(st.replayed_requests, 3);
        assert_eq!(st.last_request, Some(2));
    }

    #[test]
    fn snapshot_bounds_replay_and_double_replay_is_idempotent() {
        let wal = Wal::in_memory();
        wal.append_snapshot(&vec![Vec::new(); 2], &[], 1, None);
        wal.append_request(&req(0, 0, RequestOp::Subscribe(f("price > 10")), 1));
        wal.append_commit(7);
        let snap_subs = vec![vec![f("price > 10")], Vec::new()];
        wal.append_snapshot(&snap_subs, &[(0, 0xAB), (1, 0xCD)], 8, Some(0));
        wal.append_request(&req(1, 1, RequestOp::Subscribe(f("price > 50")), 2));
        // A record with id at the watermark replays as a no-op.
        wal.append_request(&req(0, 0, RequestOp::Subscribe(f("price > 10")), 1));

        let st = wal.replay();
        assert_eq!(st.subs, vec![vec![f("price > 10")], vec![f("price > 50")]]);
        assert_eq!(st.replayed_requests, 1, "only the post-snapshot tail replays");
        assert_eq!(st.fingerprints, vec![(0, 0xAB), (1, 0xCD)]);
        assert!(st.committed_epochs.contains(&7));
        assert_eq!(st.next_epoch, 8);
        assert_eq!(st.tail_len, 2);

        // Pure function of the log: replaying again changes nothing.
        let again = wal.replay();
        assert_eq!(again.subs, st.subs);
        assert_eq!(again.committed_epochs, st.committed_epochs);
        assert_eq!(again.replayed_requests, st.replayed_requests);
    }

    #[test]
    fn snapshot_lagging_behind_newer_requests_keeps_them() {
        // The deploy thread snapshots *committed* state, which lags
        // intake: requests newer than the watermark can already sit in
        // the log when the snapshot is appended. They must survive.
        let wal = Wal::in_memory();
        wal.append_snapshot(&vec![Vec::new(); 2], &[], 1, None);
        wal.append_request(&req(0, 0, RequestOp::Subscribe(f("price > 10")), 1));
        wal.append_request(&req(1, 1, RequestOp::Subscribe(f("price > 50")), 2));
        // Snapshot reflects only request 0 — written after request 1.
        wal.append_snapshot(&[vec![f("price > 10")], Vec::new()], &[], 2, Some(0));
        let st = wal.replay();
        assert_eq!(
            st.subs,
            vec![vec![f("price > 10")], vec![f("price > 50")]],
            "requests above the watermark apply even when logged before the snapshot"
        );
        assert_eq!(st.last_request, Some(1));
        assert_eq!(st.replayed_requests, 1);
    }

    #[test]
    fn incomplete_snapshot_is_ignored() {
        let wal = Wal::in_memory();
        wal.append_snapshot(&[vec![f("price > 10")]], &[], 3, Some(4));
        // A snapshot whose writer died before `snap end`:
        {
            let mut w = wal.inner.lock().unwrap();
            w.append("snap begin 9 10 1");
            w.append("snap sub 0 (price > 99)");
        }
        wal.append_request(&req(5, 0, RequestOp::Subscribe(f("price > 50")), 1));
        let st = wal.replay();
        assert_eq!(
            st.subs,
            vec![vec![f("price > 10"), f("price > 50")]],
            "state comes from the last complete snapshot plus the tail"
        );
        assert_eq!(st.next_epoch, 3, "the torn snapshot's epoch hint is discarded");
    }

    #[test]
    fn filters_round_trip_through_display() {
        let wal = Wal::in_memory();
        wal.append_snapshot(&vec![Vec::new(); 1], &[], 1, None);
        let gnarly = f("(price > 10 and not (stock == GOOGL)) or shares >= 5");
        wal.append_request(&req(0, 0, RequestOp::Subscribe(gnarly.clone()), 1));
        assert_eq!(wal.replay().subs[0], vec![gnarly]);
    }

    #[test]
    fn file_backend_survives_reopen() {
        let dir = std::env::temp_dir().join(format!("camus-wal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("test.wal");
        let _ = std::fs::remove_file(&path);
        {
            let wal = Wal::file(&path).unwrap();
            wal.append_snapshot(&vec![Vec::new(); 2], &[], 1, None);
            wal.append_request(&req(0, 1, RequestOp::Subscribe(f("price > 10")), 3));
            wal.append_commit(2);
        } // drop = crash: no close protocol, no fsync
        let wal = Wal::file(&path).unwrap();
        let st = wal.replay();
        assert_eq!(st.subs[1], vec![f("price > 10")]);
        assert!(st.committed_epochs.contains(&2));
        std::fs::remove_file(&path).ok();
    }
}
