//! Subscription intake: the live API surface and the churn batcher.
//!
//! Intake owns the authoritative target subscription state. Every
//! request mutates that state immediately (or is rejected), and gets
//! folded into the *open batch window*. The window is adaptive:
//!
//! * it opens at the first request's arrival `t0`;
//! * each further arrival within the window extends a short quiet
//!   period (`min_window_ns` past the last arrival), so a burst is
//!   absorbed whole;
//! * a hard deadline `t0 + max_window_ns` bounds the wait, so a
//!   steady trickle still makes progress;
//! * `max_ops` caps the batch outright.
//!
//! Batch boundaries are decided purely on the *modelled arrival
//! timestamps* carried by the requests — never on when a thread
//! happened to run — so the same request schedule always produces the
//! same batches.
//!
//! A batch carries a full snapshot of the target state, not a delta.
//! That makes downstream coalescing trivially safe (merging two
//! batches = taking the later snapshot) and makes rejected
//! transactions self-healing (the next committed batch carries the
//! complete desired state).

use crate::core::{Pipe, Service};
use crate::durability::Wal;
use crate::error::IntakeError;
use camus_lang::ast::Expr;
use camus_telemetry::Gauge;
use std::sync::Arc;

/// Service-assigned request identifier.
pub type RequestId = u64;

/// What a request asks for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestOp {
    Subscribe(Expr),
    /// Drop one instance of an equal filter held by the host (the
    /// most recently added one).
    Unsubscribe(Expr),
}

/// One subscription request with its modelled arrival time.
#[derive(Debug, Clone)]
pub struct SubRequest {
    pub id: RequestId,
    pub host: usize,
    pub op: RequestOp,
    /// Modelled arrival, ns on the service clock.
    pub arrival_ns: u64,
}

/// The adaptive batching window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Quiet period: the window stays open this long past the most
    /// recent arrival.
    pub min_window_ns: u64,
    /// Hard deadline past the window's first arrival.
    pub max_window_ns: u64,
    /// Op-count cap per batch.
    pub max_ops: usize,
}

impl BatchPolicy {
    /// The batched service default: absorb half-millisecond bursts,
    /// never hold a request hostage past 2 ms.
    pub fn adaptive() -> Self {
        BatchPolicy { min_window_ns: 500_000, max_window_ns: 2_000_000, max_ops: 256 }
    }

    /// The one-op-at-a-time baseline: every request is its own
    /// transaction.
    pub fn naive() -> Self {
        BatchPolicy { min_window_ns: 0, max_window_ns: 0, max_ops: 1 }
    }

    /// When a window opened at `opened_ns` whose latest arrival is
    /// `last_ns` closes, absent new arrivals.
    pub fn deadline_ns(&self, opened_ns: u64, last_ns: u64) -> u64 {
        (opened_ns + self.max_window_ns).min(last_ns + self.min_window_ns)
    }
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy::adaptive()
    }
}

/// A closed batch window: the requests it absorbed and the full
/// target subscription state after them.
#[derive(Debug, Clone)]
pub struct ChurnBatch {
    /// Transaction id (intake-assigned, monotonic).
    pub txn: u64,
    /// Target per-host subscriptions after this batch's ops.
    pub subs: Vec<Vec<Expr>>,
    /// The accepted requests folded in, arrival order.
    pub requests: Vec<SubRequest>,
    /// First arrival in the window.
    pub opened_ns: u64,
    /// When the window closed (deadline, cap, or drain).
    pub closed_ns: u64,
}

impl ChurnBatch {
    pub fn ops(&self) -> usize {
        self.requests.len()
    }
}

struct OpenWindow {
    txn: u64,
    opened_ns: u64,
    last_ns: u64,
    requests: Vec<SubRequest>,
}

/// The intake stage.
pub struct IntakeService {
    policy: BatchPolicy,
    /// Authoritative target state (what the network *should* run).
    subs: Vec<Vec<Expr>>,
    open: Option<OpenWindow>,
    next_txn: u64,
    /// Monotonic arrival clamp: arrivals never run backwards.
    clock_ns: u64,
    inflight: Arc<Gauge>,
    /// Durability: every request is appended here *before* it mutates
    /// the target state (`None` = volatile controller).
    wal: Option<Wal>,
    /// Accepted request count.
    pub accepted: u64,
    /// Soft per-request rejects, in arrival order.
    pub rejected: Vec<IntakeError>,
    /// Requests whose stamps arrived out of order (clamped forward).
    pub out_of_order: u64,
    /// Batches emitted.
    pub batches: u64,
}

impl IntakeService {
    pub fn new(policy: BatchPolicy, subs: Vec<Vec<Expr>>, inflight: Arc<Gauge>) -> Self {
        IntakeService {
            policy,
            subs,
            open: None,
            next_txn: 0,
            clock_ns: 0,
            inflight,
            wal: None,
            accepted: 0,
            rejected: Vec::new(),
            out_of_order: 0,
            batches: 0,
        }
    }

    /// Arm the write-ahead log.
    pub fn with_wal(mut self, wal: Wal) -> Self {
        self.wal = Some(wal);
        self
    }

    /// The target state intake has accepted so far.
    pub fn subs(&self) -> &[Vec<Expr>] {
        &self.subs
    }

    /// Take the target state home (shutdown path).
    pub fn into_subs(self) -> Vec<Vec<Expr>> {
        self.subs
    }

    fn emit(&mut self, closed_ns: u64, out: &Pipe<ChurnBatch>) -> Result<(), IntakeError> {
        if let Some(w) = self.open.take() {
            self.batches += 1;
            self.inflight.add(1);
            out.send(ChurnBatch {
                txn: w.txn,
                subs: self.subs.clone(),
                requests: w.requests,
                opened_ns: w.opened_ns,
                closed_ns,
            })
            .map_err(|_| IntakeError::Closed)?;
        }
        Ok(())
    }

    /// Apply one request to the target state, or say why not.
    fn apply(&mut self, req: &SubRequest) -> Result<(), IntakeError> {
        let hosts = self.subs.len();
        if req.host >= hosts {
            return Err(IntakeError::UnknownHost { request: req.id, host: req.host, hosts });
        }
        match &req.op {
            RequestOp::Subscribe(f) => self.subs[req.host].push(f.clone()),
            RequestOp::Unsubscribe(f) => match self.subs[req.host].iter().rposition(|x| x == f) {
                Some(i) => {
                    self.subs[req.host].remove(i);
                }
                None => {
                    return Err(IntakeError::NoSuchSubscription { request: req.id, host: req.host })
                }
            },
        }
        Ok(())
    }
}

impl Service for IntakeService {
    type In = SubRequest;
    type Out = ChurnBatch;
    type Error = IntakeError;

    fn name(&self) -> &'static str {
        "camus-intake"
    }

    fn handle(&mut self, mut req: SubRequest, out: &Pipe<ChurnBatch>) -> Result<(), IntakeError> {
        if req.arrival_ns < self.clock_ns {
            self.out_of_order += 1;
            req.arrival_ns = self.clock_ns;
        }
        self.clock_ns = req.arrival_ns;

        // Write ahead: the request is durable before it mutates the
        // target state (soft rejects are logged too — replay mirrors
        // `apply`'s semantics, so they replay as the same no-ops).
        if let Some(w) = &self.wal {
            w.append_request(&req);
        }

        // This arrival may fall past the open window's deadline: the
        // window closed (at the deadline, not at this arrival) before
        // this request existed.
        if let Some(w) = &self.open {
            let deadline = self.policy.deadline_ns(w.opened_ns, w.last_ns);
            if req.arrival_ns > deadline {
                self.emit(deadline, out)?;
            }
        }

        match self.apply(&req) {
            Ok(()) => {}
            Err(e @ (IntakeError::UnknownHost { .. } | IntakeError::NoSuchSubscription { .. })) => {
                // Soft reject: record and move on, no state change.
                self.rejected.push(e);
                return Ok(());
            }
            Err(e) => return Err(e),
        }
        self.accepted += 1;

        if self.open.is_none() {
            self.open = Some(OpenWindow {
                txn: self.next_txn,
                opened_ns: req.arrival_ns,
                last_ns: req.arrival_ns,
                requests: Vec::new(),
            });
            self.next_txn += 1;
        }
        let w = self.open.as_mut().expect("window just ensured");
        w.last_ns = req.arrival_ns;
        w.requests.push(req);
        if w.requests.len() >= self.policy.max_ops {
            let closed = w.last_ns;
            self.emit(closed, out)?;
        }
        Ok(())
    }

    fn flush(&mut self, out: &Pipe<ChurnBatch>) -> Result<(), IntakeError> {
        // Drain closes the window immediately: at its last arrival,
        // not at a deadline that may never be reached.
        if let Some(w) = &self.open {
            let closed = w.last_ns;
            self.emit(closed, out)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core::{pipe, Ctl};
    use camus_lang::parser::parse_expr;
    use camus_telemetry::MetricsRegistry;

    fn f(s: &str) -> Expr {
        parse_expr(s).unwrap()
    }

    fn svc(policy: BatchPolicy, hosts: usize) -> (IntakeService, Arc<Gauge>) {
        let g = Arc::new(Gauge::new());
        (IntakeService::new(policy, vec![Vec::new(); hosts], g.clone()), g)
    }

    fn req(id: u64, host: usize, op: RequestOp, at: u64) -> SubRequest {
        SubRequest { id, host, op, arrival_ns: at }
    }

    fn collect(rx: &crate::core::StageRx<ChurnBatch>) -> Vec<ChurnBatch> {
        let mut out = Vec::new();
        while let Some(Ctl::Msg(b)) = rx.try_recv() {
            out.push(b);
        }
        out
    }

    #[test]
    fn naive_policy_emits_one_batch_per_request() {
        let reg = MetricsRegistry::new();
        let (tx, rx) = pipe(&reg, "t");
        let (mut s, _) = svc(BatchPolicy::naive(), 4);
        for (i, t) in [(0u64, 10u64), (1, 11), (2, 500)] {
            s.handle(req(i, 0, RequestOp::Subscribe(f("price > 1")), t), &tx).unwrap();
        }
        let got = collect(&rx);
        assert_eq!(got.len(), 3);
        assert!(got.iter().all(|b| b.ops() == 1));
        assert_eq!(got[2].closed_ns, 500);
        assert_eq!(got[2].subs[0].len(), 3, "snapshot carries cumulative state");
    }

    #[test]
    fn adaptive_window_batches_bursts_and_splits_on_gaps() {
        let reg = MetricsRegistry::new();
        let (tx, rx) = pipe(&reg, "t");
        let policy = BatchPolicy { min_window_ns: 100, max_window_ns: 1_000, max_ops: 64 };
        let (mut s, _) = svc(policy, 4);
        // A burst at t=0,50,120 (each within 100 of the last), then a
        // gap: the next arrival at t=5_000 is past the deadline.
        for (i, t) in [(0u64, 0u64), (1, 50), (2, 120)] {
            s.handle(req(i, 1, RequestOp::Subscribe(f("price > 1")), t), &tx).unwrap();
        }
        assert!(collect(&rx).is_empty(), "window still open");
        s.handle(req(3, 1, RequestOp::Subscribe(f("price > 2")), 5_000), &tx).unwrap();
        let got = collect(&rx);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].ops(), 3);
        // Closed at the quiet-period deadline, not the late arrival.
        assert_eq!(got[0].closed_ns, 220);
        // The late request sits in a fresh window; flush emits it.
        s.flush(&tx).unwrap();
        let tail = collect(&rx);
        assert_eq!(tail.len(), 1);
        assert_eq!(tail[0].ops(), 1);
        assert_eq!(tail[0].closed_ns, 5_000, "drain closes at last arrival");
    }

    #[test]
    fn max_window_bounds_a_steady_trickle() {
        let reg = MetricsRegistry::new();
        let (tx, rx) = pipe(&reg, "t");
        let policy = BatchPolicy { min_window_ns: 100, max_window_ns: 250, max_ops: 64 };
        let (mut s, _) = svc(policy, 1);
        // Arrivals every 90 ns keep extending the quiet period, but
        // the hard deadline at t0+250 still closes the window.
        for i in 0..6u64 {
            s.handle(req(i, 0, RequestOp::Subscribe(f("price > 1")), i * 90), &tx).unwrap();
        }
        let got = collect(&rx);
        assert!(!got.is_empty());
        assert_eq!(got[0].closed_ns, 250, "hard deadline wins");
        assert_eq!(got[0].ops(), 3, "t=0,90,180 made the window; t=270 did not");
    }

    #[test]
    fn rejects_are_soft_and_recorded() {
        let reg = MetricsRegistry::new();
        let (tx, rx) = pipe(&reg, "t");
        let (mut s, _) = svc(BatchPolicy::naive(), 2);
        s.handle(req(0, 9, RequestOp::Subscribe(f("price > 1")), 0), &tx).unwrap();
        s.handle(req(1, 0, RequestOp::Unsubscribe(f("price > 1")), 1), &tx).unwrap();
        assert!(collect(&rx).is_empty(), "rejected requests emit no batch");
        assert_eq!(s.rejected.len(), 2);
        assert!(matches!(s.rejected[0], IntakeError::UnknownHost { host: 9, .. }));
        assert!(matches!(s.rejected[1], IntakeError::NoSuchSubscription { .. }));
        assert_eq!(s.accepted, 0);
    }

    #[test]
    fn unsubscribe_drops_newest_equal_filter() {
        let reg = MetricsRegistry::new();
        let (tx, _rx) = pipe(&reg, "t");
        let (mut s, _) = svc(BatchPolicy { max_ops: 100, ..BatchPolicy::adaptive() }, 1);
        s.handle(req(0, 0, RequestOp::Subscribe(f("price > 1")), 0), &tx).unwrap();
        s.handle(req(1, 0, RequestOp::Subscribe(f("price > 2")), 1), &tx).unwrap();
        s.handle(req(2, 0, RequestOp::Subscribe(f("price > 1")), 2), &tx).unwrap();
        s.handle(req(3, 0, RequestOp::Unsubscribe(f("price > 1")), 3), &tx).unwrap();
        assert_eq!(s.subs()[0], vec![f("price > 1"), f("price > 2")]);
    }

    #[test]
    fn out_of_order_arrivals_are_clamped_monotonic() {
        let reg = MetricsRegistry::new();
        let (tx, rx) = pipe(&reg, "t");
        let (mut s, _) = svc(BatchPolicy::naive(), 1);
        s.handle(req(0, 0, RequestOp::Subscribe(f("price > 1")), 100), &tx).unwrap();
        s.handle(req(1, 0, RequestOp::Subscribe(f("price > 2")), 40), &tx).unwrap();
        let got = collect(&rx);
        assert_eq!(s.out_of_order, 1);
        assert_eq!(got[1].requests[0].arrival_ns, 100, "clamped to the intake clock");
    }
}
