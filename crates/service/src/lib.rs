//! camus-service: the long-running Camus controller.
//!
//! Everything below PR 6 treats the controller as a *function*: hand
//! it a full subscription table, get a deployed network back. Real
//! brokers do not work that way — subscriptions arrive one at a time,
//! continuously, and the expensive part (routing + per-switch
//! pipeline compiles + the transactional install) must amortize
//! across churn instead of rerunning from scratch per op. This crate
//! turns the PR-4 transactional controller into a service:
//!
//! * [`core`] — the message-passing spine: gauge-tracked pipes,
//!   drain/stop markers, and the [`Service`](core::Service) trait with
//!   its thread harness (std `mpsc`, one thread per stage, no
//!   executor);
//! * [`intake`] — the live subscribe/unsubscribe API and the adaptive
//!   churn batcher (quiet-period window with a hard deadline, full
//!   state snapshots per batch);
//! * [`stages`] — route+compile (incremental against the last
//!   compile, cancels net-zero batches, merges backlog) and deploy
//!   (owns the network, serial modelled control channel, per-commit
//!   zero-mis-delivery audit);
//! * [`service`] — [`CamusService`]: wiring, drain, shutdown, and the
//!   [`ServiceOutcome`] with per-transaction reports;
//! * [`error`] — one error enum per stage, rolled up in
//!   [`ServiceError`].
//!
//! The pipeline overlaps by default — transaction N+1 compiles while
//! transaction N installs — which the PR-1 content-addressed compile
//! cache makes safe: the cache changes compile *cost*, never compile
//! *output*, and the deploy stage diffs each transaction against the
//! state actually installed. The `service` experiment in camus-bench
//! measures what that buys over the one-op-per-transaction baseline.

pub mod core;
pub mod durability;
pub mod error;
pub mod intake;
pub mod service;
pub mod stages;

pub use crate::core::{
    pipe, spawn, Ctl, Pipe, PipeClosed, Service, StageFailure, StageRx, Supervision,
};
pub use crate::durability::{FileWal, MemoryWal, Wal, WalBackend, WalChannel, WalState};
pub use crate::error::{
    CompileStageError, DeployStageError, IntakeError, RouteError, ServiceError,
};
pub use crate::intake::{BatchPolicy, ChurnBatch, IntakeService, RequestId, RequestOp, SubRequest};
pub use crate::service::{CamusService, ServiceConfig, ServiceOutcome, ServiceStats};
pub use crate::stages::{
    AuditProbe, AuditReport, DeployService, RouteCompileService, Txn, TxnPayload, TxnReport,
};
