//! The route/compile and deploy stages.
//!
//! [`RouteCompileService`] turns a closed churn batch into an
//! installable transaction: Algorithm-1 routing plus an incremental
//! network compile against the previous compile as a content-addressed
//! cache. Because the cache affects only *cost*, never the produced
//! pipelines, it is safe to compile transaction N+1 while transaction
//! N is still installing (or about to roll back) — the overlap the
//! service exists for. Its modelled [`Clock`] is the compile
//! executor's timeline: a batch's compile starts no earlier than its
//! window closed and no earlier than the previous compile finished,
//! and advances by the measured route+compile wall time folded into
//! modelled nanoseconds.
//!
//! Coalescing happens here, twice:
//!
//! * *cancellation*: a batch whose ops net out (subscribe then
//!   unsubscribe inside one window, for the whole batch) has churn
//!   distance zero against the installed state — it costs **zero**
//!   compiles and installs (a `Noop` transaction flows through for
//!   accounting);
//! * *backlog merging* (via [`Service::coalesce`]): when compiles are
//!   the bottleneck, queued batches merge into one — the snapshot of
//!   the latest wins, so repeated dirtying of one switch compiles
//!   once.
//!
//! [`DeployService`] owns the live [`Deployment`] and the control
//! channel. Its clock is the control-plane timeline: an install
//! starts no earlier than its compile finished and no earlier than
//! the previous install finished (the channel is serial), and
//! advances by the transaction ledger's modelled control time. After
//! every commit it can replay configured audit probes through the
//! network and checks the PR-2/PR-4 invariant — zero mis-delivery,
//! zero duplicates, committed ⇒ delivered — while transactions are
//! still overlapping upstream.

use crate::core::{Pipe, Service};
use crate::durability::Wal;
use crate::error::{CompileStageError, DeployStageError, RouteError, ServiceError};
use crate::intake::{ChurnBatch, RequestId, SubRequest};
use camus_dataplane::Packet;
use camus_lang::ast::{Expr, Operand};
use camus_lang::value::Value;
use camus_net::controller::{Controller, DeployError, Deployment};
use camus_net::{Clock, ControlChannel};
use camus_routing::algorithm1::RoutingResult;
use camus_routing::compile::{DeltaCache, NetworkCompile};
use camus_routing::topology::{FaultMask, HierNet};
use camus_telemetry::{Gauge, Histogram, RequestSpan};
use std::collections::HashMap;
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;
use std::time::Instant;

/// An installable transaction: the compile stage's output.
#[derive(Debug)]
pub struct Txn {
    pub txn: u64,
    pub requests: Vec<SubRequest>,
    /// Ops cancelled out inside the batch (paid zero compile work).
    pub cancelled: usize,
    pub opened_ns: u64,
    pub closed_ns: u64,
    /// When the compile executor picked the batch up.
    pub compile_start_ns: u64,
    /// When routing + compile finished (modelled).
    pub compiled_ns: u64,
    /// `None` for a net-zero batch: nothing to install.
    pub payload: Option<TxnPayload>,
}

/// The artefacts a non-noop transaction installs.
#[derive(Debug)]
pub struct TxnPayload {
    /// Target state (the audit's ground truth).
    pub subs: Vec<Vec<Expr>>,
    pub routing: RoutingResult,
    pub compile: NetworkCompile,
    /// Measured routing wall time (for the deploy trace).
    pub route_ns: u64,
}

/// The route + compile stage.
pub struct RouteCompileService {
    ctrl: Controller,
    topology: HierNet,
    mask: FaultMask,
    /// Content-addressed compile cache: the last compile *produced*
    /// here (not necessarily installed yet — that is the overlap).
    prev_compile: NetworkCompile,
    /// The subscription state behind `prev_compile`; churn distance
    /// against it detects net-zero batches.
    prev_subs: Vec<Vec<Expr>>,
    /// Live per-switch BDD states keyed by rule-list fingerprint:
    /// switches that miss the fingerprint cache are delta-maintained
    /// from their previous diagram instead of recompiled from scratch.
    /// Pure cost cache — produced pipelines are identical either way.
    delta: DeltaCache,
    /// The compile executor's modelled timeline.
    clock: Clock,
    /// In serialized (naive-baseline) mode, the deploy stage feeds
    /// back each transaction's completion time and the next compile
    /// waits for it; `None` overlaps freely.
    serialize: Option<Receiver<u64>>,
    /// Transactions sent downstream but not yet fed back (serialized
    /// mode bookkeeping).
    outstanding: usize,
    /// Whether backlog batches may merge ([`Service::coalesce`]).
    merge_backlog: bool,
    inflight: Arc<Gauge>,
    /// Fault injection: transaction ids at which this stage panics
    /// (once each) before doing any work — exercises the supervisor's
    /// restart path. The poisoned batch is dropped; the next batch's
    /// full snapshot self-heals the gap.
    panic_on: std::collections::BTreeSet<u64>,
    pub merged_batches: u64,
    pub compiles: u64,
    pub noops: u64,
    pub cancelled_ops: u64,
}

/// Per-host multiset distance between two subscription states: the
/// number of single-filter edits separating them. Each accepted op
/// moves the state by exactly one edit, so
/// `ops - distance(prev, next)` is the number of ops that cancelled
/// out inside the batch.
fn churn_distance(prev: &[Vec<Expr>], next: &[Vec<Expr>]) -> usize {
    prev.iter()
        .zip(next)
        .map(|(a, b)| {
            let mut counts: HashMap<&Expr, i64> = HashMap::new();
            for f in a {
                *counts.entry(f).or_insert(0) += 1;
            }
            for f in b {
                *counts.entry(f).or_insert(0) -= 1;
            }
            counts.values().map(|c| c.unsigned_abs() as usize).sum::<usize>()
        })
        .sum()
}

impl RouteCompileService {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        ctrl: Controller,
        topology: HierNet,
        mask: FaultMask,
        deployed_compile: NetworkCompile,
        deployed_subs: Vec<Vec<Expr>>,
        serialize: Option<Receiver<u64>>,
        merge_backlog: bool,
        inflight: Arc<Gauge>,
    ) -> Self {
        RouteCompileService {
            ctrl,
            topology,
            mask,
            prev_compile: deployed_compile,
            prev_subs: deployed_subs,
            delta: DeltaCache::new(),
            clock: Clock::new(),
            serialize,
            outstanding: 0,
            merge_backlog,
            inflight,
            panic_on: std::collections::BTreeSet::new(),
            merged_batches: 0,
            compiles: 0,
            noops: 0,
            cancelled_ops: 0,
        }
    }

    /// Arm fault injection: panic on the named transaction ids.
    pub fn with_panic_on(mut self, txns: impl IntoIterator<Item = u64>) -> Self {
        self.panic_on = txns.into_iter().collect();
        self
    }

    /// Live delta-maintained BDD states, one per distinct rule-list
    /// fingerprint in the last produced compile.
    pub fn delta_states(&self) -> usize {
        self.delta.len()
    }
}

impl Service for RouteCompileService {
    type In = ChurnBatch;
    type Out = Txn;
    type Error = ServiceError;

    fn name(&self) -> &'static str {
        "camus-route-compile"
    }

    fn coalesce(&mut self, pending: &mut ChurnBatch, next: ChurnBatch) -> Result<(), ChurnBatch> {
        if !self.merge_backlog {
            return Err(next);
        }
        // Snapshots are cumulative: merging = taking the later state
        // and the union of requests. The merged batch is one
        // transaction, so one inflight slot is released here.
        pending.subs = next.subs;
        pending.requests.extend(next.requests);
        pending.closed_ns = next.closed_ns;
        self.merged_batches += 1;
        self.inflight.add(-1);
        Ok(())
    }

    fn handle(&mut self, batch: ChurnBatch, out: &Pipe<Txn>) -> Result<(), ServiceError> {
        if self.panic_on.remove(&batch.txn) {
            panic!("injected compile-stage panic at txn {}", batch.txn);
        }
        // Naive-baseline serialization: wait until every outstanding
        // install has landed before compiling the next transaction.
        if let Some(rx) = &self.serialize {
            while self.outstanding > 0 {
                match rx.recv() {
                    Ok(done_ns) => {
                        self.clock.advance_to(done_ns);
                        self.outstanding -= 1;
                    }
                    Err(_) => return Err(CompileStageError::Closed.into()),
                }
            }
        }
        let hosts = self.topology.host_count();
        if batch.subs.len() != hosts {
            return Err(
                RouteError::HostCountMismatch { expected: hosts, got: batch.subs.len() }.into()
            );
        }

        let ops = batch.requests.len();
        let distance = churn_distance(&self.prev_subs, &batch.subs);
        let cancelled = ops.saturating_sub(distance);
        self.cancelled_ops += cancelled as u64;

        // The compile executor is serial: a batch starts when its
        // window has closed *and* the previous compile is done.
        let compile_start_ns = self.clock.advance_to(batch.closed_ns);

        let txn = if distance == 0 {
            // Net-zero batch: every op cancelled inside the window.
            // Zero compiles, zero installs — the whole point.
            self.noops += 1;
            Txn {
                txn: batch.txn,
                requests: batch.requests,
                cancelled,
                opened_ns: batch.opened_ns,
                closed_ns: batch.closed_ns,
                compile_start_ns,
                compiled_ns: compile_start_ns,
                payload: None,
            }
        } else {
            let wall = Instant::now();
            let routing = self.ctrl.plan_routing(&self.topology, &batch.subs, &self.mask);
            let route_ns = wall.elapsed().as_nanos() as u64;
            let compile = self
                .ctrl
                .compile_routing_delta(&routing, Some(&self.prev_compile), &mut self.delta)
                .map_err(|e| ServiceError::from(CompileStageError::from(e)))?;
            // Fold the measured wall time into the modelled timeline.
            let compiled_ns = self.clock.advance(wall.elapsed().as_nanos() as u64);
            self.prev_compile = compile.clone();
            self.prev_subs = batch.subs.clone();
            self.compiles += 1;
            Txn {
                txn: batch.txn,
                requests: batch.requests,
                cancelled,
                opened_ns: batch.opened_ns,
                closed_ns: batch.closed_ns,
                compile_start_ns,
                compiled_ns,
                payload: Some(TxnPayload { subs: batch.subs, routing, compile, route_ns }),
            }
        };
        self.outstanding += 1;
        out.send(txn).map_err(|_| ServiceError::from(CompileStageError::Closed))
    }
}

/// A configured audit probe: a packet the deploy stage republishes
/// after every commit, with the attribute values subscriptions are
/// matched against.
#[derive(Debug, Clone)]
pub struct AuditProbe {
    pub publisher: usize,
    pub packet: Packet,
    /// The witness values `Expr::eval_with` sees (must agree with the
    /// packet's encoded attributes).
    pub values: Vec<(String, Value)>,
}

/// Audit counters for one transaction (or totals across a run).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AuditReport {
    pub probes: usize,
    /// Expected (host, probe) deliveries across probes.
    pub expected: usize,
    pub delivered: usize,
    pub misdelivered: usize,
    pub duplicated: usize,
    pub missed: usize,
}

impl AuditReport {
    pub fn absorb(&mut self, other: &AuditReport) {
        self.probes += other.probes;
        self.expected += other.expected;
        self.delivered += other.delivered;
        self.misdelivered += other.misdelivered;
        self.duplicated += other.duplicated;
        self.missed += other.missed;
    }

    pub fn clean(&self) -> bool {
        self.misdelivered == 0 && self.duplicated == 0 && self.missed == 0
    }
}

/// What one transaction did, end to end.
#[derive(Debug)]
pub struct TxnReport {
    pub txn: u64,
    pub ops: usize,
    pub cancelled: usize,
    /// Net-zero batch: no compile, no install.
    pub noop: bool,
    /// Whether the install committed (noops count as committed —
    /// the target state is live).
    pub committed: bool,
    /// The rolled-back install's error, when not committed.
    pub error: Option<DeployError>,
    pub opened_ns: u64,
    pub closed_ns: u64,
    pub compile_start_ns: u64,
    pub compiled_ns: u64,
    pub install_start_ns: u64,
    /// When the transaction's effect was traffic-visible (modelled).
    pub deployed_ns: u64,
    pub distinct_compiles: usize,
    pub reinstalled: usize,
    /// Intake→deployed span per request in the transaction.
    pub requests: Vec<RequestSpan>,
    pub audit: Option<AuditReport>,
}

/// The deploy stage: owns the live deployment and the channel.
pub struct DeployService {
    ctrl: Controller,
    pub deployment: Deployment,
    channel: Box<dyn ControlChannel + Send>,
    /// The control channel's modelled timeline.
    clock: Clock,
    /// Serialized-mode feedback to the compile stage.
    feedback: Option<Sender<u64>>,
    probes: Vec<AuditProbe>,
    probe_gap_ns: u64,
    ttt: Arc<Histogram>,
    inflight: Arc<Gauge>,
    /// Durability: where cadence snapshots go (`None` = volatile).
    wal: Option<Wal>,
    /// Snapshot after this many committed transactions (0 = never).
    snapshot_every: u64,
    committed_since_snapshot: u64,
    /// Highest request id folded into any handled transaction; batch
    /// snapshots are cumulative, so after a committed install this is
    /// exactly the watermark the deployed state reflects.
    max_seen_request: Option<RequestId>,
    pub committed_txns: u64,
    pub rejected_txns: u64,
    pub snapshots_written: u64,
    pub audit_totals: AuditReport,
}

/// Hosts whose subscriptions match `witness` (excluding the
/// publisher — the network never loops a message back to its source).
fn matching_hosts(subs: &[Vec<Expr>], witness: &[(String, Value)], publisher: usize) -> Vec<usize> {
    let lookup = |op: &Operand| match op {
        Operand::Field(name) => witness.iter().find(|(n, _)| n == name).map(|(_, v)| v.clone()),
        Operand::Aggregate { .. } => None,
    };
    subs.iter()
        .enumerate()
        .filter(|(h, fs)| *h != publisher && fs.iter().any(|f| f.eval_with(lookup)))
        .map(|(h, _)| h)
        .collect()
}

impl DeployService {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        ctrl: Controller,
        deployment: Deployment,
        channel: Box<dyn ControlChannel + Send>,
        feedback: Option<Sender<u64>>,
        probes: Vec<AuditProbe>,
        probe_gap_ns: u64,
        ttt: Arc<Histogram>,
        inflight: Arc<Gauge>,
    ) -> Self {
        DeployService {
            ctrl,
            deployment,
            channel,
            clock: Clock::new(),
            feedback,
            probes,
            probe_gap_ns,
            ttt,
            inflight,
            wal: None,
            snapshot_every: 0,
            committed_since_snapshot: 0,
            max_seen_request: None,
            committed_txns: 0,
            rejected_txns: 0,
            snapshots_written: 0,
            audit_totals: AuditReport::default(),
        }
    }

    /// Arm durability: snapshot the committed state to `wal` every
    /// `every` committed transactions.
    pub fn with_wal(mut self, wal: Wal, every: u64) -> Self {
        self.wal = Some(wal);
        self.snapshot_every = every;
        self
    }

    /// Republish every configured probe and check deliveries against
    /// the target state `subs`: no mis-delivery, no duplicates, every
    /// expected host reached.
    fn audit(&mut self, subs: &[Vec<Expr>]) -> AuditReport {
        let mut rep = AuditReport { probes: self.probes.len(), ..AuditReport::default() };
        if self.probes.is_empty() {
            return rep;
        }
        let net = &mut self.deployment.network;
        let hosts = net.topology.host_count();
        let before: Vec<usize> = (0..hosts).map(|h| net.deliveries(h).len()).collect();
        // Distinct publish stamps attribute deliveries to probes.
        let base = net.now_ns() + 1;
        let times: Vec<u64> =
            (0..self.probes.len()).map(|i| base + i as u64 * self.probe_gap_ns).collect();
        for (p, t) in self.probes.iter().zip(&times) {
            let _ = net.publish(p.publisher, p.packet.clone(), *t);
        }
        net.run(None);
        for (p, t) in self.probes.iter().zip(&times) {
            let expect = matching_hosts(subs, &p.values, p.publisher);
            rep.expected += expect.len();
            for (h, &seen) in before.iter().enumerate() {
                let n = net.deliveries(h)[seen..].iter().filter(|d| d.published_ns == *t).count();
                if expect.contains(&h) {
                    if n == 0 {
                        rep.missed += 1;
                    } else {
                        rep.delivered += 1;
                        rep.duplicated += n - 1;
                    }
                } else {
                    rep.misdelivered += n;
                }
            }
        }
        self.audit_totals.absorb(&rep);
        rep
    }
}

impl Service for DeployService {
    type In = Txn;
    type Out = TxnReport;
    type Error = DeployStageError;

    fn name(&self) -> &'static str {
        "camus-deploy"
    }

    fn handle(&mut self, txn: Txn, out: &Pipe<TxnReport>) -> Result<(), DeployStageError> {
        // The control channel is serial: this install starts when its
        // compile is done and the channel is free.
        let install_start_ns = self.clock.advance_to(txn.compiled_ns);
        if let Some(m) = txn.requests.iter().map(|r| r.id).max() {
            self.max_seen_request = Some(self.max_seen_request.map_or(m, |x| x.max(m)));
        }
        let mut committed = false;
        let mut error = None;
        let mut distinct_compiles = 0;
        let mut reinstalled = 0;
        let mut audit = None;
        let noop = txn.payload.is_none();
        let deployed_ns = match txn.payload {
            None => {
                // Nothing to install: the target state is already
                // live, so the batch is traffic-visible at once.
                committed = true;
                install_start_ns
            }
            Some(p) => {
                match self.ctrl.install(
                    &mut self.deployment,
                    p.routing,
                    p.compile,
                    p.route_ns,
                    &mut *self.channel,
                ) {
                    Ok(stats) => {
                        committed = true;
                        distinct_compiles = stats.distinct_compiles;
                        reinstalled = stats.reinstalled;
                        let control_ns = self.deployment.report.total_control_ns();
                        let done = self.clock.advance(control_ns);
                        // Cadence snapshot: the committed state, the
                        // fingerprints the controller believes are
                        // installed, and the epoch watermark — bounds
                        // the tail a recovery must replay.
                        self.committed_since_snapshot += 1;
                        if let Some(w) = &self.wal {
                            if self.snapshot_every > 0
                                && self.committed_since_snapshot >= self.snapshot_every
                            {
                                let fps: Vec<(usize, u64)> = self
                                    .deployment
                                    .compile
                                    .switches
                                    .iter()
                                    .map(|s| (s.switch, s.fingerprint))
                                    .collect();
                                w.append_snapshot(
                                    &p.subs,
                                    &fps,
                                    self.deployment.next_epoch,
                                    self.max_seen_request,
                                );
                                self.committed_since_snapshot = 0;
                                self.snapshots_written += 1;
                            }
                        }
                        let a = self.audit(&p.subs);
                        if !a.clean() {
                            // Invariant broken after a commit: stop
                            // the world (the report still goes out
                            // below the error for post-mortems).
                            let _ = out.send(TxnReport {
                                txn: txn.txn,
                                ops: txn.requests.len(),
                                cancelled: txn.cancelled,
                                noop,
                                committed,
                                error,
                                opened_ns: txn.opened_ns,
                                closed_ns: txn.closed_ns,
                                compile_start_ns: txn.compile_start_ns,
                                compiled_ns: txn.compiled_ns,
                                install_start_ns,
                                deployed_ns: done,
                                distinct_compiles,
                                reinstalled,
                                requests: Vec::new(),
                                audit: Some(a),
                            });
                            return Err(DeployStageError::Audit {
                                txn: txn.txn,
                                misdelivered: a.misdelivered,
                                duplicated: a.duplicated,
                                missed: a.missed,
                            });
                        }
                        audit = Some(a);
                        done
                    }
                    Err(DeployError::Crashed { epoch, .. }) => {
                        // Dead coordinator: nothing was rolled back,
                        // staged programs sit on the switches, and
                        // this "process" does nothing further. The
                        // kill path harvests the wreckage for the
                        // recovery arm to reconcile.
                        return Err(DeployStageError::Crashed { txn: txn.txn, epoch });
                    }
                    Err(e) => {
                        // Rolled back: the channel time was still
                        // spent. The next committed transaction
                        // carries the full target state, so nothing
                        // is lost — record and continue.
                        let control_ns = match &e {
                            DeployError::Admission { report, .. }
                            | DeployError::Channel { report, .. } => report.total_control_ns(),
                            DeployError::Compile(_) | DeployError::Crashed { .. } => 0,
                        };
                        let done = self.clock.advance(control_ns);
                        error = Some(e);
                        done
                    }
                }
            }
        };
        if committed {
            self.committed_txns += 1;
        } else {
            self.rejected_txns += 1;
        }

        let requests: Vec<RequestSpan> = txn
            .requests
            .iter()
            .map(|r| RequestSpan {
                request: r.id,
                host: r.host,
                arrival_ns: r.arrival_ns,
                batched_ns: txn.closed_ns,
                compiled_ns: txn.compiled_ns,
                deployed_ns,
            })
            .collect();
        for s in &requests {
            self.ttt.record(s.time_to_traffic_ns());
        }
        if committed && !noop {
            // The live trace carries the last transaction's spans.
            self.deployment.trace.requests = requests.clone();
        }

        self.inflight.add(-1);
        if let Some(fb) = &self.feedback {
            let _ = fb.send(self.clock.now_ns());
        }
        out.send(TxnReport {
            txn: txn.txn,
            ops: requests.len(),
            cancelled: txn.cancelled,
            noop,
            committed,
            error,
            opened_ns: txn.opened_ns,
            closed_ns: txn.closed_ns,
            compile_start_ns: txn.compile_start_ns,
            compiled_ns: txn.compiled_ns,
            install_start_ns,
            deployed_ns,
            distinct_compiles,
            reinstalled,
            requests,
            audit,
        })
        .map_err(|_| DeployStageError::Closed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use camus_lang::parser::parse_expr;

    fn f(s: &str) -> Expr {
        parse_expr(s).unwrap()
    }

    #[test]
    fn churn_distance_counts_multiset_edits() {
        let a = vec![vec![f("price > 1"), f("price > 1")], vec![f("shares >= 5")]];
        let same = a.clone();
        assert_eq!(churn_distance(&a, &same), 0);

        // One copy of a duplicate filter removed, one filter added.
        let b = vec![vec![f("price > 1")], vec![f("shares >= 5"), f("price < 50")]];
        assert_eq!(churn_distance(&a, &b), 2);

        // A sub+unsub pair that cancels is distance 0 even though two
        // ops happened.
        let c = vec![vec![f("price > 1"), f("price > 1")], vec![f("shares >= 5")]];
        assert_eq!(churn_distance(&a, &c), 0);
    }
}
