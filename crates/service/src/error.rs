//! Per-service error taxonomy.
//!
//! Each stage of the controller service owns an explicit error enum —
//! intake, route, compile, deploy — with hand-rolled `Display` and
//! `Error` impls (the vendored-deps build has no `thiserror`; the
//! shape follows the same taxonomy style). Soft, per-request failures
//! (an unknown host, an unsubscribe with no matching subscription)
//! are *recorded*, not fatal: the service keeps running and reports
//! them at shutdown. Fatal variants — a hung-up pipe, a compile
//! failure, an audit violation — stop the stage and surface through
//! [`ServiceError`], the roll-up the service owner sees.
//!
//! The batch controller API keeps its own façade:
//! [`camus_net::DeployError`] variants are unchanged, with the typed
//! `TransactionError` taxonomy underneath (see `camus_net::controller`).

use camus_core::compiler::CompileError;
use std::fmt;

/// Intake-stage errors. The first two are soft per-request rejects
/// (recorded, service keeps running); `Closed` is fatal.
#[derive(Debug)]
pub enum IntakeError {
    /// The request named a host outside the deployed topology.
    UnknownHost { request: u64, host: usize, hosts: usize },
    /// An unsubscribe for a filter the host does not hold.
    NoSuchSubscription { request: u64, host: usize },
    /// The compile stage hung up.
    Closed,
}

impl fmt::Display for IntakeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IntakeError::UnknownHost { request, host, hosts } => {
                write!(f, "request {request}: host {host} outside topology ({hosts} hosts)")
            }
            IntakeError::NoSuchSubscription { request, host } => {
                write!(f, "request {request}: host {host} holds no matching subscription")
            }
            IntakeError::Closed => write!(f, "intake: downstream stage hung up"),
        }
    }
}

impl std::error::Error for IntakeError {}

/// Route-stage errors: the planner's input invariants.
#[derive(Debug)]
pub enum RouteError {
    /// A batch's subscription snapshot does not line up with the
    /// deployed topology.
    HostCountMismatch { expected: usize, got: usize },
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteError::HostCountMismatch { expected, got } => {
                write!(f, "batch carries {got} hosts, topology has {expected}")
            }
        }
    }
}

impl std::error::Error for RouteError {}

/// Compile-stage errors. A compile failure is fatal for the service:
/// it means a routed rule list the compiler cannot lower, which no
/// retry will fix.
#[derive(Debug)]
pub enum CompileStageError {
    Compile(CompileError),
    /// The deploy stage hung up.
    Closed,
}

impl fmt::Display for CompileStageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileStageError::Compile(e) => write!(f, "pipeline compile failed: {e}"),
            CompileStageError::Closed => write!(f, "compile: downstream stage hung up"),
        }
    }
}

impl std::error::Error for CompileStageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CompileStageError::Compile(e) => Some(e),
            CompileStageError::Closed => None,
        }
    }
}

impl From<CompileError> for CompileStageError {
    fn from(e: CompileError) -> Self {
        CompileStageError::Compile(e)
    }
}

/// Deploy-stage errors. A *rejected transaction* (admission or
/// channel failure) is soft — it rolls back and is reported per-txn;
/// what is fatal here is a broken invariant: the post-commit audit
/// finding mis-delivery, or the report pipe hanging up.
#[derive(Debug)]
pub enum DeployStageError {
    /// The zero-mis-delivery audit failed after a commit. The network
    /// is in a state the controller believes is wrong; stop the world.
    Audit { txn: u64, misdelivered: usize, duplicated: usize, missed: usize },
    /// The controller died mid-transaction (fault injection): the
    /// install was abandoned with staged state still on the switches.
    /// Fatal by construction — a dead coordinator does nothing else.
    Crashed { txn: u64, epoch: u64 },
    /// The report consumer hung up.
    Closed,
}

impl fmt::Display for DeployStageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeployStageError::Audit { txn, misdelivered, duplicated, missed } => write!(
                f,
                "audit violation after txn {txn}: {misdelivered} misdelivered, \
                 {duplicated} duplicated, {missed} missed"
            ),
            DeployStageError::Crashed { txn, epoch } => {
                write!(f, "controller crashed installing txn {txn} (epoch {epoch})")
            }
            DeployStageError::Closed => write!(f, "deploy: report consumer hung up"),
        }
    }
}

impl std::error::Error for DeployStageError {}

/// The roll-up: any stage's fatal error, tagged by service.
#[derive(Debug)]
pub enum ServiceError {
    Intake(IntakeError),
    Route(RouteError),
    Compile(CompileStageError),
    Deploy(DeployStageError),
    /// A stage thread panicked repeatedly enough to exhaust its
    /// supervisor's restart budget and was taken down.
    Panicked {
        stage: &'static str,
        panics: u32,
    },
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Intake(e) => write!(f, "intake service: {e}"),
            ServiceError::Route(e) => write!(f, "route service: {e}"),
            ServiceError::Compile(e) => write!(f, "compile service: {e}"),
            ServiceError::Deploy(e) => write!(f, "deploy service: {e}"),
            ServiceError::Panicked { stage, panics } => {
                write!(f, "{stage}: stage thread panicked {panics}x, restart budget exhausted")
            }
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Intake(e) => Some(e),
            ServiceError::Route(e) => Some(e),
            ServiceError::Compile(e) => Some(e),
            ServiceError::Deploy(e) => Some(e),
            ServiceError::Panicked { .. } => None,
        }
    }
}

impl From<IntakeError> for ServiceError {
    fn from(e: IntakeError) -> Self {
        ServiceError::Intake(e)
    }
}

impl From<RouteError> for ServiceError {
    fn from(e: RouteError) -> Self {
        ServiceError::Route(e)
    }
}

impl From<CompileStageError> for ServiceError {
    fn from(e: CompileStageError) -> Self {
        ServiceError::Compile(e)
    }
}

impl From<DeployStageError> for ServiceError {
    fn from(e: DeployStageError) -> Self {
        ServiceError::Deploy(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn displays_and_sources_chain() {
        let e = ServiceError::from(IntakeError::UnknownHost { request: 9, host: 200, hosts: 128 });
        assert_eq!(
            e.to_string(),
            "intake service: request 9: host 200 outside topology (128 hosts)"
        );
        assert!(e.source().is_some());

        let e = ServiceError::from(RouteError::HostCountMismatch { expected: 128, got: 16 });
        assert!(e.to_string().contains("128"));

        let e = DeployStageError::Audit { txn: 3, misdelivered: 1, duplicated: 0, missed: 0 };
        assert!(e.to_string().contains("audit violation after txn 3"));
        assert!(ServiceError::from(e).source().is_some());
    }
}
