//! The assembled controller service.
//!
//! [`CamusService::start`] takes ownership of a deployed network and
//! wires the three stages — intake/batcher, route+compile, deploy —
//! into a running pipeline:
//!
//! ```text
//!   subscribe()/unsubscribe()
//!        │ SubRequest
//!        ▼
//!   [intake]  ── ChurnBatch ──▶  [route+compile]  ── Txn ──▶  [deploy]
//!                                      ▲                         │
//!                                      └── done_ns feedback ─────┘
//!                                          (serialized mode only)
//!        ◀─────────────────────── TxnReport ─────────────────────┘
//! ```
//!
//! In the default overlapped mode the feedback edge is absent:
//! transaction N+1 compiles while transaction N installs, which is
//! safe because the PR-1 compile cache affects only cost, never
//! output, and the deploy stage diffs against the *installed* state.
//! With [`ServiceConfig::overlap`] off the service degenerates into
//! the one-op-at-a-time baseline the `service` experiment measures
//! against.
//!
//! Shutdown is a forward wave: a `Stop` marker enters at intake, each
//! stage flushes (intake closes its open window) and passes the
//! marker on, and [`CamusService::shutdown`] joins the threads and
//! collects every stage's accumulated state into a
//! [`ServiceOutcome`] — the live [`Deployment`] included, so a caller
//! can keep publishing into the network after the service winds down.

use crate::core::{pipe, spawn, Ctl, Pipe, StageFailure, StageRx, Supervision};
use crate::durability::{Wal, WalChannel};
use crate::error::ServiceError;
use crate::intake::{BatchPolicy, IntakeService, RequestId, RequestOp, SubRequest};
use crate::stages::{AuditProbe, AuditReport, DeployService, RouteCompileService, TxnReport};
use camus_lang::ast::Expr;
use camus_net::controller::{Controller, Deployment};
use camus_net::{ControlChannel, DeployError, Network, ReconcileStats};
use camus_routing::compile::DeltaCache;
use camus_telemetry::MetricsRegistry;
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;

/// How the service batches, overlaps, audits, persists, and survives.
pub struct ServiceConfig {
    pub batch: BatchPolicy,
    /// Compile transaction N+1 while transaction N installs. Off =
    /// the serialized naive baseline.
    pub overlap: bool,
    /// Let the compile stage merge a backlog of closed batches into
    /// one transaction when it falls behind.
    pub merge_backlog: bool,
    /// Probes the deploy stage republishes after every commit for the
    /// zero-mis-delivery audit (empty = audit off).
    pub probes: Vec<AuditProbe>,
    /// Publish-stamp spacing between probes of one audit round.
    pub probe_gap_ns: u64,
    /// Share a registry with the host process; `None` makes a fresh
    /// one (returned in the outcome).
    pub registry: Option<Arc<MetricsRegistry>>,
    /// Durability: every accepted request is write-ahead logged here,
    /// every install's commit decision is logged at the commit point,
    /// and the deploy stage snapshots on a cadence. `None` = the
    /// volatile controller every PR before this one ran.
    pub wal: Option<Wal>,
    /// Snapshot the committed state every this many committed
    /// transactions (with `wal`; 0 disables cadence snapshots).
    pub snapshot_every: u64,
    /// Restart policy for panicking stage threads.
    pub supervision: Supervision,
    /// Fault injection: transaction ids at which the compile stage
    /// panics (once each).
    pub compile_panic_on: Vec<u64>,
    /// First request id this service instance assigns. A recovered
    /// service continues above the log's watermark so ids stay
    /// monotonic across incarnations.
    pub first_request: RequestId,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            batch: BatchPolicy::adaptive(),
            overlap: true,
            merge_backlog: true,
            probes: Vec::new(),
            probe_gap_ns: 10_000,
            registry: None,
            wal: None,
            snapshot_every: 0,
            supervision: Supervision::default(),
            compile_panic_on: Vec::new(),
            first_request: 0,
        }
    }
}

impl ServiceConfig {
    /// The one-op-at-a-time baseline: singleton batches, no overlap,
    /// no backlog merging.
    pub fn naive() -> Self {
        ServiceConfig {
            batch: BatchPolicy::naive(),
            overlap: false,
            merge_backlog: false,
            ..ServiceConfig::default()
        }
    }
}

/// Run totals, gathered from the stages at shutdown.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServiceStats {
    pub accepted: u64,
    pub batches: u64,
    pub merged_batches: u64,
    pub compiles: u64,
    pub noops: u64,
    pub cancelled_ops: u64,
    /// Live delta-maintained per-switch BDD states at shutdown (one
    /// per distinct rule-list fingerprint in the last compile).
    pub delta_states: usize,
    pub committed_txns: u64,
    pub rejected_txns: u64,
    pub out_of_order: u64,
    /// Supervised stage-thread restarts after panics.
    pub restarts: u64,
    /// Cadence snapshots the deploy stage wrote to the WAL.
    pub snapshots: u64,
    /// Accepted requests that never surfaced in any transaction
    /// report: 0 on every clean shutdown (the loss-free drain
    /// invariant); non-zero only after a crash or a dropped poison
    /// batch, where it *names* the loss instead of hiding it.
    pub unaccounted_ops: u64,
    pub audit: AuditReport,
}

impl ServiceStats {
    /// Accepted ops per network compile — the coalescing win. The
    /// naive baseline sits at 1.0 by construction.
    pub fn coalescing_ratio(&self) -> f64 {
        self.accepted as f64 / self.compiles.max(1) as f64
    }
}

/// Everything the service hands back at shutdown.
pub struct ServiceOutcome {
    /// The live deployment, reflecting the last committed transaction.
    pub deployment: Deployment,
    /// The target subscription state intake had accepted.
    pub subs: Vec<Vec<Expr>>,
    /// Per-transaction reports, in commit order (drained ones
    /// included).
    pub reports: Vec<TxnReport>,
    /// Soft per-request rejects, in arrival order.
    pub rejected_requests: Vec<crate::error::IntakeError>,
    /// Requests the caller submitted that never reached intake (a
    /// dead stage): the send failure is recorded here instead of
    /// being swallowed.
    pub lost_requests: Vec<RequestId>,
    /// Fatal stage errors (empty on a clean run).
    pub errors: Vec<ServiceError>,
    pub stats: ServiceStats,
    pub registry: Arc<MetricsRegistry>,
}

/// What [`CamusService::recover`] did to bring a wrecked network back.
#[derive(Debug, Clone, Copy, Default)]
pub struct RecoveryStats {
    /// Total WAL records scanned.
    pub wal_lines: usize,
    /// Request records replayed from the tail after the last snapshot.
    pub tail_replayed: u64,
    /// What staged-epoch reconciliation did on the switches.
    pub reconcile: ReconcileStats,
    /// Modelled control-plane time of the reconcile + reinstall
    /// transaction.
    pub control_ns: u64,
}

/// A running controller service.
pub struct CamusService {
    intake: Pipe<SubRequest>,
    reports_rx: StageRx<TxnReport>,
    h_intake: JoinHandle<(IntakeService, Result<(), StageFailure<crate::error::IntakeError>>)>,
    h_compile: JoinHandle<(RouteCompileService, Result<(), StageFailure<ServiceError>>)>,
    h_deploy: JoinHandle<(DeployService, Result<(), StageFailure<crate::error::DeployStageError>>)>,
    next_request: RequestId,
    reports: Vec<TxnReport>,
    lost_requests: Vec<RequestId>,
    registry: Arc<MetricsRegistry>,
}

/// Lift a supervised stage's terminal result into the service error
/// roll-up.
fn lift<E: Into<ServiceError>>(
    stage: &'static str,
    r: Result<(), StageFailure<E>>,
) -> Option<ServiceError> {
    match r {
        Ok(()) => None,
        Err(StageFailure::Service(e)) => Some(e.into()),
        Err(StageFailure::Panicked { panics }) => Some(ServiceError::Panicked { stage, panics }),
    }
}

impl CamusService {
    /// Take a deployed network live. `subs` must be the subscription
    /// state `deployment` was deployed with — it seeds both intake's
    /// target state and the compile stage's churn-distance baseline.
    pub fn start(
        ctrl: Controller,
        deployment: Deployment,
        subs: Vec<Vec<Expr>>,
        channel: Box<dyn ControlChannel + Send>,
        cfg: ServiceConfig,
    ) -> CamusService {
        let registry = cfg.registry.unwrap_or_else(|| Arc::new(MetricsRegistry::new()));
        let inflight = registry.gauge("service.txn.inflight");
        let ttt = registry.histogram("service.request.ttt_ns");

        let (intake_tx, intake_rx) = pipe(&registry, "intake");
        let (batch_tx, batch_rx) = pipe(&registry, "compile");
        let (txn_tx, txn_rx) = pipe(&registry, "deploy");
        let (rep_tx, rep_rx) = pipe(&registry, "reports");

        // Serialized mode: the deploy stage reports each install's
        // completion time back, and the compile stage waits for it.
        let (feedback_tx, feedback_rx) = if cfg.overlap {
            (None, None)
        } else {
            let (tx, rx) = mpsc::channel();
            (Some(tx), Some(rx))
        };

        let topology = deployment.network.topology.clone();
        let mask = deployment.network.fault_mask().clone();
        let deployed_compile = deployment.compile.clone();

        // Durability: anchor the log with a snapshot of the state the
        // service starts from (it carries the host count replay needs
        // and bounds any earlier incarnation's records), log every
        // commit decision through the channel wrapper, and every
        // accepted request through intake.
        let channel: Box<dyn ControlChannel + Send> = match &cfg.wal {
            Some(w) => {
                let fps: Vec<(usize, u64)> =
                    deployment.compile.switches.iter().map(|s| (s.switch, s.fingerprint)).collect();
                let watermark = cfg.first_request.checked_sub(1);
                w.append_snapshot(&subs, &fps, deployment.next_epoch, watermark);
                Box::new(WalChannel::new(channel, w.clone()))
            }
            None => channel,
        };

        let mut intake_svc = IntakeService::new(cfg.batch, subs.clone(), inflight.clone());
        if let Some(w) = &cfg.wal {
            intake_svc = intake_svc.with_wal(w.clone());
        }
        let compile_svc = RouteCompileService::new(
            ctrl.clone(),
            topology,
            mask,
            deployed_compile,
            subs,
            feedback_rx,
            cfg.merge_backlog,
            inflight.clone(),
        )
        .with_panic_on(cfg.compile_panic_on);
        let mut deploy_svc = DeployService::new(
            ctrl,
            deployment,
            channel,
            feedback_tx,
            cfg.probes,
            cfg.probe_gap_ns,
            ttt,
            inflight,
        );
        if let Some(w) = &cfg.wal {
            deploy_svc = deploy_svc.with_wal(w.clone(), cfg.snapshot_every);
        }

        let restarts = registry.counter("service.stage.restarts");
        let h_intake = spawn(intake_svc, intake_rx, batch_tx, cfg.supervision, restarts.clone());
        let h_compile = spawn(compile_svc, batch_rx, txn_tx, cfg.supervision, restarts.clone());
        let h_deploy = spawn(deploy_svc, txn_rx, rep_tx, cfg.supervision, restarts);

        CamusService {
            intake: intake_tx,
            reports_rx: rep_rx,
            h_intake,
            h_compile,
            h_deploy,
            next_request: cfg.first_request,
            reports: Vec::new(),
            lost_requests: Vec::new(),
            registry,
        }
    }

    /// Bring a crashed controller back over the wreckage it left.
    ///
    /// `network` is the live network exactly as the crash left it —
    /// staged shadow programs, committed-but-unfinalised epochs and
    /// all (harvest it from [`CamusService::kill`]'s outcome). The log
    /// is replayed to the last complete snapshot plus its tail,
    /// staged epochs on the switches are reconciled against the
    /// logged commit decisions (presumed abort), and a recovery
    /// transaction reinstalls every switch whose live pipeline
    /// disagrees with a fresh compile of the replayed target state.
    /// The returned service runs with the same WAL armed, starting
    /// with a fresh snapshot so the next recovery replays a short log.
    pub fn recover(
        ctrl: Controller,
        network: Network,
        wal: Wal,
        mut channel: Box<dyn ControlChannel + Send>,
        mut cfg: ServiceConfig,
    ) -> Result<(CamusService, RecoveryStats), DeployError> {
        let st = wal.replay();
        let mut cache = DeltaCache::new();
        let (deployment, reconcile) = ctrl.recover_deployment(
            network,
            &st.subs,
            &st.committed_epochs,
            st.next_epoch,
            Some(&mut cache),
            &mut *channel,
        )?;
        let stats = RecoveryStats {
            wal_lines: st.lines,
            tail_replayed: st.replayed_requests,
            reconcile,
            control_ns: deployment.report.total_control_ns(),
        };
        cfg.wal = Some(wal);
        cfg.first_request = st.last_request.map_or(0, |x| x + 1);
        Ok((CamusService::start(ctrl, deployment, st.subs, channel, cfg), stats))
    }

    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// Submit a request with its modelled arrival time. A send that
    /// fails (intake died) is *recorded* — the id lands in
    /// [`ServiceOutcome::lost_requests`] — never silently swallowed.
    pub fn request(&mut self, host: usize, op: RequestOp, arrival_ns: u64) -> RequestId {
        let id = self.next_request;
        self.next_request += 1;
        if self.intake.send(SubRequest { id, host, op, arrival_ns }).is_err() {
            self.lost_requests.push(id);
        }
        id
    }

    pub fn subscribe(&mut self, host: usize, filter: Expr, arrival_ns: u64) -> RequestId {
        self.request(host, RequestOp::Subscribe(filter), arrival_ns)
    }

    pub fn unsubscribe(&mut self, host: usize, filter: Expr, arrival_ns: u64) -> RequestId {
        self.request(host, RequestOp::Unsubscribe(filter), arrival_ns)
    }

    /// Flush everything in flight — intake's open window included —
    /// and wait until it has all landed. Returns the transaction
    /// reports that landed during the drain.
    pub fn drain(&mut self) -> &[TxnReport] {
        let start = self.reports.len();
        if self.intake.ctl(Ctl::Drain).is_err() {
            return &self.reports[start..];
        }
        while let Some(c) = self.reports_rx.recv() {
            match c {
                Ctl::Msg(r) => self.reports.push(r),
                Ctl::Drain => break,
                // A stage died mid-drain; its error waits at join.
                Ctl::Stop | Ctl::Crash => break,
            }
        }
        &self.reports[start..]
    }

    /// Stop the pipeline: flush, wait for the shutdown wave to cross
    /// all three stages, join them, and collect the pieces. Loss-free
    /// by construction: every stage flushes before forwarding the
    /// marker, so every request accepted before the stop is compiled,
    /// deployed, and reported (`stats.unaccounted_ops == 0` on a
    /// clean run — the regression the audit checks).
    pub fn shutdown(mut self) -> ServiceOutcome {
        let _ = self.intake.ctl(Ctl::Stop);
        while let Some(c) = self.reports_rx.recv() {
            match c {
                Ctl::Msg(r) => self.reports.push(r),
                Ctl::Stop | Ctl::Crash => break,
                Ctl::Drain => {}
            }
        }
        self.collect()
    }

    /// Fault injection: "kill" the controller process. The crash
    /// marker sweeps the pipeline without flushing — intake's open
    /// window and queued transactions are lost exactly the way a real
    /// crash loses them — and the threads terminate where they stand.
    /// The outcome's [`Deployment`] is the *wreckage*: the network as
    /// the crash left it (staged shadow programs included), ready for
    /// [`CamusService::recover`].
    pub fn kill(mut self) -> ServiceOutcome {
        let _ = self.intake.ctl(Ctl::Crash);
        while let Some(c) = self.reports_rx.recv() {
            match c {
                Ctl::Msg(r) => self.reports.push(r),
                Ctl::Stop | Ctl::Crash => break,
                Ctl::Drain => {}
            }
        }
        self.collect()
    }

    fn collect(self) -> ServiceOutcome {
        let (intake, r_intake) = self.h_intake.join().expect("intake stage harness panicked");
        let (compile, r_compile) = self.h_compile.join().expect("compile stage harness panicked");
        let (deploy, r_deploy) = self.h_deploy.join().expect("deploy stage harness panicked");

        let mut errors = Vec::new();
        errors.extend(lift("camus-intake", r_intake));
        errors.extend(lift("camus-route-compile", r_compile));
        errors.extend(lift("camus-deploy", r_deploy));

        let reported_ops: u64 = self.reports.iter().map(|r| r.ops as u64).sum();
        let stats = ServiceStats {
            accepted: intake.accepted,
            batches: intake.batches,
            merged_batches: compile.merged_batches,
            compiles: compile.compiles,
            noops: compile.noops,
            cancelled_ops: compile.cancelled_ops,
            delta_states: compile.delta_states(),
            committed_txns: deploy.committed_txns,
            rejected_txns: deploy.rejected_txns,
            out_of_order: intake.out_of_order,
            restarts: self.registry.counter("service.stage.restarts").get(),
            snapshots: deploy.snapshots_written,
            unaccounted_ops: intake.accepted.saturating_sub(reported_ops),
            audit: deploy.audit_totals,
        };

        let mut intake = intake;
        let rejected_requests = std::mem::take(&mut intake.rejected);
        ServiceOutcome {
            deployment: deploy.deployment,
            subs: intake.into_subs(),
            reports: self.reports,
            rejected_requests,
            lost_requests: self.lost_requests,
            errors,
            stats,
            registry: self.registry,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use camus_core::statics::compile_static;
    use camus_dataplane::PacketBuilder;
    use camus_lang::parser::parse_expr;
    use camus_lang::spec::itch_spec;
    use camus_lang::value::Value;
    use camus_net::PerfectChannel;
    use camus_routing::algorithm1::{Policy, RoutingConfig};
    use camus_routing::topology::paper_fat_tree;

    fn controller() -> Controller {
        let statics = compile_static(&itch_spec()).unwrap();
        Controller::new(statics, RoutingConfig::new(Policy::TrafficReduction))
    }

    fn f(s: &str) -> Expr {
        parse_expr(s).unwrap()
    }

    fn start(cfg: ServiceConfig) -> (CamusService, usize) {
        let net = paper_fat_tree();
        let hosts = net.host_count();
        let subs = vec![Vec::new(); hosts];
        let ctrl = controller();
        let d = ctrl.deploy(net, &subs).unwrap();
        (CamusService::start(ctrl, d, subs, Box::new(PerfectChannel), cfg), hosts)
    }

    fn probe(price: i64) -> AuditProbe {
        let spec = itch_spec();
        let values = vec![
            ("stock".to_string(), Value::from("GOOGL")),
            ("price".to_string(), Value::Int(price)),
        ];
        let packet = PacketBuilder::new(&spec)
            .message(vec![("stock", Value::from("GOOGL")), ("price", Value::Int(price))])
            .build();
        AuditProbe { publisher: 0, packet, values }
    }

    #[test]
    fn live_service_matches_a_fresh_deploy() {
        let (mut svc, hosts) = start(ServiceConfig::default());
        svc.subscribe(15, f("stock == GOOGL"), 1_000);
        svc.subscribe(7, f("price > 50"), 1_200);
        svc.unsubscribe(7, f("price > 50"), 1_400);
        svc.subscribe(3, f("price > 10"), 9_000_000);
        let out = svc.shutdown();
        assert!(out.errors.is_empty(), "{:?}", out.errors);
        assert!(out.rejected_requests.is_empty());
        assert_eq!(out.stats.accepted, 4);

        // The live deployment must equal a cold deploy of the same
        // target state, pipeline for pipeline.
        let mut expect = vec![Vec::new(); hosts];
        expect[15].push(f("stock == GOOGL"));
        expect[3].push(f("price > 10"));
        assert_eq!(out.subs, expect);
        let fresh = controller().deploy(paper_fat_tree(), &expect).unwrap();
        let fp = |c: &camus_routing::compile::NetworkCompile| {
            c.switches.iter().map(|s| (s.switch, s.fingerprint, s.entries)).collect::<Vec<_>>()
        };
        assert_eq!(
            fp(&out.deployment.compile),
            fp(&fresh.compile),
            "live state must converge to the cold-deploy compile"
        );

        // And deliver: host 15 subscribed to GOOGL.
        let mut d = out.deployment;
        let spec = itch_spec();
        let pkt = PacketBuilder::new(&spec)
            .message(vec![("stock", Value::from("GOOGL")), ("price", Value::Int(5))])
            .build();
        let t = d.network.now_ns() + 1;
        d.network.publish(0, pkt, t);
        d.network.run(None);
        assert!(d.network.deliveries(15).iter().any(|dl| dl.published_ns == t));
    }

    #[test]
    fn delta_compiled_service_matches_fresh_deploy_under_random_churn() {
        // Drive the live service through several windows of random
        // subscribe/unsubscribe churn. The compile stage maintains
        // per-switch BDDs incrementally through its delta cache; the
        // final deployment must still be pipeline-identical (same
        // fingerprints, same table sizes) to a cold deploy of the
        // target state — the delta path may only change cost.
        let (mut svc, hosts) = start(ServiceConfig::default());
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let filters =
            ["price > 10", "price > 50", "stock == GOOGL", "stock == MSFT", "shares >= 5"];
        let mut target: Vec<Vec<Expr>> = vec![Vec::new(); hosts];
        let mut t = 1_000u64;
        for _ in 0..4 {
            for _ in 0..12 {
                let h = (rng() % hosts as u64) as usize;
                let filt = f(filters[(rng() % filters.len() as u64) as usize]);
                let held = target[h].iter().position(|e| *e == filt);
                match held {
                    Some(pos) if rng() % 2 == 0 => {
                        target[h].remove(pos);
                        svc.unsubscribe(h, filt, t);
                    }
                    _ => {
                        target[h].push(filt.clone());
                        svc.subscribe(h, filt, t);
                    }
                }
                t += 500;
            }
            // Close the window so each round is its own transaction
            // (or several) and the delta cache is exercised per round.
            svc.drain();
            t += 10_000_000;
        }
        let out = svc.shutdown();
        assert!(out.errors.is_empty(), "{:?}", out.errors);
        assert!(out.rejected_requests.is_empty(), "{:?}", out.rejected_requests);
        assert_eq!(out.subs, target);
        assert!(out.stats.compiles > 1, "churn this size must compile repeatedly");
        assert!(out.stats.delta_states > 0, "live BDD states must survive shutdown");

        let fresh = controller().deploy(paper_fat_tree(), &target).unwrap();
        for (got, want) in out.deployment.compile.switches.iter().zip(fresh.compile.switches.iter())
        {
            assert_eq!(got.fingerprint, want.fingerprint, "switch {}", got.switch);
            assert_eq!(
                got.compiled.report.total_entries, want.compiled.report.total_entries,
                "switch {}: delta-maintained tables must match a cold deploy",
                got.switch
            );
        }
    }

    #[test]
    fn cancelling_churn_compiles_nothing() {
        let (mut svc, _) = start(ServiceConfig::default());
        // Sub + unsub inside one window: net-zero batch.
        svc.subscribe(4, f("price > 10"), 1_000);
        svc.unsubscribe(4, f("price > 10"), 1_100);
        let landed = svc.drain();
        assert_eq!(landed.len(), 1);
        assert!(landed[0].noop);
        assert_eq!(landed[0].cancelled, 2);
        let out = svc.shutdown();
        assert!(out.errors.is_empty(), "{:?}", out.errors);
        assert_eq!(out.stats.compiles, 0, "cancelled churn must cost zero compiles");
        assert_eq!(out.stats.noops, 1);
        assert_eq!(out.stats.cancelled_ops, 2);
    }

    #[test]
    fn audit_rides_every_commit_and_stays_clean() {
        // merge_backlog off: queued batches must not merge, so each
        // commit's audit round is individually checkable.
        let cfg = ServiceConfig {
            probes: vec![probe(75), probe(5)],
            merge_backlog: false,
            ..ServiceConfig::default()
        };
        let (mut svc, _) = start(cfg);
        svc.subscribe(9, f("price > 50"), 1_000);
        svc.subscribe(2, f("stock == GOOGL"), 5_000_000);
        let out = svc.shutdown();
        assert!(out.errors.is_empty(), "{:?}", out.errors);
        assert_eq!(out.stats.committed_txns, 2);
        let a = out.stats.audit;
        assert!(a.probes > 0 && a.expected > 0);
        assert!(a.clean(), "audit must be clean: {a:?}");
        // price>75 probe matches host 9 both rounds; GOOGL probe
        // matches 9 (price 75 > 50) and later 2 as well.
        assert_eq!(a.delivered, a.expected);
    }

    #[test]
    fn naive_mode_is_one_transaction_per_op() {
        let (mut svc, _) = start(ServiceConfig::naive());
        for i in 0..5u64 {
            svc.subscribe((i % 3) as usize, f("price > 10"), 1_000 * i);
        }
        let out = svc.shutdown();
        assert!(out.errors.is_empty(), "{:?}", out.errors);
        assert_eq!(out.stats.batches, 5);
        assert_eq!(out.stats.compiles, 5);
        assert_eq!(out.stats.merged_batches, 0, "naive mode must not coalesce");
        assert!((out.stats.coalescing_ratio() - 1.0).abs() < 1e-9);
        // Installs are serialized: each starts after the previous
        // one's modelled completion.
        for w in out.reports.windows(2) {
            assert!(w[1].install_start_ns >= w[0].deployed_ns);
        }
    }

    /// A control channel whose controller process "dies" after a fixed
    /// number of ops — the service-level twin of the faults crate's
    /// armed crash, without the cross-crate dependency.
    struct DyingChannel {
        ops_left: u64,
    }

    impl ControlChannel for DyingChannel {
        fn attempt(
            &mut self,
            _switch: usize,
            _op: camus_net::ControlOp,
            _attempt: u32,
        ) -> camus_net::ChannelOutcome {
            if self.ops_left == 0 {
                return camus_net::ChannelOutcome::ControllerCrashed;
            }
            self.ops_left -= 1;
            camus_net::ChannelOutcome::Delivered
        }
    }

    fn fingerprints(c: &camus_routing::compile::NetworkCompile) -> Vec<(usize, u64)> {
        c.switches.iter().map(|s| (s.switch, s.fingerprint)).collect()
    }

    #[test]
    fn shutdown_drains_open_window_loss_free() {
        // Regression (loss-free drain): requests sitting in intake's
        // *open* window when shutdown arrives must still be compiled,
        // deployed, and reported — never silently dropped.
        let (mut svc, hosts) = start(ServiceConfig::default());
        svc.subscribe(15, f("stock == GOOGL"), 1_000);
        svc.subscribe(7, f("price > 50"), 1_100);
        // No drain: the window is still open when Stop enters.
        let out = svc.shutdown();
        assert!(out.errors.is_empty(), "{:?}", out.errors);
        assert!(out.lost_requests.is_empty());
        assert_eq!(out.stats.accepted, 2);
        let reported: u64 = out.reports.iter().map(|r| r.ops as u64).sum();
        assert_eq!(reported, 2, "every accepted op must surface in a report");
        assert_eq!(out.stats.unaccounted_ops, 0, "clean shutdown may not lose work");
        let mut expect = vec![Vec::new(); hosts];
        expect[15].push(f("stock == GOOGL"));
        expect[7].push(f("price > 50"));
        assert_eq!(out.subs, expect);
        let fresh = controller().deploy(paper_fat_tree(), &expect).unwrap();
        assert_eq!(fingerprints(&out.deployment.compile), fingerprints(&fresh.compile));
    }

    #[test]
    fn kill_then_recover_converges_to_fresh_deploy() {
        // The whole durability story in one arc: WAL on, some churn
        // committed, more churn still in flight when the process is
        // killed; a recovered service replays the log, reinstalls, and
        // ends up indistinguishable from a never-crashed controller.
        let wal = Wal::in_memory();
        let cfg =
            ServiceConfig { wal: Some(wal.clone()), snapshot_every: 1, ..ServiceConfig::default() };
        let (mut svc, hosts) = start(cfg);
        svc.subscribe(15, f("stock == GOOGL"), 1_000);
        svc.subscribe(7, f("price > 50"), 1_200);
        svc.drain();
        // These land in intake (and the WAL) but die in the pipeline.
        svc.subscribe(3, f("price > 10"), 9_000_000);
        svc.subscribe(9, f("stock == MSFT"), 9_000_100);
        let wreck = svc.kill();
        assert!(wreck.errors.is_empty(), "{:?}", wreck.errors);
        assert_eq!(wreck.stats.accepted, 4);
        assert_eq!(wreck.stats.snapshots, 1, "the committed txn snapshotted on cadence");
        assert_eq!(
            wreck.stats.unaccounted_ops, 2,
            "the crash names the two ops it dropped instead of hiding them"
        );

        let (mut svc2, rstats) = CamusService::recover(
            controller(),
            wreck.deployment.network,
            wal.clone(),
            Box::new(PerfectChannel),
            ServiceConfig::default(),
        )
        .expect("recovery must commit");
        assert!(rstats.wal_lines > 0);
        assert_eq!(rstats.tail_replayed, 2, "the two post-snapshot requests replay from the tail");
        assert!(rstats.control_ns > 0, "reinstalling the lost churn costs control time");

        // The recovered incarnation keeps living — and keeps ids
        // monotonic above the log's watermark.
        let id = svc2.subscribe(2, f("shares >= 5"), 20_000_000);
        assert!(id >= 4, "recovered ids must not collide with logged ones (got {id})");
        let out = svc2.shutdown();
        assert!(out.errors.is_empty(), "{:?}", out.errors);
        assert_eq!(out.stats.unaccounted_ops, 0);

        let mut expect = vec![Vec::new(); hosts];
        expect[15].push(f("stock == GOOGL"));
        expect[7].push(f("price > 50"));
        expect[3].push(f("price > 10"));
        expect[9].push(f("stock == MSFT"));
        expect[2].push(f("shares >= 5"));
        assert_eq!(out.subs, expect, "WAL replay must restore every accepted request");
        let fresh = controller().deploy(paper_fat_tree(), &expect).unwrap();
        assert_eq!(fingerprints(&out.deployment.compile), fingerprints(&fresh.compile));
        for (got, want) in out.deployment.network.switches.iter().zip(fresh.network.switches.iter())
        {
            assert_eq!(got.pipeline(), want.pipeline(), "installed pipelines must converge");
        }

        // Double replay is idempotent: recovery did not duplicate
        // anything the snapshot already carried.
        let once = wal.replay();
        let twice = wal.replay();
        assert_eq!(once.subs, twice.subs);
    }

    #[test]
    fn mid_install_crash_leaves_wreckage_that_recovery_reconciles() {
        // Kill the controller *inside* the two-phase install: the
        // channel dies after 2 ops, stranding staged shadow programs
        // with no commit decision. Recovery must abort them (presumed
        // abort) and reinstall the replayed target state.
        let net = paper_fat_tree();
        let hosts = net.host_count();
        let subs = vec![Vec::new(); hosts];
        let ctrl = controller();
        let d = ctrl.deploy(net, &subs).unwrap();
        let wal = Wal::in_memory();
        let cfg = ServiceConfig { wal: Some(wal.clone()), ..ServiceConfig::default() };
        let mut svc =
            CamusService::start(controller(), d, subs, Box::new(DyingChannel { ops_left: 2 }), cfg);
        svc.subscribe(15, f("stock == GOOGL"), 1_000);
        let out = svc.shutdown();
        assert!(
            out.errors.iter().any(|e| matches!(
                e,
                ServiceError::Deploy(crate::error::DeployStageError::Crashed { .. })
            )),
            "the deploy stage must surface the crash: {:?}",
            out.errors
        );
        let wrecked: usize = out
            .deployment
            .network
            .switches
            .iter()
            .filter(|s| s.staged_epoch().is_some() || s.unfinalized_epoch().is_some())
            .count();
        assert!(wrecked > 0, "a mid-install crash must strand in-doubt programs");

        let (svc2, rstats) = CamusService::recover(
            controller(),
            out.deployment.network,
            wal,
            Box::new(PerfectChannel),
            ServiceConfig::default(),
        )
        .expect("recovery must commit");
        let rec = rstats.reconcile;
        assert_eq!(
            rec.aborted + rec.rolled_forward + rec.finalized + rec.reverted,
            wrecked,
            "every in-doubt switch is deterministically resolved: {rec:?}"
        );
        let out2 = svc2.shutdown();
        assert!(out2.errors.is_empty(), "{:?}", out2.errors);
        let mut expect = vec![Vec::new(); hosts];
        expect[15].push(f("stock == GOOGL"));
        assert_eq!(out2.subs, expect, "the crashed request was WAL-logged, so it survives");
        let fresh = controller().deploy(paper_fat_tree(), &expect).unwrap();
        assert_eq!(fingerprints(&out2.deployment.compile), fingerprints(&fresh.compile));
        assert!(
            out2.deployment
                .network
                .switches
                .iter()
                .all(|s| s.staged_epoch().is_none() && s.unfinalized_epoch().is_none()),
            "no staged wreckage may survive recovery"
        );
    }

    #[test]
    fn compile_panic_is_supervised_and_later_batches_land() {
        // Satellite: a panicking stage thread must not hang the pipe.
        // The poison batch is dropped, the supervisor restarts the
        // loop, and because batches carry full state snapshots the
        // next one self-heals the lost work.
        let cfg = ServiceConfig { compile_panic_on: vec![0], ..ServiceConfig::default() };
        let (mut svc, hosts) = start(cfg);
        svc.subscribe(15, f("stock == GOOGL"), 1_000);
        svc.drain(); // txn 0: compile panics, batch dropped
        svc.subscribe(7, f("price > 50"), 9_000_000);
        let out = svc.shutdown();
        assert!(out.errors.is_empty(), "one panic is within budget: {:?}", out.errors);
        assert_eq!(out.stats.restarts, 1, "the panic must be counted");
        assert_eq!(out.stats.unaccounted_ops, 1, "the poisoned batch's op is named, not hidden");
        // The second batch's snapshot carries host 15's filter too.
        let mut expect = vec![Vec::new(); hosts];
        expect[15].push(f("stock == GOOGL"));
        expect[7].push(f("price > 50"));
        assert_eq!(out.subs, expect);
        let fresh = controller().deploy(paper_fat_tree(), &expect).unwrap();
        assert_eq!(
            fingerprints(&out.deployment.compile),
            fingerprints(&fresh.compile),
            "the full-snapshot batch self-heals the dropped one"
        );
    }

    #[test]
    fn panic_budget_exhaustion_kills_the_stage_but_not_the_collector() {
        // Every batch panics: the supervisor gives up after the budget
        // and the outcome names the dead stage instead of hanging.
        let cfg = ServiceConfig {
            compile_panic_on: (0..16).collect(),
            batch: BatchPolicy::naive(),
            merge_backlog: false,
            supervision: Supervision {
                max_restarts: 2,
                backoff: std::time::Duration::from_micros(10),
            },
            ..ServiceConfig::default()
        };
        let (mut svc, _) = start(cfg);
        svc.subscribe(1, f("price > 10"), 1_000);
        svc.subscribe(2, f("price > 10"), 2_000_000);
        svc.subscribe(3, f("price > 10"), 4_000_000);
        let out = svc.shutdown();
        assert!(
            out.errors.iter().any(|e| matches!(
                e,
                ServiceError::Panicked { stage: "camus-route-compile", panics: 2 }
            )),
            "{:?}",
            out.errors
        );
        assert_eq!(out.stats.restarts, 2);
        assert_eq!(out.stats.committed_txns, 0);
    }

    #[test]
    fn request_spans_land_in_trace_and_histogram() {
        let (mut svc, _) = start(ServiceConfig::default());
        svc.subscribe(1, f("price > 10"), 2_000);
        let out = svc.shutdown();
        assert!(out.errors.is_empty(), "{:?}", out.errors);
        let spans = &out.deployment.trace.requests;
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].arrival_ns, 2_000);
        assert!(spans[0].deployed_ns >= spans[0].compiled_ns);
        assert!(spans[0].time_to_traffic_ns() > 0);
        let h = out.registry.histogram("service.request.ttt_ns");
        assert_eq!(h.count(), 1);
        assert_eq!(out.registry.gauge("service.txn.inflight").get(), 0);
    }
}
