//! The assembled controller service.
//!
//! [`CamusService::start`] takes ownership of a deployed network and
//! wires the three stages — intake/batcher, route+compile, deploy —
//! into a running pipeline:
//!
//! ```text
//!   subscribe()/unsubscribe()
//!        │ SubRequest
//!        ▼
//!   [intake]  ── ChurnBatch ──▶  [route+compile]  ── Txn ──▶  [deploy]
//!                                      ▲                         │
//!                                      └── done_ns feedback ─────┘
//!                                          (serialized mode only)
//!        ◀─────────────────────── TxnReport ─────────────────────┘
//! ```
//!
//! In the default overlapped mode the feedback edge is absent:
//! transaction N+1 compiles while transaction N installs, which is
//! safe because the PR-1 compile cache affects only cost, never
//! output, and the deploy stage diffs against the *installed* state.
//! With [`ServiceConfig::overlap`] off the service degenerates into
//! the one-op-at-a-time baseline the `service` experiment measures
//! against.
//!
//! Shutdown is a forward wave: a `Stop` marker enters at intake, each
//! stage flushes (intake closes its open window) and passes the
//! marker on, and [`CamusService::shutdown`] joins the threads and
//! collects every stage's accumulated state into a
//! [`ServiceOutcome`] — the live [`Deployment`] included, so a caller
//! can keep publishing into the network after the service winds down.

use crate::core::{pipe, spawn, Ctl, Pipe, StageRx};
use crate::error::ServiceError;
use crate::intake::{BatchPolicy, IntakeService, RequestId, RequestOp, SubRequest};
use crate::stages::{AuditProbe, AuditReport, DeployService, RouteCompileService, TxnReport};
use camus_lang::ast::Expr;
use camus_net::controller::{Controller, Deployment};
use camus_net::ControlChannel;
use camus_telemetry::MetricsRegistry;
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;

/// How the service batches, overlaps, and audits.
pub struct ServiceConfig {
    pub batch: BatchPolicy,
    /// Compile transaction N+1 while transaction N installs. Off =
    /// the serialized naive baseline.
    pub overlap: bool,
    /// Let the compile stage merge a backlog of closed batches into
    /// one transaction when it falls behind.
    pub merge_backlog: bool,
    /// Probes the deploy stage republishes after every commit for the
    /// zero-mis-delivery audit (empty = audit off).
    pub probes: Vec<AuditProbe>,
    /// Publish-stamp spacing between probes of one audit round.
    pub probe_gap_ns: u64,
    /// Share a registry with the host process; `None` makes a fresh
    /// one (returned in the outcome).
    pub registry: Option<Arc<MetricsRegistry>>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            batch: BatchPolicy::adaptive(),
            overlap: true,
            merge_backlog: true,
            probes: Vec::new(),
            probe_gap_ns: 10_000,
            registry: None,
        }
    }
}

impl ServiceConfig {
    /// The one-op-at-a-time baseline: singleton batches, no overlap,
    /// no backlog merging.
    pub fn naive() -> Self {
        ServiceConfig {
            batch: BatchPolicy::naive(),
            overlap: false,
            merge_backlog: false,
            ..ServiceConfig::default()
        }
    }
}

/// Run totals, gathered from the stages at shutdown.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServiceStats {
    pub accepted: u64,
    pub batches: u64,
    pub merged_batches: u64,
    pub compiles: u64,
    pub noops: u64,
    pub cancelled_ops: u64,
    /// Live delta-maintained per-switch BDD states at shutdown (one
    /// per distinct rule-list fingerprint in the last compile).
    pub delta_states: usize,
    pub committed_txns: u64,
    pub rejected_txns: u64,
    pub out_of_order: u64,
    pub audit: AuditReport,
}

impl ServiceStats {
    /// Accepted ops per network compile — the coalescing win. The
    /// naive baseline sits at 1.0 by construction.
    pub fn coalescing_ratio(&self) -> f64 {
        self.accepted as f64 / self.compiles.max(1) as f64
    }
}

/// Everything the service hands back at shutdown.
pub struct ServiceOutcome {
    /// The live deployment, reflecting the last committed transaction.
    pub deployment: Deployment,
    /// The target subscription state intake had accepted.
    pub subs: Vec<Vec<Expr>>,
    /// Per-transaction reports, in commit order (drained ones
    /// included).
    pub reports: Vec<TxnReport>,
    /// Soft per-request rejects, in arrival order.
    pub rejected_requests: Vec<crate::error::IntakeError>,
    /// Fatal stage errors (empty on a clean run).
    pub errors: Vec<ServiceError>,
    pub stats: ServiceStats,
    pub registry: Arc<MetricsRegistry>,
}

/// A running controller service.
pub struct CamusService {
    intake: Pipe<SubRequest>,
    reports_rx: StageRx<TxnReport>,
    h_intake: JoinHandle<(IntakeService, Result<(), crate::error::IntakeError>)>,
    h_compile: JoinHandle<(RouteCompileService, Result<(), ServiceError>)>,
    h_deploy: JoinHandle<(DeployService, Result<(), crate::error::DeployStageError>)>,
    next_request: RequestId,
    reports: Vec<TxnReport>,
    registry: Arc<MetricsRegistry>,
}

impl CamusService {
    /// Take a deployed network live. `subs` must be the subscription
    /// state `deployment` was deployed with — it seeds both intake's
    /// target state and the compile stage's churn-distance baseline.
    pub fn start(
        ctrl: Controller,
        deployment: Deployment,
        subs: Vec<Vec<Expr>>,
        channel: Box<dyn ControlChannel + Send>,
        cfg: ServiceConfig,
    ) -> CamusService {
        let registry = cfg.registry.unwrap_or_else(|| Arc::new(MetricsRegistry::new()));
        let inflight = registry.gauge("service.txn.inflight");
        let ttt = registry.histogram("service.request.ttt_ns");

        let (intake_tx, intake_rx) = pipe(&registry, "intake");
        let (batch_tx, batch_rx) = pipe(&registry, "compile");
        let (txn_tx, txn_rx) = pipe(&registry, "deploy");
        let (rep_tx, rep_rx) = pipe(&registry, "reports");

        // Serialized mode: the deploy stage reports each install's
        // completion time back, and the compile stage waits for it.
        let (feedback_tx, feedback_rx) = if cfg.overlap {
            (None, None)
        } else {
            let (tx, rx) = mpsc::channel();
            (Some(tx), Some(rx))
        };

        let topology = deployment.network.topology.clone();
        let mask = deployment.network.fault_mask().clone();
        let deployed_compile = deployment.compile.clone();

        let intake_svc = IntakeService::new(cfg.batch, subs.clone(), inflight.clone());
        let compile_svc = RouteCompileService::new(
            ctrl.clone(),
            topology,
            mask,
            deployed_compile,
            subs,
            feedback_rx,
            cfg.merge_backlog,
            inflight.clone(),
        );
        let deploy_svc = DeployService::new(
            ctrl,
            deployment,
            channel,
            feedback_tx,
            cfg.probes,
            cfg.probe_gap_ns,
            ttt,
            inflight,
        );

        let h_intake = spawn(intake_svc, intake_rx, batch_tx);
        let h_compile = spawn(compile_svc, batch_rx, txn_tx);
        let h_deploy = spawn(deploy_svc, txn_rx, rep_tx);

        CamusService {
            intake: intake_tx,
            reports_rx: rep_rx,
            h_intake,
            h_compile,
            h_deploy,
            next_request: 0,
            reports: Vec::new(),
            registry,
        }
    }

    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// Submit a request with its modelled arrival time. Send failures
    /// are deliberately silent here — a dead stage surfaces its error
    /// at shutdown, which is where the caller can actually act on it.
    pub fn request(&mut self, host: usize, op: RequestOp, arrival_ns: u64) -> RequestId {
        let id = self.next_request;
        self.next_request += 1;
        let _ = self.intake.send(SubRequest { id, host, op, arrival_ns });
        id
    }

    pub fn subscribe(&mut self, host: usize, filter: Expr, arrival_ns: u64) -> RequestId {
        self.request(host, RequestOp::Subscribe(filter), arrival_ns)
    }

    pub fn unsubscribe(&mut self, host: usize, filter: Expr, arrival_ns: u64) -> RequestId {
        self.request(host, RequestOp::Unsubscribe(filter), arrival_ns)
    }

    /// Flush everything in flight — intake's open window included —
    /// and wait until it has all landed. Returns the transaction
    /// reports that landed during the drain.
    pub fn drain(&mut self) -> &[TxnReport] {
        let start = self.reports.len();
        if self.intake.ctl(Ctl::Drain).is_err() {
            return &self.reports[start..];
        }
        while let Some(c) = self.reports_rx.recv() {
            match c {
                Ctl::Msg(r) => self.reports.push(r),
                Ctl::Drain => break,
                // A stage died mid-drain; its error waits at join.
                Ctl::Stop => break,
            }
        }
        &self.reports[start..]
    }

    /// Stop the pipeline: flush, wait for the shutdown wave to cross
    /// all three stages, join them, and collect the pieces.
    pub fn shutdown(mut self) -> ServiceOutcome {
        let _ = self.intake.ctl(Ctl::Stop);
        while let Some(c) = self.reports_rx.recv() {
            match c {
                Ctl::Msg(r) => self.reports.push(r),
                Ctl::Stop => break,
                Ctl::Drain => {}
            }
        }
        let (intake, r_intake) = self.h_intake.join().expect("intake stage panicked");
        let (compile, r_compile) = self.h_compile.join().expect("compile stage panicked");
        let (deploy, r_deploy) = self.h_deploy.join().expect("deploy stage panicked");

        let mut errors = Vec::new();
        if let Err(e) = r_intake {
            errors.push(ServiceError::from(e));
        }
        if let Err(e) = r_compile {
            errors.push(e);
        }
        if let Err(e) = r_deploy {
            errors.push(ServiceError::from(e));
        }

        let stats = ServiceStats {
            accepted: intake.accepted,
            batches: intake.batches,
            merged_batches: compile.merged_batches,
            compiles: compile.compiles,
            noops: compile.noops,
            cancelled_ops: compile.cancelled_ops,
            delta_states: compile.delta_states(),
            committed_txns: deploy.committed_txns,
            rejected_txns: deploy.rejected_txns,
            out_of_order: intake.out_of_order,
            audit: deploy.audit_totals,
        };

        let mut intake = intake;
        let rejected_requests = std::mem::take(&mut intake.rejected);
        ServiceOutcome {
            deployment: deploy.deployment,
            subs: intake.into_subs(),
            reports: self.reports,
            rejected_requests,
            errors,
            stats,
            registry: self.registry,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use camus_core::statics::compile_static;
    use camus_dataplane::PacketBuilder;
    use camus_lang::parser::parse_expr;
    use camus_lang::spec::itch_spec;
    use camus_lang::value::Value;
    use camus_net::PerfectChannel;
    use camus_routing::algorithm1::{Policy, RoutingConfig};
    use camus_routing::topology::paper_fat_tree;

    fn controller() -> Controller {
        let statics = compile_static(&itch_spec()).unwrap();
        Controller::new(statics, RoutingConfig::new(Policy::TrafficReduction))
    }

    fn f(s: &str) -> Expr {
        parse_expr(s).unwrap()
    }

    fn start(cfg: ServiceConfig) -> (CamusService, usize) {
        let net = paper_fat_tree();
        let hosts = net.host_count();
        let subs = vec![Vec::new(); hosts];
        let ctrl = controller();
        let d = ctrl.deploy(net, &subs).unwrap();
        (CamusService::start(ctrl, d, subs, Box::new(PerfectChannel), cfg), hosts)
    }

    fn probe(price: i64) -> AuditProbe {
        let spec = itch_spec();
        let values = vec![
            ("stock".to_string(), Value::from("GOOGL")),
            ("price".to_string(), Value::Int(price)),
        ];
        let packet = PacketBuilder::new(&spec)
            .message(vec![("stock", Value::from("GOOGL")), ("price", Value::Int(price))])
            .build();
        AuditProbe { publisher: 0, packet, values }
    }

    #[test]
    fn live_service_matches_a_fresh_deploy() {
        let (mut svc, hosts) = start(ServiceConfig::default());
        svc.subscribe(15, f("stock == GOOGL"), 1_000);
        svc.subscribe(7, f("price > 50"), 1_200);
        svc.unsubscribe(7, f("price > 50"), 1_400);
        svc.subscribe(3, f("price > 10"), 9_000_000);
        let out = svc.shutdown();
        assert!(out.errors.is_empty(), "{:?}", out.errors);
        assert!(out.rejected_requests.is_empty());
        assert_eq!(out.stats.accepted, 4);

        // The live deployment must equal a cold deploy of the same
        // target state, pipeline for pipeline.
        let mut expect = vec![Vec::new(); hosts];
        expect[15].push(f("stock == GOOGL"));
        expect[3].push(f("price > 10"));
        assert_eq!(out.subs, expect);
        let fresh = controller().deploy(paper_fat_tree(), &expect).unwrap();
        let fp = |c: &camus_routing::compile::NetworkCompile| {
            c.switches.iter().map(|s| (s.switch, s.fingerprint, s.entries)).collect::<Vec<_>>()
        };
        assert_eq!(
            fp(&out.deployment.compile),
            fp(&fresh.compile),
            "live state must converge to the cold-deploy compile"
        );

        // And deliver: host 15 subscribed to GOOGL.
        let mut d = out.deployment;
        let spec = itch_spec();
        let pkt = PacketBuilder::new(&spec)
            .message(vec![("stock", Value::from("GOOGL")), ("price", Value::Int(5))])
            .build();
        let t = d.network.now_ns() + 1;
        d.network.publish(0, pkt, t);
        d.network.run(None);
        assert!(d.network.deliveries(15).iter().any(|dl| dl.published_ns == t));
    }

    #[test]
    fn delta_compiled_service_matches_fresh_deploy_under_random_churn() {
        // Drive the live service through several windows of random
        // subscribe/unsubscribe churn. The compile stage maintains
        // per-switch BDDs incrementally through its delta cache; the
        // final deployment must still be pipeline-identical (same
        // fingerprints, same table sizes) to a cold deploy of the
        // target state — the delta path may only change cost.
        let (mut svc, hosts) = start(ServiceConfig::default());
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let filters =
            ["price > 10", "price > 50", "stock == GOOGL", "stock == MSFT", "shares >= 5"];
        let mut target: Vec<Vec<Expr>> = vec![Vec::new(); hosts];
        let mut t = 1_000u64;
        for _ in 0..4 {
            for _ in 0..12 {
                let h = (rng() % hosts as u64) as usize;
                let filt = f(filters[(rng() % filters.len() as u64) as usize]);
                let held = target[h].iter().position(|e| *e == filt);
                match held {
                    Some(pos) if rng() % 2 == 0 => {
                        target[h].remove(pos);
                        svc.unsubscribe(h, filt, t);
                    }
                    _ => {
                        target[h].push(filt.clone());
                        svc.subscribe(h, filt, t);
                    }
                }
                t += 500;
            }
            // Close the window so each round is its own transaction
            // (or several) and the delta cache is exercised per round.
            svc.drain();
            t += 10_000_000;
        }
        let out = svc.shutdown();
        assert!(out.errors.is_empty(), "{:?}", out.errors);
        assert!(out.rejected_requests.is_empty(), "{:?}", out.rejected_requests);
        assert_eq!(out.subs, target);
        assert!(out.stats.compiles > 1, "churn this size must compile repeatedly");
        assert!(out.stats.delta_states > 0, "live BDD states must survive shutdown");

        let fresh = controller().deploy(paper_fat_tree(), &target).unwrap();
        for (got, want) in out.deployment.compile.switches.iter().zip(fresh.compile.switches.iter())
        {
            assert_eq!(got.fingerprint, want.fingerprint, "switch {}", got.switch);
            assert_eq!(
                got.compiled.report.total_entries, want.compiled.report.total_entries,
                "switch {}: delta-maintained tables must match a cold deploy",
                got.switch
            );
        }
    }

    #[test]
    fn cancelling_churn_compiles_nothing() {
        let (mut svc, _) = start(ServiceConfig::default());
        // Sub + unsub inside one window: net-zero batch.
        svc.subscribe(4, f("price > 10"), 1_000);
        svc.unsubscribe(4, f("price > 10"), 1_100);
        let landed = svc.drain();
        assert_eq!(landed.len(), 1);
        assert!(landed[0].noop);
        assert_eq!(landed[0].cancelled, 2);
        let out = svc.shutdown();
        assert!(out.errors.is_empty(), "{:?}", out.errors);
        assert_eq!(out.stats.compiles, 0, "cancelled churn must cost zero compiles");
        assert_eq!(out.stats.noops, 1);
        assert_eq!(out.stats.cancelled_ops, 2);
    }

    #[test]
    fn audit_rides_every_commit_and_stays_clean() {
        // merge_backlog off: queued batches must not merge, so each
        // commit's audit round is individually checkable.
        let cfg = ServiceConfig {
            probes: vec![probe(75), probe(5)],
            merge_backlog: false,
            ..ServiceConfig::default()
        };
        let (mut svc, _) = start(cfg);
        svc.subscribe(9, f("price > 50"), 1_000);
        svc.subscribe(2, f("stock == GOOGL"), 5_000_000);
        let out = svc.shutdown();
        assert!(out.errors.is_empty(), "{:?}", out.errors);
        assert_eq!(out.stats.committed_txns, 2);
        let a = out.stats.audit;
        assert!(a.probes > 0 && a.expected > 0);
        assert!(a.clean(), "audit must be clean: {a:?}");
        // price>75 probe matches host 9 both rounds; GOOGL probe
        // matches 9 (price 75 > 50) and later 2 as well.
        assert_eq!(a.delivered, a.expected);
    }

    #[test]
    fn naive_mode_is_one_transaction_per_op() {
        let (mut svc, _) = start(ServiceConfig::naive());
        for i in 0..5u64 {
            svc.subscribe((i % 3) as usize, f("price > 10"), 1_000 * i);
        }
        let out = svc.shutdown();
        assert!(out.errors.is_empty(), "{:?}", out.errors);
        assert_eq!(out.stats.batches, 5);
        assert_eq!(out.stats.compiles, 5);
        assert_eq!(out.stats.merged_batches, 0, "naive mode must not coalesce");
        assert!((out.stats.coalescing_ratio() - 1.0).abs() < 1e-9);
        // Installs are serialized: each starts after the previous
        // one's modelled completion.
        for w in out.reports.windows(2) {
            assert!(w[1].install_start_ns >= w[0].deployed_ns);
        }
    }

    #[test]
    fn request_spans_land_in_trace_and_histogram() {
        let (mut svc, _) = start(ServiceConfig::default());
        svc.subscribe(1, f("price > 10"), 2_000);
        let out = svc.shutdown();
        assert!(out.errors.is_empty(), "{:?}", out.errors);
        let spans = &out.deployment.trace.requests;
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].arrival_ns, 2_000);
        assert!(spans[0].deployed_ns >= spans[0].compiled_ns);
        assert!(spans[0].time_to_traffic_ns() > 0);
        let h = out.registry.histogram("service.request.ttt_ns");
        assert_eq!(h.count(), 1);
        assert_eq!(out.registry.gauge("service.txn.inflight").get(), 0);
    }
}
