//! Property: crashing the controller at an arbitrary point in an
//! arbitrary churn schedule — then recovering from the WAL and
//! finishing the schedule — is observationally equivalent to never
//! having crashed at all.
//!
//! "Observationally equivalent" is checked on every surface a client
//! or a switch can see: the final target subscription state, the
//! per-switch compiled fingerprints, the pipelines actually installed
//! on the switches, and which hosts a witness packet is delivered to.
//! The snapshot cadence is part of the generated input, so the
//! property also pins that cadence only changes recovery *cost*,
//! never recovered *state*; and the WAL itself must be idempotent
//! under double replay.

use camus_core::statics::compile_static;
use camus_dataplane::PacketBuilder;
use camus_lang::ast::Expr;
use camus_lang::parser::parse_expr;
use camus_lang::spec::itch_spec;
use camus_lang::value::Value;
use camus_net::controller::Controller;
use camus_net::{Network, PerfectChannel};
use camus_routing::algorithm1::{Policy, RoutingConfig};
use camus_routing::topology::paper_fat_tree;
use camus_service::{CamusService, ServiceConfig, Wal};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn controller() -> Controller {
    let statics = compile_static(&itch_spec()).unwrap();
    Controller::new(statics, RoutingConfig::new(Policy::TrafficReduction))
}

fn filters() -> Vec<Expr> {
    ["price > 10", "price > 50", "stock == GOOGL", "stock == MSFT", "shares >= 5"]
        .iter()
        .map(|s| parse_expr(s).unwrap())
        .collect()
}

/// One generated churn step: which host, subscribe or unsubscribe,
/// which filter from the pool, and the model-time gap to the previous
/// step (spanning both within-window and window-splitting gaps).
type Step = (usize, bool, usize, u64);

fn arb_schedule(hosts: usize) -> impl Strategy<Value = Vec<Step>> {
    prop::collection::vec((0..hosts, any::<bool>(), 0..5usize, 1_000..3_000_000u64), 1..24)
}

fn start_service(cfg: ServiceConfig) -> CamusService {
    let net = paper_fat_tree();
    let subs = vec![Vec::new(); net.host_count()];
    let ctrl = controller();
    let d = ctrl.deploy(net, &subs).unwrap();
    CamusService::start(ctrl, d, subs, Box::new(PerfectChannel), cfg)
}

fn feed(svc: &mut CamusService, steps: &[Step], pool: &[Expr], t: &mut u64) {
    for &(host, sub, fi, dt) in steps {
        *t += dt;
        if sub {
            svc.subscribe(host, pool[fi].clone(), *t);
        } else {
            // May be a soft reject (host holds no such filter) — that
            // is part of the property: rejects replay as the same
            // no-ops.
            svc.unsubscribe(host, pool[fi].clone(), *t);
        }
    }
}

/// Hosts a GOOGL@price=20 witness reaches in this network.
fn witness_audience(network: &mut Network) -> BTreeSet<usize> {
    let spec = itch_spec();
    let pkt = PacketBuilder::new(&spec)
        .message(vec![("stock", Value::from("GOOGL")), ("price", Value::Int(20))])
        .build();
    let t = network.now_ns() + 1;
    let before: Vec<usize> =
        (0..network.topology.host_count()).map(|h| network.deliveries(h).len()).collect();
    network.publish(0, pkt, t);
    network.run(None);
    before
        .iter()
        .enumerate()
        .filter(|&(h, &seen)| network.deliveries(h)[seen..].iter().any(|d| d.published_ns == t))
        .map(|(h, _)| h)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn crash_anywhere_recover_equals_never_crashed(
        schedule in arb_schedule(paper_fat_tree().host_count()),
        crash_at in 0usize..1024,
        snapshot_every in 0u64..4,
    ) {
        let pool = filters();
        // The crash point may land before or after the whole schedule.
        let k = crash_at % (schedule.len() + 1);

        // Oracle: the same schedule through a never-crashed service.
        let mut oracle = start_service(ServiceConfig::default());
        let mut t = 0u64;
        feed(&mut oracle, &schedule, &pool, &mut t);
        let oracle_out = oracle.shutdown();
        prop_assert!(oracle_out.errors.is_empty(), "{:?}", oracle_out.errors);

        // Subject: crash after k requests, recover from the WAL,
        // finish the schedule.
        let wal = Wal::in_memory();
        let cfg = ServiceConfig {
            wal: Some(wal.clone()),
            snapshot_every,
            ..ServiceConfig::default()
        };
        let mut svc = start_service(cfg);
        let mut t = 0u64;
        feed(&mut svc, &schedule[..k], &pool, &mut t);
        let wreck = svc.kill();
        prop_assert!(wreck.errors.is_empty(), "{:?}", wreck.errors);

        let (mut svc, _stats) = CamusService::recover(
            controller(),
            wreck.deployment.network,
            wal.clone(),
            Box::new(PerfectChannel),
            ServiceConfig::default(),
        ).expect("recovery over a perfect channel must commit");
        feed(&mut svc, &schedule[k..], &pool, &mut t);
        let out = svc.shutdown();
        prop_assert!(out.errors.is_empty(), "{:?}", out.errors);
        prop_assert_eq!(out.stats.unaccounted_ops, 0, "post-recovery drain is loss-free");

        // 1. Same target subscription state.
        prop_assert_eq!(&out.subs, &oracle_out.subs);

        // 2. Same compiled fingerprints, switch for switch.
        let fps = |o: &camus_service::ServiceOutcome| -> Vec<(usize, u64)> {
            o.deployment.compile.switches.iter().map(|s| (s.switch, s.fingerprint)).collect()
        };
        prop_assert_eq!(fps(&out), fps(&oracle_out));

        // 3. Same installed pipelines, and no staged wreckage left.
        let mut d = out.deployment;
        let mut od = oracle_out.deployment;
        for (got, want) in d.network.switches.iter().zip(od.network.switches.iter()) {
            prop_assert_eq!(got.pipeline(), want.pipeline());
            prop_assert!(got.staged_epoch().is_none() && got.unfinalized_epoch().is_none());
        }

        // 4. Same delivery behaviour for a witness publication.
        prop_assert_eq!(witness_audience(&mut d.network), witness_audience(&mut od.network));

        // 5. The WAL is idempotent under double replay, and its
        // replayed state is exactly the final target state.
        let once = wal.replay();
        let twice = wal.replay();
        prop_assert_eq!(&once.subs, &twice.subs);
        prop_assert_eq!(&once.subs, &out.subs);
        prop_assert_eq!(once.next_epoch, twice.next_epoch);
    }
}
