//! Property-based tests for the BDD: evaluation must equal direct
//! filter evaluation on arbitrary rule sets and packets, construction
//! must be deterministic, and the reductions must never lose sharing
//! below the trivial bound.

use camus_bdd::{BddBuilder, VarOrder};
use camus_lang::ast::{Action, Expr, Operand, Predicate, Rel, Rule};
use camus_lang::value::Value;
use proptest::prelude::*;
use std::collections::BTreeSet;

fn arb_pred() -> impl Strategy<Value = Predicate> {
    let int_field = prop_oneof![Just("p"), Just("q")];
    let rel = prop_oneof![
        Just(Rel::Eq),
        Just(Rel::Ne),
        Just(Rel::Lt),
        Just(Rel::Le),
        Just(Rel::Gt),
        Just(Rel::Ge)
    ];
    let int_pred = (int_field, rel, -8i64..8).prop_map(|(f, r, c)| Predicate::field(f, r, c));
    let sym = prop_oneof![Just("A"), Just("AB"), Just("ABC"), Just("Z")];
    let srel = prop_oneof![Just(Rel::Eq), Just(Rel::Ne), Just(Rel::Prefix)];
    let str_pred = (srel, sym).prop_map(|(r, s)| Predicate::field("s", r, s));
    prop_oneof![2 => int_pred, 1 => str_pred]
}

fn arb_filter() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        6 => arb_pred().prop_map(Expr::Atom),
        1 => Just(Expr::True),
        1 => Just(Expr::False)
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            inner.prop_map(Expr::not),
        ]
    })
}

fn arb_rules() -> impl Strategy<Value = Vec<Rule>> {
    prop::collection::vec(arb_filter(), 1..8).prop_map(|fs| {
        fs.into_iter()
            .enumerate()
            .map(|(i, filter)| Rule {
                filter,
                // Distinct actions so labels equal rule indices.
                action: Action::Forward(vec![i as u16 + 1]),
            })
            .collect()
    })
}

fn arb_packet() -> impl Strategy<Value = (i64, i64, String)> {
    let sym = prop_oneof![Just("A"), Just("AB"), Just("ABC"), Just("Z"), Just("QQ")];
    (-10i64..10, -10i64..10, sym.prop_map(String::from))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// BDD evaluation equals direct evaluation of the rule filters.
    #[test]
    fn bdd_equals_direct_eval(
        rules in arb_rules(),
        pkts in prop::collection::vec(arb_packet(), 1..10),
    ) {
        let bdd = BddBuilder::from_rules(&rules).build();
        for (p, q, s) in &pkts {
            let lookup = |op: &Operand| match op.key().as_str() {
                "p" => Some(Value::Int(*p)),
                "q" => Some(Value::Int(*q)),
                "s" => Some(Value::Str(s.clone())),
                _ => None,
            };
            let want: BTreeSet<u32> = rules
                .iter()
                .enumerate()
                .filter(|(_, r)| r.filter.eval_with(lookup))
                .map(|(i, _)| i as u32)
                .collect();
            prop_assert_eq!(
                bdd.eval(lookup),
                &want,
                "packet p={} q={} s={:?}\nrules: {:#?}",
                p, q, s, rules
            );
        }
    }

    /// Construction is deterministic.
    #[test]
    fn construction_is_deterministic(rules in arb_rules()) {
        let a = BddBuilder::from_rules(&rules).build();
        let b = BddBuilder::from_rules(&rules).build();
        prop_assert_eq!(a.node_count(), b.node_count());
        prop_assert_eq!(a.terminal_count(), b.terminal_count());
        prop_assert_eq!(a.root(), b.root());
    }

    /// An explicit variable order changes structure but not semantics.
    #[test]
    fn order_preserves_semantics(
        rules in arb_rules(),
        pkts in prop::collection::vec(arb_packet(), 1..6),
    ) {
        let default = BddBuilder::from_rules(&rules).build();
        let reversed = BddBuilder::from_rules(&rules)
            .with_order(VarOrder::from_keys(["s", "q", "p"]))
            .build();
        for (p, q, s) in &pkts {
            let lookup = |op: &Operand| match op.key().as_str() {
                "p" => Some(Value::Int(*p)),
                "q" => Some(Value::Int(*q)),
                "s" => Some(Value::Str(s.clone())),
                _ => None,
            };
            prop_assert_eq!(default.eval(lookup), reversed.eval(lookup));
        }
    }

    /// Identical rules collapse to one label and add no structure.
    #[test]
    fn duplicate_rules_share_everything(filter in arb_filter()) {
        let one = vec![Rule { filter: filter.clone(), action: Action::Forward(vec![1]) }];
        let many: Vec<Rule> = (0..5)
            .map(|_| Rule { filter: filter.clone(), action: Action::Forward(vec![1]) })
            .collect();
        let a = BddBuilder::from_rules(&one).build();
        let b = BddBuilder::from_rules(&many).build();
        prop_assert_eq!(a.node_count(), b.node_count());
        prop_assert_eq!(a.terminal_count(), b.terminal_count());
    }
}
